// Quickstart: build jobs, run two schedulers, compare maximum flow.
//
//   $ ./quickstart
//
// Walks through the core API surface in ~60 lines:
//   1. build out-tree jobs (a parallel-for program and a quicksort run),
//   2. assemble an online Instance with release times,
//   3. run non-clairvoyant FIFO and the clairvoyant Algorithm A,
//   4. validate the schedules and print per-policy maximum flow against
//      the instance's provable lower bound.
#include <cstdio>

#include "analysis/ratio.h"
#include "core/alg_a_full.h"
#include "gen/recursive.h"
#include "sched/fifo.h"

using namespace otsched;

int main() {
  Rng rng(2024);

  // 1. Job shapes: dynamic-multithreaded programs as unit-time DAGs.
  Instance instance;
  for (int i = 0; i < 6; ++i) {
    // A "sequence of parallel for-loops" program...
    instance.add_job(Job(MakeRandomParallelForSeries(5, 12, rng), 4 * i,
                         "parfor-" + std::to_string(i)));
    // ...and a randomized quicksort recursion tree.
    QuicksortOptions qs;
    qs.n = 500;
    qs.grain = 50;
    qs.cutoff = 50;
    instance.add_job(Job(MakeQuicksortTree(qs, rng), 4 * i + 2,
                         "qsort-" + std::to_string(i)));
  }

  const int m = 8;
  std::printf("instance: %d jobs, %lld subjobs, releases 0..%lld, m=%d\n\n",
              instance.job_count(),
              static_cast<long long>(instance.total_work()),
              static_cast<long long>(instance.max_release()), m);

  // 2. Non-clairvoyant FIFO (the practical default).
  FifoScheduler fifo;
  const RatioMeasurement fifo_run = MeasureRatio(instance, m, fifo);

  // 3. Clairvoyant Algorithm A (the paper's O(1)-competitive scheduler).
  AlgAScheduler::Options options;
  options.beta = 16;  // tighter guess-doubling envelope than the paper's 258
  AlgAScheduler alg_a(options);
  const RatioMeasurement a_run = MeasureRatio(instance, m, alg_a);

  // 4. Report.  Denominator is a provable lower bound on OPT, so the
  // printed ratios are conservative upper bounds.
  std::printf("%-18s  max-flow  vs-LB(=%lld)\n", "scheduler",
              static_cast<long long>(fifo_run.opt_denominator));
  std::printf("%-18s  %8lld  %.2f\n", fifo_run.scheduler.c_str(),
              static_cast<long long>(fifo_run.max_flow), fifo_run.ratio);
  std::printf("%-18s  %8lld  %.2f   (restarts=%d, final guess=%lld)\n",
              a_run.scheduler.c_str(),
              static_cast<long long>(a_run.max_flow), a_run.ratio,
              alg_a.restarts(), static_cast<long long>(alg_a.guess()));
  return 0;
}
