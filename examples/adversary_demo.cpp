// adversary_demo: watch FIFO lose to the Section 4 adaptive adversary.
//
// Builds the lower-bound family at a chosen m, reports how arbitrary FIFO
// degrades (queue growth, max flow vs the certified OPT <= m+1), then
// shows that (a) a clairvoyant FIFO variant that runs key subjobs first
// and (b) Algorithm A are both immune on the very same instance.
//
//   $ ./adversary_demo [m] [jobs]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/alg_a.h"
#include "gen/fifo_adversary.h"
#include "sched/fifo.h"
#include "sim/renderer.h"
#include "sim/validator.h"

using namespace otsched;

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t jobs = argc > 2 ? std::atoll(argv[2]) : 40 * m;

  LowerBoundSimOptions options;
  options.m = m;
  options.num_jobs = jobs;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  const auto& run = adv.fifo_run;

  std::printf("Section 4 adversary, m=%d, %lld jobs released every %d slots\n",
              m, static_cast<long long>(jobs), m + 1);
  std::printf("certified OPT <= %lld (key-spine witness schedule)\n\n",
              static_cast<long long>(run.certified_opt_upper));

  std::printf("arbitrary FIFO (co-simulated, adversary fixes layer sizes):\n");
  std::printf("  max flow           : %lld  (%.2f x OPT-upper)\n",
              static_cast<long long>(run.max_flow),
              static_cast<double>(run.max_flow) /
                  static_cast<double>(run.certified_opt_upper));
  std::printf("  peak queue length  : %lld jobs alive at once\n",
              static_cast<long long>(run.max_alive));
  std::printf("  paper's growth term: lg m - lg lg m = %.2f\n\n",
              std::log2(static_cast<double>(m)) -
                  std::log2(std::log2(static_cast<double>(m))));

  // Clairvoyant FIFO: keys head the tallest subtrees, so the LPF-height
  // tie-break schedules them first and the trap never springs.
  FifoScheduler::Options lpf_options;
  lpf_options.tie_break = FifoTieBreak::kLpfHeight;
  FifoScheduler lpf_fifo(std::move(lpf_options));
  const SimResult fixed = Simulate(adv.instance, m, lpf_fifo);
  std::printf("clairvoyant FIFO (LPF-height tie-break), same instance:\n");
  std::printf("  max flow           : %lld  (%.2f x OPT-upper)\n\n",
              static_cast<long long>(fixed.flows.max_flow),
              static_cast<double>(fixed.flows.max_flow) /
                  static_cast<double>(run.certified_opt_upper));

  // Algorithm A (semi-batched: releases are multiples of m+1).
  AlgASemiBatchedScheduler::Options a_options;
  a_options.known_opt = 2 * (m + 1);
  AlgASemiBatchedScheduler alg_a(a_options);
  const SimResult a_result = Simulate(adv.instance, m, alg_a);
  std::printf("Algorithm A (Section 5, alpha=4, known OPT):\n");
  std::printf("  max flow           : %lld  (%.2f x OPT-upper)\n\n",
              static_cast<long long>(a_result.flows.max_flow),
              static_cast<double>(a_result.flows.max_flow) /
                  static_cast<double>(run.certified_opt_upper));

  std::printf("FIFO's first 40 slots (rows=processors, letters=jobs):\n");
  FifoScheduler::Options avoid;
  avoid.tie_break = FifoTieBreak::kAvoidMarked;
  avoid.deprioritize = [&adv](JobId job, NodeId node) {
    return adv.is_key(job, node);
  };
  FifoScheduler fifo(std::move(avoid));
  // Full-record run: the ASCII renderer walks the materialized schedule.
  const SimResult replay = Simulate(adv.instance, m, fifo);
  RenderOptions render;
  render.to_slot = 40;
  std::printf("%s", RenderSchedule(replay.full_schedule(), adv.instance,
                                   render).c_str());
  std::printf("\nNote the alternation: a full slot (the parallel sublayer)\n"
              "followed by a nearly idle slot (the key subjob) — the shape\n"
              "Lemma 4.1's accounting is built on.\n");
  return 0;
}
