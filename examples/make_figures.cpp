// make_figures: regenerate the paper's two figures as SVG files.
//
//   $ ./make_figures [output-dir]
//
// Produces:
//   fig1_packing_lpf.svg / fig1_packing_anti.svg — Figure 1: two feasible
//     packings of one job on three processors;
//   fig2_lpf_head_tail.svg — Figure 2: the head/tail shape of an
//     LPF[m/alpha] schedule (head = ragged, tail = packed rectangle);
//   adversary_window.svg — the Section 4 alternation pattern under FIFO.
#include <cstdio>
#include <string>

#include "core/lpf.h"
#include "dag/builders.h"
#include "gen/fifo_adversary.h"
#include "gen/random_trees.h"
#include "opt/single_batch.h"
#include "sched/fifo.h"
#include "sim/engine.h"
#include "sim/svg.h"

using namespace otsched;

namespace {

Schedule ToSchedule(const JobSchedule& js, int m) {
  Schedule schedule(m);
  for (Time t = 1; t <= js.length(); ++t) {
    for (NodeId v : js.at(t)) schedule.place(t, SubjobRef{0, v});
  }
  return schedule;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  // Figure 1.
  {
    const Dag dag = MakeSpineWithBursts(3, 2);
    Instance instance;
    instance.add_job(Job(Dag(dag), 0));
    const DagMetrics metrics = ComputeMetrics(dag);

    SvgOptions options;
    options.cell_size = 22;
    options.label_nodes = true;

    const JobSchedule lpf = BuildLpfSchedule(dag, metrics, 3);
    options.title = "Figure 1a: LPF packing (" +
                    std::to_string(lpf.length()) + " slots = OPT)";
    SaveScheduleSvg(ToSchedule(lpf, 3), instance,
                    dir + "/fig1_packing_lpf.svg", options);

    // A clumsier packing: lowest-height-first greedy.
    JobSchedule anti;
    anti.p = 3;
    anti.slot_of.assign(static_cast<std::size_t>(dag.node_count()), kNoTime);
    {
      std::vector<NodeId> pending(static_cast<std::size_t>(dag.node_count()));
      std::vector<NodeId> ready;
      for (NodeId v = 0; v < dag.node_count(); ++v) {
        pending[static_cast<std::size_t>(v)] = dag.in_degree(v);
        if (pending[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
      }
      std::int64_t done = 0;
      while (done < dag.node_count()) {
        std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
          return metrics.height[static_cast<std::size_t>(a)] <
                 metrics.height[static_cast<std::size_t>(b)];
        });
        std::vector<NodeId> slot;
        for (int k = 0; k < 3 && !ready.empty(); ++k) {
          slot.push_back(ready.front());
          ready.erase(ready.begin());
        }
        anti.slots.push_back(slot);
        for (NodeId v : slot) {
          anti.slot_of[static_cast<std::size_t>(v)] = anti.length();
          ++done;
          for (NodeId c : dag.children(v)) {
            if (--pending[static_cast<std::size_t>(c)] == 0) {
              ready.push_back(c);
            }
          }
        }
      }
    }
    options.title = "Figure 1b: height-last packing (" +
                    std::to_string(anti.length()) + " slots)";
    SaveScheduleSvg(ToSchedule(anti, 3), instance,
                    dir + "/fig1_packing_anti.svg", options);
  }

  // Figure 2.
  {
    const int m = 16;
    Rng rng(42);
    const Dag big = MakeAttachmentTree(400, 0.6, rng);
    Instance instance;
    instance.add_job(Job(Dag(big), 0));
    const Time opt = SingleBatchOpt(big, m);
    const JobSchedule reduced = BuildLpfSchedule(big, m / 4);
    SvgOptions options;
    options.cell_size = 8;
    options.title = "Figure 2: LPF[m/4] head (first OPT=" +
                    std::to_string(opt) + " slots) + packed tail";
    SaveScheduleSvg(ToSchedule(reduced, m / 4), instance,
                    dir + "/fig2_lpf_head_tail.svg", options);
  }

  // The Section 4 alternation under FIFO.
  {
    LowerBoundSimOptions lb;
    lb.m = 12;
    lb.num_jobs = 30;
    const AdversarialInstance adv = MakeAdversarialInstance(lb);
    FifoScheduler::Options avoid;
    avoid.tie_break = FifoTieBreak::kAvoidMarked;
    avoid.deprioritize = [&adv](JobId job, NodeId node) {
      return adv.is_key(job, node);
    };
    FifoScheduler fifo(std::move(avoid));
    const SimResult run = Simulate(adv.instance, 12, fifo);
    SvgOptions options;
    options.cell_size = 10;
    // Full-record run: the SVG renderer walks the materialized schedule.
    options.to_slot = 80;
    options.title = "Section 4 adversary vs FIFO: full slot / key slot "
                    "alternation";
    SaveScheduleSvg(run.full_schedule(), adv.instance,
                    dir + "/adversary_window.svg", options);
  }

  std::printf(
      "wrote fig1_packing_lpf.svg, fig1_packing_anti.svg,\n"
      "      fig2_lpf_head_tail.svg, adversary_window.svg under %s\n",
      dir.c_str());
  return 0;
}
