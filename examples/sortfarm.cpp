// sortfarm: a "sorting service" scenario.
//
// A server with m workers receives quicksort requests of mixed sizes over
// time (Poisson arrivals).  Each request is a fork-join quicksort program
// — an out-tree, the paper's motivating class.  We compare every policy in
// the library on tail latency (maximum flow) and mean latency, and print
// one row per policy.
//
//   $ ./sortfarm [m] [jobs] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analysis/ratio.h"
#include "common/table.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "gen/arrivals.h"
#include "gen/recursive.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/round_robin.h"

using namespace otsched;

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 16;
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  Rng rng(seed);
  // Arrival rate tuned to ~70% machine load for the default sizes.
  Instance instance = MakePoissonArrivals(
      jobs, 0.12,
      [](std::int64_t i, Rng& r) {
        QuicksortOptions qs;
        qs.n = 200 + static_cast<std::int64_t>(r.next_below(2000));
        qs.grain = 32;
        qs.cutoff = 32;
        qs.pivot_quality = (i % 3 == 0) ? 0.05 : 0.3;  // some skewed runs
        return MakeQuicksortTree(qs, r);
      },
      rng);
  instance.set_name("sortfarm");

  std::printf("sortfarm: %d quicksort requests, %lld subjobs, m=%d\n",
              instance.job_count(),
              static_cast<long long>(instance.total_work()), m);
  std::printf("lower bound on OPT max-flow: %lld\n\n",
              static_cast<long long>(MaxFlowLowerBound(instance, m)));

  std::vector<std::unique_ptr<Scheduler>> policies;
  policies.push_back(std::make_unique<FifoScheduler>());
  {
    FifoScheduler::Options o;
    o.tie_break = FifoTieBreak::kRandom;
    o.seed = seed;
    policies.push_back(std::make_unique<FifoScheduler>(std::move(o)));
  }
  {
    FifoScheduler::Options o;
    o.tie_break = FifoTieBreak::kLpfHeight;
    policies.push_back(std::make_unique<FifoScheduler>(std::move(o)));
  }
  policies.push_back(std::make_unique<ListGreedyScheduler>(seed));
  policies.push_back(std::make_unique<RoundRobinScheduler>());
  policies.push_back(std::make_unique<GlobalLpfScheduler>());
  {
    AlgAScheduler::Options o;
    o.beta = 16;
    policies.push_back(std::make_unique<AlgAScheduler>(o));
  }

  TextTable table({"policy", "max-flow", "ratio-vs-LB", "mean-flow", "p99"});
  for (const auto& policy : policies) {
    const RatioMeasurement r = MeasureRatio(instance, m, *policy);
    table.row(r.scheduler, r.max_flow, r.ratio, r.flow_stats.mean,
              r.flow_stats.p99);
  }
  table.print("latency by policy (flows in slots):");
  std::printf(
      "\nNote: FIFO variants differ only in INTRA-job subjob choice — the\n"
      "degree of freedom the paper's Section 4 lower bound exploits.\n");
  return 0;
}
