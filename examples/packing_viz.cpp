// packing_viz: Figure 1 and Figure 2, regenerated.
//
// Figure 1 shows one DAG packed two different ways onto three processors;
// Figure 2 shows the head/tail shape of an LPF schedule on m/alpha
// processors.  This example renders both as ASCII schedules.
//
//   $ ./packing_viz
#include <cstdio>

#include "core/lpf.h"
#include "dag/builders.h"
#include "dag/serialize.h"
#include "dag/validate.h"
#include "gen/random_trees.h"
#include "opt/single_batch.h"
#include "sim/renderer.h"
#include "sim/validator.h"

using namespace otsched;

namespace {

// Converts a single-job JobSchedule into an engine Schedule for rendering.
Schedule ToSchedule(const JobSchedule& js, int m) {
  Schedule schedule(m);
  for (Time t = 1; t <= js.length(); ++t) {
    for (NodeId v : js.at(t)) schedule.place(t, SubjobRef{0, v});
  }
  return schedule;
}

}  // namespace

int main() {
  // ---- Figure 1: two packings of one job on 3 processors ----
  // The job: a spine that spawns bursts — plenty of packing freedom.
  const Dag job_dag = MakeSpineWithBursts(3, 2);
  Instance instance;
  instance.add_job(Job(Dag(job_dag), 0, "fig1"));

  std::printf("Figure 1 job: %s\n\n", DescribeShape(job_dag).c_str());

  RenderOptions nodes_view;
  nodes_view.label_nodes = true;

  // Packing A: LPF (height-first) — finishes in OPT slots.
  const JobSchedule lpf3 = BuildLpfSchedule(job_dag, 3);
  std::printf("packing A — LPF on 3 processors (%lld slots, OPT=%lld):\n%s\n",
              static_cast<long long>(lpf3.length()),
              static_cast<long long>(SingleBatchOpt(job_dag, 3)),
              RenderSchedule(ToSchedule(lpf3, 3), instance,
                             nodes_view).c_str());

  // Packing B: anti-LPF (height-LAST greedy) — a feasible but clumsier
  // packing of the same DAG, like Figure 1's second panel.
  const DagMetrics metrics = ComputeMetrics(job_dag);
  JobSchedule clumsy;
  clumsy.p = 3;
  clumsy.slot_of.assign(static_cast<std::size_t>(job_dag.node_count()),
                        kNoTime);
  {
    std::vector<NodeId> pending(
        static_cast<std::size_t>(job_dag.node_count()));
    std::vector<NodeId> ready;
    for (NodeId v = 0; v < job_dag.node_count(); ++v) {
      pending[static_cast<std::size_t>(v)] = job_dag.in_degree(v);
      if (pending[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
    std::int64_t done = 0;
    while (done < job_dag.node_count()) {
      // Lowest height first: the opposite of the paper's LPF heuristic.
      std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
        return metrics.height[static_cast<std::size_t>(a)] <
               metrics.height[static_cast<std::size_t>(b)];
      });
      std::vector<NodeId> slot;
      for (int k = 0; k < 3 && !ready.empty(); ++k) {
        slot.push_back(ready.front());
        ready.erase(ready.begin());
      }
      clumsy.slots.push_back(slot);
      for (NodeId v : slot) {
        clumsy.slot_of[static_cast<std::size_t>(v)] = clumsy.length();
        ++done;
        for (NodeId c : job_dag.children(v)) {
          if (--pending[static_cast<std::size_t>(c)] == 0) {
            ready.push_back(c);
          }
        }
      }
    }
  }
  std::printf("packing B — shortest-path-first on 3 processors (%lld slots):\n%s\n",
              static_cast<long long>(clumsy.length()),
              RenderSchedule(ToSchedule(clumsy, 3), instance,
                             nodes_view).c_str());

  // ---- Figure 2: head/tail of LPF[m/alpha] ----
  const int m = 16;
  const int alpha = 4;
  Rng rng(42);
  const Dag big = MakeAttachmentTree(400, 0.6, rng);
  const Time opt = SingleBatchOpt(big, m);
  const JobSchedule reduced = BuildLpfSchedule(big, m / alpha);
  const HeadTailShape shape = AnalyzeHeadTail(reduced, opt);

  std::printf(
      "Figure 2: LPF[m/alpha] of a 400-node out-tree (m=%d, alpha=%d)\n"
      "  OPT on m processors : %lld\n"
      "  schedule length     : %lld\n"
      "  head (first OPT)    : %lld slots, arbitrary shape\n"
      "  tail                : %lld slots, fully packed: %s (bound: "
      "(alpha-1)*OPT = %lld)\n\n",
      m, alpha, static_cast<long long>(opt),
      static_cast<long long>(reduced.length()),
      static_cast<long long>(shape.head_len),
      static_cast<long long>(shape.tail_len),
      shape.underfull_tail_slots.empty() ? "yes" : "NO",
      static_cast<long long>((alpha - 1) * opt));

  Instance big_instance;
  big_instance.add_job(Job(Dag(big), 0, "fig2"));
  std::printf("per-slot width profile (head | tail):\n%s",
              RenderJobProfile(ToSchedule(reduced, m / alpha), 0).c_str());
  return 0;
}
