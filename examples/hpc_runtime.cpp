// hpc_runtime: the library as a task-runtime simulator for dense linear
// algebra.
//
// A "cluster front-end" receives factorization requests — tiled Cholesky
// and LU task graphs, stencil sweeps, FFTs — over time, and the runtime
// must keep worst-case turnaround (maximum flow) low.  These are genuine
// DAGs with joins, so the paper's out-tree guarantees do not apply;
// policies run in heuristic mode and are compared empirically.
//
//   $ ./hpc_runtime [m] [requests]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analysis/ratio.h"
#include "common/table.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "gen/arrivals.h"
#include "gen/numerics.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/work_stealing.h"

using namespace otsched;

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 16;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 24;

  Rng rng(2718);
  Instance instance = MakePoissonArrivals(
      requests, 0.05,
      [](std::int64_t i, Rng& r) {
        switch (i % 4) {
          case 0:
            return MakeTiledCholeskyDag(
                5 + static_cast<int>(r.next_below(6)));
          case 1:
            return MakeTiledLuDag(4 + static_cast<int>(r.next_below(4)));
          case 2:
            return MakeStencil1dDag(8 + static_cast<int>(r.next_below(16)),
                                    6 + static_cast<int>(r.next_below(8)));
          default:
            return MakeFftButterflyDag(
                4 + static_cast<int>(r.next_below(4)));
        }
      },
      rng);
  instance.set_name("hpc-runtime");

  std::printf("hpc runtime: %d kernel requests (cholesky/lu/stencil/fft), "
              "%lld tasks, m=%d workers\n",
              instance.job_count(),
              static_cast<long long>(instance.total_work()), m);
  std::printf("lower bound on OPT max-flow: %lld slots\n\n",
              static_cast<long long>(MaxFlowLowerBound(instance, m)));

  std::vector<std::unique_ptr<Scheduler>> policies;
  policies.push_back(std::make_unique<FifoScheduler>());
  policies.push_back(std::make_unique<WorkStealingScheduler>());
  policies.push_back(std::make_unique<ListGreedyScheduler>(5));
  policies.push_back(std::make_unique<GlobalLpfScheduler>());
  {
    AlgAScheduler::Options options;
    options.beta = 16;
    options.allow_general_dags = true;  // heuristic mode: DAGs have joins
    policies.push_back(std::make_unique<AlgAScheduler>(options));
  }

  TextTable table({"policy", "max-flow", "ratio-vs-LB", "mean-flow",
                   "machine idle %"});
  for (const auto& policy : policies) {
    const RatioMeasurement r = MeasureRatio(instance, m, *policy);
    const double idle =
        100.0 * static_cast<double>(r.sim_stats.idle_processor_slots) /
        (static_cast<double>(r.sim_stats.horizon) * m);
    table.row(r.scheduler, r.max_flow, r.ratio, r.flow_stats.mean, idle);
  }
  table.print();
  std::printf(
      "\nNote: tiled factorizations are DAGs with joins — outside the\n"
      "paper's out-tree guarantee; Algorithm A runs in its heuristic\n"
      "general-DAG mode (see bench_e15_general_dags for the systematic\n"
      "study).\n");
  return 0;
}
