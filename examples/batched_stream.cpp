// batched_stream: the Section 6 setting, live.
//
// Generates a batched instance (arrivals at integer multiples of OPT,
// certified OPT by construction), runs non-clairvoyant FIFO and the
// clairvoyant Algorithm A, and dumps both a summary table and a per-job
// flow CSV for downstream plotting.
//
//   $ ./batched_stream [m] [batches] [out.csv]
#include <cstdio>
#include <cstdlib>

#include "analysis/ratio.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/alg_a.h"
#include "gen/certified.h"
#include "sched/fifo.h"

using namespace otsched;

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 16;
  const int batches = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::string csv_path =
      argc > 3 ? argv[3] : std::string("batched_stream_flows.csv");

  Rng rng(99);
  const Time delta = 8;
  CertifiedInstance cert = MakeSpacedSaturatedInstance(m, delta, batches, rng);
  std::printf(
      "batched stream: %d saturated batches, OPT = %lld exactly, m = %d\n"
      "(every batch carries m*OPT work: zero slack, the hard regime)\n\n",
      batches, static_cast<long long>(cert.opt), m);

  TextTable table({"policy", "max-flow", "ratio-vs-OPT", "mean-flow"});

  FifoScheduler fifo;
  const RatioMeasurement fifo_run =
      MeasureRatio(cert.instance, m, fifo, cert.opt);
  table.row(fifo_run.scheduler, fifo_run.max_flow, fifo_run.ratio,
            fifo_run.flow_stats.mean);

  AlgASemiBatchedScheduler::Options options;
  options.known_opt = 2 * cert.opt;  // releases are multiples of OPT = OPT'/2
  AlgASemiBatchedScheduler alg_a(options);
  const RatioMeasurement a_run =
      MeasureRatio(cert.instance, m, alg_a, cert.opt);
  table.row(a_run.scheduler, a_run.max_flow, a_run.ratio,
            a_run.flow_stats.mean);

  table.print();

  // Per-job flows for plotting.
  {
    FifoScheduler fifo2;
    const SimResult run = Simulate(cert.instance, m, fifo2);
    CsvWriter csv(csv_path, {"job", "release", "flow"});
    for (JobId i = 0; i < cert.instance.job_count(); ++i) {
      csv.row(static_cast<long long>(i),
              static_cast<long long>(cert.instance.job(i).release()),
              static_cast<long long>(
                  run.flows.flow[static_cast<std::size_t>(i)]));
    }
    std::printf("\nper-job FIFO flows written to %s\n", csv_path.c_str());
  }
  return 0;
}
