// A generalized Section 4 adversary that plays against ANY
// non-clairvoyant scheduler.
//
// The paper's lower-bound construction is specified against FIFO: layer
// sizes adapt to the processors FIFO had available, which is well-defined
// because FIFO is work-conserving.  Its conclusion notes that extending
// the Omega(log m) bound to arbitrary non-clairvoyant algorithms "does
// not seem straightforward".  This module implements the natural
// generalization and lets experiments measure what it achieves:
//
//   * every job is L layers of exactly m+1 subjobs (fixed widths keep the
//     adversary CONSISTENT: the ready sets it shows can never shrink);
//   * the *key* of a layer is chosen adaptively as the subjob the
//     scheduler completes LAST (ties broken arbitrarily within the final
//     slot) — an adversary choice that is invisible until the layer is
//     done, because the next layer only becomes ready once its key (and
//     hence the whole layer) has finished;
//   * jobs are released every gap = m+2 slots; the key-spine witness
//     schedule gives OPT <= m+2 (keys at r+1..r+L, the m*L non-key
//     subjobs fit in the leftover capacity of the window).
//
// For a DETERMINISTIC scheduler the adaptive run and a replay of the
// materialized instance coincide exactly (the key, being last-finished,
// never gates anything the scheduler observed differently) — a property
// the tests verify, mirroring the lbsim cross-validation.
//
// The backend rejects dag()/metrics() queries: the adversary is defined
// for the non-clairvoyant information model only.
#pragma once

#include "job/instance.h"
#include "sim/engine.h"

namespace otsched {

struct AdaptiveAdversaryOptions {
  int m = 16;
  std::int64_t num_jobs = 64;
  int layers_per_job = -1;  // -1 => m
  Time gap = -1;            // -1 => m + 2
  Time max_horizon = 0;     // 0 => auto
};

struct AdaptiveAdversaryResult {
  /// The schedule the scheduler produced during the adaptive run.
  /// Present iff the run was recorded with RecordMode::kFull (flow-only
  /// runs track flows incrementally and skip both the schedule and its
  /// ValidateSchedule consistency proof).
  std::optional<Schedule> schedule;
  /// The materialized instance (keys wired as chosen); `schedule`, when
  /// recorded, is a feasible schedule of it, which the runner validates.
  Instance instance;
  /// keys[job][layer] = the node id the adversary crowned.
  std::vector<std::vector<NodeId>> keys;
  FlowSummary flows;
  Time max_flow = 0;
  Time certified_opt_upper = 0;  // = gap
  std::int64_t max_alive = 0;

  /// The materialized schedule; aborts on a flow-only run.
  const Schedule& full_schedule() const;
};

/// Runs `scheduler` against the adaptive environment to completion,
/// firing `context.observer`'s hooks exactly like Simulate does (the
/// on_finish SimResult is assembled from the produced schedule).  A
/// positive `context.options.max_horizon` overrides `options.max_horizon`.
/// The ONLY entry point (same single-signature contract as Simulate).
AdaptiveAdversaryResult RunAdaptiveAdversary(
    Scheduler& scheduler, const AdaptiveAdversaryOptions& options,
    const RunContext& context = {});

}  // namespace otsched
