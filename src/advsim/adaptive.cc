#include "advsim/adaptive.h"

#include <algorithm>

#include "common/assert.h"
#include "common/timer.h"
#include "sim/validator.h"

namespace otsched {
namespace {

class AdaptiveEngine final : public EngineBackend {
 public:
  AdaptiveEngine(Scheduler& scheduler, const AdaptiveAdversaryOptions& options,
                 const RunContext& context)
      : scheduler_(scheduler),
        observer_(context.observer),
        batch_capacity_(context.batch_capacity),
        sequencer_(context.options.faults, options.m),
        job_faults_(context.options.job_faults),
        m_(options.m),
        layers_(options.layers_per_job > 0 ? options.layers_per_job
                                           : options.m),
        width_(options.m + 1),
        gap_(options.gap > 0 ? options.gap : options.m + 2),
        num_jobs_(options.num_jobs) {
    OTSCHED_CHECK(m_ >= 2);
    OTSCHED_CHECK(num_jobs_ >= 1);
    OTSCHED_CHECK(layers_ >= 1);
    record_full_ = context.options.record == RecordMode::kFull;
    capacity_ = m_;
    if (sequencer_.active()) {
      OTSCHED_CHECK(scheduler.supports_fluctuating_capacity(),
                    "scheduler '" << scheduler.name()
                                  << "' does not support a fluctuating "
                                     "per-slot capacity (fault model "
                                  << ToString(context.options.faults.model)
                                  << ")");
    }
    if (job_faults_.active()) {
      OTSCHED_CHECK(context.options.record == RecordMode::kFlowOnly,
                    "job faults (model "
                        << ToString(context.options.job_faults.model)
                        << ") require RecordMode::kFlowOnly: re-executed "
                           "subjobs are unrepresentable in a materialized "
                           "Schedule");
      OTSCHED_CHECK(scheduler.supports_fluctuating_capacity(),
                    "scheduler '" << scheduler.name()
                                  << "' does not support job faults "
                                     "(job-fault model "
                                  << ToString(context.options.job_faults.model)
                                  << "): rollbacks invalidate precomputed "
                                     "window plans");
      OTSCHED_CHECK(scheduler.supports_job_rollback(),
                    "scheduler '" << scheduler.name()
                                  << "' does not support job faults "
                                     "(job-fault model "
                                  << ToString(context.options.job_faults.model)
                                  << "): its internal queues would dispatch "
                                     "rolled-back subjobs");
    }
    const bool faulted = sequencer_.active() || job_faults_.active();
    const Time horizon_override = context.options.max_horizon > 0
                                      ? context.options.max_horizon
                                      : options.max_horizon;
    max_horizon_ = horizon_override > 0
                       ? horizon_override
                       : (num_jobs_ * gap_ +
                          (faulted ? 64 : 8) * num_jobs_ *
                              layers_ * width_ +
                          (faulted ? 65536 : 1024));
  }

  AdaptiveAdversaryResult run();

  /// All jobs finished (the adversary's termination condition is
  /// finished jobs, not executed work: layers open lazily, so total
  /// work is only known once every key has been crowned).
  bool idle() const { return finished_jobs_ == num_jobs_; }

  // --- EngineBackend ---
  Time slot() const override { return slot_; }
  int m() const override { return m_; }
  int capacity() const override { return capacity_; }
  JobId job_count() const override {
    return static_cast<JobId>(num_jobs_);
  }
  std::span<const JobId> alive() const override { return alive_; }
  Time release(JobId id) const override { return id * gap_; }
  bool arrived(JobId id) const override { return release(id) < slot_; }
  bool finished(JobId id) const override {
    return jobs_[static_cast<std::size_t>(id)].done_layers == layers_;
  }
  std::span<const NodeId> ready(JobId id) const override {
    const JobState& job = jobs_[static_cast<std::size_t>(id)];
    if (!arrived(id) || job.done_layers == layers_ || !job.layer_open) {
      return {};
    }
    return job.ready;
  }
  std::int64_t remaining_work(JobId id) const override {
    return static_cast<std::int64_t>(layers_) * width_ -
           jobs_[static_cast<std::size_t>(id)].done_nodes;
  }
  std::int64_t done_work(JobId id) const override {
    return jobs_[static_cast<std::size_t>(id)].done_nodes;
  }
  bool executed(JobId id, NodeId v) const override {
    const JobState& job = jobs_[static_cast<std::size_t>(id)];
    return v >= 0 && static_cast<std::size_t>(v) < job.executed.size() &&
           job.executed[static_cast<std::size_t>(v)] != 0;
  }
  const Dag& dag(JobId) const override {
    OTSCHED_CHECK(false,
                  "the adaptive adversary plays non-clairvoyant schedulers "
                  "only; job DAGs do not exist until the run finishes");
  }
  const DagMetrics& metrics(JobId) const override {
    OTSCHED_CHECK(false, "no metrics in the adaptive environment");
  }
  bool clairvoyant_allowed() const override { return false; }

 private:
  struct JobState {
    int done_layers = 0;
    bool layer_open = false;       // current layer's subjobs are ready
    std::vector<NodeId> ready;     // unexecuted nodes of the open layer
    std::vector<char> executed;    // over all layers_ * width_ node ids
    std::int64_t done_nodes = 0;
    std::vector<NodeId> keys;      // chosen key per finished layer
    Time completion = kNoTime;
    // Job faults only (sized in begin() when a spec is active): the
    // checkpoint snapshot.  Closed layers are always committed (layer
    // completion is an implicit commit — crowned keys are never
    // un-crowned), so volatile work lives in the open layer only.
    std::vector<char> committed;
    std::int64_t committed_nodes = 0;
  };

  void open_next_layer(JobId id);
  std::int64_t commit_job(JobId id);
  std::int64_t rollback_job(JobId id);

  // The tick shape (mirrors SimDriver's begin/advance/drain): begin()
  // arms the run, step_slot() simulates exactly one slot, finalize()
  // materializes the instance and proves consistency.  run() is the
  // thin driver loop over them.
  void begin();
  void step_slot(const SchedulerView& view);
  AdaptiveAdversaryResult finalize();

  Scheduler& scheduler_;
  RunObserver* observer_ = nullptr;  // borrowed; null = uninstrumented run
  std::size_t batch_capacity_;       // event-ring size (RunContext)
  SlotEventEmitter emitter_;         // batched event stream writer
  bool time_picks_ = false;          // observer wants pick_seconds?
  BudgetSequencer sequencer_;        // per-slot capacity source
  int capacity_ = 1;                 // current slot's budget, m_t <= m
  JobFaultSequencer job_faults_;     // per-(slot, job) crash/commit source
  std::int64_t committed_total_ = 0; // engine-wide committed frontier
  std::int64_t job_rollbacks_ = 0;
  std::int64_t wasted_subjob_slots_ = 0;
  std::int64_t checkpoints_ = 0;     // interval-policy commits only
  bool record_full_ = true;          // materialize the Schedule?
  int m_;
  int layers_;
  int width_;   // m + 1 subjobs per layer
  Time gap_;
  std::int64_t num_jobs_;
  Time max_horizon_ = 0;

  Time slot_ = 0;
  Time last_busy_slot_ = 0;          // online horizon (== schedule horizon)
  std::int64_t executed_total_ = 0;
  std::int64_t busy_slots_ = 0;
  std::vector<JobState> jobs_;
  std::vector<JobId> alive_;
  std::int64_t next_arrival_ = 0;
  std::int64_t finished_jobs_ = 0;
  std::int64_t max_alive_ = 0;
  std::optional<Schedule> schedule_;  // record_full_ only

  // Per-slot scratch (members so step_slot never reallocates).
  std::vector<SubjobRef> picks_;
  std::vector<std::pair<JobId, NodeId>> last_in_layer_;
  std::vector<JobId> completed_now_;  // observer-only
};

void AdaptiveEngine::open_next_layer(JobId id) {
  JobState& job = jobs_[static_cast<std::size_t>(id)];
  OTSCHED_CHECK(!job.layer_open);
  OTSCHED_CHECK(job.done_layers < layers_);
  job.layer_open = true;
  job.ready.clear();
  const NodeId base = static_cast<NodeId>(job.done_layers) * width_;
  for (NodeId v = base; v < base + width_; ++v) job.ready.push_back(v);
}

std::int64_t AdaptiveEngine::commit_job(JobId id) {
  JobState& job = jobs_[static_cast<std::size_t>(id)];
  const std::int64_t newly = job.done_nodes - job.committed_nodes;
  if (newly == 0) return 0;
  job.committed = job.executed;
  job.committed_nodes = job.done_nodes;
  return newly;
}

std::int64_t AdaptiveEngine::rollback_job(JobId id) {
  JobState& job = jobs_[static_cast<std::size_t>(id)];
  const std::int64_t wasted = job.done_nodes - job.committed_nodes;
  if (wasted == 0) return 0;
  job.executed = job.committed;
  job.done_nodes = job.committed_nodes;
  // All volatile work lives in the open layer (closed layers committed
  // on completion): the ready list becomes the layer's uncommitted
  // nodes, in increasing node id — the rollback determinism contract
  // (sim/ready_state.h).
  OTSCHED_DCHECK(job.layer_open);
  job.ready.clear();
  const NodeId base = static_cast<NodeId>(job.done_layers) * width_;
  for (NodeId v = base; v < base + width_; ++v) {
    if (!job.executed[static_cast<std::size_t>(v)]) job.ready.push_back(v);
  }
  executed_total_ -= wasted;
  return wasted;
}

void AdaptiveEngine::begin() {
  jobs_.assign(static_cast<std::size_t>(num_jobs_), JobState{});
  for (JobState& job : jobs_) {
    job.executed.assign(
        static_cast<std::size_t>(layers_) * static_cast<std::size_t>(width_),
        0);
    if (job_faults_.active()) job.committed = job.executed;
  }
  scheduler_.reset(m_, static_cast<JobId>(num_jobs_));
  if (record_full_) schedule_.emplace(m_);
  emitter_.reset(this, observer_, batch_capacity_);
  time_picks_ = observer_ != nullptr && observer_->wants_pick_timing();
  if (observer_ != nullptr) observer_->on_run_begin(*this);
  slot_ = 1;
}

void AdaptiveEngine::step_slot(const SchedulerView& view) {
  if (alive_.empty() && next_arrival_ < num_jobs_) {
    slot_ = std::max(slot_, next_arrival_ * gap_ + 1);
  }
  OTSCHED_CHECK(slot_ <= max_horizon_,
                "scheduler '" << scheduler_.name()
                              << "' exceeded the adversary horizon");
  if (emitter_.active()) emitter_.slot_begin(slot_);
  while (next_arrival_ < num_jobs_ && next_arrival_ * gap_ < slot_) {
    const JobId id = static_cast<JobId>(next_arrival_++);
    alive_.push_back(id);
    open_next_layer(id);
    scheduler_.on_arrival(id, view);
    if (emitter_.active()) emitter_.arrival(slot_, id);
  }
  max_alive_ = std::max(max_alive_, static_cast<std::int64_t>(alive_.size()));

  if (sequencer_.active()) {
    // Same resolution point as the fixed-instance engines: after the
    // slot's arrivals, before the pick.  The adversarial-dip model
    // feeds on the same alive counter the Section 4 argument tracks.
    const int cap = sequencer_.capacity(
        slot_, static_cast<std::int64_t>(alive_.size()));
    if (cap != capacity_) {
      capacity_ = cap;
      if (emitter_.active()) emitter_.capacity_change(slot_, capacity_);
    }
  }

  if (job_faults_.active()) {
    // The ROLLBACK step (sim/job_faults.h slot protocol), at the same
    // point as the fixed-instance engines: after arrivals and capacity,
    // before the pick.
    for (const JobId id : alive_) {
      const JobState& job = jobs_[static_cast<std::size_t>(id)];
      const std::int64_t volatile_work = job.done_nodes - job.committed_nodes;
      if (volatile_work <= 0) continue;
      if (!job_faults_.crashes(slot_, id, release(id), volatile_work)) {
        continue;
      }
      const std::int64_t wasted = rollback_job(id);
      ++job_rollbacks_;
      wasted_subjob_slots_ += wasted;
      if (emitter_.active()) {
        emitter_.rollback(slot_, id, wasted, committed_total_);
      }
    }
  }

  picks_.clear();
  double pick_seconds = 0.0;
  if (time_picks_) {
    WallTimer pick_timer;
    scheduler_.pick(view, picks_);
    pick_seconds = pick_timer.elapsed_seconds();
  } else {
    scheduler_.pick(view, picks_);
  }
  OTSCHED_CHECK(static_cast<int>(picks_.size()) <= capacity_,
                "scheduler picked " << picks_.size() << " with capacity "
                                    << capacity_ << " (m = " << m_
                                    << ")");
  if (emitter_.active()) {
    // The pre-execution flush: nothing has mutated the ready sets the
    // scheduler saw, so the state at delivery matches the historical
    // per-pick hook (which fired here, before the validate/execute
    // loop below); an invalid pick aborts in that loop, so observers
    // never outlive one.
    std::int64_t ready_width = 0;
    for (const JobId id : alive_) {
      ready_width += static_cast<std::int64_t>(ready(id).size());
    }
    emitter_.pick_block(slot_, picks_,
                        static_cast<std::int64_t>(alive_.size()),
                        ready_width, pick_seconds);
  }

  // Validate, execute, and track layer completions.
  last_in_layer_.clear();
  for (const SubjobRef& ref : picks_) {
    OTSCHED_CHECK(ref.job >= 0 && ref.job < job_count(),
                  "pick references unknown job " << ref.job);
    JobState& job = jobs_[static_cast<std::size_t>(ref.job)];
    OTSCHED_CHECK(arrived(ref.job), "picked before arrival");
    // The node must be in the open layer's ready set.
    auto it = std::find(job.ready.begin(), job.ready.end(), ref.node);
    OTSCHED_CHECK(job.layer_open && it != job.ready.end(),
                  "job " << ref.job << " node " << ref.node
                         << " is not ready at slot " << slot_);
    // Layers completed this slot only open AFTER the pick loop, so a
    // key's children can never run in the slot the key completes —
    // readiness is correct by construction.
    job.ready.erase(it);
    job.executed[static_cast<std::size_t>(ref.node)] = 1;
    ++job.done_nodes;
    ++executed_total_;
    if (record_full_) schedule_->place(slot_, ref);
    if (job.ready.empty()) {
      last_in_layer_.emplace_back(ref.job, ref.node);
    }
  }
  // Layers that completed this slot: crown the LAST pick of the layer
  // in this slot as the key, then open the next layer (ready from the
  // next slot).
  for (const auto& [job_id, last_node] : last_in_layer_) {
    JobState& job = jobs_[static_cast<std::size_t>(job_id)];
    job.keys.push_back(last_node);
    ++job.done_layers;
    job.layer_open = false;
    if (job_faults_.active()) {
      // Layer completion is an implicit commit: the crowned key and its
      // layer survive every future crash (keys are never un-crowned).
      // Like the fixed-instance engines' finish-commit, it is free and
      // not counted in the interval-checkpoint stat.
      const std::int64_t newly = commit_job(job_id);
      committed_total_ += newly;
      if (emitter_.active()) {
        emitter_.checkpoint(slot_, job_id, newly, committed_total_);
      }
    }
    if (job.done_layers == layers_) {
      job.completion = slot_;
      ++finished_jobs_;
      if (emitter_.active()) completed_now_.push_back(job_id);
    } else {
      open_next_layer(job_id);
    }
  }
  if (job_faults_.active()) {
    // The CHECKPOINT step: interval-policy commits at end of slot over
    // the open layer's volatile nodes.
    for (const JobId id : alive_) {
      if (finished(id)) continue;
      const JobState& job = jobs_[static_cast<std::size_t>(id)];
      const std::int64_t volatile_work = job.done_nodes - job.committed_nodes;
      if (!job_faults_.checkpoint_due(slot_, volatile_work)) continue;
      const std::int64_t newly = commit_job(id);
      committed_total_ += newly;
      ++checkpoints_;
      if (emitter_.active()) {
        emitter_.checkpoint(slot_, id, newly, committed_total_);
      }
    }
  }
  if (emitter_.active() && !completed_now_.empty()) {
    // Ascending job id, matching DeriveTrace's completion order.
    std::sort(completed_now_.begin(), completed_now_.end());
    for (const JobId id : completed_now_) {
      emitter_.complete(slot_, id);
    }
    completed_now_.clear();
  }
  if (emitter_.active()) emitter_.slot_end();
  if (!picks_.empty()) {
    ++busy_slots_;
    last_busy_slot_ = slot_;
  }
  std::erase_if(alive_, [this](JobId id) { return finished(id); });
  ++slot_;
}

AdaptiveAdversaryResult AdaptiveEngine::finalize() {
  AdaptiveAdversaryResult result;
  result.schedule = std::move(schedule_);
  result.certified_opt_upper = gap_;
  result.max_alive = max_alive_;

  // Materialize the instance with the chosen keys wired in.
  for (std::int64_t j = 0; j < num_jobs_; ++j) {
    const JobState& job = jobs_[static_cast<std::size_t>(j)];
    Dag::Builder builder(static_cast<NodeId>(layers_) * width_);
    for (int layer = 0; layer + 1 < layers_; ++layer) {
      const NodeId key = job.keys[static_cast<std::size_t>(layer)];
      const NodeId next_base = static_cast<NodeId>(layer + 1) * width_;
      for (NodeId v = next_base; v < next_base + width_; ++v) {
        builder.add_edge(key, v);
      }
    }
    result.instance.add_job(Job(std::move(builder).build(), j * gap_,
                                "adaptive-" + std::to_string(j)));
    result.keys.push_back(job.keys);
  }
  result.instance.set_name("adaptive-adversary-m" + std::to_string(m_));

  if (record_full_) {
    // The produced schedule must be a feasible schedule of the
    // materialized instance — this is the consistency proof of the
    // adversary.  Flow-only runs skip it along with the schedule; every
    // pick was still validated against the adversary's ready sets above.
    const ValidationReport report =
        ValidateSchedule(*result.schedule, result.instance);
    OTSCHED_CHECK(report.feasible,
                  "adaptive adversary inconsistency: " << report.violation);
  }
  // Flows are tracked online (JobState::completion is the slot the final
  // layer finished, i.e. the job's last executed subjob), identically in
  // both record modes; full-mode ComputeFlows over the schedule yields
  // the same summary, as the adversary tests pin.
  {
    const std::size_t n = static_cast<std::size_t>(num_jobs_);
    result.flows.completion.resize(n, kNoTime);
    result.flows.flow.resize(n, kInfiniteTime);
    for (JobId id = 0; id < job_count(); ++id) {
      const std::size_t i = static_cast<std::size_t>(id);
      result.flows.completion[i] = jobs_[i].completion;
      result.flows.flow[i] = jobs_[i].completion - release(id);
      if (result.flows.max_flow_job == kInvalidJob ||
          result.flows.flow[i] > result.flows.max_flow) {
        result.flows.max_flow = result.flows.flow[i];
        result.flows.max_flow_job = id;
      }
    }
  }
  result.max_flow = result.flows.max_flow;
  if (observer_ != nullptr) {
    // Assemble the same on_finish payload Simulate would have produced
    // for this run (schedule present only in full mode).
    SimResult summary{result.schedule, result.flows, {}};
    summary.stats.horizon = last_busy_slot_;
    summary.stats.executed_subjobs = executed_total_;
    summary.stats.idle_processor_slots =
        static_cast<std::int64_t>(m_) * last_busy_slot_ - executed_total_ -
        wasted_subjob_slots_;
    summary.stats.busy_slots = busy_slots_;
    summary.stats.job_rollbacks = job_rollbacks_;
    summary.stats.wasted_subjob_slots = wasted_subjob_slots_;
    summary.stats.checkpoints = checkpoints_;
    observer_->on_finish(summary);
  }
  return result;
}

AdaptiveAdversaryResult AdaptiveEngine::run() {
  begin();
  SchedulerView view(*this);
  while (!idle()) step_slot(view);
  return finalize();
}

}  // namespace

const Schedule& AdaptiveAdversaryResult::full_schedule() const {
  OTSCHED_CHECK(schedule.has_value(),
                "full_schedule() on a flow-only adversary run (rerun with "
                "RecordMode::kFull)");
  return *schedule;
}

AdaptiveAdversaryResult RunAdaptiveAdversary(
    Scheduler& scheduler, const AdaptiveAdversaryOptions& options,
    const RunContext& context) {
  OTSCHED_CHECK(!scheduler.requires_clairvoyance(),
                "the adaptive adversary only plays non-clairvoyant "
                "schedulers; '"
                    << scheduler.name() << "' declares clairvoyance");
  AdaptiveEngine engine(scheduler, options, context);
  return engine.run();
}

}  // namespace otsched
