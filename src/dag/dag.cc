#include "dag/dag.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

Dag::Builder::Builder(NodeId initial_nodes) : node_count_(initial_nodes) {
  OTSCHED_CHECK(initial_nodes >= 0);
}

NodeId Dag::Builder::add_node() {
  return node_count_++;
}

NodeId Dag::Builder::add_nodes(NodeId count) {
  OTSCHED_CHECK(count >= 0);
  const NodeId first = node_count_;
  node_count_ += count;
  return first;
}

void Dag::Builder::add_edge(NodeId from, NodeId to) {
  OTSCHED_CHECK(from >= 0 && from < node_count_, "edge source " << from);
  OTSCHED_CHECK(to >= 0 && to < node_count_, "edge target " << to);
  OTSCHED_CHECK(from != to, "self-loop at node " << from);
  edges_.emplace_back(from, to);
}

namespace {

// Builds one direction of CSR adjacency via counting sort over `edges`,
// keyed by `key` (0 = source, 1 = target).
void BuildCsr(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges,
              bool key_is_source, std::vector<std::int64_t>& offsets,
              std::vector<NodeId>& targets) {
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [from, to] : edges) {
    const NodeId key = key_is_source ? from : to;
    ++offsets[static_cast<std::size_t>(key) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  targets.resize(edges.size());
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [from, to] : edges) {
    const NodeId key = key_is_source ? from : to;
    const NodeId value = key_is_source ? to : from;
    targets[static_cast<std::size_t>(cursor[static_cast<std::size_t>(key)]++)] =
        value;
  }
}

}  // namespace

Dag Dag::Builder::build() && {
  Dag dag;
  if (node_count_ == 0) {
    OTSCHED_CHECK(edges_.empty());
    return dag;
  }
  BuildCsr(node_count_, edges_, /*key_is_source=*/true, dag.child_offsets_,
           dag.child_targets_);
  BuildCsr(node_count_, edges_, /*key_is_source=*/false, dag.parent_offsets_,
           dag.parent_targets_);
  return dag;
}

std::span<const NodeId> Dag::span_of(const std::vector<std::int64_t>& offsets,
                                     const std::vector<NodeId>& targets,
                                     NodeId v) const {
  OTSCHED_DCHECK(v >= 0 && v < node_count(), "node " << v << " out of range");
  const auto begin = offsets[static_cast<std::size_t>(v)];
  const auto end = offsets[static_cast<std::size_t>(v) + 1];
  return {targets.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::vector<NodeId> Dag::roots() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (in_degree(v) == 0) result.push_back(v);
  }
  return result;
}

std::vector<NodeId> Dag::leaves() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (out_degree(v) == 0) result.push_back(v);
  }
  return result;
}

Dag DisjointUnion(std::span<const Dag> parts, std::vector<NodeId>* offsets_out) {
  Dag::Builder builder;
  std::vector<NodeId> offsets;
  offsets.reserve(parts.size());
  for (const Dag& part : parts) {
    offsets.push_back(builder.node_count());
    builder.add_nodes(part.node_count());
  }
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const Dag& part = parts[p];
    for (NodeId v = 0; v < part.node_count(); ++v) {
      for (NodeId child : part.children(v)) {
        builder.add_edge(offsets[p] + v, offsets[p] + child);
      }
    }
  }
  if (offsets_out != nullptr) *offsets_out = std::move(offsets);
  return std::move(builder).build();
}

}  // namespace otsched
