// Text import/export for job DAGs.
//
// The text format is a trivial adjacency list used by golden tests and the
// examples; the DOT export is for eyeballing generated workloads with
// graphviz.
//
// Text format:
//   line 1:            <node_count>
//   following lines:   <from> <to>        (one edge per line)
// Blank lines and lines starting with '#' are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/dag.h"

namespace otsched {

/// Serializes to the adjacency text format.
std::string ToText(const Dag& dag);

/// Parses the adjacency text format.  Aborts on malformed input with a
/// line-number diagnostic.
Dag FromText(const std::string& text);

/// Graphviz DOT export; `name` becomes the digraph name.  Node labels show
/// the node id.
std::string ToDot(const Dag& dag, const std::string& name = "job");

}  // namespace otsched
