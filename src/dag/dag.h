// Immutable DAG-of-subjobs representation (Section 3 of the paper).
//
// A job is a DAG G = (V, E) whose vertices are unit-time subjobs and whose
// edge (u, v) means u must complete strictly before v starts.  The class is
// storage only: metrics (work, span, heights, depths) live in metrics.h and
// structural checks in validate.h.
//
// Storage is CSR-style (two offset/target arrays, one for children and one
// for parents): a job with a million subjobs costs four flat vectors and no
// per-node allocation, which matters because the Theorem 4.2 sweeps build
// tens of thousands of jobs.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace otsched {

class Dag {
 public:
  /// Incremental construction; `build()` freezes into CSR form.
  /// The builder does NOT check acyclicity (generators guarantee it by
  /// construction); use IsAcyclic from validate.h when reading untrusted
  /// input.
  class Builder {
   public:
    Builder() = default;
    explicit Builder(NodeId initial_nodes);

    /// Adds one subjob; returns its id (dense, starting from 0).
    NodeId add_node();

    /// Adds `count` subjobs; returns the id of the first.
    NodeId add_nodes(NodeId count);

    /// Adds the precedence edge from -> to.  Both ids must already exist.
    void add_edge(NodeId from, NodeId to);

    NodeId node_count() const { return node_count_; }

    Dag build() &&;

   private:
    NodeId node_count_ = 0;
    std::vector<std::pair<NodeId, NodeId>> edges_;
  };

  Dag() = default;

  NodeId node_count() const { return static_cast<NodeId>(child_offsets_.empty() ? 0 : child_offsets_.size() - 1); }
  std::int64_t edge_count() const { return static_cast<std::int64_t>(child_targets_.size()); }
  bool empty() const { return node_count() == 0; }

  std::span<const NodeId> children(NodeId v) const {
    return span_of(child_offsets_, child_targets_, v);
  }
  std::span<const NodeId> parents(NodeId v) const {
    return span_of(parent_offsets_, parent_targets_, v);
  }

  NodeId out_degree(NodeId v) const {
    return static_cast<NodeId>(children(v).size());
  }
  NodeId in_degree(NodeId v) const {
    return static_cast<NodeId>(parents(v).size());
  }

  /// All nodes with in-degree zero, in id order.
  std::vector<NodeId> roots() const;
  /// All nodes with out-degree zero, in id order.
  std::vector<NodeId> leaves() const;

 private:
  friend class Builder;

  std::span<const NodeId> span_of(const std::vector<std::int64_t>& offsets,
                                  const std::vector<NodeId>& targets,
                                  NodeId v) const;

  // CSR adjacency.  offsets has node_count()+1 entries (or is empty for the
  // empty DAG).
  std::vector<std::int64_t> child_offsets_;
  std::vector<NodeId> child_targets_;
  std::vector<std::int64_t> parent_offsets_;
  std::vector<NodeId> parent_targets_;
};

/// Disjoint union: relabels each input DAG's nodes into one id space, in
/// input order.  Returns the combined DAG and, via `offsets_out` (optional),
/// the id offset applied to each input.
Dag DisjointUnion(std::span<const Dag> parts,
                  std::vector<NodeId>* offsets_out = nullptr);

}  // namespace otsched
