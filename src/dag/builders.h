// Deterministic structural DAG builders.
//
// These cover the canonical job shapes the paper reasons about: chains
// (sequential jobs), stars / fully-parallel blobs, complete k-ary out-trees,
// the layered key/non-key out-forests of the Section 4 lower bound, fork-join
// diamonds, and series-parallel composition (the model of Cilk-style
// programs from the introduction).  Randomized generators live in src/gen.
#pragma once

#include <span>

#include "dag/dag.h"

namespace otsched {

/// A path of n nodes: 0 -> 1 -> ... -> n-1.  Span = n.
Dag MakeChain(NodeId n);

/// One root with `width` leaf children.  Work = width + 1, span = 2.
/// width = 0 yields a single node.
Dag MakeStar(NodeId width);

/// `n` independent nodes (a fully parallelizable job).  Span = 1 for n > 0.
Dag MakeParallelBlob(NodeId n);

/// Complete `arity`-ary out-tree with `levels` levels (levels >= 1; a
/// single root when levels == 1).  Work = (arity^levels - 1)/(arity - 1).
Dag MakeCompleteTree(NodeId arity, int levels);

/// The Section 4 layered shape: layer sizes are given; each layer has one
/// *key* node that is the parent of every node of the next layer; non-key
/// nodes are leaves.  Layer 1 nodes are all roots (so this is an out-forest
/// whose only deep tree is the key spine).  Key of layer L is node
/// `key_of_layer[L]` in the returned mapping if requested.
Dag MakeLayeredKeyForest(std::span<const NodeId> layer_sizes,
                         std::vector<NodeId>* key_of_layer = nullptr);

/// Fork-join diamond: source -> `width` parallel nodes -> sink.  This is a
/// series-parallel DAG, NOT an out-tree (sink has in-degree = width).
Dag MakeForkJoin(NodeId width);

/// Series composition: every leaf/sink of `first` gains an edge to every
/// root/source of `second`.  Preserves series-parallel-ness.
Dag SeriesCompose(const Dag& first, const Dag& second);

/// Parallel composition: disjoint union.
Dag ParallelCompose(const Dag& first, const Dag& second);

/// An out-tree shaped like a divide-and-conquer with a tail-recursive
/// spine: a spine of `spine_len` nodes, where spine node i additionally
/// spawns a complete binary subtree of `burst_levels` levels.  This is the
/// "sequence of parallel-for loops" motif from the introduction, expressed
/// as a single out-tree.
Dag MakeSpineWithBursts(NodeId spine_len, int burst_levels);

/// Builds a DAG from an explicit edge list over `n` nodes (test helper).
Dag MakeFromEdges(NodeId n,
                  std::span<const std::pair<NodeId, NodeId>> edges);

/// Reverses every edge.  Turns an out-forest into an in-forest (the
/// class Hu's 1961 algorithm — LPF — is optimal for; see the paper's
/// related-work discussion) and vice versa.
Dag ReverseDag(const Dag& dag);

}  // namespace otsched
