#include "dag/validate.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "dag/metrics.h"

namespace otsched {

bool IsAcyclic(const Dag& dag) {
  const NodeId n = dag.node_count();
  std::vector<NodeId> indegree(static_cast<std::size_t>(n));
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    indegree[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (indegree[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  std::size_t seen = 0;
  for (std::size_t head = 0; head < queue.size(); ++head, ++seen) {
    for (NodeId c : dag.children(queue[head])) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) queue.push_back(c);
    }
  }
  return seen == static_cast<std::size_t>(n);
}

bool IsOutForest(const Dag& dag) {
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (dag.in_degree(v) > 1) return false;
  }
  // With in-degree <= 1, a cycle would require some node on it to have
  // in-degree >= 1 from within the cycle; a pure cycle is still possible,
  // so acyclicity must be checked explicitly.
  return IsAcyclic(dag);
}

bool IsOutTree(const Dag& dag) {
  if (dag.empty() || !IsOutForest(dag)) return false;
  return dag.roots().size() == 1;
}

DagShape AnalyzeShape(const Dag& dag) {
  DagShape shape;
  shape.acyclic = IsAcyclic(dag);
  shape.out_forest = IsOutForest(dag);
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (dag.in_degree(v) == 0) ++shape.root_count;
    shape.max_in_degree = std::max(shape.max_in_degree, dag.in_degree(v));
    shape.max_out_degree = std::max(shape.max_out_degree, dag.out_degree(v));
  }
  return shape;
}

std::string DescribeShape(const Dag& dag) {
  const DagShape shape = AnalyzeShape(dag);
  std::ostringstream out;
  if (!shape.acyclic) {
    out << "cyclic digraph";
  } else if (shape.out_forest) {
    out << (shape.root_count == 1 ? "out-tree" : "out-forest");
  } else {
    out << "general DAG";
  }
  out << ", " << dag.node_count() << " nodes, " << dag.edge_count()
      << " edges";
  if (shape.acyclic && !dag.empty()) {
    out << ", span " << Span(dag);
  }
  return out.str();
}

}  // namespace otsched
