#include "dag/metrics.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

DagMetrics ComputeMetrics(const Dag& dag) {
  const NodeId n = dag.node_count();
  DagMetrics m;
  m.work = n;
  if (n == 0) {
    m.deeper_than.assign(1, 0);
    return m;
  }

  // Kahn's algorithm for the topological order.
  std::vector<NodeId> indegree(static_cast<std::size_t>(n));
  std::vector<NodeId> queue;
  queue.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    indegree[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (indegree[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  m.topo_order.reserve(static_cast<std::size_t>(n));
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    m.topo_order.push_back(v);
    for (NodeId c : dag.children(v)) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) queue.push_back(c);
    }
  }
  OTSCHED_CHECK(m.topo_order.size() == static_cast<std::size_t>(n),
                "DAG has a cycle: topological order covers "
                    << m.topo_order.size() << " of " << n << " nodes");

  // Depth: forward pass in topo order.
  m.depth.assign(static_cast<std::size_t>(n), 1);
  for (NodeId v : m.topo_order) {
    const std::int32_t dv = m.depth[static_cast<std::size_t>(v)];
    for (NodeId c : dag.children(v)) {
      auto& dc = m.depth[static_cast<std::size_t>(c)];
      dc = std::max(dc, dv + 1);
    }
  }

  // Height: backward pass.
  m.height.assign(static_cast<std::size_t>(n), 1);
  for (auto it = m.topo_order.rbegin(); it != m.topo_order.rend(); ++it) {
    const NodeId v = *it;
    std::int32_t best = 0;
    for (NodeId c : dag.children(v)) {
      best = std::max(best, m.height[static_cast<std::size_t>(c)]);
    }
    m.height[static_cast<std::size_t>(v)] = best + 1;
  }

  for (NodeId v = 0; v < n; ++v) {
    m.span = std::max<std::int64_t>(m.span, m.depth[static_cast<std::size_t>(v)]);
  }

  // Depth profile W(d): count per depth, then suffix-sum.
  m.deeper_than.assign(static_cast<std::size_t>(m.span) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    // A node of depth d contributes to W(0..d-1).
    ++m.deeper_than[static_cast<std::size_t>(m.depth[static_cast<std::size_t>(v)]) - 1];
  }
  for (std::int64_t d = m.span - 1; d >= 0; --d) {
    m.deeper_than[static_cast<std::size_t>(d)] +=
        m.deeper_than[static_cast<std::size_t>(d) + 1];
  }
  OTSCHED_CHECK(m.deeper_than[0] == m.work);
  OTSCHED_CHECK(m.deeper_than[static_cast<std::size_t>(m.span)] == 0);
  return m;
}

std::int64_t Span(const Dag& dag) {
  return ComputeMetrics(dag).span;
}

}  // namespace otsched
