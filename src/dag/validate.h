// Structural validation of job DAGs.
//
// The paper's main algorithmic results are restricted to out-trees /
// out-forests (Section 5), while the FIFO results (Sections 4 and 6) allow
// arbitrary DAGs.  Algorithms that require the restriction check it at the
// boundary with these predicates.
#pragma once

#include <string>

#include "dag/dag.h"

namespace otsched {

/// True iff the digraph has no directed cycle.
bool IsAcyclic(const Dag& dag);

/// True iff every node has in-degree <= 1 and the graph is acyclic — i.e.
/// the DAG is a disjoint union of out-trees ("out-forest", Section 5).
bool IsOutForest(const Dag& dag);

/// True iff the DAG is an out-forest with exactly one root (a single
/// out-tree).  The empty DAG is not an out-tree.
bool IsOutTree(const Dag& dag);

/// Full structural report, for error messages and tests.
struct DagShape {
  bool acyclic = false;
  bool out_forest = false;
  NodeId root_count = 0;
  NodeId max_in_degree = 0;
  NodeId max_out_degree = 0;
};

DagShape AnalyzeShape(const Dag& dag);

/// Human-readable one-line description ("out-tree, 17 nodes, span 5", ...).
std::string DescribeShape(const Dag& dag);

}  // namespace otsched
