#include "dag/builders.h"

#include <vector>

#include "common/assert.h"

namespace otsched {

Dag MakeChain(NodeId n) {
  OTSCHED_CHECK(n >= 0);
  Dag::Builder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return std::move(builder).build();
}

Dag MakeStar(NodeId width) {
  OTSCHED_CHECK(width >= 0);
  Dag::Builder builder(width + 1);
  for (NodeId c = 1; c <= width; ++c) builder.add_edge(0, c);
  return std::move(builder).build();
}

Dag MakeParallelBlob(NodeId n) {
  OTSCHED_CHECK(n >= 0);
  Dag::Builder builder(n);
  return std::move(builder).build();
}

Dag MakeCompleteTree(NodeId arity, int levels) {
  OTSCHED_CHECK(arity >= 1);
  OTSCHED_CHECK(levels >= 1);
  Dag::Builder builder;
  // Breadth-first materialization, level by level.
  std::vector<NodeId> current = {builder.add_node()};
  for (int level = 2; level <= levels; ++level) {
    std::vector<NodeId> next;
    next.reserve(current.size() * static_cast<std::size_t>(arity));
    for (NodeId parent : current) {
      for (NodeId k = 0; k < arity; ++k) {
        const NodeId child = builder.add_node();
        builder.add_edge(parent, child);
        next.push_back(child);
      }
    }
    current = std::move(next);
  }
  return std::move(builder).build();
}

Dag MakeLayeredKeyForest(std::span<const NodeId> layer_sizes,
                         std::vector<NodeId>* key_of_layer) {
  Dag::Builder builder;
  std::vector<NodeId> keys;
  NodeId previous_key = kInvalidNode;
  for (NodeId size : layer_sizes) {
    OTSCHED_CHECK(size >= 1, "each layer needs at least the key subjob");
    const NodeId first = builder.add_nodes(size);
    // By convention the key is the first node of the layer; the adversary
    // generator permutes roles itself when it needs to.
    const NodeId key = first;
    if (previous_key != kInvalidNode) {
      for (NodeId v = first; v < first + size; ++v) {
        builder.add_edge(previous_key, v);
      }
    }
    keys.push_back(key);
    previous_key = key;
  }
  if (key_of_layer != nullptr) *key_of_layer = std::move(keys);
  return std::move(builder).build();
}

Dag MakeForkJoin(NodeId width) {
  OTSCHED_CHECK(width >= 1);
  Dag::Builder builder(width + 2);
  const NodeId source = 0;
  const NodeId sink = width + 1;
  for (NodeId v = 1; v <= width; ++v) {
    builder.add_edge(source, v);
    builder.add_edge(v, sink);
  }
  return std::move(builder).build();
}

namespace {

Dag ComposeImpl(const Dag& first, const Dag& second, bool series) {
  std::vector<Dag> parts;
  parts.push_back(first);   // copies; builders are cold-path
  parts.push_back(second);
  std::vector<NodeId> offsets;
  Dag merged = DisjointUnion(parts, &offsets);
  if (!series) return merged;

  Dag::Builder builder(merged.node_count());
  for (NodeId v = 0; v < merged.node_count(); ++v) {
    for (NodeId c : merged.children(v)) builder.add_edge(v, c);
  }
  for (NodeId sink : first.leaves()) {
    for (NodeId source : second.roots()) {
      builder.add_edge(offsets[0] + sink, offsets[1] + source);
    }
  }
  return std::move(builder).build();
}

}  // namespace

Dag SeriesCompose(const Dag& first, const Dag& second) {
  return ComposeImpl(first, second, /*series=*/true);
}

Dag ParallelCompose(const Dag& first, const Dag& second) {
  return ComposeImpl(first, second, /*series=*/false);
}

Dag MakeSpineWithBursts(NodeId spine_len, int burst_levels) {
  OTSCHED_CHECK(spine_len >= 1);
  OTSCHED_CHECK(burst_levels >= 0);
  Dag::Builder builder;
  NodeId previous = kInvalidNode;
  for (NodeId i = 0; i < spine_len; ++i) {
    const NodeId spine_node = builder.add_node();
    if (previous != kInvalidNode) builder.add_edge(previous, spine_node);
    previous = spine_node;
    // Attach a complete binary burst under the spine node.
    std::vector<NodeId> current = {spine_node};
    for (int level = 1; level <= burst_levels; ++level) {
      std::vector<NodeId> next;
      for (NodeId parent : current) {
        for (int k = 0; k < 2; ++k) {
          const NodeId child = builder.add_node();
          builder.add_edge(parent, child);
          next.push_back(child);
        }
      }
      current = std::move(next);
    }
  }
  return std::move(builder).build();
}

Dag MakeFromEdges(NodeId n,
                  std::span<const std::pair<NodeId, NodeId>> edges) {
  Dag::Builder builder(n);
  for (const auto& [from, to] : edges) builder.add_edge(from, to);
  return std::move(builder).build();
}

Dag ReverseDag(const Dag& dag) {
  Dag::Builder builder(dag.node_count());
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) builder.add_edge(c, v);
  }
  return std::move(builder).build();
}

}  // namespace otsched
