#include "dag/serialize.h"

#include <sstream>

#include "common/assert.h"

namespace otsched {

std::string ToText(const Dag& dag) {
  std::ostringstream out;
  out << dag.node_count() << '\n';
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      out << v << ' ' << c << '\n';
    }
  }
  return out.str();
}

Dag FromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  NodeId node_count = -1;
  Dag::Builder builder;

  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    if (node_count < 0) {
      if (fields >> node_count) {
        OTSCHED_CHECK(node_count >= 0,
                      "line " << line_number << ": negative node count");
        builder.add_nodes(node_count);
      }
      continue;
    }
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    if (fields >> from) {
      OTSCHED_CHECK(fields >> to,
                    "line " << line_number << ": edge needs two endpoints");
      builder.add_edge(from, to);
    }
  }
  OTSCHED_CHECK(node_count >= 0, "missing node-count header line");
  return std::move(builder).build();
}

std::string ToDot(const Dag& dag, const std::string& name) {
  std::ostringstream out;
  out << "digraph " << name << " {\n";
  out << "  rankdir=TB;\n";
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    out << "  n" << v << " [label=\"" << v << "\"];\n";
  }
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      out << "  n" << v << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace otsched
