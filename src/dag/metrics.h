// Structural quantities of a job DAG used throughout the paper:
//
//   work  W     — number of subjobs (Section 3),
//   span  P     — number of nodes on the longest directed path (Section 3),
//   height H(j) — nodes on the longest path from j to a leaf; leaves have
//                 height 1 (Section 5, used by Longest Path First),
//   depth  D(j) — nodes on the path from a root to j; roots have depth 1
//                 (Section 5; unique for out-forests, longest-path for
//                 general DAGs),
//   W(d)        — number of subjobs with depth strictly greater than d
//                 (Section 5, the depth profile behind Lemma 5.1 and
//                 Corollary 5.4).
#pragma once

#include <cstdint>
#include <vector>

#include "dag/dag.h"

namespace otsched {

struct DagMetrics {
  std::int64_t work = 0;
  std::int64_t span = 0;

  /// Topological order: every parent precedes its children.
  std::vector<NodeId> topo_order;

  /// height[v] in [1, span]; leaf = 1.
  std::vector<std::int32_t> height;

  /// depth[v] in [1, span]; root = 1.  For general DAGs this is the
  /// longest-path depth, which is the scheduling-relevant one (a node at
  /// longest-path depth d cannot run before slot d).
  std::vector<std::int32_t> depth;

  /// deeper_than[d] = W(d) = #nodes with depth > d, for d in [0, span].
  /// deeper_than[0] == work and deeper_than[span] == 0.
  std::vector<std::int64_t> deeper_than;

  /// W(d), tolerant of out-of-range d (W(d) = 0 for d >= span).
  std::int64_t w_deeper(std::int64_t d) const {
    if (d < 0) d = 0;
    if (d >= span) return 0;
    return deeper_than[static_cast<std::size_t>(d)];
  }
};

/// Computes all metrics in O(V + E).  Aborts if the DAG has a cycle (a
/// topological order cannot be completed).
DagMetrics ComputeMetrics(const Dag& dag);

/// Work of the whole DAG (= node_count), provided for readability.
inline std::int64_t Work(const Dag& dag) { return dag.node_count(); }

/// Span only (cheaper call-site spelling; still O(V + E)).
std::int64_t Span(const Dag& dag);

}  // namespace otsched
