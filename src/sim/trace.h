// Event traces: a linear record of everything that happened in a run.
//
// Where a Schedule answers "what ran when", a trace also captures
// arrivals and completions in order, which is what debugging a policy,
// diffing two runs, or replay-checking a simulation needs.  Traces
// serialize to a line format stable enough for golden tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "job/instance.h"
#include "sim/schedule.h"

namespace otsched {

enum class TraceEventKind : std::uint8_t {
  kArrival,   // job became schedulable (slot = release + 1)
  kExecute,   // subjob ran in this slot
  kComplete,  // job finished (its last subjob ran this slot)
};

struct TraceEvent {
  Time slot = 0;
  TraceEventKind kind = TraceEventKind::kExecute;
  JobId job = kInvalidJob;
  NodeId node = kInvalidNode;  // kExecute only

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class EventTrace {
 public:
  void add(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events of one kind, in order.
  std::vector<TraceEvent> of_kind(TraceEventKind kind) const;

  /// One line per event: "<slot> arrive|exec|done <job> [<node>]".
  std::string to_text() const;

  /// Strict parser for the to_text format.  Blank / whitespace-only lines
  /// are skipped; anything else malformed (non-numeric or non-positive
  /// slot, unknown kind token, missing node on exec, negative ids,
  /// trailing tokens) yields nullopt with a diagnostic naming the line.
  static std::optional<EventTrace> try_from_text(const std::string& text,
                                                 std::string* error = nullptr);

  /// try_from_text that aborts (OTSCHED_CHECK) on malformed input.
  static EventTrace from_text(const std::string& text);

  /// File-level counterpart of try_from_text (symmetric with to_file):
  /// reads `path` and parses it.  An unreadable file or a malformed line
  /// yields nullopt with a diagnostic prefixed by the path, so CLI users
  /// see "<path>: trace line N: ..." for parse errors.
  static std::optional<EventTrace> try_from_file(const std::string& path,
                                                 std::string* error = nullptr);

  /// Writes to_text() to `path`.  Returns false (with a diagnostic in
  /// `error`) on I/O failure; a successful write round-trips through
  /// try_from_file to an equal trace.
  bool to_file(const std::string& path, std::string* error = nullptr) const;

  friend bool operator==(const EventTrace&, const EventTrace&) = default;

 private:
  std::vector<TraceEvent> events_;
};

/// Derives the canonical trace of a finished schedule against its
/// instance: arrivals in (release, id) order at release+1, executions in
/// slot order (within a slot, in schedule placement order), completions
/// when a job's last subjob runs.  Two runs are behaviourally identical
/// iff their derived traces are equal.
EventTrace DeriveTrace(const Schedule& schedule, const Instance& instance);

/// First index where the traces differ, or -1 if equal (for diagnostics).
std::int64_t FirstDivergence(const EventTrace& a, const EventTrace& b);

}  // namespace otsched
