#include "sim/faults.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"
#include "sim/ready_state.h"

namespace otsched {

namespace {

/// splitmix64: the counter-based mixer behind the stochastic models.
/// Capacity must be a pure function of (seed, slot[, lane]) — never of
/// visit order — so both engines and every replay agree bit-for-bit.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, a, b).
double HashUnit(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = Mix64(seed ^ Mix64(a ^ Mix64(b)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Strict all-digits parse (the EventTrace::try_from_text idiom).
template <typename Int>
bool ParseNonNegative(const std::string& token, Int* out) {
  if (token.empty()) return false;
  Int value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const Int digit = static_cast<Int>(c - '0');
    if (value > (std::numeric_limits<Int>::max() - digit) / 10) return false;
    value = static_cast<Int>(value * 10 + digit);
  }
  *out = value;
  return true;
}

bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

std::string Strip(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

const char* ToString(FaultModel model) {
  switch (model) {
    case FaultModel::kNone:
      return "none";
    case FaultModel::kRandomBlip:
      return "random-blip";
    case FaultModel::kBurstOutage:
      return "burst-outage";
    case FaultModel::kAdversarialDip:
      return "adversarial-dip";
    case FaultModel::kTrace:
      return "trace";
  }
  return "?";
}

std::optional<FaultModel> ParseFaultModel(std::string_view name) {
  if (name == "none") return FaultModel::kNone;
  if (name == "random-blip") return FaultModel::kRandomBlip;
  if (name == "burst-outage") return FaultModel::kBurstOutage;
  if (name == "adversarial-dip") return FaultModel::kAdversarialDip;
  if (name == "trace") return FaultModel::kTrace;
  return std::nullopt;
}

// ---- BudgetTrace ----

std::optional<BudgetTrace> BudgetTrace::try_from_csv(const std::string& text,
                                                     std::string* error) {
  BudgetTrace trace;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& what) -> std::optional<BudgetTrace> {
    if (error != nullptr) {
      *error = "budget csv line " + std::to_string(line_number) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (IsBlank(line)) continue;
    const std::string stripped = Strip(line);
    if (stripped[0] == '#') continue;
    if (stripped == "slot,capacity") continue;  // optional header row
    const std::size_t comma = stripped.find(',');
    if (comma == std::string::npos) {
      return fail("malformed row '" + stripped +
                  "' (want <slot>,<capacity>)");
    }
    if (stripped.find(',', comma + 1) != std::string::npos) {
      return fail("trailing field in '" + stripped +
                  "' (want exactly <slot>,<capacity>)");
    }
    const std::string slot_token = Strip(stripped.substr(0, comma));
    const std::string cap_token = Strip(stripped.substr(comma + 1));
    Time slot = 0;
    if (!ParseNonNegative(slot_token, &slot) || slot < 1) {
      return fail("malformed slot '" + slot_token + "' (want integer >= 1)");
    }
    int capacity = 0;
    if (!ParseNonNegative(cap_token, &capacity)) {
      return fail("malformed capacity '" + cap_token +
                  "' (want integer >= 0)");
    }
    if (!trace.entries_.empty() && slot <= trace.entries_.back().first) {
      return fail("slot " + std::to_string(slot) +
                  " is not strictly after previous slot " +
                  std::to_string(trace.entries_.back().first));
    }
    trace.entries_.emplace_back(slot, capacity);
  }
  return trace;
}

BudgetTrace BudgetTrace::from_csv(const std::string& text) {
  std::string error;
  std::optional<BudgetTrace> trace = try_from_csv(text, &error);
  OTSCHED_CHECK(trace.has_value(), error);
  return *std::move(trace);
}

std::string BudgetTrace::to_csv() const {
  std::ostringstream out;
  out << "slot,capacity\n";
  for (const auto& [slot, capacity] : entries_) {
    out << slot << ',' << capacity << '\n';
  }
  return out.str();
}

void BudgetTrace::set(Time slot, int capacity) {
  OTSCHED_CHECK(slot >= 1, "budget trace slot must be >= 1, got " << slot);
  OTSCHED_CHECK(capacity >= 0,
                "budget trace capacity must be >= 0, got " << capacity);
  OTSCHED_CHECK(entries_.empty() || slot > entries_.back().first,
                "budget trace slots must be strictly increasing ("
                    << slot << " after " << entries_.back().first << ")");
  entries_.emplace_back(slot, capacity);
}

int BudgetTrace::capacity_at(Time slot, int m) const {
  // Entries are ascending: binary search for an exact pin.
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (entries_[mid].first < slot) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < entries_.size() && entries_[lo].first == slot) {
    return ClampSlotCapacity(entries_[lo].second, m);
  }
  return m;
}

std::int64_t BudgetTrace::capacity_sum(Time first, Time last, int m) const {
  if (first > last) return 0;
  // Start from a fully healthy range and subtract what each pinned slot
  // in [first, last] takes away; entries are ascending so the pins in
  // range form one contiguous run.
  std::int64_t sum =
      static_cast<std::int64_t>(m) * (last - first + 1);
  auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), first,
      [](const std::pair<Time, int>& e, Time t) { return e.first < t; });
  for (auto it = begin; it != entries_.end() && it->first <= last; ++it) {
    sum += ClampSlotCapacity(it->second, m) - m;
  }
  return sum;
}

// ---- FaultSpec ----

std::string ToString(const FaultSpec& spec) {
  std::ostringstream out;
  out << ToString(spec.model);
  if (spec.model == FaultModel::kRandomBlip ||
      spec.model == FaultModel::kBurstOutage) {
    out << ':' << spec.seed << ':' << spec.rate;
  } else if (spec.model == FaultModel::kAdversarialDip) {
    out << ':' << spec.seed << ':' << spec.floor;
  } else if (spec.model == FaultModel::kTrace) {
    out << ':' << (spec.trace != nullptr ? spec.trace->entry_count() : 0)
        << " entries";
  }
  return out.str();
}

std::optional<FaultSpec> ParseFaultSpec(std::string_view text,
                                        std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<FaultSpec> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == ':') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  if (parts.size() > 3) {
    return fail("too many ':' fields in fault spec '" + std::string(text) +
                "' (want model[:seed[:rate]])");
  }
  FaultSpec spec;
  const std::optional<FaultModel> model = ParseFaultModel(parts[0]);
  if (!model.has_value()) {
    return fail("unknown fault model '" + parts[0] +
                "' (want none|random-blip|burst-outage|adversarial-dip)");
  }
  if (*model == FaultModel::kTrace) {
    return fail("fault model 'trace' takes a CSV file, not a spec string");
  }
  spec.model = *model;
  if (parts.size() >= 2) {
    if (!ParseNonNegative(parts[1], &spec.seed)) {
      return fail("malformed fault seed '" + parts[1] + "'");
    }
  }
  if (parts.size() >= 3) {
    if (spec.model == FaultModel::kAdversarialDip) {
      if (!ParseNonNegative(parts[2], &spec.floor)) {
        return fail("malformed dip floor '" + parts[2] +
                    "' (want integer >= 0)");
      }
    } else {
      std::size_t consumed = 0;
      double rate = 0.0;
      try {
        rate = std::stod(parts[2], &consumed);
      } catch (...) {
        consumed = 0;
      }
      if (consumed != parts[2].size() || rate < 0.0 || rate > 0.9) {
        return fail("malformed fault rate '" + parts[2] +
                    "' (want a number in [0, 0.9])");
      }
      spec.rate = rate;
    }
  }
  return spec;
}

void ValidateFaultSpec(const FaultSpec& spec) {
  if (!spec.active()) return;
  OTSCHED_CHECK(spec.rate >= 0.0 && spec.rate <= 0.9,
                "fault rate must be in [0, 0.9], got " << spec.rate);
  OTSCHED_CHECK(spec.burst_len >= 1,
                "fault burst_len must be >= 1, got " << spec.burst_len);
  OTSCHED_CHECK(spec.floor >= 0,
                "fault floor must be >= 0, got " << spec.floor);
  OTSCHED_CHECK(spec.model != FaultModel::kTrace || spec.trace != nullptr,
                "FaultModel::kTrace needs an attached BudgetTrace");
}

// ---- BudgetSequencer ----

BudgetSequencer::BudgetSequencer(const FaultSpec& spec, int m)
    : spec_(spec), m_(m) {
  OTSCHED_CHECK(m >= 1);
  ValidateFaultSpec(spec_);
}

int BudgetSequencer::capacity(Time slot, std::int64_t alive_count) {
  switch (spec_.model) {
    case FaultModel::kNone:
      return m_;
    case FaultModel::kRandomBlip: {
      // Each of the m processors fails independently this slot.
      int up = 0;
      for (int lane = 0; lane < m_; ++lane) {
        if (HashUnit(spec_.seed, static_cast<std::uint64_t>(slot),
                     static_cast<std::uint64_t>(lane)) >= spec_.rate) {
          ++up;
        }
      }
      return up;
    }
    case FaultModel::kBurstOutage: {
      // Correlated downtime: whole burst_len windows drop to the floor.
      const std::uint64_t window =
          static_cast<std::uint64_t>((slot - 1) / spec_.burst_len);
      const bool out = HashUnit(spec_.seed, window, 0x0Bu) < spec_.rate;
      return out ? ClampSlotCapacity(spec_.floor, m_) : m_;
    }
    case FaultModel::kAdversarialDip:
      // Starve exactly when the alive count reaches a NEW peak.  Strictly
      // greater, so a held peak recovers next slot and runs terminate:
      // at most job_count dips per run.
      if (alive_count > peak_alive_) {
        peak_alive_ = alive_count;
        return ClampSlotCapacity(spec_.floor, m_);
      }
      return m_;
    case FaultModel::kTrace:
      return spec_.trace->capacity_at(slot, m_);
  }
  return m_;
}

BudgetTrace MaterializeBudgetTrace(const FaultSpec& spec, int m,
                                   Time horizon) {
  OTSCHED_CHECK(spec.model != FaultModel::kAdversarialDip,
                "adversarial-dip depends on the run's alive stream and has "
                "no standalone trace form");
  OTSCHED_CHECK(horizon >= 1, "horizon must be >= 1, got " << horizon);
  BudgetSequencer sequencer(spec, m);
  BudgetTrace trace;
  for (Time slot = 1; slot <= horizon; ++slot) {
    const int capacity = sequencer.capacity(slot, /*alive_count=*/0);
    if (capacity < m) trace.set(slot, capacity);
  }
  return trace;
}

}  // namespace otsched
