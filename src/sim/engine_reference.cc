// The seed engine, kept as the golden baseline.
//
// ReferenceSimulate is the pre-incremental implementation: it rescans a
// job's whole DAG to publish roots on arrival and compacts the alive set
// with a full pass every slot.  It exists ONLY as the comparison oracle
// for the engine-equivalence gate (tests/engine_equivalence_test.cc) and
// the before/after rows of bench_micro_perf; production callers go
// through Simulate().  It fires the same RunObserver hooks as the
// incremental engine (sim/observer.h) so the gate can also prove the two
// hook streams identical.  Delete this file once the gate has soaked and
// the equivalence corpus is considered exhaustive.
#include <algorithm>

#include "common/assert.h"
#include "common/timer.h"
#include "sim/engine.h"

namespace otsched {

namespace {

class ReferenceEngine final : public EngineBackend {
 public:
  ReferenceEngine(const Instance& instance, int m, Scheduler& scheduler,
                  const RunContext& context)
      : instance_(instance),
        m_(m),
        scheduler_(scheduler),
        observer_(context.observer),
        batch_capacity_(context.batch_capacity),
        sequencer_(context.options.faults, m),
        job_faults_(context.options.job_faults) {
    OTSCHED_CHECK(m >= 1);
    const SimOptions& options = context.options;
    clairvoyant_ =
        options.clairvoyance == ClairvoyanceOverride::kPolicyDefault
            ? scheduler.requires_clairvoyance()
            : options.clairvoyance == ClairvoyanceOverride::kAllow;
    record_full_ = options.record == RecordMode::kFull;
    capacity_ = m_;
    if (sequencer_.active()) {
      OTSCHED_CHECK(scheduler.supports_fluctuating_capacity(),
                    "scheduler '" << scheduler.name()
                                  << "' does not support a fluctuating "
                                     "per-slot capacity (fault model "
                                  << ToString(options.faults.model) << ")");
    }
    if (job_faults_.active()) {
      OTSCHED_CHECK(options.record == RecordMode::kFlowOnly,
                    "job faults (model "
                        << ToString(options.job_faults.model)
                        << ") require RecordMode::kFlowOnly: re-executed "
                           "subjobs are unrepresentable in a materialized "
                           "Schedule");
      OTSCHED_CHECK(scheduler.supports_fluctuating_capacity(),
                    "scheduler '" << scheduler.name()
                                  << "' does not support job faults "
                                     "(job-fault model "
                                  << ToString(options.job_faults.model)
                                  << "): rollbacks invalidate precomputed "
                                     "window plans");
      OTSCHED_CHECK(scheduler.supports_job_rollback(),
                    "scheduler '" << scheduler.name()
                                  << "' does not support job faults "
                                     "(job-fault model "
                                  << ToString(options.job_faults.model)
                                  << "): its internal queues would dispatch "
                                     "rolled-back subjobs");
    }
    max_horizon_ = options.max_horizon;
    if (max_horizon_ == 0) {
      max_horizon_ = instance.max_release() + 4 * instance.total_work() +
                     instance.max_span() + 1024;
      if (sequencer_.active() || job_faults_.active()) {
        // Mirror the incremental engine's fault allowance exactly.
        max_horizon_ = instance.max_release() + 64 * instance.total_work() +
                       instance.max_span() + 65536;
      }
    }
  }

  SimResult run();

  // --- EngineBackend implementation ---
  Time slot() const override { return slot_; }
  int m() const override { return m_; }
  int capacity() const override { return capacity_; }
  JobId job_count() const override { return instance_.job_count(); }
  std::span<const JobId> alive() const override { return alive_; }
  Time release(JobId id) const override {
    return instance_.job(id).release();
  }
  bool arrived(JobId id) const override { return release(id) < slot_; }
  bool finished(JobId id) const override {
    return done_[static_cast<std::size_t>(id)] ==
           instance_.job(id).work();
  }
  std::span<const NodeId> ready(JobId id) const override {
    return ready_[static_cast<std::size_t>(id)];
  }
  std::int64_t remaining_work(JobId id) const override {
    return instance_.job(id).work() - done_[static_cast<std::size_t>(id)];
  }
  std::int64_t done_work(JobId id) const override {
    return done_[static_cast<std::size_t>(id)];
  }
  bool executed(JobId id, NodeId v) const override {
    return executed_[static_cast<std::size_t>(id)]
                    [static_cast<std::size_t>(v)];
  }
  const Dag& dag(JobId id) const override {
    OTSCHED_CHECK(clairvoyant_,
                  "non-clairvoyant scheduler '"
                      << scheduler_.name() << "' asked for the DAG of job "
                      << id);
    OTSCHED_CHECK(arrived(id), "DAG of job " << id
                                             << " requested before arrival");
    return instance_.job(id).dag();
  }
  const DagMetrics& metrics(JobId id) const override {
    OTSCHED_CHECK(clairvoyant_,
                  "non-clairvoyant scheduler '"
                      << scheduler_.name()
                      << "' asked for metrics of job " << id);
    OTSCHED_CHECK(arrived(id),
                  "metrics of job " << id << " requested before arrival");
    return instance_.job(id).metrics();
  }
  bool clairvoyant_allowed() const override { return clairvoyant_; }

 private:
  void deliver_arrivals(const SchedulerView& view);
  void execute(SubjobRef ref);
  void refresh_alive();
  std::int64_t commit_job(JobId id);
  std::int64_t rollback_job(JobId id);

  const Instance& instance_;
  int m_;
  Scheduler& scheduler_;
  RunObserver* observer_ = nullptr;  // borrowed; null = uninstrumented run
  std::size_t batch_capacity_;       // event-ring size (RunContext)
  SlotEventEmitter emitter_;         // batched event stream writer
  bool time_picks_ = false;          // observer wants pick_seconds?
  bool clairvoyant_ = false;
  bool record_full_ = true;          // materialize the Schedule?
  Time max_horizon_ = 0;
  BudgetSequencer sequencer_;        // per-slot capacity source
  int capacity_ = 1;                 // current slot's budget, m_t <= m
  JobFaultSequencer job_faults_;     // per-(slot, job) crash/commit source
  std::int64_t committed_total_ = 0; // engine-wide committed frontier
  // Checkpoint snapshots (job faults only; the baseline mirror of the
  // arena's commit bitset and committed_done counters).
  std::vector<std::vector<char>> committed_executed_;
  std::vector<std::int64_t> committed_done_;

  Time slot_ = 0;
  Time last_busy_slot_ = 0;          // online horizon (== schedule horizon)
  FlowAccumulator flows_;            // online flow accounting, both modes
  std::vector<std::vector<NodeId>> ready_;        // per job, unordered
  std::vector<std::vector<NodeId>> ready_pos_;    // node -> index in ready_, or -1
  std::vector<std::vector<char>> executed_;       // per job per node
  std::vector<std::vector<NodeId>> pending_in_;   // remaining indegree
  std::vector<std::int64_t> done_;                // executed count per job
  std::vector<JobId> alive_;                      // arrived, unfinished, FIFO order
  std::vector<JobId> arrival_order_;              // all jobs by (release, id)
  std::size_t next_arrival_ = 0;
  std::int64_t executed_total_ = 0;
  std::vector<JobId> completed_now_;  // observer-only: jobs finished this slot
};

void ReferenceEngine::execute(SubjobRef ref) {
  const std::size_t j = static_cast<std::size_t>(ref.job);
  const std::size_t v = static_cast<std::size_t>(ref.node);
  executed_[j][v] = 1;
  ++done_[j];
  ++executed_total_;
  if (observer_ != nullptr && finished(ref.job)) {
    completed_now_.push_back(ref.job);
  }
  // Remove from the ready list via swap-erase.
  auto& ready = ready_[j];
  auto& pos = ready_pos_[j];
  const NodeId p = pos[v];
  OTSCHED_DCHECK(p >= 0);
  const NodeId moved = ready.back();
  ready[static_cast<std::size_t>(p)] = moved;
  pos[static_cast<std::size_t>(moved)] = p;
  ready.pop_back();
  pos[v] = kInvalidNode;
  // Children may become ready — but only from the NEXT slot, which is fine
  // because picks for the current slot were already validated against the
  // pre-execution ready sets.
  const Dag& dag = instance_.job(ref.job).dag();
  for (NodeId c : dag.children(ref.node)) {
    if (--pending_in_[j][static_cast<std::size_t>(c)] == 0) {
      pos[static_cast<std::size_t>(c)] = static_cast<NodeId>(ready.size());
      ready.push_back(c);
    }
  }
}

void ReferenceEngine::deliver_arrivals(const SchedulerView& view) {
  while (next_arrival_ < arrival_order_.size()) {
    const JobId id = arrival_order_[next_arrival_];
    if (instance_.job(id).release() >= slot_) break;
    ++next_arrival_;
    alive_.push_back(id);
    // Roots become ready on arrival: the full-DAG rescan the incremental
    // engine replaces with precomputed root lists.
    const Dag& dag = instance_.job(id).dag();
    const std::size_t j = static_cast<std::size_t>(id);
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      if (pending_in_[j][static_cast<std::size_t>(v)] == 0) {
        ready_pos_[j][static_cast<std::size_t>(v)] =
            static_cast<NodeId>(ready_[j].size());
        ready_[j].push_back(v);
      }
    }
    scheduler_.on_arrival(id, view);
    if (emitter_.active()) emitter_.arrival(slot_, id);
  }
}

void ReferenceEngine::refresh_alive() {
  std::erase_if(alive_, [this](JobId id) { return finished(id); });
}

std::int64_t ReferenceEngine::commit_job(JobId id) {
  const std::size_t j = static_cast<std::size_t>(id);
  const std::int64_t newly = done_[j] - committed_done_[j];
  if (newly == 0) return 0;
  committed_executed_[j] = executed_[j];
  committed_done_[j] = done_[j];
  return newly;
}

std::int64_t ReferenceEngine::rollback_job(JobId id) {
  const std::size_t j = static_cast<std::size_t>(id);
  const std::int64_t wasted = done_[j] - committed_done_[j];
  if (wasted == 0) return 0;
  const Dag& dag = instance_.job(id).dag();
  const NodeId n = dag.node_count();
  executed_[j] = committed_executed_[j];
  // Rebuild pending counts and the ready list from the restored executed
  // set, in increasing node id — the rollback determinism contract
  // (sim/ready_state.h), mirrored exactly.
  auto& ready = ready_[j];
  auto& pos = ready_pos_[j];
  ready.clear();
  for (NodeId v = 0; v < n; ++v) {
    pos[static_cast<std::size_t>(v)] = kInvalidNode;
    if (executed_[j][static_cast<std::size_t>(v)]) {
      pending_in_[j][static_cast<std::size_t>(v)] = 0;
      continue;
    }
    NodeId p = 0;
    for (const NodeId u : dag.parents(v)) {
      if (!executed_[j][static_cast<std::size_t>(u)]) ++p;
    }
    pending_in_[j][static_cast<std::size_t>(v)] = p;
    if (p == 0) {
      pos[static_cast<std::size_t>(v)] = static_cast<NodeId>(ready.size());
      ready.push_back(v);
    }
  }
  executed_total_ -= wasted;
  done_[j] = committed_done_[j];
  return wasted;
}

SimResult ReferenceEngine::run() {
  const JobId n = instance_.job_count();
  ready_.resize(static_cast<std::size_t>(n));
  ready_pos_.resize(static_cast<std::size_t>(n));
  executed_.resize(static_cast<std::size_t>(n));
  pending_in_.resize(static_cast<std::size_t>(n));
  done_.assign(static_cast<std::size_t>(n), 0);
  for (JobId id = 0; id < n; ++id) {
    const Dag& dag = instance_.job(id).dag();
    OTSCHED_CHECK(dag.node_count() >= 1,
                  "job " << id << " has no subjobs");
    const std::size_t j = static_cast<std::size_t>(id);
    executed_[j].assign(static_cast<std::size_t>(dag.node_count()), 0);
    ready_pos_[j].assign(static_cast<std::size_t>(dag.node_count()),
                         kInvalidNode);
    pending_in_[j].resize(static_cast<std::size_t>(dag.node_count()));
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      pending_in_[j][static_cast<std::size_t>(v)] = dag.in_degree(v);
    }
  }
  arrival_order_ = instance_.release_order();
  if (job_faults_.active()) {
    committed_executed_ = executed_;  // all-zero initial snapshots
    committed_done_.assign(static_cast<std::size_t>(n), 0);
  }

  scheduler_.reset(m_, n);
  SchedulerView view(*this);
  flows_.init(instance_);
  SimResult result;
  if (record_full_) result.schedule.emplace(m_);

  std::vector<SubjobRef> picks;
  const std::int64_t total_work = instance_.total_work();

  emitter_.reset(this, observer_, batch_capacity_);
  time_picks_ = observer_ != nullptr && observer_->wants_pick_timing();
  if (observer_ != nullptr) observer_->on_run_begin(*this);

  slot_ = 1;
  while (executed_total_ < total_work) {
    // Fast-forward across empty stretches when nothing is alive.
    if (alive_.empty() && next_arrival_ < arrival_order_.size()) {
      const Time next_release =
          instance_.job(arrival_order_[next_arrival_]).release();
      slot_ = std::max(slot_, next_release + 1);
    }
    OTSCHED_CHECK(slot_ <= max_horizon_,
                  "scheduler '" << scheduler_.name()
                                << "' exceeded the horizon bound "
                                << max_horizon_);

    if (emitter_.active()) emitter_.slot_begin(slot_);

    deliver_arrivals(view);

    if (sequencer_.active()) {
      // Capacity resolves after the slot's arrivals and before the pick,
      // exactly as in the incremental engine.
      const int cap = sequencer_.capacity(
          slot_, static_cast<std::int64_t>(alive_.size()));
      if (cap != capacity_) {
        capacity_ = cap;
        if (emitter_.active()) emitter_.capacity_change(slot_, capacity_);
      }
      if (capacity_ < m_) {
        ++result.stats.faulted_slots;
        result.stats.capacity_shortfall += m_ - capacity_;
      }
    }

    if (job_faults_.active()) {
      // The ROLLBACK step, mirroring the incremental engine exactly:
      // after arrivals and capacity, before the pick.
      for (const JobId id : alive_) {
        const std::size_t j = static_cast<std::size_t>(id);
        const std::int64_t volatile_work = done_[j] - committed_done_[j];
        if (volatile_work <= 0) continue;
        if (!job_faults_.crashes(slot_, id, instance_.job(id).release(),
                                 volatile_work)) {
          continue;
        }
        const std::int64_t wasted = rollback_job(id);
        flows_.unrecord(id, wasted);
        ++result.stats.job_rollbacks;
        result.stats.wasted_subjob_slots += wasted;
        if (emitter_.active()) {
          emitter_.rollback(slot_, id, wasted, committed_total_);
        }
      }
    }

    picks.clear();
    double pick_seconds = 0.0;
    if (time_picks_) {
      WallTimer pick_timer;
      scheduler_.pick(view, picks);
      pick_seconds = pick_timer.elapsed_seconds();
    } else {
      scheduler_.pick(view, picks);
    }

    OTSCHED_CHECK(static_cast<int>(picks.size()) <= capacity_,
                  "scheduler '" << scheduler_.name() << "' picked "
                                << picks.size() << " subjobs with capacity "
                                << capacity_ << " (m = " << m_
                                << ") at slot " << slot_);
    // Validate readiness and uniqueness, then execute.
    for (const SubjobRef& ref : picks) {
      OTSCHED_CHECK(ref.job >= 0 && ref.job < n,
                    "pick references unknown job " << ref.job);
      const std::size_t j = static_cast<std::size_t>(ref.job);
      const Dag& dag = instance_.job(ref.job).dag();
      OTSCHED_CHECK(ref.node >= 0 && ref.node < dag.node_count(),
                    "pick references unknown node " << ref.node << " of job "
                                                    << ref.job);
      OTSCHED_CHECK(arrived(ref.job), "job " << ref.job
                                             << " picked before arrival at slot "
                                             << slot_);
      OTSCHED_CHECK(!executed_[j][static_cast<std::size_t>(ref.node)],
                    "job " << ref.job << " node " << ref.node
                           << " picked twice (slot " << slot_ << ")");
      OTSCHED_CHECK(
          pending_in_[j][static_cast<std::size_t>(ref.node)] == 0 &&
              ready_pos_[j][static_cast<std::size_t>(ref.node)] != kInvalidNode,
          "job " << ref.job << " node " << ref.node
                 << " is not ready at slot " << slot_);
    }
    if (emitter_.active()) {
      // The pre-execution flush: the baseline pays an O(alive) sweep for
      // the ready width the incremental engine tracks as a counter.
      std::int64_t ready_width = 0;
      for (const JobId id : alive_) {
        ready_width +=
            static_cast<std::int64_t>(ready_[static_cast<std::size_t>(id)]
                                          .size());
      }
      emitter_.pick_block(slot_, picks,
                          static_cast<std::int64_t>(alive_.size()),
                          ready_width, pick_seconds);
    }
    // Same-slot duplicate picks are caught by the executed_ flag flipping
    // during execution below.
    for (const SubjobRef& ref : picks) {
      OTSCHED_CHECK(!executed_[static_cast<std::size_t>(ref.job)]
                              [static_cast<std::size_t>(ref.node)],
                    "duplicate pick of job " << ref.job << " node "
                                             << ref.node << " in slot "
                                             << slot_);
      execute(ref);
      if (job_faults_.active() && finished(ref.job)) {
        // Implicit finish-commit at the point of finish, as in the
        // incremental engine (not counted in stats.checkpoints).
        const std::int64_t newly = commit_job(ref.job);
        committed_total_ += newly;
        if (emitter_.active()) {
          emitter_.checkpoint(slot_, ref.job, newly, committed_total_);
        }
      }
      flows_.record(slot_, ref.job);
      if (record_full_) result.schedule->place(slot_, ref);
    }
    if (job_faults_.active()) {
      // The CHECKPOINT step: interval-policy commits at end of slot for
      // every alive unfinished job with volatile work.
      for (const JobId id : alive_) {
        if (finished(id)) continue;
        const std::size_t j = static_cast<std::size_t>(id);
        const std::int64_t volatile_work = done_[j] - committed_done_[j];
        if (!job_faults_.checkpoint_due(slot_, volatile_work)) continue;
        const std::int64_t newly = commit_job(id);
        committed_total_ += newly;
        ++result.stats.checkpoints;
        if (emitter_.active()) {
          emitter_.checkpoint(slot_, id, newly, committed_total_);
        }
      }
    }
    if (emitter_.active() && !completed_now_.empty()) {
      // Ascending job id, matching DeriveTrace's completion order.
      std::sort(completed_now_.begin(), completed_now_.end());
      for (const JobId id : completed_now_) {
        emitter_.complete(slot_, id);
      }
      completed_now_.clear();
    }
    if (emitter_.active()) emitter_.slot_end();
    if (!picks.empty()) {
      ++result.stats.busy_slots;
      last_busy_slot_ = slot_;
    }
    refresh_alive();
    ++slot_;
  }

  // Stats and flows are computed online in BOTH record modes, mirroring
  // the incremental engine (sim/engine.cc).
  result.stats.horizon = last_busy_slot_;
  result.stats.executed_subjobs = executed_total_;
  // Wasted (rolled-back) subjob slots occupied processors too.
  result.stats.idle_processor_slots =
      static_cast<std::int64_t>(m_) * last_busy_slot_ - executed_total_ -
      result.stats.wasted_subjob_slots;
  result.flows = flows_.finish();
  if (observer_ != nullptr) observer_->on_finish(result);
  return result;
}

}  // namespace

SimResult ReferenceSimulate(const Instance& instance, int m,
                            Scheduler& scheduler, const RunContext& context) {
  ReferenceEngine engine(instance, m, scheduler, context);
  return engine.run();
}

}  // namespace otsched
