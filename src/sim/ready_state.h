// Incremental ready-set bookkeeping shared by every simulation loop.
//
// The paper's model advances in unit slots; the only state a simulator
// must maintain per job is "which subjobs are ready".  Rebuilding that
// set by rescanning the DAG makes a run O(|V| * horizon); maintaining it
// as deltas makes the whole run O(|V| + |E|) bookkeeping total — each
// edge is relaxed exactly once, when its source executes.  This header
// packages that delta maintenance so the online engine (sim/engine.cc),
// the LPF builder and the MC replayer (src/core), and the adversarial
// backends all share one audited implementation.
//
// Determinism contract (relied on by the golden equivalence tests and by
// every seeded experiment): the ready sequence is a pure function of the
// DAG and the execution order —
//   * on activation, roots enter the ready list in increasing node id;
//   * execute(v) removes v by swap-erase (the LAST ready node takes v's
//     position), then appends newly-enabled children in dag.children(v)
//     order;
// i.e. exactly the order the seed engine produced, bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/dag.h"

namespace otsched {

/// Clamps a fault model's requested per-slot capacity into the only legal
/// range, [0, m]: budgets can starve a slot entirely but never exceed the
/// machine (the Lemma 5.5 setting, m_t <= m).  Shared by both engines and
/// the BudgetTrace/BudgetSequencer machinery in sim/faults.h so every
/// consumer clamps identically.
inline int ClampSlotCapacity(int requested, int m) {
  if (requested < 0) return 0;
  if (requested > m) return m;
  return requested;
}

/// Pending-predecessor counters over one DAG: counts[v] = predecessors of
/// v that have not yet completed.  `complete(v)` relaxes v's out-edges
/// and hands every child whose count reaches zero to a sink, in
/// dag.children(v) order.
class PendingCounters {
 public:
  /// Resets to the in-degrees of `dag`; roots() lists the zero-indegree
  /// nodes in increasing id order.
  void init(const Dag& dag);

  std::span<const NodeId> roots() const { return roots_; }

  bool cleared(NodeId v) const {
    return counts_[static_cast<std::size_t>(v)] == 0;
  }

  /// Decrements every child of `v`; calls sink(child) for each child
  /// whose pending count reaches zero, in dag.children(v) order.
  template <typename Sink>
  void complete(const Dag& dag, NodeId v, Sink&& sink) {
    for (NodeId c : dag.children(v)) {
      if (--counts_[static_cast<std::size_t>(c)] == 0) sink(c);
    }
  }

 private:
  std::vector<std::int32_t> counts_;
  std::vector<NodeId> roots_;
};

/// Struct-of-arrays ready/executed state over ALL jobs of an instance —
/// the engine's hot data, laid out as a handful of flat arrays instead
/// of per-job heap objects (the former JobReadyState owned 4-5 vectors
/// PER JOB; the arena owns ~9 vectors PER RUN regardless of job count).
/// Per-job regions are CSR slices of node-indexed arrays: job j's nodes
/// occupy [off(j), off(j+1)), its ready list lives in the same region of
/// `ready_` (a job can never have more ready nodes than nodes), and the
/// executed flags are one shared bitset.  All queries the EngineBackend
/// contract needs are O(1); execute() additionally returns the ready-
/// width delta so the engine can maintain the total ready width as a
/// counter instead of the O(alive) sweep observers used to pay.
///
/// The determinism contract above holds per job region exactly as it did
/// for the per-job vectors: same roots order, same swap-erase, same
/// children order — the engine-equivalence gate proves it bit-for-bit.
/// Streaming extension (SimDriver, sim/driver.h): jobs may additionally
/// be append()ed one at a time after (or instead of) the bulk init, and
/// finished jobs may be retire()d, which recycles their node region
/// through a coalescing free list so an unbounded submission stream runs
/// in memory proportional to the LIVE node count plus O(1) per job ever
/// seen (the per-job base/len/done entries are never reclaimed — job ids
/// are stable for the driver's lifetime).  Appended jobs activate by
/// scanning their pending counters (identical root order: increasing
/// node id); bulk jobs keep the precomputed root lists, so the batch
/// path is untouched.
class ReadyArena {
 public:
  /// Builds counters/roots/flags for every dag.  Ready lists stay empty
  /// until activate() — jobs contribute no ready subjobs before arrival.
  /// Only valid on a fresh arena (no prior init/append).
  void init(std::span<const Dag* const> dags);

  /// Adds one job after construction, reusing a retired region when one
  /// is large enough (first-fit with splitting) and growing the node
  /// arrays otherwise.  Returns the new job's id (== job_count() - 1).
  /// Growing may reallocate the raw tables below — re-publish any cached
  /// pointers after calling this.
  JobId append(const Dag& dag);

  /// Recycles job j's node region (j must be finished: every node
  /// executed, ready list empty).  Per-job queries done()/is-finished
  /// remain valid; per-NODE queries (ready/is_ready/is_executed) for j
  /// are meaningless once the region is reused.  Never reallocates.
  void retire(JobId j);

  std::size_t job_count() const { return off_.size(); }

  /// Node slots currently backing the arena (live + free-listed).  The
  /// retire-on-finish memory bound is asserted against this: it tracks
  /// the peak LIVE width of the stream, not the cumulative submissions.
  std::int64_t node_capacity() const { return total_nodes_; }

  /// Publishes job j's roots into its ready region (arrival), in
  /// increasing node id.  Call once per job; returns the root count (the
  /// job's initial ready width).
  std::int32_t activate(JobId j);

  /// Marks node `v` of job `j` executed: swap-erases it from the ready
  /// region and enqueues children whose last pending predecessor was
  /// `v`, in dag.children(v) order.  Returns the ready-width delta
  /// (children enabled minus one).
  std::int32_t execute(const Dag& dag, JobId j, NodeId v) {
    const std::int64_t base = off_[static_cast<std::size_t>(j)];
    const std::int64_t nv = base + v;
    executed_[static_cast<std::size_t>(nv >> 6)] |=
        std::uint64_t{1} << (nv & 63);
    ++done_[static_cast<std::size_t>(j)];
    NodeId* ready = ready_.data() + base;
    NodeId* pos = pos_.data() + base;
    std::int32_t& len = ready_len_[static_cast<std::size_t>(j)];
    const NodeId p = pos[static_cast<std::size_t>(v)];
    const NodeId moved = ready[static_cast<std::size_t>(len - 1)];
    ready[static_cast<std::size_t>(p)] = moved;
    pos[static_cast<std::size_t>(moved)] = p;
    --len;
    pos[static_cast<std::size_t>(v)] = kInvalidNode;
    std::int32_t delta = -1;
    std::int32_t* pending = pending_.data() + base;
    for (NodeId c : dag.children(v)) {
      if (--pending[static_cast<std::size_t>(c)] == 0) {
        pos[static_cast<std::size_t>(c)] = static_cast<NodeId>(len);
        ready[static_cast<std::size_t>(len)] = c;
        ++len;
        ++delta;
      }
    }
    return delta;
  }

  std::span<const NodeId> ready(JobId j) const {
    return {ready_.data() + off_[static_cast<std::size_t>(j)],
            static_cast<std::size_t>(ready_len_[static_cast<std::size_t>(j)])};
  }
  bool is_ready(JobId j, NodeId v) const {
    return pos_[static_cast<std::size_t>(off_[static_cast<std::size_t>(j)] +
                                         v)] != kInvalidNode;
  }
  bool is_executed(JobId j, NodeId v) const {
    const std::int64_t nv = off_[static_cast<std::size_t>(j)] + v;
    return (executed_[static_cast<std::size_t>(nv >> 6)] >> (nv & 63)) & 1;
  }

  /// Number of executed subjobs of job j.
  std::int64_t done(JobId j) const {
    return done_[static_cast<std::size_t>(j)];
  }

  // ---- commit frontier (job faults; sim/job_faults.h) ----
  //
  // With commit tracking enabled the arena splits each job's progress
  // into a checkpoint-committed region (survives crashes) and a volatile
  // region (everything executed since the last checkpoint()).  A crashed
  // job rolls back to its committed snapshot; the volatile work is lost
  // and re-enqueued.  Disabled (the default) the extra arrays stay empty
  // and execute() is untouched — the no-lost-work-when-healthy contract
  // that keeps healthy runs bit-identical to the pre-refactor engine.
  //
  // Rollback determinism contract (mirrored by ReferenceSimulate and
  // advsim): rollback_to_checkpoint rebuilds the job's ready region in
  // INCREASING NODE ID over the restored frontier (every uncommitted
  // node whose parents are all committed) — the same canonical order
  // activation uses, independent of the lost execution history.

  /// Turns on commit tracking.  Call before the run executes anything;
  /// safe before or after init()/append() (later appends keep tracking).
  void enable_commit_tracking();
  bool commit_tracking() const { return commit_tracking_; }

  /// Number of checkpoint-committed subjobs of job j (<= done(j)).
  std::int64_t committed_done(JobId j) const {
    return committed_done_[static_cast<std::size_t>(j)];
  }

  /// Commits job j's entire executed set (checkpoint or implicit
  /// finish-commit).  Returns the newly committed count
  /// (done(j) - the previous committed_done(j)).
  std::int64_t checkpoint(JobId j);

  /// Rolls job j back to its last checkpoint: restores the executed
  /// bits from the committed snapshot, recomputes pending counts,
  /// rebuilds the ready region in increasing node id, and rewinds
  /// done(j) to committed_done(j).  Returns the wasted subjob count
  /// (the volatile work lost).  The caller re-reads ready(j).size() to
  /// maintain any aggregate ready-width counter.
  std::int64_t rollback_to_checkpoint(const Dag& dag, JobId j);

  // Raw tables for the devirtualized scheduler fast path
  // (EngineHotState in sim/engine.h).  Stable after init(): the arrays
  // never reallocate during a run.
  const NodeId* ready_storage() const { return ready_.data(); }
  const std::int64_t* node_offsets() const { return off_.data(); }
  const std::int32_t* ready_lengths() const { return ready_len_.data(); }
  const std::int64_t* done_counts() const { return done_.data(); }

 private:
  /// A retired node region awaiting reuse, kept sorted by base and
  /// coalesced with adjacent entries on insert.
  struct FreeRegion {
    std::int64_t base = 0;
    std::int64_t size = 0;
  };

  std::vector<std::int64_t> off_;        // job -> base node index
  std::vector<std::int32_t> nodes_;      // job -> region size (node count)
  std::vector<std::int32_t> pending_;    // pending predecessors per node
  std::vector<NodeId> pos_;              // node -> index in its ready region
  std::vector<std::uint64_t> executed_;  // bitset over all nodes
  std::vector<NodeId> ready_;            // per-job CSR ready regions
  std::vector<std::int32_t> ready_len_;  // per-job ready count
  std::vector<std::int64_t> done_;       // per-job executed count
  std::vector<NodeId> roots_;            // CSR root lists, bulk jobs only
  std::vector<std::int64_t> roots_off_;  // bulk job -> root region (jobs+1)
  std::vector<FreeRegion> free_;         // retired regions, sorted by base
  std::int64_t total_nodes_ = 0;         // node slots backing the arena

  // Commit frontier (empty unless enable_commit_tracking() was called).
  bool commit_tracking_ = false;
  std::vector<std::uint64_t> committed_;      // committed bitset, as executed_
  std::vector<std::int64_t> committed_done_;  // per-job committed count
};

}  // namespace otsched
