// Incremental ready-set bookkeeping shared by every simulation loop.
//
// The paper's model advances in unit slots; the only state a simulator
// must maintain per job is "which subjobs are ready".  Rebuilding that
// set by rescanning the DAG makes a run O(|V| * horizon); maintaining it
// as deltas makes the whole run O(|V| + |E|) bookkeeping total — each
// edge is relaxed exactly once, when its source executes.  This header
// packages that delta maintenance so the online engine (sim/engine.cc),
// the LPF builder and the MC replayer (src/core), and the adversarial
// backends all share one audited implementation.
//
// Determinism contract (relied on by the golden equivalence tests and by
// every seeded experiment): the ready sequence is a pure function of the
// DAG and the execution order —
//   * on activation, roots enter the ready list in increasing node id;
//   * execute(v) removes v by swap-erase (the LAST ready node takes v's
//     position), then appends newly-enabled children in dag.children(v)
//     order;
// i.e. exactly the order the seed engine produced, bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/dag.h"

namespace otsched {

/// Clamps a fault model's requested per-slot capacity into the only legal
/// range, [0, m]: budgets can starve a slot entirely but never exceed the
/// machine (the Lemma 5.5 setting, m_t <= m).  Shared by both engines and
/// the BudgetTrace/BudgetSequencer machinery in sim/faults.h so every
/// consumer clamps identically.
inline int ClampSlotCapacity(int requested, int m) {
  if (requested < 0) return 0;
  if (requested > m) return m;
  return requested;
}

/// Pending-predecessor counters over one DAG: counts[v] = predecessors of
/// v that have not yet completed.  `complete(v)` relaxes v's out-edges
/// and hands every child whose count reaches zero to a sink, in
/// dag.children(v) order.
class PendingCounters {
 public:
  /// Resets to the in-degrees of `dag`; roots() lists the zero-indegree
  /// nodes in increasing id order.
  void init(const Dag& dag);

  std::span<const NodeId> roots() const { return roots_; }

  bool cleared(NodeId v) const {
    return counts_[static_cast<std::size_t>(v)] == 0;
  }

  /// Decrements every child of `v`; calls sink(child) for each child
  /// whose pending count reaches zero, in dag.children(v) order.
  template <typename Sink>
  void complete(const Dag& dag, NodeId v, Sink&& sink) {
    for (NodeId c : dag.children(v)) {
      if (--counts_[static_cast<std::size_t>(c)] == 0) sink(c);
    }
  }

 private:
  std::vector<std::int32_t> counts_;
  std::vector<NodeId> roots_;
};

/// Full per-job ready-set state for the online engine: pending counters
/// plus an O(1)-push/pop ready queue with positional index and executed
/// flags.  All queries the EngineBackend contract needs are O(1).
class JobReadyState {
 public:
  /// Builds counters/flags for `dag`.  The ready list stays empty until
  /// activate() — jobs contribute no ready subjobs before arrival.
  void init(const Dag& dag);

  /// Publishes the roots into the ready list (arrival).  Call once.
  void activate();

  /// Marks `v` executed: swap-erases it from the ready list and enqueues
  /// children whose last pending predecessor was `v`.
  void execute(const Dag& dag, NodeId v);

  std::span<const NodeId> ready() const { return ready_; }

  bool is_ready(NodeId v) const {
    return pos_[static_cast<std::size_t>(v)] != kInvalidNode;
  }
  bool is_executed(NodeId v) const {
    return executed_[static_cast<std::size_t>(v)] != 0;
  }

  /// Number of executed subjobs.
  std::int64_t done() const { return done_; }

 private:
  PendingCounters pending_;
  std::vector<NodeId> ready_;    // ready nodes, deterministic order
  std::vector<NodeId> pos_;      // node -> index in ready_, or kInvalidNode
  std::vector<char> executed_;
  std::int64_t done_ = 0;
};

}  // namespace otsched
