// Explicit schedule representation (Section 3).
//
// A schedule maps each 1-based time slot t to the multiset of subjobs run
// during (t-1, t].  Which physical processor runs which subjob is
// irrelevant in the paper's model, so a slot is just a vector of
// SubjobRefs with |slot| <= m.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "job/instance.h"

namespace otsched {

class Schedule {
 public:
  /// m is the processor count the schedule is for (capacity per slot).
  explicit Schedule(int m);

  int m() const { return m_; }

  /// Places `ref` into `slot` (slot >= 1).  Capacity and feasibility are
  /// checked by ScheduleValidator, not here, so that tests can build
  /// deliberately-broken schedules.
  void place(Time slot, SubjobRef ref);

  /// Last slot with any subjob (0 for the empty schedule).
  Time horizon() const { return static_cast<Time>(slots_.size()); }

  /// Subjobs run at `slot` (empty span for slots beyond the horizon).
  std::span<const SubjobRef> at(Time slot) const;

  /// Number of subjobs at `slot`.
  int load(Time slot) const { return static_cast<int>(at(slot).size()); }

  /// Total subjobs placed.
  std::int64_t total_placed() const { return total_placed_; }

  /// Count of (slot, processor) pairs left idle over [1, horizon].
  std::int64_t idle_processor_slots() const;

  /// Slots in [from, to] with load strictly less than `capacity`
  /// (defaults to m).  Used to check the Lemma 5.2 / Figure 2 tail shape.
  std::vector<Time> idle_slots(Time from, Time to, int capacity = -1) const;

 private:
  int m_;
  std::int64_t total_placed_ = 0;
  std::vector<std::vector<SubjobRef>> slots_;  // index t-1
};

/// Per-job completion times and flows of a schedule, measured against the
/// instance's ORIGINAL release times.
struct FlowSummary {
  std::vector<Time> completion;  // kNoTime if never completed
  std::vector<Time> flow;        // completion - release; kInfiniteTime if unfinished
  Time max_flow = 0;             // the l_inf objective F^S_max
  JobId max_flow_job = kInvalidJob;
  bool all_completed = true;
};

/// Computes completion/flow per job.  A job completes when all of its
/// subjobs have been placed; jobs with missing subjobs are reported as
/// unfinished (max_flow then saturates to kInfiniteTime).
FlowSummary ComputeFlows(const Schedule& schedule, const Instance& instance);

}  // namespace otsched
