// Explicit schedule representation (Section 3).
//
// A schedule maps each 1-based time slot t to the multiset of subjobs run
// during (t-1, t].  Which physical processor runs which subjob is
// irrelevant in the paper's model, so a slot is just a bounded bag of
// SubjobRefs with |slot| <= m.
//
// Storage is a flat CSR arena: one contiguous SubjobRef array plus a
// per-slot offset table, instead of one heap vector per slot.  Engines
// fill slots in nondecreasing order, so the hot path is a plain append;
// out-of-order place() calls (tests, LPF head/tail construction) land in
// a small staging buffer that is merged back into the arena lazily, on
// the first read.  Per-slot call order is preserved either way.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"
#include "job/instance.h"

namespace otsched {

class Schedule {
 public:
  /// m is the processor count the schedule is for (capacity per slot).
  explicit Schedule(int m);

  int m() const { return m_; }

  /// Places `ref` into `slot` (slot >= 1).  Capacity and feasibility are
  /// checked by ScheduleValidator, not here, so that tests can build
  /// deliberately-broken schedules.
  void place(Time slot, SubjobRef ref);

  /// Last slot with any subjob (0 for the empty schedule).
  Time horizon() const { return horizon_; }

  /// Subjobs run at `slot` (empty span for slots beyond the horizon).
  std::span<const SubjobRef> at(Time slot) const;

  /// Number of subjobs at `slot`.
  int load(Time slot) const { return static_cast<int>(at(slot).size()); }

  /// Total subjobs placed.
  std::int64_t total_placed() const { return total_placed_; }

  /// Count of (slot, processor) pairs left idle over [1, horizon].
  std::int64_t idle_processor_slots() const {
    return static_cast<std::int64_t>(m_) * horizon_ - total_placed_;
  }

  /// Slots in [from, to] with load strictly less than `capacity`
  /// (nullopt = m).  Used to check the Lemma 5.2 / Figure 2 tail shape.
  std::vector<Time> idle_slots(Time from, Time to,
                               std::optional<int> capacity = std::nullopt)
      const;

 private:
  /// Merges `staged_` into the CSR arena (no-op when already flat).
  /// Lazily invoked by readers; logically const, hence the mutables.
  void flatten() const;

  int m_;
  std::int64_t total_placed_ = 0;
  Time horizon_ = 0;  // max slot ever placed into

  // CSR arena covering slots [1, offsets_.size() - 1]: slot t holds
  // entries_[offsets_[t - 1], offsets_[t]).  Invariant: offsets_[0] == 0
  // and offsets_ is nondecreasing.
  mutable std::vector<std::int64_t> offsets_;
  mutable std::vector<SubjobRef> entries_;
  // Out-of-order placements awaiting a merge.  Once non-empty, every
  // subsequent place() stages (so per-slot call order stays: arena
  // entries first, then staged entries in insertion order).
  mutable std::vector<std::pair<Time, SubjobRef>> staged_;
};

/// Per-job completion times and flows of a schedule, measured against the
/// instance's ORIGINAL release times.
struct FlowSummary {
  std::vector<Time> completion;  // kNoTime if never completed
  std::vector<Time> flow;        // completion - release; kInfiniteTime if unfinished
  Time max_flow = 0;             // the l_inf objective F^S_max
  JobId max_flow_job = kInvalidJob;
  bool all_completed = true;
};

/// Online flow accounting: feed it every executed subjob as it happens
/// and finish() yields the same FlowSummary that ComputeFlows derives
/// from a materialized schedule (ComputeFlows is implemented on top of
/// it, so the two paths agree by construction).  This is what lets
/// flow-only runs skip the schedule entirely.
/// The accumulator owns per-job (work, release) copies rather than a
/// borrowed Instance, so incremental engines (SimDriver) can add jobs as
/// a stream submits them — finish() needs no Instance at all.
class FlowAccumulator {
 public:
  FlowAccumulator() = default;
  explicit FlowAccumulator(const Instance& instance) { init(instance); }

  /// (Re)binds to an instance; resets all counters.
  void init(const Instance& instance);

  /// Drops every job and all recorded placements.
  void reset();

  /// Registers one more job (dense ids, in call order).  Returns its id.
  JobId add_job(std::int64_t work, Time release);

  JobId job_count() const { return static_cast<JobId>(work_.size()); }

  /// One subjob of `job` ran during `slot`.  Slots need not be fed in
  /// order; completion is the LAST slot a job's subjob ran in.  Inline:
  /// this is once-per-executed-subjob on the engine hot path.
  void record(Time slot, JobId job) {
    const std::size_t i = static_cast<std::size_t>(job);
    ++placed_[i];
    if (slot > last_slot_[i]) last_slot_[i] = slot;
  }

  /// Un-records `count` placements of `job` — a job-fault rollback lost
  /// that much volatile work (sim/job_faults.h).  `last_slot_` needs no
  /// rewind: the lost subjobs re-execute in strictly later slots, so the
  /// max in record() self-corrects before the job can complete.
  void unrecord(JobId job, std::int64_t count) {
    placed_[static_cast<std::size_t>(job)] -= count;
  }

  /// Summarizes what has been recorded so far.  Jobs whose recorded count
  /// is short of their work are unfinished: completion = kNoTime, flow =
  /// kInfiniteTime (saturating max_flow).
  FlowSummary finish() const;

 private:
  std::vector<std::int64_t> work_;    // per-job total work
  std::vector<Time> release_;         // per-job release time
  std::vector<std::int64_t> placed_;
  std::vector<Time> last_slot_;
};

/// Computes completion/flow per job.  A job completes when all of its
/// subjobs have been placed; jobs with missing subjobs are reported as
/// unfinished (max_flow then saturates to kInfiniteTime).
FlowSummary ComputeFlows(const Schedule& schedule, const Instance& instance);

}  // namespace otsched
