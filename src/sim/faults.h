// Processor fault injection: per-slot capacity budgets m_t <= m.
//
// Lemma 5.5 is the paper's one statement about a degraded machine: a
// Most-Children replay under a *fluctuating* per-step budget never wastes
// a processor until the job is done.  This header makes that setting a
// first-class simulation axis.  A FaultSpec selects a deterministic,
// seeded fault model; a BudgetSequencer turns the spec into the per-slot
// capacity stream both engines consume (sim/engine.cc and
// sim/engine_reference.cc query identical streams, so the
// engine-equivalence gate extends verbatim to faulted runs).
//
// Determinism contract: the stochastic models (kRandomBlip, kBurstOutage)
// are counter-based — capacity is a pure function of (seed, slot), never
// of how many slots were visited — so fast-forwarded stretches cannot
// desynchronize two engines, and a replayed repro sees the same outages.
// kAdversarialDip is stateful but only on the alive-count stream, which
// the equivalence gate already proves identical across engines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace otsched {

enum class FaultModel {
  kNone,            // full capacity every slot (the default; zero overhead)
  kRandomBlip,      // iid per-processor failures/repairs each slot
  kBurstOutage,     // correlated downtime windows of burst_len slots
  kAdversarialDip,  // starve exactly when the alive count reaches a new peak
  kTrace,           // explicit per-slot capacities from a BudgetTrace
};

const char* ToString(FaultModel model);

/// Parses a model name ("none", "random-blip", "burst-outage",
/// "adversarial-dip", "trace"); nullopt for unknown names.
std::optional<FaultModel> ParseFaultModel(std::string_view name);

/// An explicit per-slot capacity trace.  Each entry pins the capacity of
/// one slot; unlisted slots — gaps between entries and everything beyond
/// the last entry — run at full capacity m.  A trace shorter than the run
/// therefore means "the machine recovers": the documented semantics the
/// MostChildren edge-budget tests (tests/mc_test.cc) enforce.
class BudgetTrace {
 public:
  /// Parses the CSV trace format: one `slot,capacity` row per line, slots
  /// strictly increasing and >= 1, capacities >= 0; blank lines and
  /// `#`-comments are skipped, and an optional `slot,capacity` header row
  /// is accepted.  On failure returns nullopt and writes a per-line
  /// diagnostic ("budget csv line N: ...") to `error`, mirroring
  /// EventTrace::try_from_text.
  static std::optional<BudgetTrace> try_from_csv(const std::string& text,
                                                 std::string* error);

  /// try_from_csv that aborts with the diagnostic on malformed input.
  static BudgetTrace from_csv(const std::string& text);

  /// Serializes back to the CSV format (with header row).
  std::string to_csv() const;

  /// Pins the capacity of `slot` (>= 1, strictly after any existing
  /// entry; `capacity` >= 0).
  void set(Time slot, int capacity);

  /// Capacity of `slot` on an m-processor machine: the pinned value
  /// clamped into [0, m], or m when the slot is not pinned.
  int capacity_at(Time slot, int m) const;

  /// Total capacity of the slot range [first, last] on an m-processor
  /// machine (0 for an empty range): the exact processor-slot supply the
  /// certified lower bounds in opt/ charge against.  O(log + pins in
  /// range).
  std::int64_t capacity_sum(Time first, Time last, int m) const;

  /// Last pinned slot (0 when empty): beyond this the machine is healthy.
  Time length() const { return entries_.empty() ? 0 : entries_.back().first; }

  bool empty() const { return entries_.empty(); }
  std::size_t entry_count() const { return entries_.size(); }
  std::pair<Time, int> entry(std::size_t i) const { return entries_[i]; }

 private:
  std::vector<std::pair<Time, int>> entries_;  // (slot, capacity), ascending
};

/// Capacity of [first, last] under an optional trace: m per slot when
/// `trace` is null, BudgetTrace::capacity_sum otherwise.  The null form
/// is what lets opt/'s certified bounds treat healthy and faulted
/// machines uniformly.
inline std::int64_t SlotCapacitySum(const BudgetTrace* trace, Time first,
                                    Time last, int m) {
  if (first > last) return 0;
  if (trace == nullptr) {
    return static_cast<std::int64_t>(m) * (last - first + 1);
  }
  return trace->capacity_sum(first, last, m);
}

/// One fault model instantiation, carried by SimOptions.  Cheap to copy;
/// the kTrace trace is borrowed and must outlive the run.
struct FaultSpec {
  FaultModel model = FaultModel::kNone;
  /// Stream seed for the stochastic models.
  std::uint64_t seed = 1;
  /// Model intensity in [0, 0.9]: per-processor failure probability
  /// (kRandomBlip) or per-window outage probability (kBurstOutage).
  double rate = 0.25;
  /// Outage window length in slots (kBurstOutage; >= 1).
  Time burst_len = 16;
  /// Capacity during an outage window or adversarial dip (clamped to
  /// [0, m] at query time).
  int floor = 0;
  /// Borrowed explicit trace (kTrace only).
  const BudgetTrace* trace = nullptr;

  bool active() const { return model != FaultModel::kNone; }
};

/// Renders a spec as the CLI's `model:seed:rate` shorthand (manifests).
std::string ToString(const FaultSpec& spec);

/// Parses the CLI shorthand `model[:seed[:rate]]`, e.g.
/// `random-blip:7:0.3`.  kTrace cannot be spelled this way (the CLI
/// attaches parsed traces itself).  On failure returns nullopt and
/// writes a diagnostic to `error`.
std::optional<FaultSpec> ParseFaultSpec(std::string_view text,
                                        std::string* error);

/// Validates a spec's parameters (rate range, burst length, trace
/// presence); aborts with a message naming the bad field.  Engines call
/// this once per run so a bad spec fails loudly, not silently.
void ValidateFaultSpec(const FaultSpec& spec);

/// The per-run capacity source: one instance per engine run, queried once
/// per visited slot after arrivals are delivered.  `alive_count` feeds
/// kAdversarialDip's peak detector and is ignored by every other model.
class BudgetSequencer {
 public:
  BudgetSequencer(const FaultSpec& spec, int m);

  /// Capacity for `slot`, already clamped into [0, m] (see
  /// ClampSlotCapacity in sim/ready_state.h).
  int capacity(Time slot, std::int64_t alive_count);

  bool active() const { return spec_.active(); }

 private:
  FaultSpec spec_;
  int m_ = 1;
  std::int64_t peak_alive_ = 0;  // kAdversarialDip running maximum
};

/// Materializes the first `horizon` slots of a spec's capacity stream as
/// an explicit BudgetTrace (only non-full slots are pinned) — the
/// `otsched faults emit` backend and a convenient way to freeze a
/// stochastic model into a reproducible artifact.  kAdversarialDip has no
/// trace form (it depends on the run) and aborts here.
BudgetTrace MaterializeBudgetTrace(const FaultSpec& spec, int m,
                                   Time horizon);

}  // namespace otsched
