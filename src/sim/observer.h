// The run API: options, observers, and the RunContext that carries both.
//
// A RunObserver is the streaming counterpart of the post-hoc SimResult:
// the engine calls its hooks while a run executes, in a fixed order per
// visited slot,
//
//   on_run_begin                          (once, before the first slot)
//   on_slot_begin -> on_arrival* -> on_capacity_change?
//                 -> on_pick -> on_execute* -> on_complete*
//   on_finish                             (once, after flows are computed)
//
// with the per-slot ordering guarantees the event trace relies on:
// arrivals fire before the slot's pick, executes fire in placement order,
// completes fire after every execute of the slot in ascending job id —
// exactly the order DeriveTrace reconstructs post-hoc, so a streaming
// trace sink and the derived trace are interchangeable (and cross-checked
// as an oracle by the differential fuzz harness).
//
// Observers are engine-side instrumentation, not policies: hooks receive
// the full EngineBackend and are not subject to the clairvoyance gate.
// A null observer costs one predictable branch per hook site; with no
// observer attached the engine is bit-identical to the uninstrumented
// one (enforced by tests/engine_equivalence_test.cc).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "sim/faults.h"

namespace otsched {

class EngineBackend;
struct SimResult;

/// Overrides a scheduler's clairvoyance declaration for one run.  Tests
/// use kDeny to prove a policy never touches job DAGs (it would abort if
/// it did) and kAllow to grant DAG access to ad-hoc probes.
enum class ClairvoyanceOverride {
  kPolicyDefault,  // honour Scheduler::requires_clairvoyance()
  kDeny,           // run with DAG access disabled regardless
  kAllow,          // run with DAG access enabled regardless
};

/// What a run materializes.  Flows and stats are computed online in BOTH
/// modes (identically — see the engine-equivalence gate); the modes only
/// differ in whether the explicit Schedule is recorded.
enum class RecordMode {
  /// Record the full Schedule (O(total work) memory).  Needed by the
  /// Section 5/6 structure checkers, ScheduleValidator, DeriveTrace, and
  /// the renderers.
  kFull,
  /// Skip the Schedule; SimResult::schedule is empty and memory stays
  /// O(jobs + m).  The right mode for ratio/sweep/adversary runs, whose
  /// consumers only read FlowSummary / SimStats.
  kFlowOnly,
};

struct SimOptions {
  /// Hard cap on the simulated horizon; 0 means "auto" (a generous bound
  /// derived from the instance; exceeding it aborts, catching schedulers
  /// that stop making progress).
  Time max_horizon = 0;

  /// Clairvoyance override for this run (kPolicyDefault = ask the policy).
  ClairvoyanceOverride clairvoyance = ClairvoyanceOverride::kPolicyDefault;

  /// Whether to materialize the explicit schedule (kFull) or track flows
  /// incrementally only (kFlowOnly).
  RecordMode record = RecordMode::kFull;

  /// Processor fault injection: the per-slot capacity model m_t <= m
  /// (sim/faults.h).  The default kNone runs at full capacity and is
  /// bit-identical to a pre-fault engine.
  FaultSpec faults;
};

/// Streaming hooks fired by every engine (Simulate, ReferenceSimulate,
/// and the advsim adaptive engine).  All hooks default to no-ops so sinks
/// override only what they consume.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// Once, after schedulers are reset and before the first slot.
  virtual void on_run_begin(const EngineBackend& engine) { (void)engine; }

  /// Start of a visited slot, before its arrivals are delivered.  Slots
  /// fast-forwarded over (nothing alive, no pending arrival due) are not
  /// visited and fire no hooks.
  virtual void on_slot_begin(Time slot, const EngineBackend& engine) {
    (void)slot;
    (void)engine;
  }

  /// A job became schedulable (slot == release + 1), after the engine
  /// published its roots and notified the scheduler.
  virtual void on_arrival(Time slot, JobId job) {
    (void)slot;
    (void)job;
  }

  /// The slot's effective capacity changed relative to the previously
  /// visited slot (fault injection; sim/faults.h).  Fired after the
  /// slot's arrivals and before its pick, and only when the value
  /// actually changes — fault-free runs never fire it.
  virtual void on_capacity_change(Time slot, int capacity) {
    (void)slot;
    (void)capacity;
  }

  /// The scheduler's (already validated) picks for the slot, before they
  /// execute.  `engine` reflects the state the scheduler saw;
  /// `pick_seconds` is the wall-clock cost of the pick() call.
  virtual void on_pick(Time slot, const EngineBackend& engine,
                       std::span<const SubjobRef> picks,
                       double pick_seconds) {
    (void)slot;
    (void)engine;
    (void)picks;
    (void)pick_seconds;
  }

  /// One subjob executed, in placement order within the slot.
  virtual void on_execute(Time slot, SubjobRef ref) {
    (void)slot;
    (void)ref;
  }

  /// A job ran its last subjob this slot.  Fired after every on_execute
  /// of the slot, in ascending job id.
  virtual void on_complete(Time slot, JobId job) {
    (void)slot;
    (void)job;
  }

  /// Once, with the finished result (flows and stats computed).
  virtual void on_finish(const SimResult& result) { (void)result; }
};

/// Fans every hook out to a list of borrowed observers, in order.  The
/// one multiplexer, so engines only ever carry a single observer pointer.
class ObserverList final : public RunObserver {
 public:
  ObserverList() = default;
  void add(RunObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  bool empty() const { return observers_.empty(); }

  void on_run_begin(const EngineBackend& engine) override {
    for (RunObserver* o : observers_) o->on_run_begin(engine);
  }
  void on_slot_begin(Time slot, const EngineBackend& engine) override {
    for (RunObserver* o : observers_) o->on_slot_begin(slot, engine);
  }
  void on_arrival(Time slot, JobId job) override {
    for (RunObserver* o : observers_) o->on_arrival(slot, job);
  }
  void on_capacity_change(Time slot, int capacity) override {
    for (RunObserver* o : observers_) o->on_capacity_change(slot, capacity);
  }
  void on_pick(Time slot, const EngineBackend& engine,
               std::span<const SubjobRef> picks, double pick_seconds) override {
    for (RunObserver* o : observers_) {
      o->on_pick(slot, engine, picks, pick_seconds);
    }
  }
  void on_execute(Time slot, SubjobRef ref) override {
    for (RunObserver* o : observers_) o->on_execute(slot, ref);
  }
  void on_complete(Time slot, JobId job) override {
    for (RunObserver* o : observers_) o->on_complete(slot, job);
  }
  void on_finish(const SimResult& result) override {
    for (RunObserver* o : observers_) o->on_finish(result);
  }

 private:
  std::vector<RunObserver*> observers_;
};

/// Convenience for flow-only call sites (ratio/sweep/adversary runs that
/// only consume FlowSummary / SimStats).
inline SimOptions FlowOnlyOptions() {
  SimOptions options;
  options.record = RecordMode::kFlowOnly;
  return options;
}

/// Everything a run needs besides (instance, m, scheduler): the options
/// and an optional borrowed observer.  The primary argument of Simulate /
/// ReferenceSimulate / RunAdaptiveAdversary; bare-SimOptions overloads
/// remain as compatibility shims.
struct RunContext {
  SimOptions options;
  RunObserver* observer = nullptr;
};

}  // namespace otsched
