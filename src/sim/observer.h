// The run API: options, observers, and the RunContext that carries both.
//
// A RunObserver is the streaming counterpart of the post-hoc SimResult.
// Engines deliver the run as BATCHES of fixed-size POD SlotEvent records
// (one or two `on_slot_batch` calls per visited slot); the fine-grained
// hooks below are REPLAYED from those batches by the default
// `on_slot_batch` implementation, in the fixed per-slot order
//
//   on_run_begin                          (once, before the first slot)
//   on_slot_begin -> on_arrival* -> on_capacity_change?
//                 -> on_pick -> on_execute* -> on_complete*
//   on_finish                             (once, after flows are computed)
//
// with the per-slot ordering guarantees the event trace relies on:
// arrivals fire before the slot's pick, executes fire in placement order,
// completes fire after every execute of the slot in ascending job id —
// exactly the order DeriveTrace reconstructs post-hoc, so a streaming
// trace sink and the derived trace are interchangeable (and cross-checked
// as an oracle by the differential fuzz harness).
//
// Batch flush points (identical in every engine; see
// docs/OBSERVABILITY.md "Batched delivery"):
//   1. pre-execution — after the slot's pick is validated and appended,
//      before anything executes.  The engine state at this flush is
//      exactly what the scheduler saw, so a replayed `on_pick` observes
//      the same backend the per-pick contract promised.
//   2. end-of-slot — only if completion events are pending.
//   3. buffer-full — whenever appending would exceed the ring capacity
//      (RunContext::batch_capacity).  A pick block (kPickBegin plus its
//      kExecute records) is never split across batches.
// Batches never span slots.  One contract change versus the historical
// per-pick delivery: a replayed `on_slot_begin` observes POST-arrival
// engine state (delivery is deferred to the first flush), where the
// per-pick engine called it pre-arrival.  No shipped observer reads
// engine state in `on_slot_begin`.
//
// Observers are engine-side instrumentation, not policies: hooks receive
// the full EngineBackend and are not subject to the clairvoyance gate.
// A null observer costs one predictable branch per hook site; with no
// observer attached the engine is bit-identical to the uninstrumented
// one (enforced by tests/engine_equivalence_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "sim/faults.h"
#include "sim/job_faults.h"

namespace otsched {

class EngineBackend;
struct SimResult;

/// Overrides a scheduler's clairvoyance declaration for one run.  Tests
/// use kDeny to prove a policy never touches job DAGs (it would abort if
/// it did) and kAllow to grant DAG access to ad-hoc probes.
enum class ClairvoyanceOverride {
  kPolicyDefault,  // honour Scheduler::requires_clairvoyance()
  kDeny,           // run with DAG access disabled regardless
  kAllow,          // run with DAG access enabled regardless
};

/// What a run materializes.  Flows and stats are computed online in BOTH
/// modes (identically — see the engine-equivalence gate); the modes only
/// differ in whether the explicit Schedule is recorded.
enum class RecordMode {
  /// Record the full Schedule (O(total work) memory).  Needed by the
  /// Section 5/6 structure checkers, ScheduleValidator, DeriveTrace, and
  /// the renderers.
  kFull,
  /// Skip the Schedule; SimResult::schedule is empty and memory stays
  /// O(jobs + m).  The right mode for ratio/sweep/adversary runs, whose
  /// consumers only read FlowSummary / SimStats.
  kFlowOnly,
};

struct SimOptions {
  /// Hard cap on the simulated horizon; 0 means "auto" (a generous bound
  /// derived from the instance; exceeding it aborts, catching schedulers
  /// that stop making progress).
  Time max_horizon = 0;

  /// Clairvoyance override for this run (kPolicyDefault = ask the policy).
  ClairvoyanceOverride clairvoyance = ClairvoyanceOverride::kPolicyDefault;

  /// Whether to materialize the explicit schedule (kFull) or track flows
  /// incrementally only (kFlowOnly).
  RecordMode record = RecordMode::kFull;

  /// Processor fault injection: the per-slot capacity model m_t <= m
  /// (sim/faults.h).  The default kNone runs at full capacity and is
  /// bit-identical to a pre-fault engine.
  FaultSpec faults;

  /// Job fault injection: crash/rollback-to-checkpoint models
  /// (sim/job_faults.h).  The default kNone never crashes a job and
  /// leaves the engines bit-identical to the monotone-progress ones (the
  /// kNoLostWorkWhenHealthy contract).  An active spec requires
  /// RecordMode::kFlowOnly — re-execution is unrepresentable in the
  /// materialized Schedule — and a scheduler that
  /// supports_fluctuating_capacity() (window planners would replay stale
  /// picks over rolled-back state).
  JobFaultSpec job_faults;
};

/// One fixed-size POD record of the batched event stream.  Field use by
/// kind (unused fields hold their defaults):
///
///   kSlotBegin       slot
///   kArrival         slot, job
///   kCapacityChange  slot, value = new capacity
///   kPickBegin       slot, value = pick count, job = alive-job count,
///                    width = total ready width, seconds = pick() wall time
///   kExecute         slot, job, node   (the `value` kExecute records
///                    after a kPickBegin ARE the slot's pick list, in
///                    placement order)
///   kComplete        slot, job
///   kRollback        slot, job, value = wasted subjob count,
///                    width = engine-wide committed frontier after
///   kCheckpoint      slot, job, value = newly committed subjob count,
///                    width = engine-wide committed frontier after
///
/// Job-fault records (sim/job_faults.h) sit at fixed points of the slot:
/// kRollback fires in the pre-pick region (after kCapacityChange, before
/// kPickBegin); kCheckpoint fires after the slot's executes — at the
/// point of finish for the implicit finish-commit, before kComplete for
/// interval-policy commits.  Healthy runs emit neither kind.
struct SlotEvent {
  enum class Kind : std::int32_t {
    kSlotBegin,
    kArrival,
    kCapacityChange,
    kPickBegin,
    kExecute,
    kComplete,
    kRollback,
    kCheckpoint,
  };

  Kind kind = Kind::kSlotBegin;
  JobId job = kInvalidJob;
  NodeId node = kInvalidNode;
  std::int32_t value = 0;
  Time slot = 0;
  std::int64_t width = 0;
  double seconds = 0.0;
};

/// Default size of the per-run event ring (RunContext::batch_capacity).
inline constexpr std::size_t kDefaultSlotBatchCapacity = 256;

/// Streaming hooks fired by every engine (Simulate, ReferenceSimulate,
/// and the advsim adaptive engine).  All hooks default to no-ops so sinks
/// override only what they consume.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// Once, after schedulers are reset and before the first slot.
  virtual void on_run_begin(const EngineBackend& engine) { (void)engine; }

  /// Start of a visited slot, before its arrivals are delivered.  Slots
  /// fast-forwarded over (nothing alive, no pending arrival due) are not
  /// visited and fire no hooks.
  virtual void on_slot_begin(Time slot, const EngineBackend& engine) {
    (void)slot;
    (void)engine;
  }

  /// A job became schedulable (slot == release + 1), after the engine
  /// published its roots and notified the scheduler.
  virtual void on_arrival(Time slot, JobId job) {
    (void)slot;
    (void)job;
  }

  /// The slot's effective capacity changed relative to the previously
  /// visited slot (fault injection; sim/faults.h).  Fired after the
  /// slot's arrivals and before its pick, and only when the value
  /// actually changes — fault-free runs never fire it.
  virtual void on_capacity_change(Time slot, int capacity) {
    (void)slot;
    (void)capacity;
  }

  /// The scheduler's (already validated) picks for the slot, before they
  /// execute.  `engine` reflects the state the scheduler saw;
  /// `pick_seconds` is the wall-clock cost of the pick() call.
  virtual void on_pick(Time slot, const EngineBackend& engine,
                       std::span<const SubjobRef> picks,
                       double pick_seconds) {
    (void)slot;
    (void)engine;
    (void)picks;
    (void)pick_seconds;
  }

  /// One subjob executed, in placement order within the slot.
  virtual void on_execute(Time slot, SubjobRef ref) {
    (void)slot;
    (void)ref;
  }

  /// A job ran its last subjob this slot.  Fired after every on_execute
  /// of the slot, in ascending job id.
  virtual void on_complete(Time slot, JobId job) {
    (void)slot;
    (void)job;
  }

  /// `job` crashed and rolled back to its last checkpoint, losing
  /// `wasted` volatile subjobs (job faults; sim/job_faults.h).  Fired in
  /// the pre-pick region, after any capacity change.  `frontier` is the
  /// engine-wide committed subjob count (unchanged by rollbacks).
  virtual void on_rollback(Time slot, JobId job, std::int64_t wasted,
                           std::int64_t frontier) {
    (void)slot;
    (void)job;
    (void)wasted;
    (void)frontier;
  }

  /// `job` committed `committed` volatile subjobs — an interval-policy
  /// checkpoint or the implicit commit when a job finishes.  `frontier`
  /// is the engine-wide committed subjob count after the commit.
  virtual void on_checkpoint(Time slot, JobId job, std::int64_t committed,
                             std::int64_t frontier) {
    (void)slot;
    (void)job;
    (void)committed;
    (void)frontier;
  }

  /// Once, with the finished result (flows and stats computed).
  virtual void on_finish(const SimResult& result) { (void)result; }

  /// Whether this sink consumes `pick_seconds`.  Engines query it once
  /// per run and skip the two clock reads per slot when no attached
  /// observer wants the timing (the kPickBegin record then carries 0).
  /// Defaults to true — opting out is a sink-side optimization.
  virtual bool wants_pick_timing() const { return true; }

  /// A batch of SlotEvent records, delivered in stream order at the
  /// flush points documented in the header comment.  `engine` reflects
  /// the state at the flush (pre-execution for the batch carrying the
  /// slot's pick block).  The default implementation replays the batch
  /// through the fine-grained hooks above, so existing observers work
  /// unchanged; hot sinks override this and consume the records
  /// directly (two virtual calls per slot instead of O(events)).
  virtual void on_slot_batch(const EngineBackend& engine,
                             std::span<const SlotEvent> events);
};

/// Fans every hook out to a list of borrowed observers, in order.  The
/// one multiplexer, so engines only ever carry a single observer pointer.
class ObserverList final : public RunObserver {
 public:
  ObserverList() = default;
  void add(RunObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  bool empty() const { return observers_.empty(); }

  void on_run_begin(const EngineBackend& engine) override {
    for (RunObserver* o : observers_) o->on_run_begin(engine);
  }
  void on_slot_begin(Time slot, const EngineBackend& engine) override {
    for (RunObserver* o : observers_) o->on_slot_begin(slot, engine);
  }
  void on_arrival(Time slot, JobId job) override {
    for (RunObserver* o : observers_) o->on_arrival(slot, job);
  }
  void on_capacity_change(Time slot, int capacity) override {
    for (RunObserver* o : observers_) o->on_capacity_change(slot, capacity);
  }
  void on_pick(Time slot, const EngineBackend& engine,
               std::span<const SubjobRef> picks, double pick_seconds) override {
    for (RunObserver* o : observers_) {
      o->on_pick(slot, engine, picks, pick_seconds);
    }
  }
  void on_execute(Time slot, SubjobRef ref) override {
    for (RunObserver* o : observers_) o->on_execute(slot, ref);
  }
  void on_complete(Time slot, JobId job) override {
    for (RunObserver* o : observers_) o->on_complete(slot, job);
  }
  void on_rollback(Time slot, JobId job, std::int64_t wasted,
                   std::int64_t frontier) override {
    for (RunObserver* o : observers_) {
      o->on_rollback(slot, job, wasted, frontier);
    }
  }
  void on_checkpoint(Time slot, JobId job, std::int64_t committed,
                     std::int64_t frontier) override {
    for (RunObserver* o : observers_) {
      o->on_checkpoint(slot, job, committed, frontier);
    }
  }
  void on_finish(const SimResult& result) override {
    for (RunObserver* o : observers_) o->on_finish(result);
  }
  bool wants_pick_timing() const override {
    for (RunObserver* o : observers_) {
      if (o->wants_pick_timing()) return true;
    }
    return false;
  }
  /// Forwards the batch itself (NOT a replay): each member applies its
  /// own on_slot_batch, so hot sinks in the list keep their fast path.
  void on_slot_batch(const EngineBackend& engine,
                     std::span<const SlotEvent> events) override {
    for (RunObserver* o : observers_) o->on_slot_batch(engine, events);
  }

 private:
  std::vector<RunObserver*> observers_;
};

/// Engine-side writer of the batched event stream.  All three engines
/// append through this helper, so the flush discipline (and therefore
/// the batch boundaries every observer sees) is identical everywhere.
/// Inactive when no observer is attached: every append is behind one
/// predictable `active()` branch at the call site.
class SlotEventEmitter {
 public:
  /// Arms the emitter for one run.  `engine` is the backend passed to
  /// flushes (stable for the run); null `observer` leaves it inactive.
  void reset(const EngineBackend* engine, RunObserver* observer,
             std::size_t capacity) {
    engine_ = engine;
    observer_ = observer;
    capacity_ = capacity == 0 ? 1 : capacity;
    buffer_.clear();
    buffer_.reserve(capacity_);
  }

  bool active() const { return observer_ != nullptr; }

  void slot_begin(Time slot) {
    make_room(1);
    buffer_.push_back({SlotEvent::Kind::kSlotBegin, kInvalidJob,
                       kInvalidNode, 0, slot, 0, 0.0});
  }
  void arrival(Time slot, JobId job) {
    make_room(1);
    buffer_.push_back({SlotEvent::Kind::kArrival, job, kInvalidNode, 0,
                       slot, 0, 0.0});
  }
  void capacity_change(Time slot, int capacity) {
    make_room(1);
    buffer_.push_back({SlotEvent::Kind::kCapacityChange, kInvalidJob,
                       kInvalidNode, capacity, slot, 0, 0.0});
  }
  /// Appends the slot's pick block (kPickBegin + one kExecute per pick,
  /// kept contiguous) and flushes unconditionally: the pre-execution
  /// flush point.  `alive`/`ready_width` are the post-arrival values the
  /// scheduler saw.
  void pick_block(Time slot, std::span<const SubjobRef> picks,
                  std::int64_t alive, std::int64_t ready_width,
                  double pick_seconds) {
    make_room(1 + picks.size());
    buffer_.push_back({SlotEvent::Kind::kPickBegin,
                       static_cast<JobId>(alive), kInvalidNode,
                       static_cast<std::int32_t>(picks.size()), slot,
                       ready_width, pick_seconds});
    for (const SubjobRef& ref : picks) {
      buffer_.push_back({SlotEvent::Kind::kExecute, ref.job, ref.node, 0,
                         slot, 0, 0.0});
    }
    flush();
  }
  void complete(Time slot, JobId job) {
    make_room(1);
    buffer_.push_back({SlotEvent::Kind::kComplete, job, kInvalidNode, 0,
                       slot, 0, 0.0});
  }
  void rollback(Time slot, JobId job, std::int64_t wasted,
                std::int64_t frontier) {
    make_room(1);
    buffer_.push_back({SlotEvent::Kind::kRollback, job, kInvalidNode,
                       static_cast<std::int32_t>(wasted), slot, frontier,
                       0.0});
  }
  void checkpoint(Time slot, JobId job, std::int64_t committed,
                  std::int64_t frontier) {
    make_room(1);
    buffer_.push_back({SlotEvent::Kind::kCheckpoint, job, kInvalidNode,
                       static_cast<std::int32_t>(committed), slot, frontier,
                       0.0});
  }
  /// End-of-slot flush point: delivers pending completion events (the
  /// only records that can follow the pre-execution flush), so batches
  /// never span slots.
  void slot_end() {
    if (!buffer_.empty()) flush();
  }

 private:
  /// Buffer-full flush point.  The capacity is a soft threshold: a block
  /// larger than the whole ring still lands contiguously (the vector
  /// grows for that one batch).
  void make_room(std::size_t incoming) {
    if (!buffer_.empty() && buffer_.size() + incoming > capacity_) flush();
  }
  void flush() {
    observer_->on_slot_batch(*engine_,
                             std::span<const SlotEvent>(buffer_));
    buffer_.clear();
  }

  const EngineBackend* engine_ = nullptr;
  RunObserver* observer_ = nullptr;  // borrowed; null = inactive
  std::size_t capacity_ = kDefaultSlotBatchCapacity;
  std::vector<SlotEvent> buffer_;
};

/// Convenience for flow-only call sites (ratio/sweep/adversary runs that
/// only consume FlowSummary / SimStats).
inline SimOptions FlowOnlyOptions() {
  SimOptions options;
  options.record = RecordMode::kFlowOnly;
  return options;
}

/// Everything a run needs besides (instance, m, scheduler): the options,
/// an optional borrowed observer, and the event-ring capacity.  The SOLE
/// argument of Simulate / ReferenceSimulate / RunAdaptiveAdversary; bare
/// SimOptions convert implicitly, so `Simulate(inst, m, s, options)` and
/// `Simulate(inst, m, s)` still read naturally.
struct RunContext {
  RunContext() = default;
  RunContext(const SimOptions& options, RunObserver* observer = nullptr,
             std::size_t batch_capacity = kDefaultSlotBatchCapacity)
      : options(options),
        observer(observer),
        batch_capacity(batch_capacity) {}

  SimOptions options;
  RunObserver* observer = nullptr;
  /// Soft size of the per-run SlotEvent ring: a flush happens before any
  /// append that would exceed it (pick blocks stay contiguous even when
  /// larger).  Smaller rings mean more frequent `on_slot_batch` calls;
  /// the flush-boundary tests run with capacities down to 1.
  std::size_t batch_capacity = kDefaultSlotBatchCapacity;
};

}  // namespace otsched
