// The discrete-time online scheduling engine.
//
// The engine owns ground truth — which subjobs have executed, which are
// ready, which jobs are alive — and drives an online Scheduler slot by
// slot.  The scheduler sees the world only through a SchedulerView:
//
//  * non-clairvoyant schedulers (FIFO, Section 6) may look at ready subjob
//    ids, job release times, and progress counters;
//  * clairvoyant schedulers (LPF, Algorithm A, Section 5) may additionally
//    inspect the full DAG of any ARRIVED job.  The view enforces this: a
//    scheduler that did not declare clairvoyance aborts if it touches a
//    DAG, so experimental claims about non-clairvoyance are checked by
//    construction, not by convention.
//
// The engine re-validates every pick (readiness, capacity, no duplicates),
// so a buggy policy cannot fabricate an infeasible schedule; the resulting
// Schedule can additionally be re-checked by ScheduleValidator.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "job/instance.h"
#include "sim/observer.h"
#include "sim/schedule.h"

namespace otsched {

/// Backend interface behind SchedulerView.  The standard Engine (below,
/// fixed instances) and the adaptive adversary engine (src/advsim, lazily
/// materialized instances) both implement it, so every Scheduler runs
/// unchanged against either world.
class EngineBackend {
 public:
  virtual ~EngineBackend() = default;
  virtual Time slot() const = 0;
  virtual int m() const = 0;
  /// Effective processor budget of the current slot, m_t <= m (fault
  /// injection; sim/faults.h).  Equals m() on fault-free runs.
  virtual int capacity() const { return m(); }
  virtual JobId job_count() const = 0;
  virtual std::span<const JobId> alive() const = 0;
  virtual Time release(JobId id) const = 0;
  virtual bool arrived(JobId id) const = 0;
  virtual bool finished(JobId id) const = 0;
  virtual std::span<const NodeId> ready(JobId id) const = 0;
  virtual std::int64_t remaining_work(JobId id) const = 0;
  virtual std::int64_t done_work(JobId id) const = 0;
  virtual bool executed(JobId id, NodeId v) const = 0;
  virtual const Dag& dag(JobId id) const = 0;
  virtual const DagMetrics& metrics(JobId id) const = 0;
  virtual bool clairvoyant_allowed() const = 0;
};

/// Flat tables behind SchedulerView's zero-dispatch fast path.  A backend
/// that keeps its hot state in stable arrays (the incremental Engine; see
/// ReadyArena in sim/ready_state.h) publishes them here so the accessors
/// schedulers hammer in their inner loops — ready(), alive(),
/// remaining_work() — compile to inline array reads instead of virtual
/// calls.  Backends without flat state (reference, adaptive) pass null
/// and SchedulerView falls back to the virtual EngineBackend, so every
/// policy runs unchanged against either world.  The publishing engine
/// must refresh slot/capacity/alive each slot; the per-job pointers are
/// stable for the whole run.
struct EngineHotState {
  Time slot = 0;
  int m = 0;
  int capacity = 0;
  const JobId* alive = nullptr;           // arrived & unfinished, FIFO order
  std::size_t alive_count = 0;
  const NodeId* ready_base = nullptr;     // ReadyArena storage
  const std::int64_t* node_off = nullptr; // job -> region base
  const std::int32_t* ready_len = nullptr;
  const std::int64_t* done = nullptr;     // per-job executed count
  const std::int64_t* work = nullptr;     // per-job total work
  const Time* release = nullptr;          // per-job release time
};

/// Read-only window onto the engine state exposed to schedulers.
class SchedulerView {
 public:
  explicit SchedulerView(const EngineBackend& backend,
                         const EngineHotState* hot = nullptr)
      : backend_(backend), hot_(hot) {}

  /// The slot currently being filled (1-based).
  Time slot() const {
    return hot_ != nullptr ? hot_->slot : backend_.slot();
  }

  int m() const { return hot_ != nullptr ? hot_->m : backend_.m(); }

  /// Processors actually available in the current slot (m_t <= m; equals
  /// m() unless fault injection is active).  Policies must bound their
  /// picks by this, not by m() — the engine validates against it.
  int capacity() const {
    return hot_ != nullptr ? hot_->capacity : backend_.capacity();
  }

  JobId job_count() const;

  /// Jobs that have arrived (release < slot) and are unfinished, sorted by
  /// (release, id): exactly the FIFO priority order.
  std::span<const JobId> alive() const {
    if (hot_ != nullptr) return {hot_->alive, hot_->alive_count};
    return backend_.alive();
  }

  Time release(JobId id) const {
    if (hot_ != nullptr) return hot_->release[static_cast<std::size_t>(id)];
    return backend_.release(id);
  }
  bool arrived(JobId id) const;
  bool finished(JobId id) const {
    if (hot_ != nullptr) {
      return hot_->done[static_cast<std::size_t>(id)] ==
             hot_->work[static_cast<std::size_t>(id)];
    }
    return backend_.finished(id);
  }

  /// Ready subjobs of `id`: released, all predecessors completed in a
  /// strictly earlier slot, not yet executed.
  std::span<const NodeId> ready(JobId id) const {
    if (hot_ != nullptr) {
      const std::size_t i = static_cast<std::size_t>(id);
      return {hot_->ready_base + hot_->node_off[i],
              static_cast<std::size_t>(hot_->ready_len[i])};
    }
    return backend_.ready(id);
  }

  /// Number of subjobs of `id` not yet executed.
  std::int64_t remaining_work(JobId id) const {
    if (hot_ != nullptr) {
      const std::size_t i = static_cast<std::size_t>(id);
      return hot_->work[i] - hot_->done[i];
    }
    return backend_.remaining_work(id);
  }
  /// Number of subjobs of `id` already executed.
  std::int64_t done_work(JobId id) const {
    if (hot_ != nullptr) return hot_->done[static_cast<std::size_t>(id)];
    return backend_.done_work(id);
  }

  /// Whether a specific subjob has been executed (non-clairvoyant
  /// schedulers may only meaningfully ask this about discovered nodes, but
  /// the engine does not police per-node discovery).
  bool executed(JobId id, NodeId v) const;

  /// Full DAG access — clairvoyant schedulers only (aborts otherwise).
  const Dag& dag(JobId id) const;
  /// Cached metrics (heights/depths) — clairvoyant schedulers only.
  const DagMetrics& metrics(JobId id) const;

  bool clairvoyant_allowed() const;

 private:
  const EngineBackend& backend_;
  const EngineHotState* hot_ = nullptr;  // null = virtual fallback
};

/// Base class for all online scheduling policies.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Declares whether the policy needs to see job DAGs on arrival.
  virtual bool requires_clairvoyance() const { return false; }

  /// Declares whether the policy tolerates a per-slot capacity that
  /// fluctuates below m (fault injection; sim/faults.h).  Work-conserving
  /// policies that re-read view.capacity() every slot return true (the
  /// default); window-planning policies that precompute per-slot
  /// assignments for a fixed m (Algorithm A) return false, and the engine
  /// refuses to run them under an active fault model.
  virtual bool supports_fluctuating_capacity() const { return true; }

  /// Declares whether the policy tolerates job-side rollbacks
  /// (sim/job_faults.h), which un-execute subjobs and shrink ready sets
  /// between slots.  Policies that re-read view.ready() every pick return
  /// true (the default); policies that carry discovered subjobs across
  /// slots in their own queues (work stealing) would dispatch stale refs
  /// after a rollback and return false, and the engine refuses to run
  /// them under an active job-fault model.
  virtual bool supports_job_rollback() const { return true; }

  /// Declares whether the policy's decisions are a pure function of the
  /// current SchedulerView — no state carried across slots (RNG draws,
  /// restart phases, learned guesses).  Such a policy can be "warm
  /// started": resuming at a later slot with only the jobs live from
  /// then on reproduces the decisions a full-history run would make.
  /// The serve journal (serve/journal.h) only writes snapshot records —
  /// and so only allows `--journal-rotate` truncation — for policies
  /// that return true; everything else replays its full journal.
  /// Default false: statefulness is the safe assumption.
  virtual bool supports_warm_start() const { return false; }

  /// Called once before the run; `m` is fixed for the whole run.
  virtual void reset(int m, JobId job_count) {
    (void)m;
    (void)job_count;
  }

  /// Called when a job arrives, before pick() for the arrival slot.
  /// Arrival happens at slot release+1 (the first slot the job can run).
  virtual void on_arrival(JobId id, const SchedulerView& view) {
    (void)id;
    (void)view;
  }

  /// Chooses at most view.capacity() ready subjobs to run in view.slot()
  /// (== view.m() on fault-free runs).  The engine validates every
  /// choice.
  virtual void pick(const SchedulerView& view,
                    std::vector<SubjobRef>& out) = 0;
};

// SimOptions / ClairvoyanceOverride / RunObserver / RunContext live in
// sim/observer.h (included above): the run API is one header.

struct SimStats {
  Time horizon = 0;
  std::int64_t executed_subjobs = 0;
  std::int64_t idle_processor_slots = 0;  // over [first arrival+1, horizon]
  std::int64_t busy_slots = 0;            // slots with at least one subjob
  // Fault injection (zero on fault-free runs):
  std::int64_t faulted_slots = 0;      // visited slots with capacity < m
  std::int64_t capacity_shortfall = 0;  // sum of (m - capacity) over them
  // Job faults (sim/job_faults.h; zero when job faults are off — part of
  // the kNoLostWorkWhenHealthy bit-identity contract):
  std::int64_t job_rollbacks = 0;        // crash events that lost work
  std::int64_t wasted_subjob_slots = 0;  // volatile subjobs rolled back
  std::int64_t checkpoints = 0;          // interval-policy commits (the
                                         // implicit finish-commit is free
                                         // and not counted)
};

struct SimResult {
  /// Present iff the run was recorded with RecordMode::kFull; flow-only
  /// runs leave it empty and carry only the aggregates below.
  std::optional<Schedule> schedule;
  FlowSummary flows;
  SimStats stats;

  bool has_schedule() const { return schedule.has_value(); }

  /// The materialized schedule; aborts on a flow-only result.  Call sites
  /// using this structurally need the explicit schedule (Section 5/6
  /// checkers, validators, traces, renderers).
  const Schedule& full_schedule() const;
};

/// Runs `scheduler` on `instance` with m processors to completion,
/// firing `context.observer`'s hooks (if any) as the run progresses.
/// The ONLY entry point: bare SimOptions (and nothing at all) convert
/// into a RunContext, so observer-less call sites need no overload.
SimResult Simulate(const Instance& instance, int m, Scheduler& scheduler,
                   const RunContext& context = {});

/// The pre-incremental seed engine, preserved as the golden baseline
/// (sim/engine_reference.cc) and instrumented with the same observer
/// hooks.  Only for the engine-equivalence gate and before/after
/// benchmarks; production callers use Simulate().
SimResult ReferenceSimulate(const Instance& instance, int m,
                            Scheduler& scheduler,
                            const RunContext& context = {});

}  // namespace otsched
