// Standard RunObserver sinks: the metrics feed, the streaming trace, and
// the run manifest.
//
// MetricsObserver turns the hook stream into a MetricsRegistry — per-slot
// utilization/idle/ready-width/alive series, hook counters, flow-time
// histograms, per-pick wall time — the quantities the paper reasons about
// (idle slots in the Lemma 5.2 head/tail shape, backlog growth in the
// Theorem 4.2 adversary; see docs/OBSERVABILITY.md for the full map).
// StreamingTraceObserver emits, online, the exact EventTrace that
// DeriveTrace reconstructs post-hoc; the fuzz harness cross-checks the
// two as an oracle.
#pragma once

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "job/instance.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace otsched {

/// Provenance of one run: enough to reproduce it bit-for-bit.
struct RunManifest {
  std::string instance_name;
  std::string instance_hash;  // FNV-1a 64 over the serialized instance
  std::int64_t jobs = 0;
  std::int64_t total_work = 0;
  std::string policy;
  int m = 0;
  std::uint64_t seed = 0;
  Time max_horizon = 0;              // 0 = auto
  std::string clairvoyance;          // "policy-default" | "deny" | "allow"
  std::string record;                // "full" | "flow-only"
  std::string faults;                // fault spec shorthand ("none", ...)
  // Job-fault axis (sim/job_faults.h).  Emitted only when job_faults !=
  // "none", keeping pre-job-fault manifests byte-identical (the same
  // convention as the certified extras below).
  std::string job_faults = "none";   // job-fault spec shorthand
  std::string checkpoint_policy = "on-completion";

  // ---- optional certified lower-bound extras (`--certify`) ----
  // certified_bound == 0 means "no certificate attached" and none of the
  // three keys are emitted, keeping pre-certificate manifests
  // byte-identical.
  Time certified_bound = 0;          // verified OPT lower bound
  std::string certificate_method;    // "max-flow" | "dual-fit" | "trivial"
  std::string ratio_vs_certificate;  // "%.4f"-formatted; "" = no run ratio

  /// Standalone manifest document (the CI artifact format).
  std::string to_json() const;
};

/// FNV-1a 64 fingerprint of the instance's canonical text serialization.
std::uint64_t FingerprintInstance(const Instance& instance);

/// Assembles the manifest for a (instance, m, policy, seed, options) run.
RunManifest MakeRunManifest(const Instance& instance, int m,
                            const std::string& policy, std::uint64_t seed,
                            const SimOptions& options);

/// Copies the manifest into a registry's manifest section, so metrics
/// JSON is self-describing.
void WriteManifest(MetricsRegistry& registry, const RunManifest& manifest);

/// Feeds a borrowed MetricsRegistry from the hook stream.  Metric names
/// and semantics are documented in docs/OBSERVABILITY.md; everything
/// except the pick wall-time histogram is deterministic for a fixed
/// (instance, policy, seed, m).
///
/// Consumes batches natively (a custom on_slot_batch): metric handles
/// are resolved ONCE in on_run_begin and the per-slot alive/ready-width
/// figures are read off the kPickBegin record, so a batch costs a few
/// pointer bumps per event instead of a name lookup per hook.  The
/// fine-grained hooks remain implemented (and produce an identical
/// registry) for sinks that replay batches through them.
class MetricsObserver final : public RunObserver {
 public:
  struct Options {
    /// Record the pick() wall-time histogram (the one nondeterministic
    /// metric; disable for golden tests and determinism checks).
    bool record_pick_times = true;
    /// Record the per-slot series (busy/idle/ready-width/alive).
    bool record_series = true;
  };

  explicit MetricsObserver(MetricsRegistry& registry)
      : MetricsObserver(registry, Options()) {}
  MetricsObserver(MetricsRegistry& registry, Options options);

  void on_run_begin(const EngineBackend& engine) override;
  void on_slot_begin(Time slot, const EngineBackend& engine) override;
  void on_arrival(Time slot, JobId job) override;
  void on_capacity_change(Time slot, int capacity) override;
  void on_pick(Time slot, const EngineBackend& engine,
               std::span<const SubjobRef> picks, double pick_seconds) override;
  void on_execute(Time slot, SubjobRef ref) override;
  void on_complete(Time slot, JobId job) override;
  void on_rollback(Time slot, JobId job, std::int64_t wasted,
                   std::int64_t frontier) override;
  void on_checkpoint(Time slot, JobId job, std::int64_t committed,
                     std::int64_t frontier) override;
  void on_finish(const SimResult& result) override;
  void on_slot_batch(const EngineBackend& engine,
                     std::span<const SlotEvent> events) override;
  bool wants_pick_timing() const override {
    return options_.record_pick_times;
  }

 private:
  /// One pick's worth of metric updates, shared by the batch path and
  /// the fine-grained on_pick (which recomputes alive/ready_width from
  /// the engine the way the pre-batch observer did).
  void record_pick(Time slot, std::int64_t picked, std::int64_t alive,
                   std::int64_t ready_width, double pick_seconds);

  MetricsRegistry& registry_;
  Options options_;
  int m_ = 1;

  // Handles resolved once per run (on_run_begin); the registry owns the
  // metrics and never invalidates references.
  Counter* arrivals_ = nullptr;
  Counter* completions_ = nullptr;
  Counter* executes_ = nullptr;
  Counter* picks_ = nullptr;
  Counter* slots_visited_ = nullptr;
  Counter* capacity_changes_ = nullptr;
  Counter* rollbacks_ = nullptr;
  Counter* checkpoints_ = nullptr;   // commit EVENTS (incl. finish-commits)
  Counter* wasted_ = nullptr;
  Gauge* alive_width_ = nullptr;
  Gauge* ready_width_ = nullptr;
  Histogram* pick_seconds_ = nullptr;
  Series* slot_busy_ = nullptr;
  Series* slot_idle_ = nullptr;
  Series* slot_ready_width_ = nullptr;
  Series* slot_alive_ = nullptr;
  Series* slot_capacity_ = nullptr;
  Series* committed_frontier_ = nullptr;
  // Per-slot coalescing for work.committed_frontier: several jobs can
  // commit in one slot but Series::record requires strictly increasing
  // slots, so the last frontier value of a slot is held back until the
  // slot advances (flushed in on_finish).
  Time pending_frontier_slot_ = 0;
  std::int64_t pending_frontier_ = 0;
  bool pending_frontier_valid_ = false;
};

/// Appends arrive/exec/done events to a borrowed EventTrace as the run
/// executes.  The result is byte-identical to
/// DeriveTrace(result.full_schedule(), instance) for every engine, and
/// it keeps working under RecordMode::kFlowOnly (the hooks still fire
/// even when no schedule is materialized).
class StreamingTraceObserver final : public RunObserver {
 public:
  explicit StreamingTraceObserver(EventTrace& out) : out_(out) {}

  void on_arrival(Time slot, JobId job) override {
    out_.add(TraceEvent{slot, TraceEventKind::kArrival, job, kInvalidNode});
  }
  void on_execute(Time slot, SubjobRef ref) override {
    out_.add(TraceEvent{slot, TraceEventKind::kExecute, ref.job, ref.node});
  }
  void on_complete(Time slot, JobId job) override {
    out_.add(TraceEvent{slot, TraceEventKind::kComplete, job, kInvalidNode});
  }
  /// Native batch path: one pass over the records, no pick-span replay.
  /// Arrivals/executes/completes appear in the stream in exactly the
  /// order the fine-grained hooks fired historically, so the trace stays
  /// byte-identical to DeriveTrace.
  void on_slot_batch(const EngineBackend& engine,
                     std::span<const SlotEvent> events) override {
    (void)engine;
    for (const SlotEvent& event : events) {
      switch (event.kind) {
        case SlotEvent::Kind::kArrival:
          on_arrival(event.slot, event.job);
          break;
        case SlotEvent::Kind::kExecute:
          on_execute(event.slot, SubjobRef{event.job, event.node});
          break;
        case SlotEvent::Kind::kComplete:
          on_complete(event.slot, event.job);
          break;
        default:
          break;
      }
    }
  }

 private:
  EventTrace& out_;
};

}  // namespace otsched
