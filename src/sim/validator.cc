#include "sim/validator.h"

#include <sstream>
#include <vector>

#include "common/assert.h"

namespace otsched {

namespace {

ValidationReport Violation(int axiom, const std::string& detail) {
  ValidationReport report;
  report.feasible = false;
  std::ostringstream out;
  out << "axiom (" << axiom << ") violated: " << detail;
  report.violation = out.str();
  return report;
}

}  // namespace

ValidationReport ValidateSchedule(const Schedule& schedule,
                                  const Instance& instance,
                                  bool require_complete) {
  // slot_of[job][node] = slot the subjob ran at (kNoTime if never).
  std::vector<std::vector<Time>> slot_of(
      static_cast<std::size_t>(instance.job_count()));
  for (JobId id = 0; id < instance.job_count(); ++id) {
    slot_of[static_cast<std::size_t>(id)].assign(
        static_cast<std::size_t>(instance.job(id).dag().node_count()),
        kNoTime);
  }

  for (Time t = 1; t <= schedule.horizon(); ++t) {
    const auto slot = schedule.at(t);
    // Axiom (1): capacity.
    if (static_cast<int>(slot.size()) > schedule.m()) {
      std::ostringstream out;
      out << "slot " << t << " runs " << slot.size() << " subjobs on "
          << schedule.m() << " processors";
      return Violation(1, out.str());
    }
    for (const SubjobRef& ref : slot) {
      if (ref.job < 0 || ref.job >= instance.job_count()) {
        std::ostringstream out;
        out << "slot " << t << " references unknown job " << ref.job;
        return Violation(2, out.str());
      }
      const Job& job = instance.job(ref.job);
      if (ref.node < 0 || ref.node >= job.dag().node_count()) {
        std::ostringstream out;
        out << "slot " << t << " references unknown node " << ref.node
            << " of job " << ref.job;
        return Violation(2, out.str());
      }
      Time& recorded = slot_of[static_cast<std::size_t>(ref.job)]
                              [static_cast<std::size_t>(ref.node)];
      // Axiom (2): at most once.
      if (recorded != kNoTime) {
        std::ostringstream out;
        out << "job " << ref.job << " node " << ref.node
            << " scheduled at slots " << recorded << " and " << t;
        return Violation(2, out.str());
      }
      recorded = t;
      // Axiom (4): release.
      if (t <= job.release()) {
        std::ostringstream out;
        out << "job " << ref.job << " (release " << job.release()
            << ") has node " << ref.node << " at slot " << t;
        return Violation(4, out.str());
      }
    }
  }

  for (JobId id = 0; id < instance.job_count(); ++id) {
    const Job& job = instance.job(id);
    const auto& slots = slot_of[static_cast<std::size_t>(id)];
    for (NodeId v = 0; v < job.dag().node_count(); ++v) {
      const Time tv = slots[static_cast<std::size_t>(v)];
      // Axiom (2): exactly once.
      if (require_complete && tv == kNoTime) {
        std::ostringstream out;
        out << "job " << id << " node " << v << " never scheduled";
        return Violation(2, out.str());
      }
      // Axiom (3): precedence.
      for (NodeId c : job.dag().children(v)) {
        const Time tc = slots[static_cast<std::size_t>(c)];
        if (tv != kNoTime && tc != kNoTime && tc <= tv) {
          std::ostringstream out;
          out << "job " << id << " edge (" << v << " -> " << c
              << ") scheduled at slots " << tv << " -> " << tc;
          return Violation(3, out.str());
        }
        // A scheduled child whose parent never ran is also a precedence
        // violation when validating prefixes.
        if (tc != kNoTime && tv == kNoTime) {
          std::ostringstream out;
          out << "job " << id << " node " << c
              << " ran before its parent " << v << " ever ran";
          return Violation(3, out.str());
        }
      }
    }
  }

  return ValidationReport{};
}

}  // namespace otsched
