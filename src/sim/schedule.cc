#include "sim/schedule.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

Schedule::Schedule(int m) : m_(m) {
  OTSCHED_CHECK(m >= 1, "need at least one processor");
}

void Schedule::place(Time slot, SubjobRef ref) {
  OTSCHED_CHECK(slot >= 1, "slots are 1-based, got " << slot);
  if (static_cast<std::size_t>(slot) > slots_.size()) {
    slots_.resize(static_cast<std::size_t>(slot));
  }
  slots_[static_cast<std::size_t>(slot - 1)].push_back(ref);
  ++total_placed_;
}

std::span<const SubjobRef> Schedule::at(Time slot) const {
  if (slot < 1 || static_cast<std::size_t>(slot) > slots_.size()) return {};
  return slots_[static_cast<std::size_t>(slot - 1)];
}

std::int64_t Schedule::idle_processor_slots() const {
  std::int64_t idle = 0;
  for (const auto& slot : slots_) {
    idle += m_ - static_cast<std::int64_t>(slot.size());
  }
  return idle;
}

std::vector<Time> Schedule::idle_slots(Time from, Time to, int capacity) const {
  if (capacity < 0) capacity = m_;
  std::vector<Time> result;
  from = std::max<Time>(from, 1);
  to = std::min<Time>(to, horizon());
  for (Time t = from; t <= to; ++t) {
    if (load(t) < capacity) result.push_back(t);
  }
  return result;
}

FlowSummary ComputeFlows(const Schedule& schedule, const Instance& instance) {
  const std::size_t n = static_cast<std::size_t>(instance.job_count());
  std::vector<std::int64_t> placed(n, 0);
  std::vector<Time> last_slot(n, kNoTime);

  for (Time t = 1; t <= schedule.horizon(); ++t) {
    for (const SubjobRef& ref : schedule.at(t)) {
      OTSCHED_CHECK(ref.job >= 0 && ref.job < instance.job_count(),
                    "schedule references unknown job " << ref.job);
      auto& count = placed[static_cast<std::size_t>(ref.job)];
      ++count;
      last_slot[static_cast<std::size_t>(ref.job)] = t;
    }
  }

  FlowSummary summary;
  summary.completion.resize(n, kNoTime);
  summary.flow.resize(n, kInfiniteTime);
  for (JobId id = 0; id < instance.job_count(); ++id) {
    const std::size_t i = static_cast<std::size_t>(id);
    const Job& job = instance.job(id);
    if (placed[i] == job.work()) {
      summary.completion[i] = last_slot[i];
      summary.flow[i] = last_slot[i] - job.release();
    } else {
      summary.all_completed = false;
    }
    if (summary.max_flow_job == kInvalidJob ||
        summary.flow[i] > summary.max_flow) {
      summary.max_flow = summary.flow[i];
      summary.max_flow_job = id;
    }
  }
  if (instance.job_count() == 0) {
    summary.max_flow = 0;
  }
  return summary;
}

}  // namespace otsched
