#include "sim/schedule.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

Schedule::Schedule(int m) : m_(m) {
  OTSCHED_CHECK(m >= 1, "need at least one processor");
  offsets_.push_back(0);
}

void Schedule::place(Time slot, SubjobRef ref) {
  OTSCHED_CHECK(slot >= 1, "slots are 1-based, got " << slot);
  // Arena horizon = highest slot the CSR table covers.
  const Time arena_horizon = static_cast<Time>(offsets_.size()) - 1;
  if (staged_.empty() && slot >= arena_horizon) {
    // Sequential hot path: engines place into nondecreasing slots, so
    // this is a plain append to the arena tail.
    if (slot > arena_horizon) {
      offsets_.resize(static_cast<std::size_t>(slot) + 1,
                      static_cast<std::int64_t>(entries_.size()));
    }
    entries_.push_back(ref);
    offsets_.back() = static_cast<std::int64_t>(entries_.size());
  } else {
    staged_.emplace_back(slot, ref);
  }
  ++total_placed_;
  horizon_ = std::max(horizon_, slot);
}

void Schedule::flatten() const {
  if (staged_.empty()) return;
  const std::size_t n_slots = static_cast<std::size_t>(horizon_);
  std::vector<std::int64_t> new_offsets(n_slots + 1, 0);
  // Per-slot counts (stored shifted by one for the prefix sum below).
  const Time arena_horizon = static_cast<Time>(offsets_.size()) - 1;
  for (Time t = 1; t <= arena_horizon; ++t) {
    new_offsets[static_cast<std::size_t>(t)] =
        offsets_[static_cast<std::size_t>(t)] -
        offsets_[static_cast<std::size_t>(t) - 1];
  }
  for (const auto& [slot, ref] : staged_) {
    ++new_offsets[static_cast<std::size_t>(slot)];
  }
  for (std::size_t t = 1; t <= n_slots; ++t) {
    new_offsets[t] += new_offsets[t - 1];
  }
  std::vector<SubjobRef> new_entries(
      static_cast<std::size_t>(total_placed_));
  // Write cursors start at each slot's begin offset.  Arena entries are
  // copied first (they were placed before staging began), then staged
  // entries in insertion order — preserving per-slot call order.
  std::vector<std::int64_t> cursor(new_offsets.begin(),
                                   new_offsets.end() - 1);
  for (Time t = 1; t <= arena_horizon; ++t) {
    for (std::int64_t i = offsets_[static_cast<std::size_t>(t) - 1];
         i < offsets_[static_cast<std::size_t>(t)]; ++i) {
      new_entries[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(t) - 1]++)] =
          entries_[static_cast<std::size_t>(i)];
    }
  }
  for (const auto& [slot, ref] : staged_) {
    new_entries[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(slot) - 1]++)] = ref;
  }
  offsets_ = std::move(new_offsets);
  entries_ = std::move(new_entries);
  staged_.clear();
}

std::span<const SubjobRef> Schedule::at(Time slot) const {
  if (slot < 1 || slot > horizon_) return {};
  flatten();
  const std::int64_t begin = offsets_[static_cast<std::size_t>(slot) - 1];
  const std::int64_t end = offsets_[static_cast<std::size_t>(slot)];
  return {entries_.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::vector<Time> Schedule::idle_slots(Time from, Time to,
                                       std::optional<int> capacity) const {
  const int cap = capacity.value_or(m_);
  std::vector<Time> result;
  from = std::max<Time>(from, 1);
  to = std::min<Time>(to, horizon());
  for (Time t = from; t <= to; ++t) {
    if (load(t) < cap) result.push_back(t);
  }
  return result;
}

void FlowAccumulator::init(const Instance& instance) {
  reset();
  for (JobId id = 0; id < instance.job_count(); ++id) {
    const Job& job = instance.job(id);
    add_job(job.work(), job.release());
  }
}

void FlowAccumulator::reset() {
  work_.clear();
  release_.clear();
  placed_.clear();
  last_slot_.clear();
}

JobId FlowAccumulator::add_job(std::int64_t work, Time release) {
  work_.push_back(work);
  release_.push_back(release);
  placed_.push_back(0);
  last_slot_.push_back(kNoTime);
  return static_cast<JobId>(work_.size()) - 1;
}

FlowSummary FlowAccumulator::finish() const {
  const std::size_t n = work_.size();
  FlowSummary summary;
  summary.completion.resize(n, kNoTime);
  summary.flow.resize(n, kInfiniteTime);
  for (std::size_t i = 0; i < n; ++i) {
    if (placed_[i] == work_[i]) {
      summary.completion[i] = last_slot_[i];
      summary.flow[i] = last_slot_[i] - release_[i];
    } else {
      summary.all_completed = false;
    }
    if (summary.max_flow_job == kInvalidJob ||
        summary.flow[i] > summary.max_flow) {
      summary.max_flow = summary.flow[i];
      summary.max_flow_job = static_cast<JobId>(i);
    }
  }
  if (n == 0) summary.max_flow = 0;
  return summary;
}

FlowSummary ComputeFlows(const Schedule& schedule, const Instance& instance) {
  FlowAccumulator accumulator(instance);
  for (Time t = 1; t <= schedule.horizon(); ++t) {
    for (const SubjobRef& ref : schedule.at(t)) {
      // Engines validate picks before recording; an arbitrary Schedule
      // (hand-built in tests) has not been validated, so guard here.
      OTSCHED_CHECK(ref.job >= 0 && ref.job < instance.job_count(),
                    "schedule references unknown job " << ref.job);
      accumulator.record(t, ref.job);
    }
  }
  return accumulator.finish();
}

}  // namespace otsched
