// The incremental tick/advance engine core.
//
// SimDriver is the one simulation loop in the library: it owns the
// ReadyArena / EngineHotState / SlotEventEmitter state the former
// monolithic Engine owned, but exposes the run as an incremental API
// instead of a single run-to-horizon call:
//
//   SimDriver driver(m, scheduler, context);
//   driver.submit(Job(...));        // any time before or between advances
//   driver.advance(n);              // simulate at most n slots
//   driver.take_finished();         // per-job {release, finish, flow}
//   driver.retire_finished();       // recycle finished jobs' memory
//   SimResult result = driver.drain();  // run to completion, finalize
//
// Simulate() (sim/engine.h) is a thin wrapper — submit_all + drain — so
// the batch path and the tick path are literally the same code; the
// driver-equivalence suite additionally proves advance(1) stepping is
// bit-identical to one-shot Simulate across policies, record modes,
// observers, and fault models.
//
// Streaming semantics (the `otsched serve` daemon, src/serve):
//   * submit() may be called between advances; the job's release must be
//     >= now() (a release in the simulated past would diverge from an
//     offline replay of the same arrival stream).  Arrivals are merged
//     into the slot loop in (release, id) order — exactly the order
//     Instance::release_order() feeds the batch path.
//   * retire_finished() recycles finished jobs' DAG node regions through
//     the ReadyArena free list and drops the driver's Job copies, so an
//     unbounded stream runs in memory proportional to the live width of
//     the stream plus O(1) residual per job (flow counters, region
//     bases).  Retired jobs answer release/finished/done_work queries
//     but no longer expose ready sets, DAGs, or metrics.
//
// The slot loop body is the PR-7 saturated hot path, unchanged: one
// templated instantiation per (observed, record-full) mode, batched
// observer delivery, flat-array scheduler reads via EngineHotState.
#pragma once

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "job/instance.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/observer.h"
#include "sim/ready_state.h"
#include "sim/schedule.h"

namespace otsched {

class SimDriver final : public EngineBackend {
 public:
  /// A job that ran its last subjob, reported once via take_finished().
  struct FinishedJob {
    JobId job = kInvalidJob;
    Time release = 0;
    Time finish = 0;  // the slot its last subjob executed in
    Time flow = 0;    // finish - release
    /// Subjob slots this job lost to rollbacks over its lifetime (job
    /// faults, sim/job_faults.h; always 0 on healthy runs).
    std::int64_t wasted = 0;

    friend bool operator==(const FinishedJob&, const FinishedJob&) = default;
  };

  /// `m` processors, one `scheduler`, one `context` — the same contract
  /// as Simulate, minus the instance: jobs are submitted, not bound.
  SimDriver(int m, Scheduler& scheduler, const RunContext& context = {});

  /// Bulk-loads every job of `instance` (borrowed — the instance must
  /// outlive the driver).  Only valid on a fresh driver; this is the
  /// batch path and costs exactly what the monolithic engine's setup
  /// cost.  Streaming callers use submit() instead.
  void submit_all(const Instance& instance);

  /// Submits one job (the driver takes ownership).  Valid before the
  /// first advance and between advances; the release must be >= now().
  /// Returns the job's dense id.  Enables finished-job tracking.
  JobId submit(Job job);

  /// Snapshot hook for the serve journal's rotation (serve/journal.h):
  /// positions a FRESH driver (nothing submitted, nothing advanced) so
  /// now() == resume_slot, as if it had already simulated through that
  /// slot.  Only sound when the resumed stream is a quiescent suffix —
  /// every earlier job finished, its flow accounted for elsewhere — and
  /// the scheduler's decisions are a pure function of the current view
  /// (Scheduler::supports_warm_start); a stateful policy would have
  /// carried state across the cut that a warm start cannot rebuild.
  void warm_start(Time resume_slot);

  /// Simulates at most `max_slots` further slots (fast-forwarded empty
  /// stretches count as one).  Returns the number of slots visited: 0
  /// means the driver is idle (all submitted work done).
  Time advance(Time max_slots);

  /// Runs until all submitted work is done, finalizes stats and flows,
  /// fires on_finish, and returns the result.  The driver is spent
  /// afterwards: no further submit/advance calls.
  SimResult drain();

  /// All submitted work executed (also true before the first submit).
  bool idle() const { return executed_total_ == total_work_; }

  /// Last fully simulated slot (0 before the first advance).
  Time now() const { return slot_ > 0 ? slot_ - 1 : 0; }

  /// Jobs that finished since the previous call, in completion order
  /// (ties: pick placement order within the slot).  Populated once
  /// tracking is on — submit() turns it on; submit_all alone (the batch
  /// path) leaves it off and pays nothing.
  std::vector<FinishedJob> take_finished();

  /// Recycles the arena regions and Job storage of every job that
  /// finished since the previous call.  Returns how many jobs were
  /// retired.  Requires finished-job tracking (i.e. a streaming driver).
  std::size_t retire_finished();

  /// Stats accumulated so far (horizon fields are only final after
  /// drain()).
  const SimStats& stats() const { return result_.stats; }

  /// Flow summary over everything recorded so far (snapshot; drain()
  /// produces the authoritative one).
  FlowSummary flows_snapshot() const { return flows_.finish(); }

  /// Outstanding (submitted, unexecuted) subjobs.
  std::int64_t pending_work() const { return total_work_ - executed_total_; }

  /// Engine-wide checkpoint-committed subjob count (job faults only;
  /// stays 0 on healthy runs, where commit tracking is never enabled).
  /// Equals executed_subjobs at drain() — every job finish-commits.
  std::int64_t committed_frontier() const { return committed_total_; }

  /// Arena introspection for the retire-on-finish memory bound: node
  /// slots currently backing the driver (live + recyclable).
  std::int64_t arena_nodes() const { return arena_.node_capacity(); }

  // --- EngineBackend implementation ---
  Time slot() const override { return slot_; }
  int m() const override { return m_; }
  int capacity() const override { return capacity_; }
  JobId job_count() const override {
    return static_cast<JobId>(jobs_.size());
  }
  std::span<const JobId> alive() const override { return alive_; }
  Time release(JobId id) const override {
    return release_[static_cast<std::size_t>(id)];
  }
  bool arrived(JobId id) const override { return release(id) < slot_; }
  bool finished(JobId id) const override {
    return arena_.done(id) == work_[static_cast<std::size_t>(id)];
  }
  std::span<const NodeId> ready(JobId id) const override {
    return arena_.ready(id);
  }
  std::int64_t remaining_work(JobId id) const override {
    return work_[static_cast<std::size_t>(id)] - arena_.done(id);
  }
  std::int64_t done_work(JobId id) const override { return arena_.done(id); }
  bool executed(JobId id, NodeId v) const override {
    return arena_.is_executed(id, v);
  }
  const Dag& dag(JobId id) const override;
  const DagMetrics& metrics(JobId id) const override;
  bool clairvoyant_allowed() const override { return clairvoyant_; }

 private:
  template <bool kObserved, bool kRecordFull>
  Time run_slots(const SchedulerView& view, Time max_slots);

  template <bool kObserved>
  void deliver_arrivals(const SchedulerView& view);

  /// One-time run setup: publish the hot tables, reset the scheduler
  /// (with the job count submitted so far), arm the emitter, fire
  /// on_run_begin, enter slot 1.
  void begin();

  /// Re-points the EngineHotState tables (the backing vectors may have
  /// reallocated after submit/append).
  void publish_hot();

  /// The auto horizon bound over everything submitted so far (same
  /// formula the batch engine derived from its instance).
  Time horizon_bound() const;

  /// Smallest (release, id) among undelivered arrivals, or nullopt.
  std::optional<std::pair<Time, JobId>> next_pending_arrival() const;

  int m_;
  Scheduler& scheduler_;
  RunObserver* observer_ = nullptr;  // borrowed; null = uninstrumented run
  std::size_t batch_capacity_;       // event-ring size (RunContext)
  SlotEventEmitter emitter_;         // batched event stream writer
  bool clairvoyant_ = false;
  bool record_full_ = true;          // materialize the Schedule?
  Time options_horizon_ = 0;         // explicit cap; 0 = auto (running)
  BudgetSequencer sequencer_;        // per-slot capacity source
  int capacity_ = 1;                 // current slot's budget, m_t <= m
  JobFaultSequencer job_faults_;     // per-(slot, job) crash/commit source

  bool begun_ = false;
  bool finalized_ = false;
  Time slot_ = 0;
  Time last_busy_slot_ = 0;          // online horizon (== schedule horizon)
  SimResult result_;                 // schedule + stats accumulate here
  FlowAccumulator flows_;            // online flow accounting, both modes
  ReadyArena arena_;                 // SoA per-job ready/executed state
  EngineHotState hot_;               // SchedulerView fast-path tables

  // Per-job flat caches (no Job indirection in the per-slot loop).
  // jobs_ entries are borrowed from the bulk instance or point into
  // owned_; both are nulled by retire_finished().
  std::vector<const Job*> jobs_;
  std::vector<std::unique_ptr<Job>> owned_;  // streaming submissions
  std::vector<const Dag*> dags_;
  std::vector<std::int64_t> work_;
  std::vector<Time> release_;

  std::vector<JobId> alive_;          // arrived, unfinished, FIFO order
  std::vector<JobId> arrival_order_;  // bulk jobs by (release, id)
  std::size_t next_arrival_ = 0;
  // Streaming submissions pending arrival, min-heap on (release, id) —
  // merged with arrival_order_ so mixed bulk+streaming runs still
  // deliver in global (release, id) order.
  std::priority_queue<std::pair<Time, JobId>,
                      std::vector<std::pair<Time, JobId>>,
                      std::greater<std::pair<Time, JobId>>>
      late_arrivals_;

  std::int64_t executed_total_ = 0;
  std::int64_t total_work_ = 0;       // over all submitted jobs
  std::int64_t committed_total_ = 0;  // engine-wide committed frontier
  std::vector<std::int64_t> wasted_;  // per-job rolled-back subjob count
                                      // (sized only under job faults)
  Time max_release_ = 0;              // running, for the auto horizon
  std::int64_t max_span_ = 0;         // running, for the auto horizon
  std::int64_t ready_width_ = 0;      // sum of ready counts over alive jobs
  bool time_picks_ = false;           // observer wants pick_seconds?
  int finished_this_slot_ = 0;        // gates alive-list compaction
  std::vector<JobId> completed_now_;  // observer-only: finished this slot
  std::vector<SubjobRef> picks_;      // per-slot scratch

  bool track_finished_ = false;       // streaming: log finished jobs
  std::vector<FinishedJob> finished_log_;  // take_finished() backlog
  std::vector<JobId> retirable_;           // retire_finished() backlog
};

}  // namespace otsched
