// Job-side fault injection: subjobs that crash and roll back to their
// last checkpoint (the waste/recovery model of cooperative checkpointing
// on shared platforms — ROADMAP item 4).
//
// Where sim/faults.h degrades the MACHINE (per-slot capacity budgets
// m_t <= m), this header degrades the JOBS: a crashed job loses every
// subjob executed since its last checkpoint and re-enqueues that work in
// deterministic order.  A JobFaultSpec selects a deterministic, seeded
// crash model plus a checkpoint-interval policy; a JobFaultSequencer
// turns the spec into the per-(slot, job) crash/checkpoint stream all
// three engines consume.
//
// Determinism contract: the stochastic model (kRandomCrash) is
// counter-based — whether a job crashes is a pure function of
// (seed, slot, job), never of visit order — so fast-forwarded stretches
// cannot desynchronize two engines and a replayed repro crashes the same
// jobs in the same slots.  kPeriodicCrash is a pure function of the
// job's age; kAdversarialLoss is stateful only on the job's volatile
// (uncommitted) work, which the engine-equivalence gate proves identical
// across engines.
//
// Slot protocol (identical in SimDriver, ReferenceSimulate, and advsim):
//   1. arrivals, then processor-fault capacity resolution (sim/faults.h);
//   2. the ROLLBACK step: every alive job with volatile work > 0 asks
//      `crashes(slot, job, release, volatile)`; a crashed job rolls back
//      to its checkpoint (kRollback SlotEvent, `faults.rollbacks` and
//      `work.wasted_slots` metrics);
//   3. pick / validate / execute as today;
//   4. the CHECKPOINT step at end of slot: every alive unfinished job
//      with volatile work asks `checkpoint_due(slot, volatile)`; finishing
//      a job always commits implicitly (a finished job is never rolled
//      back, so retire-on-finish recycling stays sound).
//
// Progress caveat: a spec that crashes a job faster than its checkpoint
// policy can commit (e.g. kAdversarialLoss with threshold <= the
// checkpoint interval under kOnCompletion) can starve the run forever;
// the engines' faulted horizon bound turns that livelock into a loud
// CHECK failure, exactly like a starved processor-fault spec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace otsched {

enum class JobFaultModel {
  kNone,             // no job ever crashes (the default; zero overhead)
  kRandomCrash,      // iid per-(slot, job) crash with probability `rate`
  kPeriodicCrash,    // deterministic crash every `period` slots of job age
  kAdversarialLoss,  // crash the moment volatile work reaches `threshold`
};

const char* ToString(JobFaultModel model);

/// Parses a model name ("none", "random-crash", "periodic-crash",
/// "adversarial-loss"); nullopt for unknown names.
std::optional<JobFaultModel> ParseJobFaultModel(std::string_view name);

enum class CheckpointPolicy {
  kOnCompletion,   // only the implicit commit when the job finishes
  kEveryKSlots,    // commit every job at slots divisible by k
  kEveryKSubjobs,  // commit a job once its volatile work reaches k
};

const char* ToString(CheckpointPolicy policy);

/// One job-fault instantiation, carried by SimOptions.  Cheap to copy.
struct JobFaultSpec {
  JobFaultModel model = JobFaultModel::kNone;
  /// Stream seed for kRandomCrash.
  std::uint64_t seed = 1;
  /// kRandomCrash per-(slot, job) crash probability in [0, 0.9].
  double rate = 0.05;
  /// kPeriodicCrash cadence in slots of job age (>= 2; a job crashes
  /// whenever (slot - release) is a positive multiple of `period`).
  Time period = 64;
  /// kAdversarialLoss volatile-work trigger (>= 1 subjobs).
  std::int64_t threshold = 8;
  /// When volatile work becomes committed (survives future crashes).
  CheckpointPolicy checkpoint = CheckpointPolicy::kOnCompletion;
  /// The k of kEveryKSlots / kEveryKSubjobs (>= 1).
  std::int64_t checkpoint_every = 16;

  bool active() const { return model != JobFaultModel::kNone; }
};

/// Renders a spec as the CLI's `model:seed:param` shorthand (manifests):
/// "none", "random-crash:7:0.1", "periodic-crash:1:64",
/// "adversarial-loss:1:8".
std::string ToString(const JobFaultSpec& spec);

/// Renders the checkpoint half of a spec for manifests:
/// "on-completion", "every-slots:16", "every-subjobs:16".
std::string CheckpointPolicyString(const JobFaultSpec& spec);

/// Parses the CLI shorthand `model[:seed[:param]]`, e.g.
/// `random-crash:7:0.1` (param = rate), `periodic-crash:1:32`
/// (param = period), `adversarial-loss:1:4` (param = threshold).  On
/// failure returns nullopt and writes a per-token diagnostic to `error`.
/// The checkpoint fields keep their defaults; see
/// ParseCheckpointPolicyInto.
std::optional<JobFaultSpec> ParseJobFaultSpec(std::string_view text,
                                              std::string* error);

/// Parses the CLI `--checkpoint-policy` shorthand into `spec`:
/// `on-completion`, `every-slots:K`, or `every-subjobs:K`.  On failure
/// returns false and writes a per-token diagnostic to `error`.
bool ParseCheckpointPolicyInto(std::string_view text, JobFaultSpec* spec,
                               std::string* error);

/// Validates a spec's parameters (rate range, period, threshold,
/// checkpoint interval); aborts with a message naming the bad field.
/// Engines call this once per run so a bad spec fails loudly.
void ValidateJobFaultSpec(const JobFaultSpec& spec);

/// The per-run crash/checkpoint source: one instance per engine run.
/// Stateless — both queries are pure functions of their arguments — so
/// one instance can serve any number of jobs in any order.
class JobFaultSequencer {
 public:
  explicit JobFaultSequencer(const JobFaultSpec& spec);

  bool active() const { return spec_.active(); }
  const JobFaultSpec& spec() const { return spec_; }

  /// Whether `job` crashes at the top of `slot`.  A job with no volatile
  /// work has nothing to lose and never "crashes" (no event, no metric).
  /// `release` feeds kPeriodicCrash's age; `volatile_work` feeds
  /// kAdversarialLoss's trigger.
  bool crashes(Time slot, JobId job, Time release,
               std::int64_t volatile_work) const;

  /// Whether a job with `volatile_work` uncommitted subjobs checkpoints
  /// at the end of `slot` under the spec's interval policy.
  bool checkpoint_due(Time slot, std::int64_t volatile_work) const;

 private:
  JobFaultSpec spec_;
};

}  // namespace otsched
