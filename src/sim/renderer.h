// ASCII rendering of schedules — the "Tetris board" view from Figure 1.
//
// Rows are processors, columns are time slots; each cell shows a one-
// character label for the job whose subjob occupied that (processor, slot)
// cell ('.' for idle).  Since the model does not bind subjobs to physical
// processors, cells within a slot are stacked from row 0 upward.
#pragma once

#include <string>

#include "job/instance.h"
#include "sim/schedule.h"

namespace otsched {

struct RenderOptions {
  Time from_slot = 1;
  Time to_slot = 0;  // 0 = horizon
  /// Print a slot-number ruler above the grid.
  bool ruler = true;
  /// When true, label cells by subjob node id modulo 10 of a single job
  /// instead of by job letter (useful for single-job LPF shape plots).
  bool label_nodes = false;
};

/// Renders the schedule grid.  Jobs are labelled 'A'..'Z', 'a'..'z',
/// '0'..'9', cycling.
std::string RenderSchedule(const Schedule& schedule, const Instance& instance,
                           const RenderOptions& options = {});

/// Renders the per-slot load profile of one job within a schedule as a
/// horizontal bar chart: one line per slot, '#' per busy processor.  This
/// regenerates the Figure 2 head/tail picture for an LPF schedule.
std::string RenderJobProfile(const Schedule& schedule, JobId job,
                             Time from_slot = 1, Time to_slot = 0);

/// The job-label alphabet used by RenderSchedule.
char JobLabel(JobId id);

}  // namespace otsched
