#include "sim/renderer.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace otsched {

char JobLabel(JobId id) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  constexpr int kCount = sizeof(kAlphabet) - 1;
  return kAlphabet[static_cast<std::size_t>(id % kCount)];
}

std::string RenderSchedule(const Schedule& schedule, const Instance& instance,
                           const RenderOptions& options) {
  const Time from = std::max<Time>(1, options.from_slot);
  const Time to = options.to_slot > 0
                      ? std::min(options.to_slot, schedule.horizon())
                      : schedule.horizon();
  if (to < from) return "(empty schedule)\n";

  const int m = schedule.m();
  const auto width = static_cast<std::size_t>(to - from + 1);
  std::vector<std::string> grid(static_cast<std::size_t>(m),
                                std::string(width, '.'));
  for (Time t = from; t <= to; ++t) {
    const auto slot = schedule.at(t);
    OTSCHED_CHECK(static_cast<int>(slot.size()) <= m,
                  "over-full slot " << t << " cannot be rendered");
    for (std::size_t row = 0; row < slot.size(); ++row) {
      char label;
      if (options.label_nodes) {
        label = static_cast<char>('0' + (slot[row].node % 10));
      } else {
        label = JobLabel(slot[row].job);
      }
      grid[row][static_cast<std::size_t>(t - from)] = label;
    }
  }
  (void)instance;  // reserved for richer labels; kept for API stability

  std::ostringstream out;
  if (options.ruler) {
    out << "slot  ";
    for (Time t = from; t <= to; ++t) {
      out << ((t % 10 == 0) ? '|' : ((t % 5 == 0) ? '+' : ' '));
    }
    out << '\n';
  }
  // Print processor m-1 at the top so the picture matches Figure 1.
  for (int p = m - 1; p >= 0; --p) {
    out << "P" << p;
    for (int pad = (p >= 10 ? 2 : 3); pad > 0; --pad) out << ' ';
    out << ' ' << grid[static_cast<std::size_t>(p)] << '\n';
  }
  return out.str();
}

std::string RenderJobProfile(const Schedule& schedule, JobId job,
                             Time from_slot, Time to_slot) {
  const Time from = std::max<Time>(1, from_slot);
  const Time to =
      to_slot > 0 ? std::min(to_slot, schedule.horizon()) : schedule.horizon();
  std::ostringstream out;
  for (Time t = from; t <= to; ++t) {
    int count = 0;
    for (const SubjobRef& ref : schedule.at(t)) {
      if (ref.job == job) ++count;
    }
    out << "t=";
    out.width(5);
    out << t << " ";
    out << std::string(static_cast<std::size_t>(count), '#') << " (" << count
        << ")\n";
  }
  return out.str();
}

}  // namespace otsched
