#include "sim/observers.h"

#include <cmath>
#include <cstdio>

#include "common/assert.h"
#include "job/serialize.h"

namespace otsched {
namespace {

/// Flow times are slot counts; powers of two to 2^20 cover every
/// experiment horizon in the repository.
std::vector<double> FlowBuckets() {
  std::vector<double> bounds;
  for (int p = 0; p <= 20; ++p) {
    bounds.push_back(static_cast<double>(std::int64_t{1} << p));
  }
  return bounds;
}

/// Decades from 100ns to 1s: pick() of every implemented policy lands in
/// the first few buckets; the tail catches pathological policies.
std::vector<double> PickSecondsBuckets() {
  std::vector<double> bounds;
  for (int p = -7; p <= 0; ++p) {
    bounds.push_back(std::pow(10.0, p));
  }
  return bounds;
}

const char* ToString(ClairvoyanceOverride mode) {
  switch (mode) {
    case ClairvoyanceOverride::kPolicyDefault:
      return "policy-default";
    case ClairvoyanceOverride::kDeny:
      return "deny";
    case ClairvoyanceOverride::kAllow:
      return "allow";
  }
  return "policy-default";
}

const char* ToString(RecordMode mode) {
  switch (mode) {
    case RecordMode::kFull:
      return "full";
    case RecordMode::kFlowOnly:
      return "flow-only";
  }
  return "full";
}

}  // namespace

std::uint64_t FingerprintInstance(const Instance& instance) {
  const std::string text = InstanceToText(instance);
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

RunManifest MakeRunManifest(const Instance& instance, int m,
                            const std::string& policy, std::uint64_t seed,
                            const SimOptions& options) {
  RunManifest manifest;
  manifest.instance_name = instance.name();
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(FingerprintInstance(instance)));
  manifest.instance_hash = hex;
  manifest.jobs = instance.job_count();
  manifest.total_work = instance.total_work();
  manifest.policy = policy;
  manifest.m = m;
  manifest.seed = seed;
  manifest.max_horizon = options.max_horizon;
  manifest.clairvoyance = ToString(options.clairvoyance);
  manifest.record = ToString(options.record);
  manifest.faults = ToString(options.faults);
  manifest.job_faults = ToString(options.job_faults);
  manifest.checkpoint_policy = CheckpointPolicyString(options.job_faults);
  return manifest;
}

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += "  \"instance\": " + JsonString(instance_name) + ",\n";
  out += "  \"instance_hash\": " + JsonString(instance_hash) + ",\n";
  out += "  \"jobs\": " + std::to_string(jobs) + ",\n";
  out += "  \"total_work\": " + std::to_string(total_work) + ",\n";
  out += "  \"policy\": " + JsonString(policy) + ",\n";
  out += "  \"m\": " + std::to_string(m) + ",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"max_horizon\": " + std::to_string(max_horizon) + ",\n";
  out += "  \"clairvoyance\": " + JsonString(clairvoyance) + ",\n";
  out += "  \"record\": " + JsonString(record) + ",\n";
  out += "  \"faults\": " + JsonString(faults);
  if (job_faults != "none" && !job_faults.empty()) {
    out += ",\n  \"job_faults\": " + JsonString(job_faults);
    out += ",\n  \"checkpoint_policy\": " + JsonString(checkpoint_policy);
  }
  if (certified_bound > 0) {
    out += ",\n  \"certified_bound\": " + std::to_string(certified_bound);
    out += ",\n  \"certificate_method\": " + JsonString(certificate_method);
    if (!ratio_vs_certificate.empty()) {
      out += ",\n  \"ratio_vs_certificate\": " +
             JsonString(ratio_vs_certificate);
    }
  }
  out += "\n}\n";
  return out;
}

void WriteManifest(MetricsRegistry& registry, const RunManifest& manifest) {
  registry.set_manifest("instance", manifest.instance_name);
  registry.set_manifest("instance_hash", manifest.instance_hash);
  registry.set_manifest("jobs", manifest.jobs);
  registry.set_manifest("total_work", manifest.total_work);
  registry.set_manifest("policy", manifest.policy);
  registry.set_manifest("m", static_cast<std::int64_t>(manifest.m));
  registry.set_manifest("seed", static_cast<std::int64_t>(manifest.seed));
  registry.set_manifest("max_horizon", manifest.max_horizon);
  registry.set_manifest("clairvoyance", manifest.clairvoyance);
  registry.set_manifest("record", manifest.record);
  registry.set_manifest("faults", manifest.faults);
  if (manifest.job_faults != "none" && !manifest.job_faults.empty()) {
    registry.set_manifest("job_faults", manifest.job_faults);
    registry.set_manifest("checkpoint_policy", manifest.checkpoint_policy);
  }
  if (manifest.certified_bound > 0) {
    registry.set_manifest("certified_bound", manifest.certified_bound);
    registry.set_manifest("certificate_method", manifest.certificate_method);
    if (!manifest.ratio_vs_certificate.empty()) {
      registry.set_manifest("ratio_vs_certificate",
                            manifest.ratio_vs_certificate);
    }
  }
}

MetricsObserver::MetricsObserver(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(options) {}

void MetricsObserver::on_run_begin(const EngineBackend& engine) {
  m_ = engine.m();
  // Touch every metric up front so the emitted JSON has a stable shape
  // (an empty run still serializes all keys), and capture the handles:
  // the registry owns the metrics and never invalidates references, so
  // the per-event work below is a pointer bump, not a name lookup.
  arrivals_ = &registry_.counter("observer.arrivals");
  completions_ = &registry_.counter("observer.completions");
  executes_ = &registry_.counter("observer.executes");
  picks_ = &registry_.counter("observer.picks");
  slots_visited_ = &registry_.counter("observer.slots_visited");
  registry_.counter("engine.busy_slots");
  registry_.counter("engine.executed_subjobs");
  registry_.counter("engine.idle_processor_slots");
  registry_.counter("flow.total_slots");
  capacity_changes_ = &registry_.counter("faults.capacity_changes");
  registry_.counter("faults.faulted_slots");
  registry_.counter("faults.capacity_shortfall");
  rollbacks_ = &registry_.counter("faults.rollbacks");
  checkpoints_ = &registry_.counter("faults.checkpoints");
  wasted_ = &registry_.counter("work.wasted_slots");
  registry_.gauge("engine.horizon");
  registry_.gauge("flow.max");
  alive_width_ = &registry_.gauge("alive.width");
  ready_width_ = &registry_.gauge("ready.width");
  registry_.gauge("utilization.mean");
  registry_.histogram("flow.slots", FlowBuckets());
  pick_seconds_ = nullptr;
  if (options_.record_pick_times) {
    pick_seconds_ = &registry_.histogram("pick.seconds", PickSecondsBuckets());
  }
  slot_busy_ = slot_idle_ = slot_ready_width_ = slot_alive_ = nullptr;
  slot_capacity_ = nullptr;
  committed_frontier_ = nullptr;
  pending_frontier_valid_ = false;
  if (options_.record_series) {
    slot_busy_ = &registry_.series("slot.busy");
    slot_idle_ = &registry_.series("slot.idle");
    slot_ready_width_ = &registry_.series("slot.ready_width");
    slot_alive_ = &registry_.series("slot.alive");
    slot_capacity_ = &registry_.series("slot.capacity");
    committed_frontier_ = &registry_.series("work.committed_frontier");
  }
}

void MetricsObserver::on_slot_begin(Time slot, const EngineBackend& engine) {
  (void)slot;
  (void)engine;
  slots_visited_->inc();
}

void MetricsObserver::on_arrival(Time slot, JobId job) {
  (void)slot;
  (void)job;
  arrivals_->inc();
}

void MetricsObserver::on_capacity_change(Time slot, int capacity) {
  capacity_changes_->inc();
  if (options_.record_series) {
    // Sparse by construction: the hook only fires when the value changes,
    // so the series is the capacity step function's breakpoints.
    slot_capacity_->record(slot, capacity);
  }
}

void MetricsObserver::record_pick(Time slot, std::int64_t picked,
                                  std::int64_t alive,
                                  std::int64_t ready_width,
                                  double pick_seconds) {
  picks_->inc();
  alive_width_->set(static_cast<double>(alive));
  ready_width_->set(static_cast<double>(ready_width));
  if (options_.record_series) {
    slot_busy_->record(slot, picked);
    slot_idle_->record(slot, m_ - picked);
    slot_ready_width_->record(slot, ready_width);
    slot_alive_->record(slot, alive);
  }
  if (options_.record_pick_times) {
    pick_seconds_->observe(pick_seconds);
  }
}

void MetricsObserver::on_pick(Time slot, const EngineBackend& engine,
                              std::span<const SubjobRef> picks,
                              double pick_seconds) {
  // Sampled post-arrival, pre-execution: exactly what the scheduler saw.
  // The fine-grained hook recomputes the widths from the engine; the
  // batch path below reads the identical values off the kPickBegin
  // record (the engine maintains them incrementally).
  const std::int64_t alive =
      static_cast<std::int64_t>(engine.alive().size());
  std::int64_t ready_width = 0;
  for (const JobId id : engine.alive()) {
    ready_width += static_cast<std::int64_t>(engine.ready(id).size());
  }
  record_pick(slot, static_cast<std::int64_t>(picks.size()), alive,
              ready_width, pick_seconds);
}

void MetricsObserver::on_execute(Time slot, SubjobRef ref) {
  (void)slot;
  (void)ref;
  executes_->inc();
}

void MetricsObserver::on_complete(Time slot, JobId job) {
  (void)slot;
  (void)job;
  completions_->inc();
}

void MetricsObserver::on_rollback(Time slot, JobId job, std::int64_t wasted,
                                  std::int64_t frontier) {
  (void)slot;
  (void)job;
  (void)frontier;
  rollbacks_->inc();
  wasted_->inc(wasted);
}

void MetricsObserver::on_checkpoint(Time slot, JobId job,
                                    std::int64_t committed,
                                    std::int64_t frontier) {
  (void)job;
  (void)committed;
  checkpoints_->inc();
  if (committed_frontier_ == nullptr) return;
  if (pending_frontier_valid_ && slot != pending_frontier_slot_) {
    committed_frontier_->record(pending_frontier_slot_, pending_frontier_);
  }
  pending_frontier_slot_ = slot;
  pending_frontier_ = frontier;
  pending_frontier_valid_ = true;
}

void MetricsObserver::on_slot_batch(const EngineBackend& engine,
                                    std::span<const SlotEvent> events) {
  (void)engine;
  // Counter deltas accumulate in locals and land once per batch.
  std::int64_t slots = 0;
  std::int64_t arrivals = 0;
  std::int64_t executes = 0;
  std::int64_t completions = 0;
  for (const SlotEvent& event : events) {
    switch (event.kind) {
      case SlotEvent::Kind::kSlotBegin:
        ++slots;
        break;
      case SlotEvent::Kind::kArrival:
        ++arrivals;
        break;
      case SlotEvent::Kind::kCapacityChange:
        on_capacity_change(event.slot, event.value);
        break;
      case SlotEvent::Kind::kPickBegin:
        // alive/ready-width ride on the record: no engine sweep at all.
        record_pick(event.slot, event.value, event.job, event.width,
                    event.seconds);
        break;
      case SlotEvent::Kind::kExecute:
        ++executes;
        break;
      case SlotEvent::Kind::kComplete:
        ++completions;
        break;
      case SlotEvent::Kind::kRollback:
        on_rollback(event.slot, event.job, event.value, event.width);
        break;
      case SlotEvent::Kind::kCheckpoint:
        on_checkpoint(event.slot, event.job, event.value, event.width);
        break;
    }
  }
  if (slots != 0) slots_visited_->inc(slots);
  if (arrivals != 0) arrivals_->inc(arrivals);
  if (executes != 0) executes_->inc(executes);
  if (completions != 0) completions_->inc(completions);
}

void MetricsObserver::on_finish(const SimResult& result) {
  // Authoritative end-of-run figures, copied verbatim from the result the
  // caller receives: metrics consumers and SimStats/FlowSummary readers
  // must never disagree.
  registry_.counter("engine.busy_slots").set(result.stats.busy_slots);
  registry_.counter("engine.executed_subjobs")
      .set(result.stats.executed_subjobs);
  registry_.counter("engine.idle_processor_slots")
      .set(result.stats.idle_processor_slots);
  registry_.counter("faults.faulted_slots").set(result.stats.faulted_slots);
  registry_.counter("faults.capacity_shortfall")
      .set(result.stats.capacity_shortfall);
  // faults.checkpoints stays the event count (finish-commits included):
  // there is no SimStats mirror that subsumes it.
  registry_.counter("faults.rollbacks").set(result.stats.job_rollbacks);
  registry_.counter("work.wasted_slots").set(result.stats.wasted_subjob_slots);
  if (pending_frontier_valid_) {
    committed_frontier_->record(pending_frontier_slot_, pending_frontier_);
    pending_frontier_valid_ = false;
  }
  registry_.gauge("engine.horizon")
      .set(static_cast<double>(result.stats.horizon));
  registry_.gauge("flow.max")
      .set(static_cast<double>(result.flows.max_flow));
  Histogram& flow_hist = registry_.histogram("flow.slots", {});
  std::int64_t total_flow = 0;
  for (std::size_t i = 0; i < result.flows.flow.size(); ++i) {
    const Time flow = result.flows.flow[i];
    if (flow == kInfiniteTime) continue;  // unfinished job (capped runs)
    flow_hist.observe(static_cast<double>(flow));
    total_flow += flow;
  }
  registry_.counter("flow.total_slots").set(total_flow);
  const double capacity =
      static_cast<double>(m_) * static_cast<double>(result.stats.horizon);
  registry_.gauge("utilization.mean")
      .set(capacity > 0.0
               ? static_cast<double>(result.stats.executed_subjobs) / capacity
               : 0.0);
}

}  // namespace otsched
