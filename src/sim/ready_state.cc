#include "sim/ready_state.h"

#include "common/assert.h"

namespace otsched {

void PendingCounters::init(const Dag& dag) {
  const NodeId n = dag.node_count();
  counts_.assign(static_cast<std::size_t>(n), 0);
  roots_.clear();
  for (NodeId v = 0; v < n; ++v) {
    counts_[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (counts_[static_cast<std::size_t>(v)] == 0) roots_.push_back(v);
  }
}

void ReadyArena::init(std::span<const Dag* const> dags) {
  const std::size_t jobs = dags.size();
  off_.resize(jobs + 1);
  roots_off_.resize(jobs + 1);
  std::int64_t total = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    off_[j] = total;
    total += dags[j]->node_count();
  }
  off_[jobs] = total;

  pending_.assign(static_cast<std::size_t>(total), 0);
  pos_.assign(static_cast<std::size_t>(total), kInvalidNode);
  executed_.assign(static_cast<std::size_t>((total + 63) / 64), 0);
  ready_.resize(static_cast<std::size_t>(total));
  ready_len_.assign(jobs, 0);
  done_.assign(jobs, 0);

  // Two passes over the roots: count, then fill — keeps roots_ a single
  // exact-size allocation.
  std::int64_t root_total = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    const Dag& dag = *dags[j];
    roots_off_[j] = root_total;
    std::int32_t* pending = pending_.data() + off_[j];
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      pending[static_cast<std::size_t>(v)] = dag.in_degree(v);
      if (pending[static_cast<std::size_t>(v)] == 0) ++root_total;
    }
  }
  roots_off_[jobs] = root_total;
  roots_.resize(static_cast<std::size_t>(root_total));
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::int32_t* pending = pending_.data() + off_[j];
    std::int64_t w = roots_off_[j];
    for (NodeId v = 0; v < dags[j]->node_count(); ++v) {
      if (pending[static_cast<std::size_t>(v)] == 0) {
        roots_[static_cast<std::size_t>(w++)] = v;
      }
    }
  }
}

std::int32_t ReadyArena::activate(JobId j) {
  const std::size_t i = static_cast<std::size_t>(j);
  NodeId* ready = ready_.data() + off_[i];
  NodeId* pos = pos_.data() + off_[i];
  std::int32_t& len = ready_len_[i];
  OTSCHED_DCHECK(len == 0);
  for (std::int64_t r = roots_off_[i]; r < roots_off_[i + 1]; ++r) {
    const NodeId v = roots_[static_cast<std::size_t>(r)];
    pos[static_cast<std::size_t>(v)] = static_cast<NodeId>(len);
    ready[static_cast<std::size_t>(len)] = v;
    ++len;
  }
  return len;
}

}  // namespace otsched
