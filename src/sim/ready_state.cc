#include "sim/ready_state.h"

#include "common/assert.h"

namespace otsched {

void PendingCounters::init(const Dag& dag) {
  const NodeId n = dag.node_count();
  counts_.assign(static_cast<std::size_t>(n), 0);
  roots_.clear();
  for (NodeId v = 0; v < n; ++v) {
    counts_[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (counts_[static_cast<std::size_t>(v)] == 0) roots_.push_back(v);
  }
}

void JobReadyState::init(const Dag& dag) {
  pending_.init(dag);
  const NodeId n = dag.node_count();
  ready_.clear();
  pos_.assign(static_cast<std::size_t>(n), kInvalidNode);
  executed_.assign(static_cast<std::size_t>(n), 0);
  done_ = 0;
}

void JobReadyState::activate() {
  for (NodeId v : pending_.roots()) {
    pos_[static_cast<std::size_t>(v)] = static_cast<NodeId>(ready_.size());
    ready_.push_back(v);
  }
}

void JobReadyState::execute(const Dag& dag, NodeId v) {
  executed_[static_cast<std::size_t>(v)] = 1;
  ++done_;
  // Swap-erase from the ready list (see the determinism contract).
  const NodeId p = pos_[static_cast<std::size_t>(v)];
  OTSCHED_DCHECK(p >= 0);
  const NodeId moved = ready_.back();
  ready_[static_cast<std::size_t>(p)] = moved;
  pos_[static_cast<std::size_t>(moved)] = p;
  ready_.pop_back();
  pos_[static_cast<std::size_t>(v)] = kInvalidNode;
  pending_.complete(dag, v, [this](NodeId c) {
    pos_[static_cast<std::size_t>(c)] = static_cast<NodeId>(ready_.size());
    ready_.push_back(c);
  });
}

}  // namespace otsched
