#include "sim/ready_state.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

namespace {

/// Copies bit range [base, end) from `src` into `dst`, leaving every
/// other bit of the shared words untouched (neighbouring job regions
/// share boundary words of the arena bitsets).
void CopyRegionBits(std::vector<std::uint64_t>& dst,
                    const std::vector<std::uint64_t>& src, std::int64_t base,
                    std::int64_t end) {
  if (base >= end) return;
  const std::int64_t w0 = base >> 6;
  const std::int64_t w1 = (end - 1) >> 6;
  for (std::int64_t w = w0; w <= w1; ++w) {
    std::uint64_t mask = ~std::uint64_t{0};
    if (w == w0) mask &= ~std::uint64_t{0} << (base & 63);
    if (w == w1 && (end & 63) != 0) {
      mask &= (std::uint64_t{1} << (end & 63)) - 1;
    }
    dst[static_cast<std::size_t>(w)] =
        (dst[static_cast<std::size_t>(w)] & ~mask) |
        (src[static_cast<std::size_t>(w)] & mask);
  }
}

}  // namespace

void PendingCounters::init(const Dag& dag) {
  const NodeId n = dag.node_count();
  counts_.assign(static_cast<std::size_t>(n), 0);
  roots_.clear();
  for (NodeId v = 0; v < n; ++v) {
    counts_[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (counts_[static_cast<std::size_t>(v)] == 0) roots_.push_back(v);
  }
}

void ReadyArena::init(std::span<const Dag* const> dags) {
  OTSCHED_CHECK(off_.empty(), "ReadyArena::init on a non-empty arena");
  const std::size_t jobs = dags.size();
  off_.resize(jobs);
  nodes_.resize(jobs);
  roots_off_.resize(jobs + 1);
  std::int64_t total = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    off_[j] = total;
    nodes_[j] = dags[j]->node_count();
    total += dags[j]->node_count();
  }
  total_nodes_ = total;

  pending_.assign(static_cast<std::size_t>(total), 0);
  pos_.assign(static_cast<std::size_t>(total), kInvalidNode);
  executed_.assign(static_cast<std::size_t>((total + 63) / 64), 0);
  ready_.resize(static_cast<std::size_t>(total));
  ready_len_.assign(jobs, 0);
  done_.assign(jobs, 0);

  // Two passes over the roots: count, then fill — keeps roots_ a single
  // exact-size allocation.
  std::int64_t root_total = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    const Dag& dag = *dags[j];
    roots_off_[j] = root_total;
    std::int32_t* pending = pending_.data() + off_[j];
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      pending[static_cast<std::size_t>(v)] = dag.in_degree(v);
      if (pending[static_cast<std::size_t>(v)] == 0) ++root_total;
    }
  }
  if (commit_tracking_) {
    committed_.assign(executed_.size(), 0);
    committed_done_.assign(jobs, 0);
  }

  roots_off_[jobs] = root_total;
  roots_.resize(static_cast<std::size_t>(root_total));
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::int32_t* pending = pending_.data() + off_[j];
    std::int64_t w = roots_off_[j];
    for (NodeId v = 0; v < dags[j]->node_count(); ++v) {
      if (pending[static_cast<std::size_t>(v)] == 0) {
        roots_[static_cast<std::size_t>(w++)] = v;
      }
    }
  }
}

JobId ReadyArena::append(const Dag& dag) {
  const std::int32_t n = dag.node_count();
  std::int64_t base = -1;
  // First fit over the (sorted, coalesced) free list; a larger region is
  // split and its tail stays available.
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].size >= n) {
      base = free_[i].base;
      if (free_[i].size > n) {
        free_[i].base += n;
        free_[i].size -= n;
      } else {
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      break;
    }
  }
  if (base < 0) {
    base = total_nodes_;
    total_nodes_ += n;
    pending_.resize(static_cast<std::size_t>(total_nodes_));
    pos_.resize(static_cast<std::size_t>(total_nodes_));
    ready_.resize(static_cast<std::size_t>(total_nodes_));
    executed_.resize(static_cast<std::size_t>((total_nodes_ + 63) / 64), 0);
  }
  // (Re)initialize the region: in-degrees, no ready positions, executed
  // bits cleared (the region may have hosted a retired job).
  std::int32_t* pending = pending_.data() + base;
  NodeId* pos = pos_.data() + base;
  for (NodeId v = 0; v < n; ++v) {
    pending[static_cast<std::size_t>(v)] = dag.in_degree(v);
    pos[static_cast<std::size_t>(v)] = kInvalidNode;
  }
  for (std::int64_t nv = base; nv < base + n; ++nv) {
    executed_[static_cast<std::size_t>(nv >> 6)] &=
        ~(std::uint64_t{1} << (nv & 63));
  }
  if (commit_tracking_) {
    committed_.resize(executed_.size(), 0);
    for (std::int64_t nv = base; nv < base + n; ++nv) {
      committed_[static_cast<std::size_t>(nv >> 6)] &=
          ~(std::uint64_t{1} << (nv & 63));
    }
    committed_done_.push_back(0);
  }

  const JobId j = static_cast<JobId>(off_.size());
  off_.push_back(base);
  nodes_.push_back(n);
  ready_len_.push_back(0);
  done_.push_back(0);
  return j;
}

void ReadyArena::retire(JobId j) {
  const std::size_t i = static_cast<std::size_t>(j);
  OTSCHED_CHECK(i < off_.size(), "retire of unknown job " << j);
  OTSCHED_CHECK(done_[i] == nodes_[i],
                "retire of unfinished job " << j << " (" << done_[i] << "/"
                                            << nodes_[i] << " executed)");
  OTSCHED_DCHECK(ready_len_[i] == 0);
  // Under commit tracking a finished job must have been finish-committed
  // before its region is recycled (finished jobs are never rolled back).
  OTSCHED_DCHECK(!commit_tracking_ || committed_done_[i] == done_[i]);
  FreeRegion region{off_[i], nodes_[i]};
  if (region.size == 0) return;
  // Sorted insert + coalesce with both neighbours, so back-to-back
  // retirements of adjacent jobs merge into one reusable region.
  const auto at = std::lower_bound(
      free_.begin(), free_.end(), region.base,
      [](const FreeRegion& r, std::int64_t b) { return r.base < b; });
  const std::size_t idx =
      static_cast<std::size_t>(at - free_.begin());
  free_.insert(at, region);
  if (idx + 1 < free_.size() &&
      free_[idx].base + free_[idx].size == free_[idx + 1].base) {
    free_[idx].size += free_[idx + 1].size;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(idx) + 1);
  }
  if (idx > 0 &&
      free_[idx - 1].base + free_[idx - 1].size == free_[idx].base) {
    free_[idx - 1].size += free_[idx].size;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

std::int32_t ReadyArena::activate(JobId j) {
  const std::size_t i = static_cast<std::size_t>(j);
  NodeId* ready = ready_.data() + off_[i];
  NodeId* pos = pos_.data() + off_[i];
  std::int32_t& len = ready_len_[i];
  OTSCHED_DCHECK(len == 0);
  if (i + 1 < roots_off_.size()) {
    // Bulk-initialized job: precomputed root list.
    for (std::int64_t r = roots_off_[i]; r < roots_off_[i + 1]; ++r) {
      const NodeId v = roots_[static_cast<std::size_t>(r)];
      pos[static_cast<std::size_t>(v)] = static_cast<NodeId>(len);
      ready[static_cast<std::size_t>(len)] = v;
      ++len;
    }
  } else {
    // Appended job: scan the still-initial pending counters.  Same order
    // (increasing node id over the in-degree-0 nodes), one O(nodes) pass
    // that replaces the root-list pass bulk init would have paid.
    const std::int32_t n = nodes_[i];
    const std::int32_t* pending = pending_.data() + off_[i];
    for (NodeId v = 0; v < n; ++v) {
      if (pending[static_cast<std::size_t>(v)] == 0) {
        pos[static_cast<std::size_t>(v)] = static_cast<NodeId>(len);
        ready[static_cast<std::size_t>(len)] = v;
        ++len;
      }
    }
  }
  return len;
}

void ReadyArena::enable_commit_tracking() {
  if (commit_tracking_) return;
  commit_tracking_ = true;
  committed_.assign(executed_.size(), 0);
  committed_done_.assign(done_.size(), 0);
}

std::int64_t ReadyArena::checkpoint(JobId j) {
  OTSCHED_DCHECK(commit_tracking_);
  const std::size_t i = static_cast<std::size_t>(j);
  const std::int64_t delta = done_[i] - committed_done_[i];
  if (delta == 0) return 0;
  CopyRegionBits(committed_, executed_, off_[i], off_[i] + nodes_[i]);
  committed_done_[i] = done_[i];
  return delta;
}

std::int64_t ReadyArena::rollback_to_checkpoint(const Dag& dag, JobId j) {
  OTSCHED_DCHECK(commit_tracking_);
  const std::size_t i = static_cast<std::size_t>(j);
  const std::int64_t wasted = done_[i] - committed_done_[i];
  if (wasted == 0) return 0;
  const std::int64_t base = off_[i];
  const std::int32_t n = nodes_[i];
  CopyRegionBits(executed_, committed_, base, base + n);
  // Rebuild pending counts and the ready region from the restored
  // executed set, in increasing node id (the rollback determinism
  // contract in the header).  Committed sets are prefix-closed (they
  // snapshot a legal execution), so every restored node has all parents
  // restored and a zeroed pending count is consistent.
  std::int32_t* pending = pending_.data() + base;
  NodeId* ready = ready_.data() + base;
  NodeId* pos = pos_.data() + base;
  std::int32_t len = 0;
  for (NodeId v = 0; v < n; ++v) {
    pos[static_cast<std::size_t>(v)] = kInvalidNode;
    if (is_executed(j, v)) {
      pending[static_cast<std::size_t>(v)] = 0;
      continue;
    }
    std::int32_t p = 0;
    for (const NodeId u : dag.parents(v)) {
      if (!is_executed(j, u)) ++p;
    }
    pending[static_cast<std::size_t>(v)] = p;
    if (p == 0) {
      pos[static_cast<std::size_t>(v)] = static_cast<NodeId>(len);
      ready[static_cast<std::size_t>(len)] = v;
      ++len;
    }
  }
  ready_len_[i] = len;
  done_[i] = committed_done_[i];
  return wasted;
}

}  // namespace otsched
