#include "sim/svg.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace otsched {
namespace {

// HSL -> RGB for s = 0.55, l = 0.6, hue in degrees.
std::string HslToHex(double hue) {
  const double s = 0.55;
  const double l = 0.60;
  const double c = (1.0 - std::fabs(2.0 * l - 1.0)) * s;
  const double hp = hue / 60.0;
  const double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
  double r = 0;
  double g = 0;
  double b = 0;
  if (hp < 1) {
    r = c; g = x;
  } else if (hp < 2) {
    r = x; g = c;
  } else if (hp < 3) {
    g = c; b = x;
  } else if (hp < 4) {
    g = x; b = c;
  } else if (hp < 5) {
    r = x; b = c;
  } else {
    r = c; b = x;
  }
  const double m = l - c / 2.0;
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "#%02x%02x%02x",
                static_cast<int>((r + m) * 255.0 + 0.5),
                static_cast<int>((g + m) * 255.0 + 0.5),
                static_cast<int>((b + m) * 255.0 + 0.5));
  return buffer;
}

}  // namespace

std::string JobColor(JobId id) {
  // Golden-angle rotation scatters consecutive ids around the wheel.
  const double hue = std::fmod(static_cast<double>(id) * 137.50776, 360.0);
  return HslToHex(hue);
}

std::string RenderScheduleSvg(const Schedule& schedule,
                              const Instance& instance,
                              const SvgOptions& options) {
  const Time from = std::max<Time>(1, options.from_slot);
  const Time to = options.to_slot > 0
                      ? std::min(options.to_slot, schedule.horizon())
                      : schedule.horizon();
  const int cell = options.cell_size;
  OTSCHED_CHECK(cell >= 2);
  const Time slots = std::max<Time>(0, to - from + 1);
  const int m = schedule.m();
  const int margin_left = 34;
  const int margin_top = options.title.empty() ? 10 : 28;
  const int width =
      margin_left + static_cast<int>(slots) * cell + 10;
  const int height = margin_top + m * cell + 26;

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
      << height << "\">\n";
  out << "  <rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";
  if (!options.title.empty()) {
    out << "  <text x=\"" << margin_left << "\" y=\"18\" font-family=\""
        << "sans-serif\" font-size=\"13\">" << options.title << "</text>\n";
  }

  // Grid background (visible idle cells).
  out << "  <rect x=\"" << margin_left << "\" y=\"" << margin_top
      << "\" width=\"" << slots * cell << "\" height=\"" << m * cell
      << "\" fill=\"#eeeeee\" stroke=\"#bbbbbb\"/>\n";

  for (Time t = from; t <= to; ++t) {
    const auto slot = schedule.at(t);
    for (std::size_t row = 0; row < slot.size(); ++row) {
      const int x =
          margin_left + static_cast<int>(t - from) * cell;
      // Row 0 (first pick) at the BOTTOM, like the paper's figures.
      const int y = margin_top +
                    (m - 1 - static_cast<int>(row)) * cell;
      out << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << cell
          << "\" height=\"" << cell << "\" fill=\""
          << JobColor(slot[row].job)
          << "\" stroke=\"#ffffff\" stroke-width=\"1\"/>\n";
      if (options.label_nodes) {
        out << "  <text x=\"" << x + cell / 2 << "\" y=\""
            << y + cell / 2 + 3 << "\" font-family=\"sans-serif\" "
            << "font-size=\"" << cell / 2 << "\" text-anchor=\"middle\">"
            << slot[row].node << "</text>\n";
      }
    }
  }

  // Axis labels: processor names and a slot ruler every 5 slots.
  for (int p = 0; p < m; ++p) {
    out << "  <text x=\"4\" y=\""
        << margin_top + (m - 1 - p) * cell + cell / 2 + 3
        << "\" font-family=\"sans-serif\" font-size=\"9\">P" << p
        << "</text>\n";
  }
  for (Time t = from; t <= to; ++t) {
    if (t % 5 != 0) continue;
    out << "  <text x=\""
        << margin_left + static_cast<int>(t - from) * cell + cell / 2
        << "\" y=\"" << margin_top + m * cell + 14
        << "\" font-family=\"sans-serif\" font-size=\"9\" "
        << "text-anchor=\"middle\">" << t << "</text>\n";
  }
  out << "</svg>\n";
  (void)instance;  // job names could label a legend later
  return out.str();
}

void SaveScheduleSvg(const Schedule& schedule, const Instance& instance,
                     const std::string& path, const SvgOptions& options) {
  std::ofstream out(path);
  OTSCHED_CHECK(out.good(), "cannot open " << path << " for writing");
  out << RenderScheduleSvg(schedule, instance, options);
  OTSCHED_CHECK(out.good(), "write failure on " << path);
}

}  // namespace otsched
