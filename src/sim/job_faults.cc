#include "sim/job_faults.h"

#include <limits>
#include <sstream>
#include <vector>

#include "common/assert.h"

namespace otsched {

namespace {

/// splitmix64 — the same counter-based mixer sim/faults.cc uses for
/// processor faults, duplicated here so the two fault axes stay
/// dependency-free of each other.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, a, b).
double HashUnit(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = Mix64(seed ^ Mix64(a ^ Mix64(b)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Domain separator so `--faults` and `--job-faults` with the same seed
/// draw from independent streams.
constexpr std::uint64_t kJobFaultDomain = 0x4A42464155ULL;  // "JBFAU"

/// Strict all-digits parse (the sim/faults.cc idiom).
template <typename Int>
bool ParseNonNegative(const std::string& token, Int* out) {
  if (token.empty()) return false;
  Int value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const Int digit = static_cast<Int>(c - '0');
    if (value > (std::numeric_limits<Int>::max() - digit) / 10) return false;
    value = static_cast<Int>(value * 10 + digit);
  }
  *out = value;
  return true;
}

std::vector<std::string> SplitColons(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == ':') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

const char* ToString(JobFaultModel model) {
  switch (model) {
    case JobFaultModel::kNone:
      return "none";
    case JobFaultModel::kRandomCrash:
      return "random-crash";
    case JobFaultModel::kPeriodicCrash:
      return "periodic-crash";
    case JobFaultModel::kAdversarialLoss:
      return "adversarial-loss";
  }
  return "?";
}

std::optional<JobFaultModel> ParseJobFaultModel(std::string_view name) {
  if (name == "none") return JobFaultModel::kNone;
  if (name == "random-crash") return JobFaultModel::kRandomCrash;
  if (name == "periodic-crash") return JobFaultModel::kPeriodicCrash;
  if (name == "adversarial-loss") return JobFaultModel::kAdversarialLoss;
  return std::nullopt;
}

const char* ToString(CheckpointPolicy policy) {
  switch (policy) {
    case CheckpointPolicy::kOnCompletion:
      return "on-completion";
    case CheckpointPolicy::kEveryKSlots:
      return "every-slots";
    case CheckpointPolicy::kEveryKSubjobs:
      return "every-subjobs";
  }
  return "?";
}

std::string ToString(const JobFaultSpec& spec) {
  std::ostringstream out;
  out << ToString(spec.model);
  switch (spec.model) {
    case JobFaultModel::kNone:
      break;
    case JobFaultModel::kRandomCrash:
      out << ':' << spec.seed << ':' << spec.rate;
      break;
    case JobFaultModel::kPeriodicCrash:
      out << ':' << spec.seed << ':' << spec.period;
      break;
    case JobFaultModel::kAdversarialLoss:
      out << ':' << spec.seed << ':' << spec.threshold;
      break;
  }
  return out.str();
}

std::string CheckpointPolicyString(const JobFaultSpec& spec) {
  std::ostringstream out;
  out << ToString(spec.checkpoint);
  if (spec.checkpoint != CheckpointPolicy::kOnCompletion) {
    out << ':' << spec.checkpoint_every;
  }
  return out.str();
}

std::optional<JobFaultSpec> ParseJobFaultSpec(std::string_view text,
                                              std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<JobFaultSpec> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  const std::vector<std::string> parts = SplitColons(text);
  if (parts.size() > 3) {
    return fail("too many ':' fields in job-fault spec '" +
                std::string(text) + "' (want model[:seed[:param]])");
  }
  JobFaultSpec spec;
  const std::optional<JobFaultModel> model = ParseJobFaultModel(parts[0]);
  if (!model.has_value()) {
    return fail("unknown job-fault model '" + parts[0] +
                "' (want none|random-crash|periodic-crash|adversarial-loss)");
  }
  spec.model = *model;
  if (parts.size() >= 2) {
    if (!ParseNonNegative(parts[1], &spec.seed)) {
      return fail("malformed job-fault seed '" + parts[1] +
                  "' (want integer >= 0)");
    }
  }
  if (parts.size() >= 3) {
    switch (spec.model) {
      case JobFaultModel::kNone:
        return fail("job-fault model 'none' takes no parameters, got '" +
                    parts[2] + "'");
      case JobFaultModel::kRandomCrash: {
        std::size_t consumed = 0;
        double rate = 0.0;
        try {
          rate = std::stod(parts[2], &consumed);
        } catch (...) {
          consumed = 0;
        }
        if (consumed != parts[2].size() || rate < 0.0 || rate > 0.9) {
          return fail("malformed crash rate '" + parts[2] +
                      "' (want a number in [0, 0.9])");
        }
        spec.rate = rate;
        break;
      }
      case JobFaultModel::kPeriodicCrash:
        if (!ParseNonNegative(parts[2], &spec.period) || spec.period < 2) {
          return fail("malformed crash period '" + parts[2] +
                      "' (want integer >= 2)");
        }
        break;
      case JobFaultModel::kAdversarialLoss:
        if (!ParseNonNegative(parts[2], &spec.threshold) ||
            spec.threshold < 1) {
          return fail("malformed loss threshold '" + parts[2] +
                      "' (want integer >= 1)");
        }
        break;
    }
  }
  return spec;
}

bool ParseCheckpointPolicyInto(std::string_view text, JobFaultSpec* spec,
                               std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  const std::vector<std::string> parts = SplitColons(text);
  if (parts[0] == "on-completion") {
    if (parts.size() > 1) {
      return fail("checkpoint policy 'on-completion' takes no interval, "
                  "got '" + std::string(text) + "'");
    }
    spec->checkpoint = CheckpointPolicy::kOnCompletion;
    return true;
  }
  if (parts[0] == "every-slots" || parts[0] == "every-subjobs") {
    if (parts.size() != 2) {
      return fail("checkpoint policy '" + parts[0] +
                  "' needs an interval (want " + parts[0] + ":K)");
    }
    std::int64_t k = 0;
    if (!ParseNonNegative(parts[1], &k) || k < 1) {
      return fail("malformed checkpoint interval '" + parts[1] +
                  "' (want integer >= 1)");
    }
    spec->checkpoint = parts[0] == "every-slots"
                           ? CheckpointPolicy::kEveryKSlots
                           : CheckpointPolicy::kEveryKSubjobs;
    spec->checkpoint_every = k;
    return true;
  }
  return fail("unknown checkpoint policy '" + parts[0] +
              "' (want on-completion|every-slots:K|every-subjobs:K)");
}

void ValidateJobFaultSpec(const JobFaultSpec& spec) {
  if (!spec.active()) return;
  OTSCHED_CHECK(spec.rate >= 0.0 && spec.rate <= 0.9,
                "job-fault rate must be in [0, 0.9], got " << spec.rate);
  OTSCHED_CHECK(spec.period >= 2,
                "job-fault period must be >= 2, got " << spec.period);
  OTSCHED_CHECK(spec.threshold >= 1,
                "job-fault threshold must be >= 1, got " << spec.threshold);
  OTSCHED_CHECK(spec.checkpoint_every >= 1,
                "checkpoint interval must be >= 1, got "
                    << spec.checkpoint_every);
}

JobFaultSequencer::JobFaultSequencer(const JobFaultSpec& spec)
    : spec_(spec) {
  ValidateJobFaultSpec(spec_);
}

bool JobFaultSequencer::crashes(Time slot, JobId job, Time release,
                                std::int64_t volatile_work) const {
  if (volatile_work <= 0) return false;  // nothing to lose
  switch (spec_.model) {
    case JobFaultModel::kNone:
      return false;
    case JobFaultModel::kRandomCrash:
      return HashUnit(spec_.seed, static_cast<std::uint64_t>(slot),
                      kJobFaultDomain ^ static_cast<std::uint64_t>(job)) <
             spec_.rate;
    case JobFaultModel::kPeriodicCrash: {
      const Time age = slot - release;
      return age > 0 && age % spec_.period == 0;
    }
    case JobFaultModel::kAdversarialLoss:
      return volatile_work >= spec_.threshold;
  }
  return false;
}

bool JobFaultSequencer::checkpoint_due(Time slot,
                                       std::int64_t volatile_work) const {
  if (volatile_work <= 0) return false;
  switch (spec_.checkpoint) {
    case CheckpointPolicy::kOnCompletion:
      return false;
    case CheckpointPolicy::kEveryKSlots:
      return slot % spec_.checkpoint_every == 0;
    case CheckpointPolicy::kEveryKSubjobs:
      return volatile_work >= spec_.checkpoint_every;
  }
  return false;
}

}  // namespace otsched
