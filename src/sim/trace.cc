#include "sim/trace.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace otsched {

void EventTrace::add(TraceEvent event) {
  events_.push_back(event);
}

std::vector<TraceEvent> EventTrace::of_kind(TraceEventKind kind) const {
  std::vector<TraceEvent> result;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) result.push_back(event);
  }
  return result;
}

std::string EventTrace::to_text() const {
  std::ostringstream out;
  for (const TraceEvent& event : events_) {
    out << event.slot << ' ';
    switch (event.kind) {
      case TraceEventKind::kArrival:
        out << "arrive " << event.job;
        break;
      case TraceEventKind::kExecute:
        out << "exec " << event.job << ' ' << event.node;
        break;
      case TraceEventKind::kComplete:
        out << "done " << event.job;
        break;
    }
    out << '\n';
  }
  return out.str();
}

EventTrace EventTrace::from_text(const std::string& text) {
  EventTrace trace;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    TraceEvent event;
    std::string kind;
    OTSCHED_CHECK(static_cast<bool>(fields >> event.slot >> kind),
                  "trace line " << line_number << " malformed");
    if (kind == "arrive") {
      event.kind = TraceEventKind::kArrival;
      OTSCHED_CHECK(static_cast<bool>(fields >> event.job),
                    "trace line " << line_number);
    } else if (kind == "exec") {
      event.kind = TraceEventKind::kExecute;
      OTSCHED_CHECK(static_cast<bool>(fields >> event.job >> event.node),
                    "trace line " << line_number);
    } else if (kind == "done") {
      event.kind = TraceEventKind::kComplete;
      OTSCHED_CHECK(static_cast<bool>(fields >> event.job),
                    "trace line " << line_number);
    } else {
      OTSCHED_CHECK(false, "trace line " << line_number << ": bad kind '"
                                         << kind << "'");
    }
    trace.add(event);
  }
  return trace;
}

EventTrace DeriveTrace(const Schedule& schedule, const Instance& instance) {
  EventTrace trace;
  // Arrivals ordered by (release, id); merged into the slot stream.
  std::vector<JobId> arrivals = instance.release_order();
  std::size_t next_arrival = 0;

  std::vector<std::int64_t> remaining(
      static_cast<std::size_t>(instance.job_count()));
  for (JobId id = 0; id < instance.job_count(); ++id) {
    remaining[static_cast<std::size_t>(id)] = instance.job(id).work();
  }

  for (Time t = 1; t <= schedule.horizon(); ++t) {
    while (next_arrival < arrivals.size() &&
           instance.job(arrivals[next_arrival]).release() < t) {
      trace.add(TraceEvent{t, TraceEventKind::kArrival,
                           arrivals[next_arrival], kInvalidNode});
      ++next_arrival;
    }
    for (const SubjobRef& ref : schedule.at(t)) {
      trace.add(TraceEvent{t, TraceEventKind::kExecute, ref.job, ref.node});
    }
    // Completions after the slot's executions, in job order.
    std::vector<JobId> done_now;
    for (const SubjobRef& ref : schedule.at(t)) {
      auto& left = remaining[static_cast<std::size_t>(ref.job)];
      --left;
      if (left == 0) done_now.push_back(ref.job);
    }
    std::sort(done_now.begin(), done_now.end());
    for (JobId id : done_now) {
      trace.add(TraceEvent{t, TraceEventKind::kComplete, id, kInvalidNode});
    }
  }
  return trace;
}

std::int64_t FirstDivergence(const EventTrace& a, const EventTrace& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a.events()[i] == b.events()[i])) {
      return static_cast<std::int64_t>(i);
    }
  }
  if (a.size() != b.size()) return static_cast<std::int64_t>(n);
  return -1;
}

}  // namespace otsched
