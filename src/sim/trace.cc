#include "sim/trace.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/assert.h"

namespace otsched {

void EventTrace::add(TraceEvent event) {
  events_.push_back(event);
}

std::vector<TraceEvent> EventTrace::of_kind(TraceEventKind kind) const {
  std::vector<TraceEvent> result;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) result.push_back(event);
  }
  return result;
}

std::string EventTrace::to_text() const {
  std::ostringstream out;
  for (const TraceEvent& event : events_) {
    out << event.slot << ' ';
    switch (event.kind) {
      case TraceEventKind::kArrival:
        out << "arrive " << event.job;
        break;
      case TraceEventKind::kExecute:
        out << "exec " << event.job << ' ' << event.node;
        break;
      case TraceEventKind::kComplete:
        out << "done " << event.job;
        break;
    }
    out << '\n';
  }
  return out.str();
}

namespace {

/// Strict token-to-integer parse: all digits, no sign, fits the target.
template <typename Int>
bool ParseNonNegative(const std::string& token, Int* out) {
  if (token.empty()) return false;
  Int value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const Int digit = static_cast<Int>(c - '0');
    if (value > (std::numeric_limits<Int>::max() - digit) / 10) return false;
    value = static_cast<Int>(value * 10 + digit);
  }
  *out = value;
  return true;
}

bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

std::optional<EventTrace> EventTrace::try_from_text(const std::string& text,
                                                    std::string* error) {
  EventTrace trace;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& what) -> std::optional<EventTrace> {
    if (error != nullptr) {
      *error = "trace line " + std::to_string(line_number) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (IsBlank(line)) continue;
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(token);

    TraceEvent event;
    if (tokens.size() < 2) return fail("malformed (needs <slot> <kind> ...)");
    if (!ParseNonNegative(tokens[0], &event.slot) || event.slot < 1) {
      return fail("malformed slot '" + tokens[0] + "' (want integer >= 1)");
    }
    const std::string& kind = tokens[1];
    std::size_t expected = 0;
    if (kind == "arrive") {
      event.kind = TraceEventKind::kArrival;
      expected = 3;
    } else if (kind == "exec") {
      event.kind = TraceEventKind::kExecute;
      expected = 4;
    } else if (kind == "done") {
      event.kind = TraceEventKind::kComplete;
      expected = 3;
    } else {
      return fail("bad kind '" + kind + "' (want arrive|exec|done)");
    }
    if (tokens.size() < expected) {
      return fail("malformed " + kind + " event (missing " +
                  (expected == 4 && tokens.size() == 3 ? "node" : "job") +
                  ")");
    }
    if (tokens.size() > expected) {
      return fail("trailing token '" + tokens[expected] + "'");
    }
    if (!ParseNonNegative(tokens[2], &event.job)) {
      return fail("malformed job id '" + tokens[2] + "'");
    }
    if (expected == 4 && !ParseNonNegative(tokens[3], &event.node)) {
      return fail("malformed node id '" + tokens[3] + "'");
    }
    trace.add(event);
  }
  return trace;
}

EventTrace EventTrace::from_text(const std::string& text) {
  std::string error;
  std::optional<EventTrace> trace = try_from_text(text, &error);
  OTSCHED_CHECK(trace.has_value(), error);
  return *std::move(trace);
}

std::optional<EventTrace> EventTrace::try_from_file(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = path + ": cannot open trace file";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    if (error != nullptr) *error = path + ": read error";
    return std::nullopt;
  }
  std::string parse_error;
  std::optional<EventTrace> trace = try_from_text(buffer.str(), &parse_error);
  if (!trace.has_value() && error != nullptr) {
    *error = path + ": " + parse_error;
  }
  return trace;
}

bool EventTrace::to_file(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    if (error != nullptr) *error = path + ": cannot open for writing";
    return false;
  }
  out << to_text();
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = path + ": write error";
    return false;
  }
  return true;
}

EventTrace DeriveTrace(const Schedule& schedule, const Instance& instance) {
  EventTrace trace;
  // Arrivals ordered by (release, id); merged into the slot stream.
  std::vector<JobId> arrivals = instance.release_order();
  std::size_t next_arrival = 0;

  std::vector<std::int64_t> remaining(
      static_cast<std::size_t>(instance.job_count()));
  for (JobId id = 0; id < instance.job_count(); ++id) {
    remaining[static_cast<std::size_t>(id)] = instance.job(id).work();
  }

  for (Time t = 1; t <= schedule.horizon(); ++t) {
    while (next_arrival < arrivals.size() &&
           instance.job(arrivals[next_arrival]).release() < t) {
      trace.add(TraceEvent{t, TraceEventKind::kArrival,
                           arrivals[next_arrival], kInvalidNode});
      ++next_arrival;
    }
    for (const SubjobRef& ref : schedule.at(t)) {
      trace.add(TraceEvent{t, TraceEventKind::kExecute, ref.job, ref.node});
    }
    // Completions after the slot's executions, in job order.
    std::vector<JobId> done_now;
    for (const SubjobRef& ref : schedule.at(t)) {
      auto& left = remaining[static_cast<std::size_t>(ref.job)];
      --left;
      if (left == 0) done_now.push_back(ref.job);
    }
    std::sort(done_now.begin(), done_now.end());
    for (JobId id : done_now) {
      trace.add(TraceEvent{t, TraceEventKind::kComplete, id, kInvalidNode});
    }
  }
  return trace;
}

std::int64_t FirstDivergence(const EventTrace& a, const EventTrace& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a.events()[i] == b.events()[i])) {
      return static_cast<std::int64_t>(i);
    }
  }
  if (a.size() != b.size()) return static_cast<std::int64_t>(n);
  return -1;
}

}  // namespace otsched
