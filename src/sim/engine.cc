#include "sim/engine.h"

#include <algorithm>

#include "common/assert.h"
#include "common/timer.h"
#include "sim/ready_state.h"

namespace otsched {

/// Engine internals.  Lives in the .cc: users interact through Simulate().
///
/// The hot path is fully incremental (see sim/ready_state.h): per-node
/// pending-predecessor counters are maintained as deltas when a subjob
/// executes, roots are precomputed once at construction, and the alive
/// list is only compacted in slots where a job actually finished.  After
/// construction no full-DAG rescan ever happens; per-slot cost is
/// O(picks + arrivals), not O(sum of DAG sizes).
///
/// Three saturation measures on top of the incremental bookkeeping:
///  * all per-job state lives in one ReadyArena (a handful of flat
///    arrays per RUN, not per-job heap objects), so a run performs O(1)
///    allocations total;
///  * schedulers read the world through the EngineHotState fast path
///    (sim/engine.h): ready/alive/progress queries are inline array
///    reads, no virtual dispatch;
///  * the slot loop is compiled per (observed, record-full) mode, so
///    unobserved flow-only runs carry no observer or schedule branches.
///
/// ReferenceSimulate (engine_reference.cc) preserves the seed
/// implementation; the engine-equivalence gate proves both produce
/// bit-identical schedules.
class Engine final : public EngineBackend {
 public:
  Engine(const Instance& instance, int m, Scheduler& scheduler,
         const RunContext& context)
      : instance_(instance),
        m_(m),
        scheduler_(scheduler),
        observer_(context.observer),
        batch_capacity_(context.batch_capacity),
        sequencer_(context.options.faults, m) {
    OTSCHED_CHECK(m >= 1);
    const SimOptions& options = context.options;
    clairvoyant_ =
        options.clairvoyance == ClairvoyanceOverride::kPolicyDefault
            ? scheduler.requires_clairvoyance()
            : options.clairvoyance == ClairvoyanceOverride::kAllow;
    record_full_ = options.record == RecordMode::kFull;
    capacity_ = m_;
    if (sequencer_.active()) {
      OTSCHED_CHECK(scheduler.supports_fluctuating_capacity(),
                    "scheduler '" << scheduler.name()
                                  << "' does not support a fluctuating "
                                     "per-slot capacity (fault model "
                                  << ToString(options.faults.model) << ")");
    }
    max_horizon_ = options.max_horizon;
    if (max_horizon_ == 0) {
      // Any policy that executes at least one ready subjob whenever one
      // exists finishes well within this bound; schedulers that stall
      // (e.g. a broken Algorithm A window plan) hit the check instead of
      // hanging the process.
      max_horizon_ = instance.max_release() + 4 * instance.total_work() +
                     instance.max_span() + 1024;
      if (sequencer_.active()) {
        // Faulted slots can run far below m (or at zero): leave room for
        // the outage time before declaring a scheduler stalled.  Rates
        // are capped at 0.9, so 64x work is generous.
        max_horizon_ = instance.max_release() + 64 * instance.total_work() +
                       instance.max_span() + 65536;
      }
    }
  }

  SimResult run();

  // --- EngineBackend implementation ---
  Time slot() const override { return slot_; }
  int m() const override { return m_; }
  int capacity() const override { return capacity_; }
  JobId job_count() const override { return instance_.job_count(); }
  std::span<const JobId> alive() const override { return alive_; }
  Time release(JobId id) const override {
    return release_[static_cast<std::size_t>(id)];
  }
  bool arrived(JobId id) const override { return release(id) < slot_; }
  bool finished(JobId id) const override {
    return arena_.done(id) == work_[static_cast<std::size_t>(id)];
  }
  std::span<const NodeId> ready(JobId id) const override {
    return arena_.ready(id);
  }
  std::int64_t remaining_work(JobId id) const override {
    return work_[static_cast<std::size_t>(id)] - arena_.done(id);
  }
  std::int64_t done_work(JobId id) const override { return arena_.done(id); }
  bool executed(JobId id, NodeId v) const override {
    return arena_.is_executed(id, v);
  }
  const Dag& dag(JobId id) const override {
    OTSCHED_CHECK(clairvoyant_,
                  "non-clairvoyant scheduler '"
                      << scheduler_.name() << "' asked for the DAG of job "
                      << id);
    OTSCHED_CHECK(arrived(id), "DAG of job " << id
                                             << " requested before arrival");
    return *dags_[static_cast<std::size_t>(id)];
  }
  const DagMetrics& metrics(JobId id) const override {
    OTSCHED_CHECK(clairvoyant_,
                  "non-clairvoyant scheduler '"
                      << scheduler_.name()
                      << "' asked for metrics of job " << id);
    OTSCHED_CHECK(arrived(id),
                  "metrics of job " << id << " requested before arrival");
    return instance_.job(id).metrics();
  }
  bool clairvoyant_allowed() const override { return clairvoyant_; }

 private:
  template <bool kObserved, bool kRecordFull>
  void run_loop(const SchedulerView& view, std::vector<SubjobRef>& picks,
                SimResult& result);

  template <bool kObserved>
  void deliver_arrivals(const SchedulerView& view);

  const Instance& instance_;
  int m_;
  Scheduler& scheduler_;
  RunObserver* observer_ = nullptr;  // borrowed; null = uninstrumented run
  std::size_t batch_capacity_;       // event-ring size (RunContext)
  SlotEventEmitter emitter_;         // batched event stream writer
  bool clairvoyant_ = false;
  bool record_full_ = true;          // materialize the Schedule?
  Time max_horizon_ = 0;
  BudgetSequencer sequencer_;        // per-slot capacity source
  int capacity_ = 1;                 // current slot's budget, m_t <= m

  Time slot_ = 0;
  Time last_busy_slot_ = 0;          // online horizon (== schedule horizon)
  FlowAccumulator flows_;            // online flow accounting, both modes
  ReadyArena arena_;                 // SoA per-job ready/executed state
  EngineHotState hot_;               // SchedulerView fast-path tables
  std::vector<const Dag*> dags_;      // flat caches: no Job indirection
  std::vector<std::int64_t> work_;    //   in the per-slot loop
  std::vector<Time> release_;
  std::vector<JobId> alive_;          // arrived, unfinished, FIFO order
  std::vector<JobId> arrival_order_;  // all jobs by (release, id)
  std::size_t next_arrival_ = 0;
  std::int64_t executed_total_ = 0;
  std::int64_t ready_width_ = 0;      // sum of ready counts over alive jobs
  bool time_picks_ = false;           // observer wants pick_seconds?
  int finished_this_slot_ = 0;        // gates alive-list compaction
  std::vector<JobId> completed_now_;  // observer-only: jobs finished this slot
};

template <bool kObserved>
void Engine::deliver_arrivals(const SchedulerView& view) {
  while (next_arrival_ < arrival_order_.size()) {
    const JobId id = arrival_order_[next_arrival_];
    if (release_[static_cast<std::size_t>(id)] >= slot_) break;
    ++next_arrival_;
    alive_.push_back(id);
    hot_.alive = alive_.data();
    hot_.alive_count = alive_.size();
    // Precomputed roots become ready on arrival (increasing node id, the
    // same order the seed engine's arrival rescan produced).
    ready_width_ += arena_.activate(id);
    scheduler_.on_arrival(id, view);
    if constexpr (kObserved) emitter_.arrival(slot_, id);
  }
}

template <bool kObserved, bool kRecordFull>
void Engine::run_loop(const SchedulerView& view,
                      std::vector<SubjobRef>& picks, SimResult& result) {
  const JobId n = instance_.job_count();
  const std::int64_t total_work = instance_.total_work();

  slot_ = 1;
  while (executed_total_ < total_work) {
    // Fast-forward across empty stretches when nothing is alive.
    if (alive_.empty() && next_arrival_ < arrival_order_.size()) {
      const Time next_release =
          release_[static_cast<std::size_t>(arrival_order_[next_arrival_])];
      slot_ = std::max(slot_, next_release + 1);
    }
    OTSCHED_CHECK(slot_ <= max_horizon_,
                  "scheduler '" << scheduler_.name()
                                << "' exceeded the horizon bound "
                                << max_horizon_);
    hot_.slot = slot_;

    if constexpr (kObserved) emitter_.slot_begin(slot_);

    deliver_arrivals<kObserved>(view);

    if (sequencer_.active()) {
      // Capacity resolves after the slot's arrivals (the adversarial dip
      // watches the post-arrival alive count) and before the pick.
      const int cap = sequencer_.capacity(
          slot_, static_cast<std::int64_t>(alive_.size()));
      if (cap != capacity_) {
        capacity_ = cap;
        hot_.capacity = capacity_;
        if constexpr (kObserved) emitter_.capacity_change(slot_, capacity_);
      }
      if (capacity_ < m_) {
        ++result.stats.faulted_slots;
        result.stats.capacity_shortfall += m_ - capacity_;
      }
    }

    picks.clear();
    double pick_seconds = 0.0;
    if constexpr (kObserved) {
      if (time_picks_) {
        WallTimer pick_timer;
        scheduler_.pick(view, picks);
        pick_seconds = pick_timer.elapsed_seconds();
      } else {
        scheduler_.pick(view, picks);
      }
    } else {
      scheduler_.pick(view, picks);
    }

    OTSCHED_CHECK(static_cast<int>(picks.size()) <= capacity_,
                  "scheduler '" << scheduler_.name() << "' picked "
                                << picks.size() << " subjobs with capacity "
                                << capacity_ << " (m = " << m_
                                << ") at slot " << slot_);
    // Validate readiness and uniqueness, then execute.
    for (const SubjobRef& ref : picks) {
      OTSCHED_CHECK(ref.job >= 0 && ref.job < n,
                    "pick references unknown job " << ref.job);
      const std::size_t j = static_cast<std::size_t>(ref.job);
      OTSCHED_CHECK(ref.node >= 0 && ref.node < dags_[j]->node_count(),
                    "pick references unknown node " << ref.node << " of job "
                                                    << ref.job);
      OTSCHED_CHECK(arrived(ref.job), "job " << ref.job
                                             << " picked before arrival at slot "
                                             << slot_);
      OTSCHED_CHECK(!arena_.is_executed(ref.job, ref.node),
                    "job " << ref.job << " node " << ref.node
                           << " picked twice (slot " << slot_ << ")");
      OTSCHED_CHECK(arena_.is_ready(ref.job, ref.node),
                    "job " << ref.job << " node " << ref.node
                           << " is not ready at slot " << slot_);
    }
    if constexpr (kObserved) {
      // The pre-execution flush: picks are final, the backend still shows
      // the state the scheduler saw, and the event carries the incremental
      // alive/ready-width counters observers used to recompute per pick.
      emitter_.pick_block(slot_, picks,
                          static_cast<std::int64_t>(alive_.size()),
                          ready_width_, pick_seconds);
    }
    // Same-slot duplicate picks are caught by the executed flag flipping
    // during execution below.
    for (const SubjobRef& ref : picks) {
      OTSCHED_CHECK(!arena_.is_executed(ref.job, ref.node),
                    "duplicate pick of job " << ref.job << " node "
                                             << ref.node << " in slot "
                                             << slot_);
      const std::size_t j = static_cast<std::size_t>(ref.job);
      // Children may become ready — but only from the NEXT slot, which is
      // fine because picks for the current slot were already validated
      // against the pre-execution ready sets.
      ready_width_ += arena_.execute(*dags_[j], ref.job, ref.node);
      ++executed_total_;
      if (arena_.done(ref.job) == work_[j]) {
        ++finished_this_slot_;
        if constexpr (kObserved) completed_now_.push_back(ref.job);
      }
      flows_.record(slot_, ref.job);
      if constexpr (kRecordFull) result.schedule->place(slot_, ref);
    }
    if constexpr (kObserved) {
      if (!completed_now_.empty()) {
        // Ascending job id, matching DeriveTrace's completion order.
        std::sort(completed_now_.begin(), completed_now_.end());
        for (const JobId id : completed_now_) emitter_.complete(slot_, id);
        completed_now_.clear();
      }
      emitter_.slot_end();
    }
    if (!picks.empty()) {
      ++result.stats.busy_slots;
      last_busy_slot_ = slot_;
    }
    if (finished_this_slot_ > 0) {
      // The seed engine swept the alive list every slot; sweeping only
      // when a job finished is observationally identical (a sweep with no
      // finished job removes nothing) and drops the per-slot cost from
      // O(alive) to O(1) outside finishing slots.
      std::erase_if(alive_, [this](JobId id) { return finished(id); });
      hot_.alive = alive_.data();
      hot_.alive_count = alive_.size();
      finished_this_slot_ = 0;
    }
    ++slot_;
  }
}

SimResult Engine::run() {
  const JobId n = instance_.job_count();
  dags_.resize(static_cast<std::size_t>(n));
  work_.resize(static_cast<std::size_t>(n));
  release_.resize(static_cast<std::size_t>(n));
  for (JobId id = 0; id < n; ++id) {
    const Job& job = instance_.job(id);
    OTSCHED_CHECK(job.dag().node_count() >= 1,
                  "job " << id << " has no subjobs");
    const std::size_t j = static_cast<std::size_t>(id);
    dags_[j] = &job.dag();
    work_[j] = job.work();
    release_[j] = job.release();
  }
  arena_.init(dags_);
  arrival_order_ = instance_.release_order();
  alive_.reserve(static_cast<std::size_t>(n));

  hot_.m = m_;
  hot_.capacity = capacity_;
  hot_.alive = alive_.data();
  hot_.alive_count = 0;
  hot_.ready_base = arena_.ready_storage();
  hot_.node_off = arena_.node_offsets();
  hot_.ready_len = arena_.ready_lengths();
  hot_.done = arena_.done_counts();
  hot_.work = work_.data();
  hot_.release = release_.data();

  scheduler_.reset(m_, n);
  SchedulerView view(*this, &hot_);
  flows_.init(instance_);
  SimResult result;
  if (record_full_) result.schedule.emplace(m_);

  std::vector<SubjobRef> picks;
  picks.reserve(static_cast<std::size_t>(m_));

  emitter_.reset(this, observer_, batch_capacity_);
  time_picks_ = observer_ != nullptr && observer_->wants_pick_timing();
  if (observer_ != nullptr) observer_->on_run_begin(*this);

  // One loop instantiation per (observed, record-full) mode: unobserved
  // flow-only runs — the sweep/adversary configuration — compile to a
  // loop with no observer or schedule code at all.
  if (observer_ != nullptr) {
    if (record_full_) {
      run_loop<true, true>(view, picks, result);
    } else {
      run_loop<true, false>(view, picks, result);
    }
  } else {
    if (record_full_) {
      run_loop<false, true>(view, picks, result);
    } else {
      run_loop<false, false>(view, picks, result);
    }
  }

  // Stats and flows are computed online in BOTH record modes (identical
  // by construction; ComputeFlows over the materialized schedule yields
  // the same numbers, as the engine-equivalence gate proves).
  result.stats.horizon = last_busy_slot_;
  result.stats.executed_subjobs = executed_total_;
  result.stats.idle_processor_slots =
      static_cast<std::int64_t>(m_) * last_busy_slot_ - executed_total_;
  result.flows = flows_.finish();
  if (observer_ != nullptr) observer_->on_finish(result);
  return result;
}

// --- SchedulerView cold-path forwarding (hot accessors are inline in
// engine.h; these either gate clairvoyance or are off the pick path) ---

JobId SchedulerView::job_count() const { return backend_.job_count(); }
bool SchedulerView::arrived(JobId id) const { return backend_.arrived(id); }
bool SchedulerView::executed(JobId id, NodeId v) const {
  return backend_.executed(id, v);
}
const Dag& SchedulerView::dag(JobId id) const { return backend_.dag(id); }
const DagMetrics& SchedulerView::metrics(JobId id) const {
  return backend_.metrics(id);
}
bool SchedulerView::clairvoyant_allowed() const {
  return backend_.clairvoyant_allowed();
}

const Schedule& SimResult::full_schedule() const {
  OTSCHED_CHECK(schedule.has_value(),
                "full_schedule() on a flow-only run (RecordMode::kFlowOnly "
                "records no Schedule; rerun with RecordMode::kFull)");
  return *schedule;
}

SimResult Simulate(const Instance& instance, int m, Scheduler& scheduler,
                   const RunContext& context) {
  Engine engine(instance, m, scheduler, context);
  return engine.run();
}

}  // namespace otsched
