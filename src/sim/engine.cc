#include "sim/engine.h"

#include "common/assert.h"
#include "sim/driver.h"

namespace otsched {

// --- SchedulerView cold-path forwarding (hot accessors are inline in
// engine.h; these either gate clairvoyance or are off the pick path) ---

JobId SchedulerView::job_count() const { return backend_.job_count(); }
bool SchedulerView::arrived(JobId id) const { return backend_.arrived(id); }
bool SchedulerView::executed(JobId id, NodeId v) const {
  return backend_.executed(id, v);
}
const Dag& SchedulerView::dag(JobId id) const { return backend_.dag(id); }
const DagMetrics& SchedulerView::metrics(JobId id) const {
  return backend_.metrics(id);
}
bool SchedulerView::clairvoyant_allowed() const {
  return backend_.clairvoyant_allowed();
}

const Schedule& SimResult::full_schedule() const {
  OTSCHED_CHECK(schedule.has_value(),
                "full_schedule() on a flow-only run (RecordMode::kFlowOnly "
                "records no Schedule; rerun with RecordMode::kFull)");
  return *schedule;
}

/// Batch runs are the tick engine driven to completion: Simulate is a
/// thin SimDriver loop (bulk submit + drain), so the batch path and the
/// incremental path are the same compiled code — the bit-identity the
/// driver-equivalence suite then re-proves slot by slot for advance(1)
/// stepping.  The engine internals live in sim/driver.{h,cc}.
SimResult Simulate(const Instance& instance, int m, Scheduler& scheduler,
                   const RunContext& context) {
  SimDriver driver(m, scheduler, context);
  driver.submit_all(instance);
  return driver.drain();
}

}  // namespace otsched
