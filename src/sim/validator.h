// Feasibility checking against the four schedule axioms of Section 3:
//
//   (1) at most m subjobs run per slot,
//   (2) every subjob of every job is scheduled exactly once,
//   (3) precedence: for every edge (j, k), slot(j) < slot(k),
//   (4) releases: a subjob of a job released at r runs at a slot > r.
//
// Every schedule produced anywhere in the library can be re-checked with
// this validator; tests do so routinely, which means a policy bug cannot
// silently corrupt an experiment.
#pragma once

#include <string>

#include "job/instance.h"
#include "sim/schedule.h"

namespace otsched {

struct ValidationReport {
  bool feasible = true;
  /// Empty when feasible; otherwise a description of the FIRST violation
  /// found (axiom number, job, node, slot).
  std::string violation;

  explicit operator bool() const { return feasible; }
};

/// Checks all four axioms.  If `require_complete` is false, axiom (2) is
/// relaxed to "at most once" (useful for validating prefixes of runs).
ValidationReport ValidateSchedule(const Schedule& schedule,
                                  const Instance& instance,
                                  bool require_complete = true);

}  // namespace otsched
