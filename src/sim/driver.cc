#include "sim/driver.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/assert.h"
#include "common/timer.h"

namespace otsched {

SimDriver::SimDriver(int m, Scheduler& scheduler, const RunContext& context)
    : m_(m),
      scheduler_(scheduler),
      observer_(context.observer),
      batch_capacity_(context.batch_capacity),
      sequencer_(context.options.faults, m),
      job_faults_(context.options.job_faults) {
  OTSCHED_CHECK(m >= 1);
  const SimOptions& options = context.options;
  clairvoyant_ =
      options.clairvoyance == ClairvoyanceOverride::kPolicyDefault
          ? scheduler.requires_clairvoyance()
          : options.clairvoyance == ClairvoyanceOverride::kAllow;
  record_full_ = options.record == RecordMode::kFull;
  capacity_ = m_;
  if (sequencer_.active()) {
    OTSCHED_CHECK(scheduler.supports_fluctuating_capacity(),
                  "scheduler '" << scheduler.name()
                                << "' does not support a fluctuating "
                                   "per-slot capacity (fault model "
                                << ToString(options.faults.model) << ")");
  }
  if (job_faults_.active()) {
    OTSCHED_CHECK(options.record == RecordMode::kFlowOnly,
                  "job faults (model "
                      << ToString(options.job_faults.model)
                      << ") require RecordMode::kFlowOnly: re-executed "
                         "subjobs are unrepresentable in a materialized "
                         "Schedule");
    OTSCHED_CHECK(scheduler.supports_fluctuating_capacity(),
                  "scheduler '" << scheduler.name()
                                << "' does not support job faults (job-fault "
                                   "model "
                                << ToString(options.job_faults.model)
                                << "): rollbacks invalidate precomputed "
                                   "window plans");
    OTSCHED_CHECK(scheduler.supports_job_rollback(),
                  "scheduler '" << scheduler.name()
                                << "' does not support job faults (job-fault "
                                   "model "
                                << ToString(options.job_faults.model)
                                << "): its internal queues would dispatch "
                                   "rolled-back subjobs");
  }
  options_horizon_ = options.max_horizon;
}

Time SimDriver::horizon_bound() const {
  if (options_horizon_ > 0) return options_horizon_;
  // Any policy that executes at least one ready subjob whenever one
  // exists finishes well within this bound; schedulers that stall
  // (e.g. a broken Algorithm A window plan) hit the check instead of
  // hanging the process.  Recomputed from the running aggregates so a
  // stream's bound grows with its submissions.
  if (sequencer_.active() || job_faults_.active()) {
    // Faulted slots can run far below m (or at zero), and job faults
    // re-execute rolled-back work: leave room for the outage/re-execution
    // time before declaring a scheduler stalled.  Crash rates are capped
    // at 0.9, so 64x work is generous; a job-fault spec that crashes
    // faster than its checkpoint policy commits (livelock) hits this
    // bound loudly, which is the intended stall detection.
    return max_release_ + 64 * total_work_ + max_span_ + 65536;
  }
  return max_release_ + 4 * total_work_ + max_span_ + 1024;
}

const Dag& SimDriver::dag(JobId id) const {
  OTSCHED_CHECK(clairvoyant_,
                "non-clairvoyant scheduler '"
                    << scheduler_.name() << "' asked for the DAG of job "
                    << id);
  OTSCHED_CHECK(arrived(id), "DAG of job " << id
                                           << " requested before arrival");
  const Dag* dag = dags_[static_cast<std::size_t>(id)];
  OTSCHED_CHECK(dag != nullptr, "DAG of job " << id
                                              << " requested after retire");
  return *dag;
}

const DagMetrics& SimDriver::metrics(JobId id) const {
  OTSCHED_CHECK(clairvoyant_,
                "non-clairvoyant scheduler '"
                    << scheduler_.name() << "' asked for metrics of job "
                    << id);
  OTSCHED_CHECK(arrived(id),
                "metrics of job " << id << " requested before arrival");
  const Job* job = jobs_[static_cast<std::size_t>(id)];
  OTSCHED_CHECK(job != nullptr, "metrics of job " << id
                                                  << " requested after retire");
  return job->metrics();
}

void SimDriver::submit_all(const Instance& instance) {
  OTSCHED_CHECK(!begun_ && jobs_.empty(),
                "submit_all requires a fresh driver (submit jobs "
                "individually to extend a run)");
  const JobId n = instance.job_count();
  jobs_.resize(static_cast<std::size_t>(n));
  dags_.resize(static_cast<std::size_t>(n));
  work_.resize(static_cast<std::size_t>(n));
  release_.resize(static_cast<std::size_t>(n));
  for (JobId id = 0; id < n; ++id) {
    const Job& job = instance.job(id);
    OTSCHED_CHECK(job.dag().node_count() >= 1,
                  "job " << id << " has no subjobs");
    const std::size_t j = static_cast<std::size_t>(id);
    jobs_[j] = &job;
    dags_[j] = &job.dag();
    work_[j] = job.work();
    release_[j] = job.release();
    flows_.add_job(job.work(), job.release());
    total_work_ += job.work();
  }
  if (job_faults_.active()) {
    arena_.enable_commit_tracking();
    wasted_.assign(static_cast<std::size_t>(n), 0);
  }
  arena_.init(dags_);
  arrival_order_ = instance.release_order();
  max_release_ = instance.max_release();
  max_span_ = instance.max_span();
}

void SimDriver::warm_start(Time resume_slot) {
  OTSCHED_CHECK(!begun_ && jobs_.empty(),
                "warm_start requires a fresh driver");
  OTSCHED_CHECK(resume_slot >= 0);
  // now() == resume_slot; begin() keeps a warm slot (it only clamps up
  // to 1, the cold-start value).
  slot_ = resume_slot > 0 ? resume_slot + 1 : 0;
  max_release_ = resume_slot;  // horizon bound covers the resumed clock
}

JobId SimDriver::submit(Job job) {
  OTSCHED_CHECK(!finalized_, "submit after drain()");
  OTSCHED_CHECK(job.dag().node_count() >= 1,
                "submitted job has no subjobs");
  OTSCHED_CHECK(job.release() >= now(),
                "job submitted with release " << job.release()
                                              << " in the simulated past "
                                                 "(now = " << now() << ")");
  const JobId id = static_cast<JobId>(jobs_.size());
  const std::size_t j = static_cast<std::size_t>(id);
  owned_.resize(j + 1);
  owned_[j] = std::make_unique<Job>(std::move(job));
  const Job& ref = *owned_[j];
  jobs_.push_back(&ref);
  dags_.push_back(&ref.dag());
  work_.push_back(ref.work());
  release_.push_back(ref.release());
  flows_.add_job(ref.work(), ref.release());
  total_work_ += ref.work();
  max_release_ = std::max(max_release_, ref.release());
  max_span_ = std::max(max_span_, ref.span());
  if (job_faults_.active()) {
    arena_.enable_commit_tracking();  // idempotent; before the append so
                                      // the region grows the commit bitset
    wasted_.push_back(0);
  }
  const JobId arena_id = arena_.append(ref.dag());
  OTSCHED_CHECK(arena_id == id);
  late_arrivals_.emplace(ref.release(), id);
  track_finished_ = true;
  if (begun_) publish_hot();
  return id;
}

void SimDriver::publish_hot() {
  hot_.m = m_;
  hot_.capacity = capacity_;
  hot_.alive = alive_.data();
  hot_.alive_count = alive_.size();
  hot_.ready_base = arena_.ready_storage();
  hot_.node_off = arena_.node_offsets();
  hot_.ready_len = arena_.ready_lengths();
  hot_.done = arena_.done_counts();
  hot_.work = work_.data();
  hot_.release = release_.data();
}

void SimDriver::begin() {
  begun_ = true;
  alive_.reserve(jobs_.size());
  publish_hot();
  scheduler_.reset(m_, job_count());
  if (record_full_) result_.schedule.emplace(m_);
  picks_.reserve(static_cast<std::size_t>(m_));
  emitter_.reset(this, observer_, batch_capacity_);
  time_picks_ = observer_ != nullptr && observer_->wants_pick_timing();
  if (observer_ != nullptr) observer_->on_run_begin(*this);
  slot_ = std::max<Time>(slot_, 1);  // keep a warm_start() position
}

std::optional<std::pair<Time, JobId>> SimDriver::next_pending_arrival()
    const {
  std::optional<std::pair<Time, JobId>> next;
  if (next_arrival_ < arrival_order_.size()) {
    const JobId id = arrival_order_[next_arrival_];
    next = {release_[static_cast<std::size_t>(id)], id};
  }
  if (!late_arrivals_.empty() &&
      (!next.has_value() || late_arrivals_.top() < *next)) {
    next = late_arrivals_.top();
  }
  return next;
}

template <bool kObserved>
void SimDriver::deliver_arrivals(const SchedulerView& view) {
  while (true) {
    JobId id = kInvalidJob;
    bool from_bulk = false;
    if (next_arrival_ < arrival_order_.size()) {
      id = arrival_order_[next_arrival_];
      from_bulk = true;
    }
    if (!late_arrivals_.empty()) {
      const std::pair<Time, JobId>& top = late_arrivals_.top();
      if (id == kInvalidJob ||
          top < std::pair<Time, JobId>(
                    release_[static_cast<std::size_t>(id)], id)) {
        id = top.second;
        from_bulk = false;
      }
    }
    if (id == kInvalidJob ||
        release_[static_cast<std::size_t>(id)] >= slot_) {
      break;
    }
    if (from_bulk) {
      ++next_arrival_;
    } else {
      late_arrivals_.pop();
    }
    alive_.push_back(id);
    hot_.alive = alive_.data();
    hot_.alive_count = alive_.size();
    // Precomputed roots become ready on arrival (increasing node id, the
    // same order the seed engine's arrival rescan produced).
    ready_width_ += arena_.activate(id);
    scheduler_.on_arrival(id, view);
    if constexpr (kObserved) emitter_.arrival(slot_, id);
  }
}

template <bool kObserved, bool kRecordFull>
Time SimDriver::run_slots(const SchedulerView& view, Time max_slots) {
  const JobId n = job_count();
  const std::int64_t total_work = total_work_;
  const Time max_horizon = horizon_bound();

  Time visited = 0;
  while (visited < max_slots && executed_total_ < total_work) {
    // Fast-forward across empty stretches when nothing is alive.
    if (alive_.empty()) {
      const auto next = next_pending_arrival();
      if (next.has_value()) slot_ = std::max(slot_, next->first + 1);
    }
    OTSCHED_CHECK(slot_ <= max_horizon,
                  "scheduler '" << scheduler_.name()
                                << "' exceeded the horizon bound "
                                << max_horizon);
    hot_.slot = slot_;

    if constexpr (kObserved) emitter_.slot_begin(slot_);

    deliver_arrivals<kObserved>(view);

    if (sequencer_.active()) {
      // Capacity resolves after the slot's arrivals (the adversarial dip
      // watches the post-arrival alive count) and before the pick.
      const int cap = sequencer_.capacity(
          slot_, static_cast<std::int64_t>(alive_.size()));
      if (cap != capacity_) {
        capacity_ = cap;
        hot_.capacity = capacity_;
        if constexpr (kObserved) emitter_.capacity_change(slot_, capacity_);
      }
      if (capacity_ < m_) {
        ++result_.stats.faulted_slots;
        result_.stats.capacity_shortfall += m_ - capacity_;
      }
    }

    if (job_faults_.active()) {
      // The ROLLBACK step (sim/job_faults.h slot protocol): resolved
      // after arrivals and capacity, before the pick, so the scheduler
      // only ever sees post-rollback ready sets.
      for (const JobId id : alive_) {
        const std::size_t j = static_cast<std::size_t>(id);
        const std::int64_t volatile_work =
            arena_.done(id) - arena_.committed_done(id);
        if (volatile_work <= 0) continue;
        if (!job_faults_.crashes(slot_, id, release_[j], volatile_work)) {
          continue;
        }
        const std::int64_t ready_before =
            static_cast<std::int64_t>(arena_.ready(id).size());
        const std::int64_t wasted =
            arena_.rollback_to_checkpoint(*dags_[j], id);
        ready_width_ +=
            static_cast<std::int64_t>(arena_.ready(id).size()) - ready_before;
        executed_total_ -= wasted;
        flows_.unrecord(id, wasted);
        wasted_[j] += wasted;
        ++result_.stats.job_rollbacks;
        result_.stats.wasted_subjob_slots += wasted;
        if constexpr (kObserved) {
          emitter_.rollback(slot_, id, wasted, committed_total_);
        }
      }
    }

    picks_.clear();
    double pick_seconds = 0.0;
    if constexpr (kObserved) {
      if (time_picks_) {
        WallTimer pick_timer;
        scheduler_.pick(view, picks_);
        pick_seconds = pick_timer.elapsed_seconds();
      } else {
        scheduler_.pick(view, picks_);
      }
    } else {
      scheduler_.pick(view, picks_);
    }

    OTSCHED_CHECK(static_cast<int>(picks_.size()) <= capacity_,
                  "scheduler '" << scheduler_.name() << "' picked "
                                << picks_.size() << " subjobs with capacity "
                                << capacity_ << " (m = " << m_
                                << ") at slot " << slot_);
    // Validate readiness and uniqueness, then execute.
    for (const SubjobRef& ref : picks_) {
      OTSCHED_CHECK(ref.job >= 0 && ref.job < n,
                    "pick references unknown job " << ref.job);
      const std::size_t j = static_cast<std::size_t>(ref.job);
      OTSCHED_CHECK(dags_[j] != nullptr,
                    "retired job " << ref.job << " picked at slot " << slot_);
      OTSCHED_CHECK(ref.node >= 0 && ref.node < dags_[j]->node_count(),
                    "pick references unknown node " << ref.node << " of job "
                                                    << ref.job);
      OTSCHED_CHECK(arrived(ref.job), "job " << ref.job
                                             << " picked before arrival at slot "
                                             << slot_);
      OTSCHED_CHECK(!arena_.is_executed(ref.job, ref.node),
                    "job " << ref.job << " node " << ref.node
                           << " picked twice (slot " << slot_ << ")");
      OTSCHED_CHECK(arena_.is_ready(ref.job, ref.node),
                    "job " << ref.job << " node " << ref.node
                           << " is not ready at slot " << slot_);
    }
    if constexpr (kObserved) {
      // The pre-execution flush: picks are final, the backend still shows
      // the state the scheduler saw, and the event carries the incremental
      // alive/ready-width counters observers used to recompute per pick.
      emitter_.pick_block(slot_, picks_,
                          static_cast<std::int64_t>(alive_.size()),
                          ready_width_, pick_seconds);
    }
    // Same-slot duplicate picks are caught by the executed flag flipping
    // during execution below.
    for (const SubjobRef& ref : picks_) {
      OTSCHED_CHECK(!arena_.is_executed(ref.job, ref.node),
                    "duplicate pick of job " << ref.job << " node "
                                             << ref.node << " in slot "
                                             << slot_);
      const std::size_t j = static_cast<std::size_t>(ref.job);
      // Children may become ready — but only from the NEXT slot, which is
      // fine because picks for the current slot were already validated
      // against the pre-execution ready sets.
      ready_width_ += arena_.execute(*dags_[j], ref.job, ref.node);
      ++executed_total_;
      if (arena_.done(ref.job) == work_[j]) {
        std::int64_t job_wasted = 0;
        if (job_faults_.active()) {
          // Implicit finish-commit: a finished job is never rolled back,
          // so retire-on-finish recycling stays sound.  Not counted in
          // stats.checkpoints (it is not an interval-policy commit).
          const std::int64_t newly = arena_.checkpoint(ref.job);
          committed_total_ += newly;
          job_wasted = wasted_[j];
          if constexpr (kObserved) {
            emitter_.checkpoint(slot_, ref.job, newly, committed_total_);
          }
        }
        ++finished_this_slot_;
        if (track_finished_) {
          finished_log_.push_back({ref.job, release_[j], slot_,
                                   slot_ - release_[j], job_wasted});
          retirable_.push_back(ref.job);
        }
        if constexpr (kObserved) completed_now_.push_back(ref.job);
      }
      flows_.record(slot_, ref.job);
      if constexpr (kRecordFull) result_.schedule->place(slot_, ref);
    }
    if (job_faults_.active()) {
      // The CHECKPOINT step: interval-policy commits at end of slot for
      // every alive unfinished job with volatile work (finishing jobs
      // already finish-committed above; the alive list is compacted
      // after this, so skip finished entries explicitly).
      for (const JobId id : alive_) {
        if (finished(id)) continue;
        const std::int64_t volatile_work =
            arena_.done(id) - arena_.committed_done(id);
        if (!job_faults_.checkpoint_due(slot_, volatile_work)) continue;
        const std::int64_t newly = arena_.checkpoint(id);
        committed_total_ += newly;
        ++result_.stats.checkpoints;
        if constexpr (kObserved) {
          emitter_.checkpoint(slot_, id, newly, committed_total_);
        }
      }
    }
    if constexpr (kObserved) {
      if (!completed_now_.empty()) {
        // Ascending job id, matching DeriveTrace's completion order.
        std::sort(completed_now_.begin(), completed_now_.end());
        for (const JobId id : completed_now_) emitter_.complete(slot_, id);
        completed_now_.clear();
      }
      emitter_.slot_end();
    }
    if (!picks_.empty()) {
      ++result_.stats.busy_slots;
      last_busy_slot_ = slot_;
    }
    if (finished_this_slot_ > 0) {
      // The seed engine swept the alive list every slot; sweeping only
      // when a job finished is observationally identical (a sweep with no
      // finished job removes nothing) and drops the per-slot cost from
      // O(alive) to O(1) outside finishing slots.
      std::erase_if(alive_, [this](JobId id) { return finished(id); });
      hot_.alive = alive_.data();
      hot_.alive_count = alive_.size();
      finished_this_slot_ = 0;
    }
    ++slot_;
    ++visited;
  }
  return visited;
}

Time SimDriver::advance(Time max_slots) {
  OTSCHED_CHECK(!finalized_, "advance after drain()");
  if (!begun_) begin();
  if (max_slots <= 0 || idle()) return 0;
  SchedulerView view(*this, &hot_);
  // One loop instantiation per (observed, record-full) mode: unobserved
  // flow-only runs — the sweep/adversary configuration — compile to a
  // loop with no observer or schedule code at all.
  if (observer_ != nullptr) {
    if (record_full_) return run_slots<true, true>(view, max_slots);
    return run_slots<true, false>(view, max_slots);
  }
  if (record_full_) return run_slots<false, true>(view, max_slots);
  return run_slots<false, false>(view, max_slots);
}

SimResult SimDriver::drain() {
  OTSCHED_CHECK(!finalized_, "drain called twice");
  if (!begun_) begin();
  while (!idle()) {
    advance(std::numeric_limits<Time>::max());
  }
  finalized_ = true;
  // Stats and flows are computed online in BOTH record modes (identical
  // by construction; ComputeFlows over the materialized schedule yields
  // the same numbers, as the driver-equivalence gate proves).
  result_.stats.horizon = last_busy_slot_;
  result_.stats.executed_subjobs = executed_total_;
  // Wasted (rolled-back) subjob slots occupied processors too: they are
  // neither idle nor part of the committed executed count.
  result_.stats.idle_processor_slots =
      static_cast<std::int64_t>(m_) * last_busy_slot_ - executed_total_ -
      result_.stats.wasted_subjob_slots;
  result_.flows = flows_.finish();
  if (observer_ != nullptr) observer_->on_finish(result_);
  return std::move(result_);
}

std::vector<SimDriver::FinishedJob> SimDriver::take_finished() {
  return std::exchange(finished_log_, {});
}

std::size_t SimDriver::retire_finished() {
  std::size_t retired = 0;
  for (const JobId id : retirable_) {
    const std::size_t j = static_cast<std::size_t>(id);
    arena_.retire(id);
    dags_[j] = nullptr;
    jobs_[j] = nullptr;
    if (j < owned_.size()) owned_[j].reset();
    ++retired;
  }
  retirable_.clear();
  return retired;
}

// Explicit instantiations keep the four loop flavours in this TU.
template Time SimDriver::run_slots<false, false>(const SchedulerView&, Time);
template Time SimDriver::run_slots<false, true>(const SchedulerView&, Time);
template Time SimDriver::run_slots<true, false>(const SchedulerView&, Time);
template Time SimDriver::run_slots<true, true>(const SchedulerView&, Time);

}  // namespace otsched
