#include "sim/observer.h"

#include "common/assert.h"

namespace otsched {

// The compatibility adapter: replays a batch through the fine-grained
// hooks in stream order, so observers written against the per-pick
// contract keep working unchanged under batched delivery.  The pick
// span is rebuilt from the `value` kExecute records that follow each
// kPickBegin (the emitter guarantees the block is contiguous within one
// batch); picks up to kStackPicks live on the stack, larger blocks fall
// back to a heap vector.
void RunObserver::on_slot_batch(const EngineBackend& engine,
                                std::span<const SlotEvent> events) {
  constexpr std::size_t kStackPicks = 128;
  SubjobRef stack_picks[kStackPicks];
  std::vector<SubjobRef> heap_picks;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const SlotEvent& event = events[i];
    switch (event.kind) {
      case SlotEvent::Kind::kSlotBegin:
        on_slot_begin(event.slot, engine);
        break;
      case SlotEvent::Kind::kArrival:
        on_arrival(event.slot, event.job);
        break;
      case SlotEvent::Kind::kCapacityChange:
        on_capacity_change(event.slot, event.value);
        break;
      case SlotEvent::Kind::kPickBegin: {
        const std::size_t count = static_cast<std::size_t>(event.value);
        OTSCHED_CHECK(i + count < events.size() + 1,
                      "pick block of " << count
                                       << " executes split across batches");
        SubjobRef* picks = stack_picks;
        if (count > kStackPicks) {
          heap_picks.resize(count);
          picks = heap_picks.data();
        }
        for (std::size_t k = 0; k < count; ++k) {
          const SlotEvent& exec = events[i + 1 + k];
          OTSCHED_DCHECK(exec.kind == SlotEvent::Kind::kExecute);
          picks[k] = SubjobRef{exec.job, exec.node};
        }
        on_pick(event.slot, engine,
                std::span<const SubjobRef>(picks, count), event.seconds);
        // The kExecute records stay in the stream: the loop visits them
        // next and fires on_execute in placement order.
        break;
      }
      case SlotEvent::Kind::kExecute:
        on_execute(event.slot, SubjobRef{event.job, event.node});
        break;
      case SlotEvent::Kind::kComplete:
        on_complete(event.slot, event.job);
        break;
      case SlotEvent::Kind::kRollback:
        on_rollback(event.slot, event.job, event.value, event.width);
        break;
      case SlotEvent::Kind::kCheckpoint:
        on_checkpoint(event.slot, event.job, event.value, event.width);
        break;
    }
  }
}

}  // namespace otsched
