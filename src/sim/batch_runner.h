// Deterministic fan-out of simulation tasks across the thread pool.
//
// Every empirical claim in the reproduction — fuzz campaigns, adversary
// sweeps, policy-zoo benches — is a map over an index space of
// independent (instance, policy) simulation cells.  BatchRunner is the
// one place that map is implemented: results land in a vector indexed by
// task id, so the output is identical for any worker count (including 0,
// which runs inline on the caller), and per-cell scheduler state is
// constructed inside the cell so nothing is shared across workers.
#pragma once

#include <cstddef>
#include <exception>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "sim/engine.h"
#include "sim/observers.h"

namespace otsched {

/// One failed batch cell, recorded instead of aborting the campaign.
struct CellFailure {
  std::size_t index = 0;
  /// exception.what() of the last attempt, or "<unknown exception>" for
  /// payloads not derived from std::exception.  Empty for pure timeouts.
  std::string what;
  /// Total attempts made (1 = no retry).
  int attempts = 1;
  /// The cell finished but exceeded RunPolicy::cell_timeout_seconds.
  bool timed_out = false;
};

/// Fault handling for MapWithFailures.
struct BatchRunPolicy {
  /// Total attempts per throwing cell (>= 1).  Retries run inline on the
  /// same worker, immediately, so the result vector stays a pure function
  /// of the cells.
  int max_attempts = 1;
  /// Soft per-cell wall-clock deadline, checked AFTER the cell returns
  /// (threads cannot be killed portably, so a wedged cell still wedges
  /// its worker — the deadline makes slow cells visible, it does not
  /// interrupt them).  Timed-out cells KEEP their result and are
  /// additionally recorded as a CellFailure, so output values stay
  /// machine-independent.  0 disables the check.
  double cell_timeout_seconds = 0;
};

/// MapWithFailures outcome: per-cell results (empty optional = the cell
/// threw on every attempt) plus the failures in ascending index order.
template <typename R>
struct BatchOutcome {
  std::vector<std::optional<R>> results;
  std::vector<CellFailure> failures;

  bool all_ok() const { return failures.empty(); }
};

/// Fans `count` independent cells across a thread pool and returns their
/// results in index order.  `cell(i)` must be self-contained (construct
/// its own Scheduler; Instances are immutable and safe to share).
///
/// `workers` follows the ThreadPool convention: 0 = hardware concurrency.
/// The result vector is a pure function of `cell`, never of scheduling —
/// required by the determinism contract of every seeded experiment.
class BatchRunner {
 public:
  explicit BatchRunner(std::size_t workers = 0) : workers_(workers) {}

  std::size_t workers() const { return workers_; }

  /// Maps `cell` over [0, count); result[i] == cell(i).  R need not be
  /// default-constructible (Schedule is not).
  template <typename R, typename Cell>
  std::vector<R> Map(std::size_t count, Cell&& cell) const {
    std::vector<std::optional<R>> slots(count);
    ParallelForEachIndex(count, [&](std::size_t i) { slots[i].emplace(cell(i)); },
                         workers_);
    std::vector<R> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      OTSCHED_CHECK(slots[i].has_value(), "batch cell " << i
                                                        << " produced no result");
      out.push_back(std::move(*slots[i]));
    }
    return out;
  }

  /// Crash-tolerant Map: a throwing cell is retried up to
  /// `policy.max_attempts` times and then recorded as a structured
  /// CellFailure instead of aborting the whole campaign — long fuzz and
  /// sweep runs keep their completed cells.  Failures come back sorted by
  /// cell index (collected per-slot, so the report is deterministic
  /// whenever the cells are).  See BatchRunPolicy for the soft-timeout
  /// semantics.
  template <typename R, typename Cell>
  BatchOutcome<R> MapWithFailures(std::size_t count, Cell&& cell,
                                  BatchRunPolicy policy = {}) const {
    OTSCHED_CHECK(policy.max_attempts >= 1,
                  "BatchRunPolicy.max_attempts must be >= 1, got "
                      << policy.max_attempts);
    BatchOutcome<R> outcome;
    outcome.results.resize(count);
    std::vector<std::optional<CellFailure>> fail_slots(count);
    ParallelForEachIndex(
        count,
        [&](std::size_t i) {
          WallTimer timer;
          for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
            try {
              outcome.results[i].emplace(cell(i));
              break;
            } catch (const std::exception& e) {
              fail_slots[i] =
                  CellFailure{i, e.what(), attempt, /*timed_out=*/false};
            } catch (...) {
              fail_slots[i] = CellFailure{i, "<unknown exception>", attempt,
                                          /*timed_out=*/false};
            }
          }
          if (outcome.results[i].has_value()) {
            if (policy.cell_timeout_seconds > 0 &&
                timer.elapsed_seconds() > policy.cell_timeout_seconds) {
              CellFailure slow;
              slow.index = i;
              slow.attempts =
                  fail_slots[i].has_value() ? fail_slots[i]->attempts + 1 : 1;
              slow.timed_out = true;
              fail_slots[i] = slow;
            } else if (fail_slots[i].has_value()) {
              // A retry succeeded: the cell recovered, drop the record.
              fail_slots[i].reset();
            }
          }
        },
        workers_);
    for (std::size_t i = 0; i < count; ++i) {
      if (fail_slots[i].has_value()) {
        outcome.failures.push_back(*std::move(fail_slots[i]));
      }
    }
    return outcome;
  }

  /// A simulation task: one policy run on one shared immutable instance.
  /// `make_scheduler` runs inside the cell (fresh policy per cell).
  /// Batch cells default to flow-only recording — sweeps aggregate flows
  /// and stats, never individual schedules; pass a context with
  /// RecordMode::kFull to materialize schedules anyway.  `context` is the
  /// one run surface (bare SimOptions convert implicitly; the old
  /// SimOptions overloads were folded away) and must not carry an
  /// observer: cells run concurrently and a single borrowed observer
  /// would see interleaved hook streams.
  template <typename MakeScheduler>
  std::vector<SimResult> RunSimulations(
      std::span<const std::pair<const Instance*, int>> cells,
      MakeScheduler&& make_scheduler,
      const RunContext& context = FlowOnlyOptions()) const {
    OTSCHED_CHECK(context.observer == nullptr,
                  "batch cells run concurrently; attach per-cell observers "
                  "inside make_scheduler-style cell code instead of sharing "
                  "one through the batch RunContext");
    return Map<SimResult>(cells.size(), [&](std::size_t i) {
      const auto& [instance, m] = cells[i];
      auto scheduler = make_scheduler(i);
      return Simulate(*instance, m, *scheduler, context);
    });
  }

  /// One instrumented cell: the simulation result plus the metrics its
  /// MetricsObserver collected.  Merge the registries (index order) for
  /// batch aggregates.
  struct InstrumentedRun {
    SimResult result;
    MetricsRegistry metrics;
  };

  /// RunSimulations with a MetricsObserver attached to every cell.  Each
  /// cell gets a private registry, so instrumentation adds no cross-worker
  /// coordination; pass record_pick_times = false in `observer_options`
  /// when the aggregate must be deterministic.  The observer slot of
  /// `context` must be empty — each cell installs its own MetricsObserver
  /// over the shared options/capacity.
  template <typename MakeScheduler>
  std::vector<InstrumentedRun> RunInstrumentedSimulations(
      std::span<const std::pair<const Instance*, int>> cells,
      MakeScheduler&& make_scheduler,
      const RunContext& context = FlowOnlyOptions(),
      MetricsObserver::Options observer_options = MetricsObserver::Options())
      const {
    OTSCHED_CHECK(context.observer == nullptr,
                  "instrumented batch cells install their own per-cell "
                  "MetricsObserver; the batch RunContext must not carry one");
    return Map<InstrumentedRun>(cells.size(), [&](std::size_t i) {
      const auto& [instance, m] = cells[i];
      auto scheduler = make_scheduler(i);
      InstrumentedRun run;
      MetricsObserver observer(run.metrics, observer_options);
      RunContext cell_context = context;
      cell_context.observer = &observer;
      run.result = Simulate(*instance, m, *scheduler, cell_context);
      return run;
    });
  }

 private:
  std::size_t workers_;
};

}  // namespace otsched
