// Deterministic fan-out of simulation tasks across the thread pool.
//
// Every empirical claim in the reproduction — fuzz campaigns, adversary
// sweeps, policy-zoo benches — is a map over an index space of
// independent (instance, policy) simulation cells.  BatchRunner is the
// one place that map is implemented: results land in a vector indexed by
// task id, so the output is identical for any worker count (including 0,
// which runs inline on the caller), and per-cell scheduler state is
// constructed inside the cell so nothing is shared across workers.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/thread_pool.h"
#include "sim/engine.h"
#include "sim/observers.h"

namespace otsched {

/// Fans `count` independent cells across a thread pool and returns their
/// results in index order.  `cell(i)` must be self-contained (construct
/// its own Scheduler; Instances are immutable and safe to share).
///
/// `workers` follows the ThreadPool convention: 0 = hardware concurrency.
/// The result vector is a pure function of `cell`, never of scheduling —
/// required by the determinism contract of every seeded experiment.
class BatchRunner {
 public:
  explicit BatchRunner(std::size_t workers = 0) : workers_(workers) {}

  std::size_t workers() const { return workers_; }

  /// Maps `cell` over [0, count); result[i] == cell(i).  R need not be
  /// default-constructible (Schedule is not).
  template <typename R, typename Cell>
  std::vector<R> Map(std::size_t count, Cell&& cell) const {
    std::vector<std::optional<R>> slots(count);
    ParallelForEachIndex(count, [&](std::size_t i) { slots[i].emplace(cell(i)); },
                         workers_);
    std::vector<R> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      OTSCHED_CHECK(slots[i].has_value(), "batch cell " << i
                                                        << " produced no result");
      out.push_back(std::move(*slots[i]));
    }
    return out;
  }

  /// A simulation task: one policy run on one shared immutable instance.
  /// `make_scheduler` runs inside the cell (fresh policy per cell).
  /// Batch cells default to flow-only recording — sweeps aggregate flows
  /// and stats, never individual schedules; pass options with
  /// RecordMode::kFull to materialize schedules anyway.
  template <typename MakeScheduler>
  std::vector<SimResult> RunSimulations(
      std::span<const std::pair<const Instance*, int>> cells,
      MakeScheduler&& make_scheduler,
      const SimOptions& options = FlowOnlyOptions()) const {
    return Map<SimResult>(cells.size(), [&](std::size_t i) {
      const auto& [instance, m] = cells[i];
      auto scheduler = make_scheduler(i);
      return Simulate(*instance, m, *scheduler, options);
    });
  }

  /// One instrumented cell: the simulation result plus the metrics its
  /// MetricsObserver collected.  Merge the registries (index order) for
  /// batch aggregates.
  struct InstrumentedRun {
    SimResult result;
    MetricsRegistry metrics;
  };

  /// RunSimulations with a MetricsObserver attached to every cell.  Each
  /// cell gets a private registry, so instrumentation adds no cross-worker
  /// coordination; pass record_pick_times = false in `observer_options`
  /// when the aggregate must be deterministic.
  template <typename MakeScheduler>
  std::vector<InstrumentedRun> RunInstrumentedSimulations(
      std::span<const std::pair<const Instance*, int>> cells,
      MakeScheduler&& make_scheduler,
      const SimOptions& options = FlowOnlyOptions(),
      MetricsObserver::Options observer_options = MetricsObserver::Options())
      const {
    return Map<InstrumentedRun>(cells.size(), [&](std::size_t i) {
      const auto& [instance, m] = cells[i];
      auto scheduler = make_scheduler(i);
      InstrumentedRun run;
      MetricsObserver observer(run.metrics, observer_options);
      RunContext context;
      context.options = options;
      context.observer = &observer;
      run.result = Simulate(*instance, m, *scheduler, context);
      return run;
    });
  }

 private:
  std::size_t workers_;
};

}  // namespace otsched
