// SVG rendering of schedules — the publication-quality counterpart of the
// ASCII renderer, for regenerating Figure 1 / Figure 2 style pictures.
//
// Layout: x = time slot, y = processor row (P0 at the bottom, like the
// paper's figures); each subjob is a unit rectangle colored by its job
// (golden-angle hue rotation, so adjacent job ids contrast).  Idle cells
// stay background-colored, making packing holes visible.
#pragma once

#include <string>

#include "job/instance.h"
#include "sim/schedule.h"

namespace otsched {

struct SvgOptions {
  Time from_slot = 1;
  Time to_slot = 0;  // 0 = horizon
  int cell_size = 12;
  /// Label each cell with its node id (readable up to a few hundred
  /// cells; off for large schedules).
  bool label_nodes = false;
  /// Optional title line rendered above the grid.
  std::string title;
};

/// Renders the schedule to a standalone SVG document.
std::string RenderScheduleSvg(const Schedule& schedule,
                              const Instance& instance,
                              const SvgOptions& options = {});

/// Writes the SVG to a file (aborts on I/O failure).
void SaveScheduleSvg(const Schedule& schedule, const Instance& instance,
                     const std::string& path, const SvgOptions& options = {});

/// The fill color used for a job (hex "#rrggbb"), exposed for tests.
std::string JobColor(JobId id);

}  // namespace otsched
