// DAGs of canonical dynamic-multithreaded programs (Section 1's motivating
// workloads), expressed as unit-time subjob graphs.
//
//   * Quicksort: the introduction's example of a tail-recursive algorithm
//     whose natural fork-join program is an out-tree.  A call on n
//     elements is a chain of ceil(n / grain) partition subjobs whose last
//     subjob spawns the two recursive calls.
//   * Parallel-for series: "a sequence of parallel for-loops" — per phase,
//     a spawn node fans out to `width` unit iterations; phases chain
//     through the spawn nodes, which keeps the whole program an out-tree
//     (iterations are leaves).
//   * Fibonacci: fib(k) spawns fib(k-1) and fib(k-2) — the classic Cilk
//     toy, a binary out-tree.
//   * Map-reduce round (general series-parallel, NOT a tree): fork to
//     `width` mappers which all join into a reducer; used by the Section 6
//     experiments, which allow arbitrary DAGs.
#pragma once

#include "common/rng.h"
#include "dag/dag.h"

namespace otsched {

struct QuicksortOptions {
  std::int64_t n = 1024;  // elements to sort
  std::int64_t grain = 64;  // elements per unit subjob of partition work
  std::int64_t cutoff = 64;  // below this, a call is a single leaf subjob
  /// Pivot quality: 0.5 = perfect median splits; smaller = more skew.
  /// The split fraction is drawn uniformly from
  /// [pivot_quality, 1 - pivot_quality] for each call.
  double pivot_quality = 0.25;
};

/// The recursion out-tree of randomized quicksort.
Dag MakeQuicksortTree(const QuicksortOptions& options, Rng& rng);

/// `phases` parallel-for loops in series; phase i has widths[i] unit
/// iterations.  Out-tree: spawn_1 -> {iters_1}, spawn_1 -> spawn_2 -> ...
Dag MakeParallelForSeries(std::span<const NodeId> widths);

/// Random parallel-for series: `phases` loops with widths uniform in
/// [1, max_width].
Dag MakeRandomParallelForSeries(int phases, NodeId max_width, Rng& rng);

/// The fib(k) spawn tree (one subjob per call).
Dag MakeFibTree(int k);

/// One map-reduce round: source -> `width` mappers -> sink reducer.
/// General series-parallel DAG (in-degree `width` at the sink).
Dag MakeMapReduceRound(NodeId width);

/// `rounds` map-reduce rounds in series with the given widths drawn
/// uniformly from [1, max_width]; a general DAG for Section 6 experiments.
Dag MakeMapReducePipeline(int rounds, NodeId max_width, Rng& rng);

}  // namespace otsched
