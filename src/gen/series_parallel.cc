#include "gen/series_parallel.h"

#include <map>
#include <vector>

#include "common/assert.h"

namespace otsched {
namespace {

// Materializes an SP subgraph between existing nodes s and t using about
// `budget` internal nodes.  Proper series composition IDENTIFIES the
// junction node (no bridging edge), matching the textbook two-terminal
// definition.
void BuildBetween(Dag::Builder& builder, NodeId s, NodeId t,
                  NodeId budget, const SeriesParallelOptions& options,
                  Rng& rng, int depth) {
  OTSCHED_CHECK(depth < 64, "SP recursion ran away");
  if (budget <= 0) {
    builder.add_edge(s, t);
    return;
  }
  if (budget == 1 || !rng.next_bool(options.parallel_p)) {
    // Series: s -> x -> t with the budget split across the two halves.
    const NodeId x = builder.add_node();
    const NodeId left = (budget - 1) / 2;
    BuildBetween(builder, s, x, left, options, rng, depth + 1);
    BuildBetween(builder, x, t, budget - 1 - left, options, rng, depth + 1);
    return;
  }
  // Parallel: 2..max_branches branches.  EVERY branch receives at least
  // one internal node, so a bare s->t edge can only ever be produced
  // under a series junction — which makes duplicate (parallel) edges
  // impossible anywhere in the construction.
  int branches = 2 + static_cast<int>(rng.next_below(
                         static_cast<std::uint64_t>(options.max_branches - 1)));
  branches = std::min<int>(branches, static_cast<int>(budget));
  OTSCHED_CHECK(branches >= 2);  // budget >= 2 whenever parallel is chosen
  NodeId left = budget;
  for (int b = 0; b < branches; ++b) {
    const NodeId share =
        b + 1 == branches
            ? left
            : std::max<NodeId>(1, budget / static_cast<NodeId>(branches));
    OTSCHED_CHECK(share >= 1 && share <= left);
    BuildBetween(builder, s, t, share, options, rng, depth + 1);
    left -= share;
  }
}

}  // namespace

Dag MakeSeriesParallelDag(const SeriesParallelOptions& options, Rng& rng) {
  OTSCHED_CHECK(options.size >= 2);
  OTSCHED_CHECK(options.parallel_p >= 0.0 && options.parallel_p <= 1.0);
  OTSCHED_CHECK(options.max_branches >= 2);
  Dag::Builder builder;
  const NodeId source = builder.add_node();
  const NodeId sink = builder.add_node();
  BuildBetween(builder, source, sink, options.size - 2, options, rng, 0);
  return std::move(builder).build();
}

bool IsTwoTerminalSeriesParallel(const Dag& dag) {
  if (dag.node_count() < 2) return false;
  // Edge multiset and degree counts over live nodes.
  std::map<std::pair<NodeId, NodeId>, std::int64_t> edges;
  std::vector<std::int64_t> in(static_cast<std::size_t>(dag.node_count()));
  std::vector<std::int64_t> out(static_cast<std::size_t>(dag.node_count()));
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      ++edges[{v, c}];
      ++out[static_cast<std::size_t>(v)];
      ++in[static_cast<std::size_t>(c)];
    }
  }
  NodeId source = kInvalidNode;
  NodeId sink = kInvalidNode;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (in[static_cast<std::size_t>(v)] == 0) {
      if (out[static_cast<std::size_t>(v)] == 0) return false;  // isolated
      if (source != kInvalidNode) return false;
      source = v;
    }
    if (out[static_cast<std::size_t>(v)] == 0 &&
        in[static_cast<std::size_t>(v)] > 0) {
      if (sink != kInvalidNode) return false;
      sink = v;
    }
  }
  if (source == kInvalidNode || sink == kInvalidNode) return false;

  // Reduce to a single edge: parallel merges are implicit (edge counts
  // collapse to presence), series contractions remove degree-(1,1)
  // nodes.
  bool changed = true;
  while (changed) {
    changed = false;
    // Parallel reduction: collapse multi-edges.
    for (auto& [key, count] : edges) {
      if (count > 1) {
        in[static_cast<std::size_t>(key.second)] -= count - 1;
        out[static_cast<std::size_t>(key.first)] -= count - 1;
        count = 1;
        changed = true;
      }
    }
    // Series reduction.
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      if (v == source || v == sink) continue;
      if (in[static_cast<std::size_t>(v)] != 1 ||
          out[static_cast<std::size_t>(v)] != 1) {
        continue;
      }
      // Find the unique in- and out-edges of v.
      NodeId u = kInvalidNode;
      NodeId w = kInvalidNode;
      for (const auto& [key, count] : edges) {
        if (count <= 0) continue;
        if (key.second == v) u = key.first;
        if (key.first == v) w = key.second;
      }
      OTSCHED_CHECK(u != kInvalidNode && w != kInvalidNode);
      if (u == w) return false;  // would create a self-loop: not a DAG SP
      --edges[{u, v}];
      --edges[{v, w}];
      ++edges[{u, w}];
      in[static_cast<std::size_t>(v)] = 0;
      out[static_cast<std::size_t>(v)] = 0;
      // u's out-degree and w's in-degree are unchanged (one edge swapped
      // for another).
      changed = true;
    }
  }

  std::int64_t live_edges = 0;
  for (const auto& [key, count] : edges) {
    if (count > 0) {
      live_edges += count;
      if (key.first != source || key.second != sink) return false;
    }
  }
  return live_edges == 1;
}

}  // namespace otsched
