#include "gen/fifo_adversary.h"

#include "common/assert.h"
#include "dag/builders.h"

namespace otsched {

AdversarialInstance MakeAdversarialInstance(
    const LowerBoundSimOptions& options) {
  AdversarialInstance result;
  result.fifo_run = RunLowerBoundSim(options);
  const auto& run = result.fifo_run;
  const Time gap = run.m + 1;

  for (std::int64_t i = 0; i < run.num_jobs; ++i) {
    const auto& sizes_int = run.layer_sizes[static_cast<std::size_t>(i)];
    std::vector<NodeId> sizes(sizes_int.begin(), sizes_int.end());
    std::vector<NodeId> keys;
    Dag dag = MakeLayeredKeyForest(sizes, &keys);

    std::vector<char> mask(static_cast<std::size_t>(dag.node_count()), 0);
    for (NodeId key : keys) mask[static_cast<std::size_t>(key)] = 1;
    result.key_mask.push_back(std::move(mask));

    result.instance.add_job(
        Job(std::move(dag), i * gap, "adv-" + std::to_string(i)));
  }
  result.instance.set_name("fifo-adversary-m" + std::to_string(run.m));
  return result;
}

}  // namespace otsched
