#include "gen/certified.h"

#include <algorithm>

#include "common/assert.h"
#include "dag/builders.h"
#include "dag/metrics.h"
#include "opt/single_batch.h"

namespace otsched {

Dag MakeSaturatedForest(int m, Time delta, Time depth_limit, Rng& rng) {
  OTSCHED_CHECK(m >= 1);
  OTSCHED_CHECK(delta >= 1);
  OTSCHED_CHECK(depth_limit >= 1 && depth_limit <= delta);

  // Level sizes n_d (depth d = 1..depth_limit), chosen deepest-first so
  // that every suffix satisfies W(d) = sum_{d' > d} n_{d'} <= m*(delta-d).
  std::vector<NodeId> levels(static_cast<std::size_t>(depth_limit), 1);
  std::int64_t suffix = 0;
  for (Time d = depth_limit; d >= 1; --d) {
    const std::int64_t cap =
        std::min<std::int64_t>(m, m * (delta - d + 1) - suffix);
    OTSCHED_CHECK(cap >= 1);
    const auto size = static_cast<NodeId>(rng.next_in_range(1, cap));
    levels[static_cast<std::size_t>(d - 1)] = size;
    suffix += size;
  }

  Dag shaped = MakeLayeredRandomTree(levels, rng);
  const std::int64_t pad = m * delta - shaped.node_count();
  OTSCHED_CHECK(pad >= 0);
  if (pad == 0) return shaped;
  // Padding leaves at depth 1 raise W(0) to exactly m*delta without
  // touching any deeper W(d).
  std::vector<Dag> parts;
  parts.push_back(std::move(shaped));
  parts.push_back(MakeParallelBlob(static_cast<NodeId>(pad)));
  Dag forest = DisjointUnion(parts);
  OTSCHED_CHECK(SingleBatchOpt(forest, m) == delta,
                "saturated construction failed to pin OPT");
  return forest;
}

CertifiedInstance MakeSpacedSaturatedInstance(int m, Time delta, int batches,
                                              Rng& rng) {
  OTSCHED_CHECK(batches >= 1);
  CertifiedInstance result;
  result.opt = delta;
  for (int b = 0; b < batches; ++b) {
    const Time depth_limit =
        rng.next_in_range(std::max<Time>(1, delta / 2), delta);
    Dag forest = MakeSaturatedForest(m, delta, depth_limit, rng);
    result.instance.add_job(Job(std::move(forest), b * delta,
                                "sat-batch-" + std::to_string(b)));
  }
  result.instance.set_name("spaced-saturated");
  return result;
}

CertifiedInstance MakePipelinedSemiBatchedInstance(int m, Time delta,
                                                   int batches, Rng& rng) {
  OTSCHED_CHECK(m >= 2 && m % 2 == 0, "pipelined family needs even m");
  OTSCHED_CHECK(delta >= 1);
  OTSCHED_CHECK(batches >= 1);
  const auto half = static_cast<NodeId>(m / 2);

  CertifiedInstance result;
  result.opt = 2 * delta;
  const std::vector<NodeId> levels(static_cast<std::size_t>(2 * delta),
                                   half);
  for (int b = 0; b < batches; ++b) {
    Dag rect = MakeLayeredRandomTree(levels, rng);
    OTSCHED_CHECK(SingleBatchOpt(rect, m) == 2 * delta);
    result.instance.add_job(Job(std::move(rect), b * delta,
                                "pipe-batch-" + std::to_string(b)));
  }
  result.instance.set_name("pipelined-semi-batched");
  return result;
}

CertifiedInstance MakeBatchedFamilyInstance(int m, Time delta, int batches,
                                            TreeFamily family, Rng& rng) {
  OTSCHED_CHECK(m >= 1);
  OTSCHED_CHECK(delta >= 1);
  OTSCHED_CHECK(batches >= 1);

  // Build the batch forests first (a few family trees each, sized so a
  // batch's work is about m*delta), then space them by the realized
  // per-batch optimum: with spacing = max_b OPT_b the windows are
  // disjoint, so the instance OPT equals max_b OPT_b exactly.
  std::vector<Dag> forests;
  Time spacing = 1;
  for (int b = 0; b < batches; ++b) {
    const int trees = static_cast<int>(rng.next_in_range(1, 4));
    std::vector<Dag> parts;
    std::int64_t budget = m * delta;
    for (int k = 0; k < trees; ++k) {
      const std::int64_t share =
          (k + 1 == trees) ? budget : budget / (trees - k);
      if (share < 1) break;
      parts.push_back(
          MakeTree(family, static_cast<NodeId>(std::max<std::int64_t>(
                               1, share)),
                   rng));
      budget -= share;
    }
    Dag forest = DisjointUnion(parts);
    spacing = std::max(spacing, SingleBatchOpt(forest, m));
    forests.push_back(std::move(forest));
  }

  CertifiedInstance result;
  result.opt = spacing;
  for (int b = 0; b < batches; ++b) {
    result.instance.add_job(Job(std::move(forests[static_cast<std::size_t>(b)]),
                                b * spacing,
                                "fam-batch-" + std::to_string(b)));
  }
  result.instance.set_name(std::string("batched-") + ToString(family));
  return result;
}

}  // namespace otsched
