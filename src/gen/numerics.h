// Task DAGs of classic dense-numerics and HPC kernels.
//
// Dynamic-multithreaded runtimes (the Cilk/TBB/OpenMP systems the paper's
// introduction targets) are routinely evaluated on tiled linear-algebra
// and stencil task graphs.  These generators produce the standard
// dependency structures so the library's schedulers can be exercised on
// the workloads an HPC runtime actually sees:
//
//   * tiled Cholesky factorization (POTRF/TRSM/SYRK/GEMM tasks),
//   * tiled LU without pivoting (GETRF/TRSM/GEMM),
//   * 1-D stencil wavefront (time-step x cell grid),
//   * radix-2 FFT butterfly network.
//
// All are genuine DAGs (not out-trees): joins abound, which makes them
// the natural stress inputs for the Section 6 experiments and the E15
// general-DAG frontier.  Every task is one unit-time subjob, consistent
// with the paper's model (a tile kernel = one unit).
#pragma once

#include "dag/dag.h"

namespace otsched {

/// Tiled Cholesky on an n x n tile grid.  Task counts: n POTRF,
/// n(n-1)/2 TRSM, n(n-1)/2 SYRK, n(n-1)(n-2)/6 GEMM; span 3n - 2 for
/// n >= 2 (POTRF_k -> TRSM_k -> (SYRK|GEMM)_k -> POTRF_{k+1} chains).
Dag MakeTiledCholeskyDag(int n);

/// Tiled LU (no pivoting) on an n x n tile grid: n GETRF, n(n-1) TRSM
/// (row + column panels), n(n-1)(2n-1)/6... trailing GEMM updates.
Dag MakeTiledLuDag(int n);

/// 1-D three-point stencil: `cells` cells advanced for `steps` time
/// steps; cell (t, i) depends on (t-1, i-1), (t-1, i), (t-1, i+1).
/// Work = cells * steps, span = steps.
Dag MakeStencil1dDag(int cells, int steps);

/// Radix-2 decimation FFT butterfly on n = 2^log2n points: log2n stages
/// of n/2 butterflies; each butterfly depends on the two butterflies of
/// the previous stage that produced its inputs.  Work = log2n * n / 2,
/// span = log2n.
Dag MakeFftButterflyDag(int log2n);

}  // namespace otsched
