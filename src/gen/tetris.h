// Perfectly-packed ("Tetris") instances: the introduction's hardest case.
//
// "Intuitively, the hardest instances for a runtime scheduler are those
// where it is possible to pack/schedule all the jobs relatively soon
// after they arrive in such a way that the space/schedule is fully
// packed.  That is, there are never any idle processors."
//
// This generator BUILDS the packed schedule first and derives the jobs
// from it: it sweeps a width-m board column by column, splitting each
// column's m cells among the active jobs; a job's per-column widths
// become the level sizes of a layered random out-forest (level t of the
// tree runs in column t of the witness schedule, so the witness is
// feasible).  Each job is released one slot before its first column.
//
// Certification: the witness schedule gives every job flow exactly its
// duration D_j, and span(job) = D_j is a per-job lower bound, so
//   OPT = max_j D_j   EXACTLY,
// while the witness has ZERO idle processors over the whole horizon —
// the regime where an online scheduler "can never ever allow a
// processor to be idle".
#pragma once

#include "common/rng.h"
#include "gen/certified.h"

namespace otsched {

struct TetrisOptions {
  int m = 16;
  /// Board length in slots; total work is exactly m * horizon.
  Time horizon = 64;
  /// Mean job duration (columns); actual durations are uniform in
  /// [max(1, mean/2), 2*mean], truncated at the board edge.
  Time mean_duration = 8;
  /// Maximum simultaneously active jobs (board rows are split at most
  /// this many ways per column).
  int max_active = 4;
};

/// Generates the instance plus its exact OPT (= max duration used).
CertifiedInstance MakeTetrisInstance(const TetrisOptions& options, Rng& rng);

}  // namespace otsched
