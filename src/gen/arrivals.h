// Arrival-process helpers: turn a supply of DAGs into an online Instance.
#pragma once

#include <functional>

#include "common/rng.h"
#include "job/instance.h"

namespace otsched {

/// A DAG supplier; invoked once per job in release order.
using DagFactory = std::function<Dag(std::int64_t job_index, Rng& rng)>;

/// Jobs released at fixed intervals: job i at i * period.
Instance MakePeriodicArrivals(std::int64_t jobs, Time period,
                              const DagFactory& factory, Rng& rng);

/// Poisson-like arrivals: i.i.d. geometric gaps with mean ~1/rate slots
/// (rate in (0, 1]); integer release times, possibly several jobs per
/// slot.
Instance MakePoissonArrivals(std::int64_t jobs, double rate,
                             const DagFactory& factory, Rng& rng);

/// Bursty arrivals: `bursts` groups of `burst_size` simultaneous jobs,
/// groups separated by `gap` slots.
Instance MakeBurstyArrivals(int bursts, int burst_size, Time gap,
                            const DagFactory& factory, Rng& rng);

}  // namespace otsched
