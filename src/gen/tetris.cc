#include "gen/tetris.h"

#include <algorithm>

#include "common/assert.h"
#include "gen/random_trees.h"

namespace otsched {
namespace {

struct ActivePiece {
  Time start = 0;           // first column (1-based)
  Time duration = 0;        // total columns
  std::vector<NodeId> widths;
};

}  // namespace

CertifiedInstance MakeTetrisInstance(const TetrisOptions& options, Rng& rng) {
  OTSCHED_CHECK(options.m >= 1);
  OTSCHED_CHECK(options.horizon >= 1);
  OTSCHED_CHECK(options.mean_duration >= 1);
  OTSCHED_CHECK(options.max_active >= 1 && options.max_active <= options.m,
                "every active piece needs at least one cell per column");

  CertifiedInstance result;
  result.opt = 1;
  std::vector<ActivePiece> active;

  auto draw_duration = [&](Time column) {
    const Time lo = std::max<Time>(1, options.mean_duration / 2);
    const Time hi = 2 * options.mean_duration;
    Time d = rng.next_in_range(lo, hi);
    return std::min(d, options.horizon - column + 1);
  };

  auto finalize = [&](ActivePiece& piece) {
    Dag forest = MakeLayeredRandomTree(piece.widths, rng);
    result.opt = std::max(result.opt, piece.duration);
    result.instance.add_job(Job(std::move(forest), piece.start - 1));
  };

  for (Time t = 1; t <= options.horizon; ++t) {
    // Retire pieces that ended at t-1.
    for (auto it = active.begin(); it != active.end();) {
      if (it->start + it->duration <= t) {
        finalize(*it);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    // Spawn: always keep at least one piece; otherwise spawn with
    // probability 1/2 while below the cap (and while a new piece could
    // still fit a column).
    while (static_cast<int>(active.size()) < options.max_active &&
           (active.empty() || rng.next_bool(0.5))) {
      ActivePiece piece;
      piece.start = t;
      piece.duration = draw_duration(t);
      active.push_back(std::move(piece));
      if (!rng.next_bool(0.5)) break;
    }
    // Split this column's m cells: one per active piece, remainder at
    // random.
    const auto k = static_cast<int>(active.size());
    std::vector<NodeId> share(static_cast<std::size_t>(k), 1);
    for (int extra = options.m - k; extra > 0; --extra) {
      ++share[static_cast<std::size_t>(rng.next_below(
          static_cast<std::uint64_t>(k)))];
    }
    for (int i = 0; i < k; ++i) {
      active[static_cast<std::size_t>(i)].widths.push_back(
          share[static_cast<std::size_t>(i)]);
    }
  }
  for (ActivePiece& piece : active) finalize(piece);

  result.instance.set_name("tetris-packed");
  OTSCHED_CHECK(result.instance.total_work() ==
                    static_cast<std::int64_t>(options.m) * options.horizon,
                "board not fully covered");
  return result;
}

}  // namespace otsched
