// The Section 4 adaptive adversary, materialized.
//
// RunLowerBoundSim (lbsim) co-simulates arbitrary FIFO against the
// adaptive construction and fixes every layer size.  This wrapper turns
// the result into a concrete Instance of layered out-forest jobs — key
// spine plus leaf bunches — so that OTHER schedulers (Algorithm A,
// clairvoyant FIFO variants, baselines) can be run on the exact instance
// that defeats FIFO.  The key subjob of every layer is exposed so that
// FifoScheduler(kAvoidMarked) reproduces the adversarial run on the fixed
// instance (cross-validated in tests).
//
// NOTE on validity: the adaptive construction is only a lower bound for
// NON-clairvoyant FIFO — a clairvoyant scheduler sees the keys at arrival
// and is immune, which is precisely the paper's point (Section 5's
// algorithm is clairvoyant).
#pragma once

#include "job/instance.h"
#include "lbsim/lbsim.h"

namespace otsched {

struct AdversarialInstance {
  Instance instance;
  /// key_mask[job][node] != 0 iff the node is a key subjob.
  std::vector<std::vector<char>> key_mask;
  /// The co-simulated FIFO flows (what arbitrary FIFO achieves).
  LowerBoundSimResult fifo_run;

  bool is_key(JobId job, NodeId node) const {
    return key_mask[static_cast<std::size_t>(job)]
                   [static_cast<std::size_t>(node)] != 0;
  }
};

/// Runs the co-simulation and materializes the instance.
AdversarialInstance MakeAdversarialInstance(
    const LowerBoundSimOptions& options);

}  // namespace otsched
