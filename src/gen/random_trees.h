// Randomized out-tree / out-forest workload generators.
//
// Shapes cover the spectrum the paper's analysis cares about:
//   * attachment trees (uniform = bushy/shallow, recency-biased = deep and
//     spiny) — stand-ins for irregular divide-and-conquer,
//   * geometric branching trees — sub-critical birth processes,
//   * layered trees with a prescribed depth profile — direct control over
//     W(d), the quantity Lemma 5.1 / Corollary 5.4 reason about,
//   * random out-forests — disjoint unions of the above.
#pragma once

#include "common/rng.h"
#include "dag/dag.h"

namespace otsched {

/// Random attachment out-tree with `size` nodes.  Each new node picks its
/// parent among existing nodes: with probability `recency_bias` the most
/// recently added node (growing a spine), otherwise uniformly at random
/// (growing a bush).  recency_bias = 0 gives the classic random recursive
/// tree (expected depth O(log n)); recency_bias = 1 gives a chain.
Dag MakeAttachmentTree(NodeId size, double recency_bias, Rng& rng);

/// Galton-Watson-style out-tree: each node spawns Geometric(child_p)
/// children (capped at max_children), generated breadth-first until `size`
/// nodes exist (forced continuation keeps the tree alive until then).
Dag MakeBranchingTree(NodeId size, double child_p, int max_children,
                      Rng& rng);

/// Layered out-tree with the given per-depth level sizes
/// (level_sizes[d-1] nodes at depth d, each wired to a uniformly random
/// parent in the previous level).  level_sizes must be nonempty with every
/// entry >= 1.
Dag MakeLayeredRandomTree(std::span<const NodeId> level_sizes, Rng& rng);

/// Random out-forest: `trees` independent attachment trees with sizes
/// split uniformly, total `size` nodes.
Dag MakeRandomForest(NodeId size, int trees, double recency_bias, Rng& rng);

/// Enumerates shape presets for parameterized sweeps.
enum class TreeFamily {
  kBushy,     // attachment, recency_bias = 0
  kMixed,     // attachment, recency_bias = 0.5
  kSpiny,     // attachment, recency_bias = 0.9
  kBranchy,   // branching, child_p = 0.55, max 4 children
};

const char* ToString(TreeFamily family);

/// Materializes one tree of the family with ~size nodes.
Dag MakeTree(TreeFamily family, NodeId size, Rng& rng);

}  // namespace otsched
