// Random two-terminal series-parallel DAGs.
//
// The conclusion's open questions single out series-parallel DAGs — the
// natural model of fork-join programs ("spawn"/"sync") — as the next
// class after out-trees.  This generator builds them by the recursive
// definition: a single edge (two nodes), a series composition, or a
// parallel composition of smaller SP graphs, with the recursion shape
// drawn from the given options.
#pragma once

#include "common/rng.h"
#include "dag/dag.h"

namespace otsched {

struct SeriesParallelOptions {
  /// Approximate node budget for the whole DAG.
  NodeId size = 64;
  /// Probability that an internal composition is PARALLEL (else series).
  double parallel_p = 0.5;
  /// Maximum branches of one parallel composition.
  int max_branches = 4;
};

/// Builds a random two-terminal SP DAG (single source, single sink).
Dag MakeSeriesParallelDag(const SeriesParallelOptions& options, Rng& rng);

/// True iff `dag` is two-terminal series-parallel: one source, one sink,
/// and reducible to a single edge by repeatedly (a) contracting series
/// vertices (in-degree = out-degree = 1) and (b) merging parallel edges.
bool IsTwoTerminalSeriesParallel(const Dag& dag);

}  // namespace otsched
