#include "gen/numerics.h"

#include <map>
#include <tuple>

#include "common/assert.h"

namespace otsched {

Dag MakeTiledCholeskyDag(int n) {
  OTSCHED_CHECK(n >= 1);
  Dag::Builder builder;
  // Task id maps, keyed by the standard (kernel, indices) naming.
  std::map<int, NodeId> potrf;                       // k
  std::map<std::pair<int, int>, NodeId> trsm;        // (i, k), i > k
  std::map<std::pair<int, int>, NodeId> syrk;        // (i, k), i > k
  std::map<std::tuple<int, int, int>, NodeId> gemm;  // (i, j, k), i > j > k

  for (int k = 0; k < n; ++k) {
    const NodeId p = builder.add_node();
    potrf[k] = p;
    // POTRF(k) consumes the accumulated diagonal tile: SYRK(k, k-1).
    if (k > 0) builder.add_edge(syrk[{k, k - 1}], p);

    for (int i = k + 1; i < n; ++i) {
      const NodeId t = builder.add_node();
      trsm[{i, k}] = t;
      builder.add_edge(p, t);
      if (k > 0) builder.add_edge(gemm[{i, k, k - 1}], t);
    }
    for (int i = k + 1; i < n; ++i) {
      const NodeId s = builder.add_node();
      syrk[{i, k}] = s;
      builder.add_edge(trsm[{i, k}], s);
      if (k > 0) builder.add_edge(syrk[{i, k - 1}], s);
    }
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j < i; ++j) {
        const NodeId g = builder.add_node();
        gemm[{i, j, k}] = g;
        builder.add_edge(trsm[{i, k}], g);
        builder.add_edge(trsm[{j, k}], g);
        if (k > 0) builder.add_edge(gemm[{i, j, k - 1}], g);
      }
    }
  }
  return std::move(builder).build();
}

Dag MakeTiledLuDag(int n) {
  OTSCHED_CHECK(n >= 1);
  Dag::Builder builder;
  std::map<int, NodeId> getrf;                        // k
  std::map<std::pair<int, int>, NodeId> trsm_row;     // (k, j), j > k
  std::map<std::pair<int, int>, NodeId> trsm_col;     // (i, k), i > k
  std::map<std::tuple<int, int, int>, NodeId> gemm;   // (i, j, k), i,j > k

  for (int k = 0; k < n; ++k) {
    const NodeId f = builder.add_node();
    getrf[k] = f;
    if (k > 0) builder.add_edge(gemm[{k, k, k - 1}], f);

    for (int j = k + 1; j < n; ++j) {
      const NodeId t = builder.add_node();
      trsm_row[{k, j}] = t;
      builder.add_edge(f, t);
      if (k > 0) builder.add_edge(gemm[{k, j, k - 1}], t);
    }
    for (int i = k + 1; i < n; ++i) {
      const NodeId t = builder.add_node();
      trsm_col[{i, k}] = t;
      builder.add_edge(f, t);
      if (k > 0) builder.add_edge(gemm[{i, k, k - 1}], t);
    }
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j < n; ++j) {
        const NodeId g = builder.add_node();
        gemm[{i, j, k}] = g;
        builder.add_edge(trsm_col[{i, k}], g);
        builder.add_edge(trsm_row[{k, j}], g);
        if (k > 0) builder.add_edge(gemm[{i, j, k - 1}], g);
      }
    }
  }
  return std::move(builder).build();
}

Dag MakeStencil1dDag(int cells, int steps) {
  OTSCHED_CHECK(cells >= 1);
  OTSCHED_CHECK(steps >= 1);
  Dag::Builder builder(static_cast<NodeId>(cells) * steps);
  auto id = [cells](int t, int i) {
    return static_cast<NodeId>(t) * cells + i;
  };
  for (int t = 1; t < steps; ++t) {
    for (int i = 0; i < cells; ++i) {
      for (int di = -1; di <= 1; ++di) {
        const int j = i + di;
        if (j < 0 || j >= cells) continue;
        builder.add_edge(id(t - 1, j), id(t, i));
      }
    }
  }
  return std::move(builder).build();
}

Dag MakeFftButterflyDag(int log2n) {
  OTSCHED_CHECK(log2n >= 1 && log2n <= 20);
  const int n = 1 << log2n;
  const int half = n / 2;
  Dag::Builder builder(static_cast<NodeId>(log2n) * half);

  // Butterfly id at stage s that consumes (and produces) values v and
  // v ^ (1 << s): drop bit s from v.
  auto butterfly = [half](int s, int v) {
    const int low = v & ((1 << s) - 1);
    const int high = (v >> (s + 1)) << s;
    return static_cast<NodeId>(s) * half + (high | low);
  };

  for (int s = 1; s < log2n; ++s) {
    for (int v = 0; v < n; ++v) {
      if (v & (1 << s)) continue;  // enumerate each butterfly once
      const NodeId b = butterfly(s, v);
      // Inputs v and v ^ (1<<s) were produced at stage s-1.
      builder.add_edge(butterfly(s - 1, v), b);
      builder.add_edge(butterfly(s - 1, v ^ (1 << s)), b);
    }
  }
  return std::move(builder).build();
}

}  // namespace otsched
