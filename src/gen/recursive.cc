#include "gen/recursive.h"

#include <algorithm>

#include "common/assert.h"
#include "dag/builders.h"

namespace otsched {
namespace {

// Appends the quicksort call tree for `n` elements under `parent`
// (kInvalidNode for the root call).
void QuicksortCall(Dag::Builder& builder, NodeId parent, std::int64_t n,
                   const QuicksortOptions& options, Rng& rng, int depth) {
  OTSCHED_CHECK(depth < 4096, "quicksort recursion ran away");
  auto attach = [&](NodeId node) {
    if (parent != kInvalidNode) builder.add_edge(parent, node);
    parent = node;
  };

  if (n <= options.cutoff) {
    attach(builder.add_node());
    return;
  }
  // Partition work: a chain of ceil(n / grain) unit subjobs.
  const std::int64_t chain =
      std::max<std::int64_t>(1, (n + options.grain - 1) / options.grain);
  for (std::int64_t i = 0; i < chain; ++i) attach(builder.add_node());

  const double lo = options.pivot_quality;
  const double hi = 1.0 - options.pivot_quality;
  const double fraction = lo + (hi - lo) * rng.next_double();
  const auto left = static_cast<std::int64_t>(
      static_cast<double>(n - 1) * fraction);
  const std::int64_t right = (n - 1) - left;
  if (left > 0) QuicksortCall(builder, parent, left, options, rng, depth + 1);
  if (right > 0) {
    QuicksortCall(builder, parent, right, options, rng, depth + 1);
  }
}

}  // namespace

Dag MakeQuicksortTree(const QuicksortOptions& options, Rng& rng) {
  OTSCHED_CHECK(options.n >= 1);
  OTSCHED_CHECK(options.grain >= 1);
  OTSCHED_CHECK(options.cutoff >= 1);
  OTSCHED_CHECK(options.pivot_quality > 0.0 && options.pivot_quality <= 0.5);
  Dag::Builder builder;
  QuicksortCall(builder, kInvalidNode, options.n, options, rng, 0);
  return std::move(builder).build();
}

Dag MakeParallelForSeries(std::span<const NodeId> widths) {
  OTSCHED_CHECK(!widths.empty());
  Dag::Builder builder;
  NodeId previous_spawn = kInvalidNode;
  for (NodeId width : widths) {
    OTSCHED_CHECK(width >= 1);
    const NodeId spawn = builder.add_node();
    if (previous_spawn != kInvalidNode) {
      builder.add_edge(previous_spawn, spawn);
    }
    for (NodeId i = 0; i < width; ++i) {
      const NodeId iter = builder.add_node();
      builder.add_edge(spawn, iter);
    }
    previous_spawn = spawn;
  }
  return std::move(builder).build();
}

Dag MakeRandomParallelForSeries(int phases, NodeId max_width, Rng& rng) {
  OTSCHED_CHECK(phases >= 1);
  OTSCHED_CHECK(max_width >= 1);
  std::vector<NodeId> widths(static_cast<std::size_t>(phases));
  for (auto& width : widths) {
    width = static_cast<NodeId>(
        rng.next_in_range(1, static_cast<std::int64_t>(max_width)));
  }
  return MakeParallelForSeries(widths);
}

namespace {

NodeId FibCall(Dag::Builder& builder, NodeId parent, int k) {
  const NodeId node = builder.add_node();
  if (parent != kInvalidNode) builder.add_edge(parent, node);
  if (k >= 2) {
    FibCall(builder, node, k - 1);
    FibCall(builder, node, k - 2);
  }
  return node;
}

}  // namespace

Dag MakeFibTree(int k) {
  OTSCHED_CHECK(k >= 0 && k <= 30, "fib tree size explodes past k = 30");
  Dag::Builder builder;
  FibCall(builder, kInvalidNode, k);
  return std::move(builder).build();
}

Dag MakeMapReduceRound(NodeId width) {
  return MakeForkJoin(width);
}

Dag MakeMapReducePipeline(int rounds, NodeId max_width, Rng& rng) {
  OTSCHED_CHECK(rounds >= 1);
  OTSCHED_CHECK(max_width >= 1);
  Dag::Builder builder;
  NodeId previous_sink = kInvalidNode;
  for (int r = 0; r < rounds; ++r) {
    const NodeId source = builder.add_node();
    if (previous_sink != kInvalidNode) {
      builder.add_edge(previous_sink, source);
    }
    const auto width = static_cast<NodeId>(
        rng.next_in_range(1, static_cast<std::int64_t>(max_width)));
    const NodeId sink = builder.add_node();
    for (NodeId i = 0; i < width; ++i) {
      const NodeId mapper = builder.add_node();
      builder.add_edge(source, mapper);
      builder.add_edge(mapper, sink);
    }
    previous_sink = sink;
  }
  return std::move(builder).build();
}

}  // namespace otsched
