// Instance generators with a CERTIFIED optimal maximum flow.
//
// Measured competitive ratios are only meaningful against a denominator we
// can trust.  These constructions carry a proof of their OPT:
//
//  * Saturated batch: a random out-forest whose depth profile satisfies
//    W(d) <= m * (delta - d) for every d, padded with depth-1 leaves until
//    total work = m * delta.  Corollary 5.4 then gives OPT = delta
//    EXACTLY for the batch alone.
//
//  * Spaced saturated instance: such batches released every delta slots.
//    Feasible: run each batch in its own window via LPF (windows are
//    disjoint).  Lower bound: each batch alone needs delta.  Hence the
//    instance OPT = delta exactly — while leaving ZERO slack (work arrives
//    at exactly m per slot), the "fully packed" hard regime the
//    introduction describes.
//
//  * Pipelined semi-batched instance: (m/2)-wide saturated batches of
//    length 2*delta released every delta slots.  Releases are multiples of
//    OPT/2 and consecutive batches overlap, each using half the machine:
//    OPT = 2*delta exactly, again with zero slack in steady state.  This
//    is the native input format for Algorithm A's semi-batched mode
//    (Theorem 5.6) with known_opt = 2*delta.
#pragma once

#include "common/rng.h"
#include "gen/random_trees.h"
#include "job/instance.h"

namespace otsched {

struct CertifiedInstance {
  Instance instance;
  /// Exact optimal maximum flow, certified by construction.
  Time opt;
};

/// One out-forest with SingleBatchOpt == delta exactly on m processors
/// and total work exactly m * delta ("saturated").  depth_limit caps the
/// deepest level (must be in [1, delta]); the profile below it is random.
Dag MakeSaturatedForest(int m, Time delta, Time depth_limit, Rng& rng);

/// `batches` saturated batches released every `delta` slots.  OPT = delta.
CertifiedInstance MakeSpacedSaturatedInstance(int m, Time delta, int batches,
                                              Rng& rng);

/// Pipelined semi-batched family: (m/2)-wide, 2*delta-deep saturated
/// batches released every delta slots.  OPT = 2 * delta; feed Algorithm A
/// known_opt = 2 * delta.  Requires m even.
CertifiedInstance MakePipelinedSemiBatchedInstance(int m, Time delta,
                                                   int batches, Rng& rng);

/// Batched (quantum = OPT) instance for the Section 6 experiments: same
/// as MakeSpacedSaturatedInstance but with per-batch shapes drawn from the
/// given family where possible (the profile constraint is enforced by
/// trimming).  OPT = delta.
CertifiedInstance MakeBatchedFamilyInstance(int m, Time delta, int batches,
                                            TreeFamily family, Rng& rng);

}  // namespace otsched
