#include "gen/arrivals.h"

#include <cmath>

#include "common/assert.h"

namespace otsched {

Instance MakePeriodicArrivals(std::int64_t jobs, Time period,
                              const DagFactory& factory, Rng& rng) {
  OTSCHED_CHECK(jobs >= 1);
  OTSCHED_CHECK(period >= 1);
  Instance instance;
  for (std::int64_t i = 0; i < jobs; ++i) {
    instance.add_job(Job(factory(i, rng), i * period));
  }
  instance.set_name("periodic");
  return instance;
}

Instance MakePoissonArrivals(std::int64_t jobs, double rate,
                             const DagFactory& factory, Rng& rng) {
  OTSCHED_CHECK(jobs >= 1);
  OTSCHED_CHECK(rate > 0.0 && rate <= 1.0);
  Instance instance;
  Time release = 0;
  for (std::int64_t i = 0; i < jobs; ++i) {
    instance.add_job(Job(factory(i, rng), release));
    // Geometric inter-arrival with success probability `rate` (mean
    // 1/rate), the discrete analogue of exponential gaps.
    Time gap = 0;
    while (!rng.next_bool(rate)) ++gap;
    release += gap;
  }
  instance.set_name("poisson");
  return instance;
}

Instance MakeBurstyArrivals(int bursts, int burst_size, Time gap,
                            const DagFactory& factory, Rng& rng) {
  OTSCHED_CHECK(bursts >= 1);
  OTSCHED_CHECK(burst_size >= 1);
  OTSCHED_CHECK(gap >= 1);
  Instance instance;
  std::int64_t index = 0;
  for (int b = 0; b < bursts; ++b) {
    for (int k = 0; k < burst_size; ++k) {
      instance.add_job(Job(factory(index++, rng), b * gap));
    }
  }
  instance.set_name("bursty");
  return instance;
}

}  // namespace otsched
