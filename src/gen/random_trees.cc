#include "gen/random_trees.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

Dag MakeAttachmentTree(NodeId size, double recency_bias, Rng& rng) {
  OTSCHED_CHECK(size >= 1);
  OTSCHED_CHECK(recency_bias >= 0.0 && recency_bias <= 1.0);
  Dag::Builder builder;
  NodeId last = builder.add_node();
  for (NodeId v = 1; v < size; ++v) {
    NodeId parent;
    if (rng.next_bool(recency_bias)) {
      parent = last;
    } else {
      parent = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    }
    last = builder.add_node();
    builder.add_edge(parent, last);
  }
  return std::move(builder).build();
}

Dag MakeBranchingTree(NodeId size, double child_p, int max_children,
                      Rng& rng) {
  OTSCHED_CHECK(size >= 1);
  OTSCHED_CHECK(max_children >= 1);
  Dag::Builder builder;
  std::vector<NodeId> frontier = {builder.add_node()};
  while (builder.node_count() < size) {
    if (frontier.empty()) {
      // The birth process died out early; restart growth from a uniformly
      // random existing node so the tree reaches the requested size.
      frontier.push_back(static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(builder.node_count()))));
    }
    std::vector<NodeId> next;
    for (NodeId parent : frontier) {
      if (builder.node_count() >= size) break;
      int kids = rng.next_geometric(child_p, max_children);
      // Guarantee overall progress: the first frontier node of a round
      // always gets at least one child if the process would otherwise die.
      if (next.empty() && kids == 0 && parent == frontier.back()) kids = 1;
      for (int k = 0; k < kids && builder.node_count() < size; ++k) {
        const NodeId child = builder.add_node();
        builder.add_edge(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return std::move(builder).build();
}

Dag MakeLayeredRandomTree(std::span<const NodeId> level_sizes, Rng& rng) {
  OTSCHED_CHECK(!level_sizes.empty());
  Dag::Builder builder;
  std::vector<NodeId> previous;
  for (NodeId width : level_sizes) {
    OTSCHED_CHECK(width >= 1, "every level needs at least one node");
    std::vector<NodeId> current;
    current.reserve(static_cast<std::size_t>(width));
    for (NodeId i = 0; i < width; ++i) {
      const NodeId v = builder.add_node();
      if (!previous.empty()) {
        const NodeId parent = previous[static_cast<std::size_t>(
            rng.next_below(previous.size()))];
        builder.add_edge(parent, v);
      }
      current.push_back(v);
    }
    previous = std::move(current);
  }
  return std::move(builder).build();
}

Dag MakeRandomForest(NodeId size, int trees, double recency_bias, Rng& rng) {
  OTSCHED_CHECK(size >= trees);
  OTSCHED_CHECK(trees >= 1);
  // Split `size` into `trees` positive parts.
  std::vector<NodeId> sizes(static_cast<std::size_t>(trees), 1);
  for (NodeId extra = size - trees; extra > 0; --extra) {
    ++sizes[static_cast<std::size_t>(rng.next_below(sizes.size()))];
  }
  std::vector<Dag> parts;
  parts.reserve(sizes.size());
  for (NodeId part_size : sizes) {
    parts.push_back(MakeAttachmentTree(part_size, recency_bias, rng));
  }
  return DisjointUnion(parts);
}

const char* ToString(TreeFamily family) {
  switch (family) {
    case TreeFamily::kBushy:
      return "bushy";
    case TreeFamily::kMixed:
      return "mixed";
    case TreeFamily::kSpiny:
      return "spiny";
    case TreeFamily::kBranchy:
      return "branchy";
  }
  return "?";
}

Dag MakeTree(TreeFamily family, NodeId size, Rng& rng) {
  switch (family) {
    case TreeFamily::kBushy:
      return MakeAttachmentTree(size, 0.0, rng);
    case TreeFamily::kMixed:
      return MakeAttachmentTree(size, 0.5, rng);
    case TreeFamily::kSpiny:
      return MakeAttachmentTree(size, 0.9, rng);
    case TreeFamily::kBranchy:
      return MakeBranchingTree(size, 0.55, 4, rng);
  }
  OTSCHED_CHECK(false, "unknown family");
  return {};
}

}  // namespace otsched
