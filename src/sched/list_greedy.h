// Work-conserving list scheduler (Graham-style), non-FIFO baseline.
//
// At each slot it fills processors with ready subjobs drawn across ALL
// alive jobs in a seeded random interleaving.  It is work-conserving (so
// it has the span-reduction property the introduction discusses) but has
// no inter-job priority at all; comparing it against FIFO isolates how
// much FIFO's age priority buys for maximum flow.
#pragma once

#include "common/rng.h"
#include "sim/engine.h"

namespace otsched {

class ListGreedyScheduler : public Scheduler {
 public:
  explicit ListGreedyScheduler(std::uint64_t seed = 1);

  std::string name() const override { return "list-greedy"; }
  void reset(int m, JobId job_count) override;
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  std::vector<SubjobRef> pool_;
};

}  // namespace otsched
