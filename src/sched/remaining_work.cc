#include "sched/remaining_work.h"

#include <algorithm>

namespace otsched {

RemainingWorkScheduler::RemainingWorkScheduler(RemainingWorkOrder order)
    : order_(order) {}

std::string RemainingWorkScheduler::name() const {
  return order_ == RemainingWorkOrder::kSmallestFirst
             ? "srpt-like"
             : "largest-remaining-first";
}

void RemainingWorkScheduler::pick(const SchedulerView& view,
                                  std::vector<SubjobRef>& out) {
  const auto alive = view.alive();
  order_scratch_.assign(alive.begin(), alive.end());
  std::stable_sort(order_scratch_.begin(), order_scratch_.end(),
                   [&](JobId a, JobId b) {
                     const auto wa = view.remaining_work(a);
                     const auto wb = view.remaining_work(b);
                     return order_ == RemainingWorkOrder::kSmallestFirst
                                ? wa < wb
                                : wa > wb;
                   });

  int available = view.capacity();
  for (JobId job : order_scratch_) {
    if (available == 0) break;
    const auto ready = view.ready(job);
    if (ready.empty()) continue;
    const int take = std::min<int>(available, static_cast<int>(ready.size()));
    if (take < static_cast<int>(ready.size())) {
      // Intra-job: LPF (height-first), the Section 5 shaping rule.
      const auto& height = view.metrics(job).height;
      ready_scratch_.assign(ready.begin(), ready.end());
      std::stable_sort(ready_scratch_.begin(), ready_scratch_.end(),
                       [&](NodeId a, NodeId b) {
                         return height[static_cast<std::size_t>(a)] >
                                height[static_cast<std::size_t>(b)];
                       });
      for (int k = 0; k < take; ++k) {
        out.push_back(SubjobRef{job, ready_scratch_[static_cast<std::size_t>(k)]});
      }
    } else {
      for (NodeId v : ready) out.push_back(SubjobRef{job, v});
    }
    available -= take;
  }
}

}  // namespace otsched
