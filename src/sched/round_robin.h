// Processor-sharing baseline ("EQUI"): each alive job gets an equal share
// of the m processors each slot, with the remainder rotating round-robin
// and unused shares redistributed greedily.  This is the classic fair
// policy from the speed-up curves literature (Section 2) transplanted to
// the DAG model; it is work-conserving but ignores age entirely.
#pragma once

#include "sim/engine.h"

namespace otsched {

class RoundRobinScheduler : public Scheduler {
 public:
  RoundRobinScheduler() = default;

  std::string name() const override { return "round-robin-equi"; }
  void reset(int m, JobId job_count) override;
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

 private:
  std::size_t rotation_ = 0;
};

}  // namespace otsched
