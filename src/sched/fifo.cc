#include "sched/fifo.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

const char* ToString(FifoTieBreak tie_break) {
  switch (tie_break) {
    case FifoTieBreak::kFirstReady:
      return "first-ready";
    case FifoTieBreak::kLastReady:
      return "last-ready";
    case FifoTieBreak::kRandom:
      return "random";
    case FifoTieBreak::kAvoidMarked:
      return "avoid-marked";
    case FifoTieBreak::kLpfHeight:
      return "lpf-height";
    case FifoTieBreak::kMostChildren:
      return "most-children";
  }
  return "?";
}

FifoScheduler::FifoScheduler(Options options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.tie_break == FifoTieBreak::kAvoidMarked) {
    OTSCHED_CHECK(options_.deprioritize != nullptr,
                  "kAvoidMarked needs a deprioritize predicate");
  }
}

std::string FifoScheduler::name() const {
  return std::string("fifo/") + ToString(options_.tie_break);
}

bool FifoScheduler::requires_clairvoyance() const {
  return options_.tie_break == FifoTieBreak::kLpfHeight ||
         options_.tie_break == FifoTieBreak::kMostChildren;
}

bool FifoScheduler::supports_warm_start() const {
  return options_.tie_break == FifoTieBreak::kFirstReady ||
         options_.tie_break == FifoTieBreak::kLastReady ||
         options_.tie_break == FifoTieBreak::kLpfHeight ||
         options_.tie_break == FifoTieBreak::kMostChildren;
}

void FifoScheduler::reset(int m, JobId job_count) {
  (void)m;
  (void)job_count;
  rng_ = Rng(options_.seed);
}

void FifoScheduler::choose(const SchedulerView& view, JobId job,
                           std::span<const NodeId> ready, int count,
                           std::vector<SubjobRef>& out) {
  OTSCHED_DCHECK(count >= 0 &&
                 static_cast<std::size_t>(count) <= ready.size());
  scratch_.assign(ready.begin(), ready.end());
  switch (options_.tie_break) {
    case FifoTieBreak::kFirstReady:
      break;
    case FifoTieBreak::kLastReady:
      std::reverse(scratch_.begin(), scratch_.end());
      break;
    case FifoTieBreak::kRandom:
      rng_.shuffle(scratch_);
      break;
    case FifoTieBreak::kAvoidMarked:
      // Unmarked first; within each class keep ready-list order.
      std::stable_partition(scratch_.begin(), scratch_.end(),
                            [&](NodeId v) {
                              return !options_.deprioritize(job, v);
                            });
      break;
    case FifoTieBreak::kLpfHeight: {
      const auto& height = view.metrics(job).height;
      std::stable_sort(scratch_.begin(), scratch_.end(),
                       [&](NodeId a, NodeId b) {
                         return height[static_cast<std::size_t>(a)] >
                                height[static_cast<std::size_t>(b)];
                       });
      break;
    }
    case FifoTieBreak::kMostChildren: {
      const Dag& dag = view.dag(job);
      std::stable_sort(scratch_.begin(), scratch_.end(),
                       [&](NodeId a, NodeId b) {
                         return dag.out_degree(a) > dag.out_degree(b);
                       });
      break;
    }
  }
  for (int i = 0; i < count; ++i) {
    out.push_back(SubjobRef{job, scratch_[static_cast<std::size_t>(i)]});
  }
}

void FifoScheduler::pick(const SchedulerView& view,
                         std::vector<SubjobRef>& out) {
  int available = view.capacity();
  for (JobId job : view.alive()) {
    if (available == 0) break;
    const auto ready = view.ready(job);
    if (ready.empty()) continue;
    const int take = std::min<int>(available, static_cast<int>(ready.size()));
    if (take == static_cast<int>(ready.size())) {
      // Whole ready set fits: order within the slot does not matter.
      for (NodeId v : ready) out.push_back(SubjobRef{job, v});
    } else {
      choose(view, job, ready, take, out);
    }
    available -= take;
  }
}

}  // namespace otsched
