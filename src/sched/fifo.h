// FIFO for DAG jobs (Section 3, "FIFO in DAGs").
//
// At each slot, FIFO allocates processors to jobs in arrival order: the
// oldest job receives as many processors as it has ready subjobs, then the
// next oldest, until processors or ready subjobs run out.  The LAST job to
// receive processors may get fewer than its ready count, and the paper
// deliberately leaves the choice of WHICH of its ready subjobs run
// unspecified ("arbitrary FIFO").  This class implements that family:
//
//   kFirstReady    — deterministic arbitrary pick (engine ready-list order);
//   kRandom        — seeded random pick (the natural reading of
//                    "arbitrarily selects");
//   kAvoidMarked   — prefers subjobs NOT flagged by a caller predicate;
//                    with the Section 4 adversary marking key subjobs this
//                    realizes the adaptive lower-bound behaviour on a fixed
//                    (materialized) instance;
//   kLpfHeight     — clairvoyant tie-break by largest height (the
//                    "shaped" intra-job policy Section 5 advocates);
//   kMostChildren  — clairvoyant tie-break by out-degree.
//
// All variants are work-conserving and satisfy the FIFO constraints (1)
// and (2) of Section 3; only the intra-job choice differs, which is
// exactly the degree of freedom the Omega(log m) lower bound exploits.
#pragma once

#include <functional>

#include "common/rng.h"
#include "sim/engine.h"

namespace otsched {

enum class FifoTieBreak {
  kFirstReady,   // oldest-enabled first (BFS-flavoured discovery order)
  kLastReady,    // newest-enabled first (DFS-flavoured, like a deque pop)
  kRandom,
  kAvoidMarked,
  kLpfHeight,
  kMostChildren,
};

const char* ToString(FifoTieBreak tie_break);

class FifoScheduler : public Scheduler {
 public:
  struct Options {
    FifoTieBreak tie_break = FifoTieBreak::kFirstReady;
    std::uint64_t seed = 1;
    /// For kAvoidMarked: true means "schedule this subjob last".
    std::function<bool(JobId, NodeId)> deprioritize;
  };

  FifoScheduler() : FifoScheduler(Options{}) {}
  explicit FifoScheduler(Options options);

  std::string name() const override;
  bool requires_clairvoyance() const override;
  /// The deterministic view-only tie-breaks (first/last-ready, the
  /// clairvoyant height / out-degree keys) carry no state across slots
  /// and are warm-startable; kRandom consumes RNG state and
  /// kAvoidMarked depends on an external predicate, so neither is.
  bool supports_warm_start() const override;
  void reset(int m, JobId job_count) override;
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

 private:
  /// Chooses `count` subjobs from `ready` for `job` per the tie-break.
  void choose(const SchedulerView& view, JobId job,
              std::span<const NodeId> ready, int count,
              std::vector<SubjobRef>& out);

  Options options_;
  Rng rng_;
  std::vector<NodeId> scratch_;
};

}  // namespace otsched
