#include "sched/round_robin.h"

#include <algorithm>

namespace otsched {

void RoundRobinScheduler::reset(int m, JobId job_count) {
  (void)m;
  (void)job_count;
  rotation_ = 0;
}

void RoundRobinScheduler::pick(const SchedulerView& view,
                               std::vector<SubjobRef>& out) {
  const auto alive = view.alive();
  if (alive.empty()) return;
  const std::size_t n = alive.size();
  const int m = view.capacity();

  // Phase 1: equal shares, remainder assigned starting at the rotation
  // cursor so no job is systematically favoured.
  const int base = m / static_cast<int>(n);
  const int extras = m % static_cast<int>(n);
  int available = m;
  for (std::size_t i = 0; i < n && available > 0; ++i) {
    const JobId job = alive[(rotation_ + i) % n];
    int quota = base + (static_cast<int>(i) < extras ? 1 : 0);
    quota = std::min(quota, available);
    const auto ready = view.ready(job);
    const int take = std::min<int>(quota, static_cast<int>(ready.size()));
    for (int k = 0; k < take; ++k) {
      out.push_back(SubjobRef{job, ready[static_cast<std::size_t>(k)]});
    }
    available -= take;
  }

  // Phase 2: redistribute unused shares greedily (stay work-conserving).
  for (std::size_t i = 0; i < n && available > 0; ++i) {
    const JobId job = alive[(rotation_ + i) % n];
    const auto ready = view.ready(job);
    // Count how many of this job's ready subjobs were already taken in
    // phase 1: they sit at the front of the ready list.
    int already = 0;
    for (const SubjobRef& ref : out) {
      if (ref.job == job) ++already;
    }
    const int more = std::min<int>(available,
                                   static_cast<int>(ready.size()) - already);
    for (int k = 0; k < more; ++k) {
      out.push_back(
          SubjobRef{job, ready[static_cast<std::size_t>(already + k)]});
    }
    available -= std::max(0, more);
  }
  ++rotation_;
}

}  // namespace otsched
