// The single policy-construction API.
//
// Every driver — the CLI, the benches, the differential fuzz harness —
// builds schedulers through this registry, so "the set of policies" is
// defined in exactly one place: a new scheduler registers itself once and
// inherits the CLI surface, the policy-zoo benches, and the full oracle
// battery of the fuzz harness.  Specs also carry the preconditions
// (out-forests, alpha | m, semi-batched certification) and theorem
// ceilings a driver needs to run a policy safely.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "sim/engine.h"

namespace otsched {

/// Competitive-ratio ceilings proved in the paper, enforced by the ratio
/// oracle.  Theorem 5.6: semi-batched Algorithm A with known OPT;
/// Theorem 5.7: general Algorithm A via doubling.
inline constexpr double kTheorem56Ceiling = 129.0;
inline constexpr double kTheorem57Ceiling = 1548.0;

struct PolicySpec {
  /// Stable registry name (matches Scheduler::name() where possible).
  /// The ONLY accepted spelling: the PR-3 legacy aliases were removed;
  /// LegacyPolicyAlias() maps old spellings to their new names so CLIs
  /// can point users at the rename.
  std::string name;

  /// One-line summary for `otsched --list-policies`.
  std::string description;

  /// Builds a fresh scheduler; `seed` feeds randomized tie-breaking so the
  /// fuzz harness explores different executions per fuzz seed.
  std::function<std::unique_ptr<Scheduler>(std::uint64_t seed)> make;

  /// Requires every job DAG to be an out-forest (Section 5 algorithms).
  bool needs_out_forests = false;

  /// Requires alpha (= 4) to divide m (the AlgAPlanner precondition).
  bool needs_alpha_divides_m = false;

  /// Only runs on certified semi-batched instances (releases multiples of
  /// known OPT / 2); the harness passes the certified OPT via
  /// `make_semi_batched` instead of `make`.
  bool needs_semi_batched = false;

  /// For semi-batched policies: factory taking the certified OPT.
  std::function<std::unique_ptr<Scheduler>(Time known_opt)>
      make_semi_batched;

  /// Theorem ceiling on max_flow / OPT enforced by the ratio oracle
  /// (0 = no proven bound; only feasibility is checked).
  double ratio_ceiling = 0.0;
};

/// Every policy in src/sched plus the Section 5 algorithms in src/core.
const std::vector<PolicySpec>& AllPolicies();

/// Looks up a spec by registry name; nullptr if unknown.  Legacy
/// spellings are NOT accepted — resolve them via LegacyPolicyAlias to
/// tell the user the new name.
const PolicySpec* FindPolicy(std::string_view name);

/// Maps a removed legacy policy spelling (e.g. "fifo", "srpt", "alg-a")
/// to its current registry name, or nullptr if `name` was never an
/// alias.  Exists solely for diagnostics: drivers seeing an unknown
/// policy print "renamed to X" and exit non-zero.
const char* LegacyPolicyAlias(std::string_view name);

/// Builds a scheduler by registry name.  Returns nullptr for unknown
/// names so CLIs can print their own diagnostic.  For semi-batched
/// policies `known_opt` is the certified optimum (<= 0 falls back to the
/// CLI default of 2; drivers with a real certificate must pass it).
std::unique_ptr<Scheduler> MakePolicy(std::string_view name,
                                      std::uint64_t seed = 0,
                                      Time known_opt = 0);

/// Registry names in registration order (the order AllPolicies returns).
std::vector<std::string> ListPolicyNames();

/// True when `spec` can run on (instance properties, m).
bool PolicyApplies(const PolicySpec& spec, bool all_out_forests,
                   bool semi_batched_certified, int m);

}  // namespace otsched
