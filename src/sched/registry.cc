#include "sched/registry.h"

#include "core/alg_a.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/remaining_work.h"
#include "sched/round_robin.h"
#include "sched/work_stealing.h"

namespace otsched {
namespace {

PolicySpec Fifo(const std::string& name, FifoTieBreak tie_break,
                std::string description) {
  PolicySpec spec;
  spec.name = name;
  spec.description = std::move(description);
  spec.make = [tie_break](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
    FifoScheduler::Options options;
    options.tie_break = tie_break;
    options.seed = seed;
    return std::make_unique<FifoScheduler>(std::move(options));
  };
  return spec;
}

std::vector<PolicySpec> BuildRegistry() {
  std::vector<PolicySpec> registry;

  // src/sched — the baseline zoo.
  registry.push_back(Fifo("fifo/first-ready", FifoTieBreak::kFirstReady,
                          "non-clairvoyant FIFO, first-ready tie-break"));
  registry.push_back(Fifo("fifo/last-ready", FifoTieBreak::kLastReady,
                          "non-clairvoyant FIFO, last-ready tie-break"));
  registry.push_back(Fifo("fifo/random", FifoTieBreak::kRandom,
                          "non-clairvoyant FIFO, seeded random tie-break"));
  registry.push_back(Fifo("fifo/lpf-height", FifoTieBreak::kLpfHeight,
                          "clairvoyant FIFO, LPF-height tie-break"));
  registry.push_back(
      Fifo("fifo/most-children", FifoTieBreak::kMostChildren,
           "clairvoyant FIFO, most-children tie-break"));

  {
    PolicySpec spec;
    spec.name = "list-greedy";
    spec.description = "work-conserving, no inter-job priority";
    spec.make = [](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
      return std::make_unique<ListGreedyScheduler>(seed);
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "round-robin-equi";
    spec.description = "round-robin processor sharing";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<RoundRobinScheduler>();
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "work-stealing";
    spec.description = "simulated randomized work stealing";
    spec.make = [](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
      WorkStealingScheduler::Options options;
      options.seed = seed;
      return std::make_unique<WorkStealingScheduler>(std::move(options));
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "remaining-work/smallest";
    spec.description = "smallest-remaining-work first (clairvoyant)";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<RemainingWorkScheduler>(
          RemainingWorkOrder::kSmallestFirst);
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "remaining-work/largest";
    spec.description = "largest-remaining-work first (clairvoyant)";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<RemainingWorkScheduler>(
          RemainingWorkOrder::kLargestFirst);
    };
    registry.push_back(std::move(spec));
  }

  // src/core — the Section 5 machinery.
  {
    PolicySpec spec;
    spec.name = "global-lpf";
    spec.description = "global height priority (clairvoyant)";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<GlobalLpfScheduler>();
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "alg-a/general";
    spec.description = "the paper's Algorithm A (general, Thm 5.7)";
    spec.needs_out_forests = true;
    spec.needs_alpha_divides_m = true;
    spec.ratio_ceiling = kTheorem57Ceiling;
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<AlgAScheduler>();
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "alg-a/semi-batched";
    spec.description =
        "Algorithm A with known OPT (Thm 5.6; pass --opt)";
    spec.needs_out_forests = true;
    spec.needs_alpha_divides_m = true;
    spec.needs_semi_batched = true;
    spec.ratio_ceiling = kTheorem56Ceiling;
    spec.make_semi_batched =
        [](Time known_opt) -> std::unique_ptr<Scheduler> {
      AlgASemiBatchedScheduler::Options options;
      options.known_opt = known_opt;
      return std::make_unique<AlgASemiBatchedScheduler>(std::move(options));
    };
    registry.push_back(std::move(spec));
  }

  return registry;
}

}  // namespace

const std::vector<PolicySpec>& AllPolicies() {
  static const std::vector<PolicySpec> registry = BuildRegistry();
  return registry;
}

const PolicySpec* FindPolicy(std::string_view name) {
  for (const PolicySpec& spec : AllPolicies()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const char* LegacyPolicyAlias(std::string_view name) {
  // The PR-3 spellings, retired when the registry names stabilized.
  // Kept only so drivers can answer "unknown policy 'fifo'" with the
  // rename instead of a bare failure.
  struct Rename {
    const char* legacy;
    const char* current;
  };
  static constexpr Rename kRenames[] = {
      {"fifo", "fifo/first-ready"},
      {"fifo-random", "fifo/random"},
      {"fifo-lpf", "fifo/lpf-height"},
      {"equi", "round-robin-equi"},
      {"srpt", "remaining-work/smallest"},
      {"alg-a", "alg-a/general"},
      {"alg-a-semibatched", "alg-a/semi-batched"},
  };
  for (const Rename& rename : kRenames) {
    if (name == rename.legacy) return rename.current;
  }
  return nullptr;
}

std::unique_ptr<Scheduler> MakePolicy(std::string_view name,
                                      std::uint64_t seed, Time known_opt) {
  const PolicySpec* spec = FindPolicy(name);
  if (spec == nullptr) return nullptr;
  if (spec->needs_semi_batched) {
    return spec->make_semi_batched(known_opt > 0 ? known_opt : 2);
  }
  return spec->make(seed);
}

std::vector<std::string> ListPolicyNames() {
  std::vector<std::string> names;
  names.reserve(AllPolicies().size());
  for (const PolicySpec& spec : AllPolicies()) names.push_back(spec.name);
  return names;
}

bool PolicyApplies(const PolicySpec& spec, bool all_out_forests,
                   bool semi_batched_certified, int m) {
  if (spec.needs_out_forests && !all_out_forests) return false;
  if (spec.needs_alpha_divides_m && m % 4 != 0) return false;
  if (spec.needs_semi_batched && !semi_batched_certified) return false;
  return true;
}

}  // namespace otsched
