#include "sched/list_greedy.h"

namespace otsched {

ListGreedyScheduler::ListGreedyScheduler(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

void ListGreedyScheduler::reset(int m, JobId job_count) {
  (void)m;
  (void)job_count;
  rng_ = Rng(seed_);
}

void ListGreedyScheduler::pick(const SchedulerView& view,
                               std::vector<SubjobRef>& out) {
  pool_.clear();
  for (JobId job : view.alive()) {
    for (NodeId v : view.ready(job)) pool_.push_back(SubjobRef{job, v});
  }
  if (static_cast<int>(pool_.size()) > view.capacity()) {
    rng_.shuffle(pool_);
    pool_.resize(static_cast<std::size_t>(view.capacity()));
  }
  out.insert(out.end(), pool_.begin(), pool_.end());
}

}  // namespace otsched
