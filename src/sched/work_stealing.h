// Simulated randomized work stealing (Blumofe–Leiserson / Arora–
// Blumofe–Plaxton style), the runtime the paper's Section 2 cites as the
// practical scheduler for dynamic multithreading.
//
// Model, one slot = one superstep of m workers:
//   * each worker owns a deque of discovered ready subjobs;
//   * a worker with a nonempty deque pops its BOTTOM (newest) entry and
//     executes it;
//   * an empty worker makes ONE steal attempt at a uniformly random
//     victim, taking the TOP (oldest) entry; a failed attempt idles the
//     worker for the slot;
//   * subjobs enabled by this slot's executions are pushed onto the
//     executing worker's deque (bottom), becoming runnable next slot;
//   * a newly arrived job's roots are pushed onto one random worker.
//
// Information model: the scheduler discovers a subjob's children when it
// executes the subjob — exactly the paper's NON-clairvoyant model.  (It
// declares clairvoyance to the engine because discovery is implemented
// by reading dag().children() of already-executed nodes; it never
// inspects undiscovered structure, and a test locks that in by checking
// its decisions agree with a replay that only sees executed prefixes.)
//
// Unlike the other baselines this policy is NOT work-conserving at slot
// granularity (steal attempts can fail), which is what makes it an
// interesting foil for the span-reduction-property discussion in the
// introduction.
#pragma once

#include <deque>

#include "common/rng.h"
#include "sim/engine.h"

namespace otsched {

class WorkStealingScheduler : public Scheduler {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Steal attempts an idle worker makes per slot (1 = classic model).
    int steal_attempts = 1;
  };

  WorkStealingScheduler() : WorkStealingScheduler(Options{}) {}
  explicit WorkStealingScheduler(Options options);

  std::string name() const override { return "work-stealing"; }
  bool requires_clairvoyance() const override { return true; }
  /// The deques carry discovered subjobs across slots; a rollback would
  /// leave them holding refs the arena no longer considers ready.
  bool supports_job_rollback() const override { return false; }
  void reset(int m, JobId job_count) override;
  void on_arrival(JobId id, const SchedulerView& view) override;
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

  /// Worker-slots that idled due to failed steals (for experiments).
  std::int64_t failed_steals() const { return failed_steals_; }

 private:
  Options options_;
  Rng rng_;
  std::vector<std::deque<SubjobRef>> deques_;
  /// Remaining not-yet-executed parent count per (job, node), maintained
  /// from discovered structure only.
  std::vector<std::vector<NodeId>> pending_parents_;
  std::int64_t failed_steals_ = 0;
};

}  // namespace otsched
