#include "sched/work_stealing.h"

#include "common/assert.h"

namespace otsched {

WorkStealingScheduler::WorkStealingScheduler(Options options)
    : options_(options), rng_(options.seed) {
  OTSCHED_CHECK(options_.steal_attempts >= 1);
}

void WorkStealingScheduler::reset(int m, JobId job_count) {
  rng_ = Rng(options_.seed);
  deques_.assign(static_cast<std::size_t>(m), {});
  pending_parents_.assign(static_cast<std::size_t>(job_count), {});
  failed_steals_ = 0;
}

void WorkStealingScheduler::on_arrival(JobId id, const SchedulerView& view) {
  const Dag& dag = view.dag(id);
  // Streaming drivers submit jobs after reset(); grow lazily (a no-op on
  // batch runs, where reset sized the table for the whole instance).
  if (static_cast<std::size_t>(id) >= pending_parents_.size()) {
    pending_parents_.resize(static_cast<std::size_t>(id) + 1);
  }
  auto& pending = pending_parents_[static_cast<std::size_t>(id)];
  pending.resize(static_cast<std::size_t>(dag.node_count()));
  // The runtime is handed the job's roots; everything deeper is
  // discovered by executing parents.
  auto& home =
      deques_[static_cast<std::size_t>(rng_.next_below(deques_.size()))];
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    pending[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (dag.in_degree(v) == 0) home.push_back(SubjobRef{id, v});
  }
}

void WorkStealingScheduler::pick(const SchedulerView& view,
                                 std::vector<SubjobRef>& out) {
  const std::size_t m = deques_.size();
  // Under fault injection only the first capacity workers run this slot
  // (their deques survive the outage untouched).
  const std::size_t active = std::min(
      m, static_cast<std::size_t>(std::max(0, view.capacity())));

  // Phase 1: every live worker selects at most one subjob.  Selections
  // happen sequentially (worker 0 first), which resolves steal races the
  // way a serialization of one superstep would.
  std::vector<SubjobRef> executed_by(m, SubjobRef{});
  std::vector<char> busy(m, 0);
  for (std::size_t w = 0; w < active; ++w) {
    SubjobRef chosen{};
    if (!deques_[w].empty()) {
      chosen = deques_[w].back();
      deques_[w].pop_back();
    } else {
      for (int attempt = 0; attempt < options_.steal_attempts; ++attempt) {
        const std::size_t victim = static_cast<std::size_t>(
            rng_.next_below(static_cast<std::uint64_t>(m)));
        if (victim != w && !deques_[victim].empty()) {
          chosen = deques_[victim].front();
          deques_[victim].pop_front();
          break;
        }
      }
      if (chosen.job == kInvalidJob) {
        ++failed_steals_;
        continue;
      }
    }
    executed_by[w] = chosen;
    busy[w] = 1;
    out.push_back(chosen);
  }

  // Phase 2: executions complete at the end of the slot; enabled children
  // are discovered and pushed onto the executing worker's deque.
  for (std::size_t w = 0; w < m; ++w) {
    if (!busy[w]) continue;
    const SubjobRef ref = executed_by[w];
    const Dag& dag = view.dag(ref.job);
    auto& pending = pending_parents_[static_cast<std::size_t>(ref.job)];
    for (NodeId c : dag.children(ref.node)) {
      if (--pending[static_cast<std::size_t>(c)] == 0) {
        deques_[w].push_back(SubjobRef{ref.job, c});
      }
    }
  }
}

}  // namespace otsched
