// Remaining-work job priorities: SRPT-style (smallest remaining work
// first) and its antithesis (largest remaining first).
//
// SRPT is the classic average-flow workhorse; for MAXIMUM flow it is
// known to starve large jobs.  Including both makes the experiment tables
// show why age priority (FIFO) — not size priority — is the right
// inter-job rule for the l_inf objective, which is the premise the paper
// starts from.  Intra-job choice is LPF (height-first), so these are
// clairvoyant policies.
#pragma once

#include "sim/engine.h"

namespace otsched {

enum class RemainingWorkOrder {
  kSmallestFirst,  // SRPT-like
  kLargestFirst,
};

class RemainingWorkScheduler : public Scheduler {
 public:
  explicit RemainingWorkScheduler(RemainingWorkOrder order);

  std::string name() const override;
  bool requires_clairvoyance() const override { return true; }
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

 private:
  RemainingWorkOrder order_;
  std::vector<JobId> order_scratch_;
  std::vector<NodeId> ready_scratch_;
};

}  // namespace otsched
