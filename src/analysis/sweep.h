// Parallel parameter-sweep runner for the experiment harnesses.
//
// A sweep is a grid of independent cells (one (m, seed, config) point
// each); cells run across a thread pool and results come back in grid
// order regardless of completion order, so experiment tables are
// deterministic given the seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/batch_runner.h"

namespace otsched {

/// RunSweep was folded into BatchRunner (the RunContext-era batch
/// surface).  Spell it `BatchRunner(workers).Map<R>(n, cell)`; this
/// poisoned stub exists only so stale call sites get the rename in
/// their compile error instead of an unexplained lookup failure.
template <typename R>
std::vector<R> RunSweep(std::size_t /*n*/,
                        const std::function<R(std::size_t)>& /*cell*/,
                        std::size_t /*workers*/ = 0) {
  static_assert(sizeof(R) == 0,
                "RunSweep was renamed: construct BatchRunner(workers) and "
                "call .Map<R>(n, cell) (sim/batch_runner.h)");
  return {};
}

/// Aggregates per-seed doubles into mean / min / max.
struct SeedAggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

SeedAggregate Aggregate(const std::vector<double>& values);

/// Folds the per-cell registries of an instrumented batch into one
/// aggregate, in index order — the same order for every worker count, so
/// sweep metrics are deterministic exactly like sweep tables.
MetricsRegistry MergedMetrics(
    std::span<const BatchRunner::InstrumentedRun> runs);

// ---- crash-tolerant checkpointing ----

/// The flow-level outcome of one sweep cell — everything the sweep table
/// needs, small enough to persist after every cell.
struct SweepCellRecord {
  std::size_t index = 0;
  int m = 1;
  std::uint64_t seed = 0;
  Time max_flow = 0;
  Time horizon = 0;
  std::int64_t busy_slots = 0;
  std::int64_t executed_subjobs = 0;
  std::int64_t idle_processor_slots = 0;
};

/// A crash-tolerant store of completed sweep cells.
///
/// The on-disk manifest is a line-oriented text file: a header that pins
/// the sweep's identity (instance fingerprint, policy, machine list,
/// seed count, record mode, fault spec) followed by one `cell` line per
/// completed cell.  Every record() REWRITES the whole manifest to
/// `<path>.tmp` and atomically renames it over `<path>`, so a SIGKILL at
/// any instant leaves either the previous complete manifest or the new
/// one — never a torn file.  resume() loads a manifest, REQUIRES the
/// header to match this sweep's identity (a checkpoint from a different
/// grid must not silently splice in), and returns the completed cells;
/// the runner then skips them, making `--resume` after a kill produce
/// output bit-identical to an uninterrupted run.
class SweepCheckpoint {
 public:
  struct Identity {
    std::string instance_hash;  // FingerprintInstance hex
    std::string policy;
    std::string machines;  // comma-joined m list
    int seeds = 0;
    std::string record;  // "full" | "flow-only"
    std::string faults;  // fault spec shorthand
  };

  SweepCheckpoint(std::string path, Identity identity);

  /// Loads an existing manifest at the path.  Returns false with a
  /// diagnostic in `error` when the file exists but its header does not
  /// match `identity` or it is unreadable; a missing file is a fresh
  /// start (returns true, nothing completed).  Malformed trailing cell
  /// lines are dropped, keeping every intact record before them.
  bool resume(std::string* error);

  /// Completed-cell lookup (nullopt = cell still pending).
  std::optional<SweepCellRecord> completed(std::size_t index) const;
  std::size_t completed_count() const;

  /// Records one finished cell and atomically persists the manifest.
  /// Thread-safe: sweep cells call this concurrently.
  void record(const SweepCellRecord& cell);

  const std::string& path() const { return path_; }

  /// Serialized manifest (header + completed cells in index order).
  std::string to_text() const;

 private:
  std::string serialize_locked() const;
  void persist_locked() const;

  std::string path_;
  Identity identity_;
  mutable std::mutex mutex_;
  std::map<std::size_t, SweepCellRecord> cells_;
};

}  // namespace otsched
