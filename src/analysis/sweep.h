// Parallel parameter-sweep runner for the experiment harnesses.
//
// A sweep is a grid of independent cells (one (m, seed, config) point
// each); cells run across a thread pool and results come back in grid
// order regardless of completion order, so experiment tables are
// deterministic given the seeds.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "sim/batch_runner.h"

namespace otsched {

/// Runs `cell(i)` for i in [0, n) across a pool and returns the results
/// in index order.  Thin wrapper over BatchRunner::Map (the shared
/// deterministic fan-out); R only needs to be movable.
template <typename R>
std::vector<R> RunSweep(std::size_t n, const std::function<R(std::size_t)>& cell,
                        std::size_t workers = 0) {
  return BatchRunner(workers).Map<R>(n, cell);
}

/// Aggregates per-seed doubles into mean / min / max.
struct SeedAggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

SeedAggregate Aggregate(const std::vector<double>& values);

/// Folds the per-cell registries of an instrumented batch into one
/// aggregate, in index order — the same order for every worker count, so
/// sweep metrics are deterministic exactly like sweep tables.
MetricsRegistry MergedMetrics(
    std::span<const BatchRunner::InstrumentedRun> runs);

}  // namespace otsched
