// Resource-augmentation measurement (Section 2's analytical frame).
//
// Essentially all prior work on this problem (notably SPAA'16 [4], which
// shows FIFO is scalable) analyzes algorithms with (1+eps)-speed
// processors; the paper's whole point is to drop that assumption.  To
// make the contrast measurable we implement the standard discrete
// analogue — MACHINE augmentation: the algorithm runs on
// ceil((1+eps) * m) processors while the optimum is charged for m.
// Intuitively (and in the [4] analysis), augmentation "assumes away" the
// perfectly packed hard instances; this module lets the benches show the
// Section 4 lower-bound family collapsing from Theta(log m) to O(1)
// under even tiny eps, which is exactly why the un-augmented question the
// paper answers was open.
#pragma once

#include "analysis/ratio.h"

namespace otsched {

struct AugmentedMeasurement {
  double eps = 0.0;
  int algorithm_m = 0;  // ceil((1 + eps) * m)
  RatioMeasurement measurement;  // ratio vs OPT on m (certified or LB)
};

/// Runs `scheduler` with ceil((1+eps) * m) processors and divides its max
/// flow by OPT[I, m] (certified_opt, or the computed lower bound on m
/// processors when 0).
AugmentedMeasurement MeasureAugmentedRatio(const Instance& instance, int m,
                                           double eps, Scheduler& scheduler,
                                           Time certified_opt = 0);

}  // namespace otsched
