#include "analysis/section6.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/assert.h"

namespace otsched {

Section6Report CheckSection6Invariants(const Schedule& schedule,
                                       const Instance& instance, int m,
                                       Time opt) {
  OTSCHED_CHECK(m >= 1);
  OTSCHED_CHECK(opt >= 1);
  Section6Report report;
  const JobId n = instance.job_count();
  if (n == 0) return report;

  auto fail = [&report](bool& flag, const std::string& message) {
    if (report.violation.empty()) report.violation = message;
    flag = false;
  };

  // Completion times and per-job progress.
  const FlowSummary flows = ComputeFlows(schedule, instance);
  OTSCHED_CHECK(flows.all_completed,
                "Section 6 checks need a finished schedule");

  std::vector<std::int64_t> remaining(static_cast<std::size_t>(n));
  std::vector<Time> z(static_cast<std::size_t>(n), 0);
  for (JobId i = 0; i < n; ++i) {
    remaining[static_cast<std::size_t>(i)] = instance.job(i).work();
  }

  // Distinct releases, ascending, for the restricted-load prefix sums.
  std::vector<Time> releases;
  for (const Job& job : instance.jobs()) releases.push_back(job.release());
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()),
                 releases.end());
  auto release_rank = [&](Time r) {
    return static_cast<std::size_t>(
        std::lower_bound(releases.begin(), releases.end(), r) -
        releases.begin());
  };

  std::vector<std::int64_t> load_by_rank(releases.size());
  std::vector<std::vector<NodeId>> ran_nodes(static_cast<std::size_t>(n));

  for (Time t = 1; t <= schedule.horizon(); ++t) {
    // Per-slot loads bucketed by the running job's release rank, plus the
    // set of (job, node) pairs that ran.
    std::fill(load_by_rank.begin(), load_by_rank.end(), 0);
    for (JobId i = 0; i < n; ++i) ran_nodes[static_cast<std::size_t>(i)].clear();
    for (const SubjobRef& ref : schedule.at(t)) {
      ++load_by_rank[release_rank(instance.job(ref.job).release())];
      ran_nodes[static_cast<std::size_t>(ref.job)].push_back(ref.node);
    }
    // Prefix sums: restricted load |S_i(t)| for a job with release rank k
    // is prefix[k].
    std::vector<std::int64_t> prefix(releases.size());
    std::int64_t acc = 0;
    for (std::size_t k = 0; k < releases.size(); ++k) {
      acc += load_by_rank[k];
      prefix[k] = acc;
    }

    for (JobId i = 0; i < n; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const Job& job = instance.job(i);
      const Time completion = flows.completion[idx];
      const bool in_window = job.release() < t && t <= completion;
      if (in_window) {
        const std::int64_t restricted_load =
            prefix[release_rank(job.release())];
        if (restricted_load < m) {
          // Idle step of S_i.
          ++z[idx];
          ++report.checks;
          // Proposition 6.2: FIFO must be running a subjob of job i now.
          if (ran_nodes[idx].empty()) {
            std::ostringstream out;
            out << "Prop 6.2: slot " << t << " idle in S_" << i
                << " but job " << i << " runs nothing";
            fail(report.prop62_runs_job, out.str());
          }
          // ... and every such subjob ends a path of >= z_i(t) vertices.
          for (NodeId v : ran_nodes[idx]) {
            const std::int32_t depth =
                job.metrics().depth[static_cast<std::size_t>(v)];
            if (depth < z[idx]) {
              std::ostringstream out;
              out << "Prop 6.2: job " << i << " node " << v << " depth "
                  << depth << " < z_i(t) = " << z[idx] << " at slot " << t;
              fail(report.prop62_path_depth, out.str());
            }
          }
          if (z[idx] > opt) {
            std::ostringstream out;
            out << "z_" << i << "(" << t << ") = " << z[idx] << " > OPT = "
                << opt;
            fail(report.z_bounded_by_opt, out.str());
          }
        }
      }
      // Progress update happens for every job with work this slot.
      remaining[idx] -=
          static_cast<std::int64_t>(ran_nodes[idx].size());
      // Lemma 6.4 at the end of slot t, while the job is live.
      if (job.release() <= t && t <= completion) {
        ++report.checks;
        const std::int64_t bound = (opt - z[idx]) * m;
        if (remaining[idx] > bound) {
          std::ostringstream out;
          out << "Lemma 6.4: w_" << i << "(" << t << ") = " << remaining[idx]
              << " > (OPT - z)(m) = " << bound;
          fail(report.lemma64_holds, out.str());
        }
        if (bound > 0) {
          report.lemma64_tightness =
              std::max(report.lemma64_tightness,
                       static_cast<double>(remaining[idx]) /
                           static_cast<double>(bound));
        }
      }
    }
  }

  for (JobId i = 0; i < n; ++i) {
    report.max_z = std::max(report.max_z, z[static_cast<std::size_t>(i)]);
  }
  return report;
}

Lemma65Report CheckLemma65(const Schedule& schedule,
                           const Instance& instance, int m, Time opt) {
  OTSCHED_CHECK(m >= 1);
  OTSCHED_CHECK(opt >= 1);
  Lemma65Report report;
  const JobId n = instance.job_count();
  if (n == 0) return report;

  // Precondition: job i released exactly at i*opt.
  for (JobId i = 0; i < n; ++i) {
    OTSCHED_CHECK(instance.job(i).release() == i * opt,
                  "Lemma 6.5 needs job i released at i*OPT; job "
                      << i << " is at " << instance.job(i).release());
  }

  // tau: the power of two in [2*m*opt, 4*m*opt).
  report.tau = 1;
  while (report.tau < 2 * static_cast<Time>(m) * opt) {
    report.tau *= 2;
    ++report.log_tau;
  }

  const FlowSummary flows = ComputeFlows(schedule, instance);
  OTSCHED_CHECK(flows.all_completed, "Lemma 6.5 needs a finished schedule");

  auto fail = [&report](bool& flag, const std::string& message) {
    if (report.violation.empty()) report.violation = message;
    flag = false;
  };

  // Walk the schedule once, maintaining w_k and z_k; snapshot at each
  // boundary t = i*opt.
  std::vector<std::int64_t> w(static_cast<std::size_t>(n));
  std::vector<Time> z(static_cast<std::size_t>(n), 0);
  for (JobId k = 0; k < n; ++k) {
    w[static_cast<std::size_t>(k)] = instance.job(k).work();
  }

  // Per slot, loads bucketed by job index prefix (releases are ordered
  // by index here, so |S_k(u)| = #subjobs from jobs <= k).
  std::vector<std::int64_t> per_job_load(static_cast<std::size_t>(n));

  const Time last_boundary = (n - 1) * opt;
  Time next_boundary = 0;
  JobId boundary_index = 0;

  auto snapshot = [&](JobId i, Time t) {
    const JobId j = i - static_cast<JobId>(report.log_tau);
    ++report.boundaries_checked;

    std::int64_t alive = 0;
    for (JobId k = 0; k <= std::min<JobId>(i, n - 1); ++k) {
      if (flows.completion[static_cast<std::size_t>(k)] > t) ++alive;
    }
    report.max_alive_at_boundary =
        std::max(report.max_alive_at_boundary, alive);

    // (1): jobs 0 .. j-1 done by t.
    for (JobId k = 0; k < std::min<JobId>(j, n); ++k) {
      if (flows.completion[static_cast<std::size_t>(k)] > t) {
        std::ostringstream out;
        out << "Lemma 6.5(1): job " << k << " alive at boundary i=" << i;
        fail(report.part1_holds, out.str());
      }
    }
    // (2) and (3) for each l.
    for (int l = 0; l <= report.log_tau - 1; ++l) {
      double lhs = 0.0;
      Time min_z = kInfiniteTime;
      bool any = false;
      for (JobId k = std::max<JobId>(0, j);
           k <= std::min<JobId>(j + l, n - 1); ++k) {
        if (k > i) break;  // not released yet (cannot happen: j+l <= i-1)
        lhs += static_cast<double>(w[static_cast<std::size_t>(k)]);
        // Paper convention: z = infinity once the job completed.
        const Time zk =
            flows.completion[static_cast<std::size_t>(k)] <= t
                ? kInfiniteTime
                : z[static_cast<std::size_t>(k)];
        min_z = std::min(min_z, zk);
        any = true;
      }
      if (!any) continue;
      lhs /= static_cast<double>(m);
      ++report.inequalities_checked;

      const double rhs2 =
          static_cast<double>(l) * static_cast<double>(opt) +
          (min_z == kInfiniteTime ? 1e18 : static_cast<double>(min_z));
      if (lhs > rhs2 + 1e-9) {
        std::ostringstream out;
        out << "Lemma 6.5(2): boundary i=" << i << " l=" << l << ": "
            << lhs << " > " << rhs2;
        fail(report.part2_holds, out.str());
      }
      double rhs3 = 0.0;
      double half = 0.5;
      for (int k = 1; k <= l + 1; ++k) {
        rhs3 += (1.0 - half) * static_cast<double>(opt);
        half /= 2.0;
      }
      if (rhs3 > 0.0) {
        report.part3_tightness =
            std::max(report.part3_tightness, lhs / rhs3);
      }
      if (lhs > rhs3 + 1e-9) {
        std::ostringstream out;
        out << "Lemma 6.5(3): boundary i=" << i << " l=" << l << ": "
            << lhs << " > " << rhs3;
        fail(report.part3_holds, out.str());
      }
    }
  };

  // Boundary at t = 0 (trivial; start the induction).
  snapshot(0, 0);
  next_boundary = opt;
  boundary_index = 1;

  for (Time t = 1; t <= schedule.horizon(); ++t) {
    std::fill(per_job_load.begin(), per_job_load.end(), 0);
    for (const SubjobRef& ref : schedule.at(t)) {
      ++per_job_load[static_cast<std::size_t>(ref.job)];
    }
    // z updates: idle in S_k <=> prefix load up to k is < m, for alive
    // arrived jobs k (r_k < t <= C_k).
    std::int64_t prefix = 0;
    for (JobId k = 0; k < n; ++k) {
      prefix += per_job_load[static_cast<std::size_t>(k)];
      const bool alive = instance.job(k).release() < t &&
                         t <= flows.completion[static_cast<std::size_t>(k)];
      if (alive && prefix < m) ++z[static_cast<std::size_t>(k)];
    }
    for (const SubjobRef& ref : schedule.at(t)) {
      --w[static_cast<std::size_t>(ref.job)];
    }
    while (boundary_index < n && t == next_boundary) {
      snapshot(boundary_index, t);
      ++boundary_index;
      next_boundary += opt;
    }
  }
  // Boundaries past the horizon (everything finished) are trivial; check
  // part (1) only, which still must hold.
  while (boundary_index < n) {
    snapshot(boundary_index, next_boundary);
    ++boundary_index;
    next_boundary += opt;
  }
  (void)last_boundary;
  return report;
}

}  // namespace otsched
