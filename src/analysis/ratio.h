// Running a scheduler on an instance and measuring its competitive ratio.
//
// The denominator policy is conservative: a certified OPT when the
// generator provides one, otherwise the best implemented lower bound — so
// reported ratios are upper bounds on the flattering interpretation and
// lower bounds on nothing.
#pragma once

#include <string>

#include "analysis/flow_stats.h"
#include "opt/lower_bounds.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/validator.h"

namespace otsched {

struct RatioMeasurement {
  std::string scheduler;
  int m = 0;
  Time max_flow = 0;
  Time opt_denominator = 0;
  /// True when opt_denominator is a certified exact OPT, false when it is
  /// only a lower bound (ratio then conservative / possibly overstated
  /// against true OPT — never understated).
  bool denominator_exact = false;
  double ratio = 0.0;
  FlowStats flow_stats;
  SimStats sim_stats;

  // ---- certified lower bound (filled by AttachCertificate) ----

  /// Machine-checked OPT lower bound from opt/flow_network (0 until
  /// AttachCertificate runs).  Unlike opt_denominator's heuristic
  /// fallback, this value is backed by a verified certificate, so
  /// ratio_vs_certificate is a sound upper bound on the true competitive
  /// ratio for this run on any instance — not just out-forests.
  Time certified_bound = 0;
  /// Certificate construction ("max-flow"; "trivial" on empty instances).
  std::string certificate_method;
  /// Whether the certificate passed Certificate::verify() in-process
  /// (AttachCertificate aborts otherwise, so a reported measurement
  /// always carries true here or 0 in certified_bound).
  bool certificate_verified = false;
  /// max_flow / certified_bound (0.0 until AttachCertificate runs).
  double ratio_vs_certificate = 0.0;
};

/// Runs `scheduler` on `instance` with m processors and divides the
/// achieved maximum flow by `certified_opt` (> 0) or, if certified_opt
/// == 0, by the computed lower bound.  `context` is the one run surface
/// (bare SimOptions convert implicitly — the old SimOptions overload was
/// folded away); `context.observer`'s hooks fire during the measured run.
///
/// The measurement only consumes aggregates, so flow-only runs
/// (RecordMode::kFlowOnly, e.g. via FlowOnlyOptions()) are the preferred
/// mode for sweeps; full-mode runs additionally re-validate the produced
/// schedule end to end with ScheduleValidator.
RatioMeasurement MeasureRatio(const Instance& instance, int m,
                              Scheduler& scheduler, Time certified_opt = 0,
                              const RunContext& context = {});

/// Computes the certified max-flow lower bound for the measured
/// (instance, m) cell — under the same fluctuating budget the run used,
/// if any — verifies it in-process, and fills the certificate fields of
/// `measurement`.  Aborts if verification fails or if the measured flow
/// beats the certified bound: either convicts the certificate or the
/// flow accounting, and a measurement must not be reported over a broken
/// denominator.  Pass the run's BudgetTrace (nullptr = healthy machine);
/// mixing a healthy run with a faulted certificate (or vice versa) makes
/// the comparison meaningless.
void AttachCertificate(RatioMeasurement& measurement,
                       const Instance& instance,
                       const BudgetTrace* budget = nullptr);

}  // namespace otsched
