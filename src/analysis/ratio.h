// Running a scheduler on an instance and measuring its competitive ratio.
//
// The denominator policy is conservative: a certified OPT when the
// generator provides one, otherwise the best implemented lower bound — so
// reported ratios are upper bounds on the flattering interpretation and
// lower bounds on nothing.
#pragma once

#include <string>

#include "analysis/flow_stats.h"
#include "opt/lower_bounds.h"
#include "sim/engine.h"
#include "sim/validator.h"

namespace otsched {

struct RatioMeasurement {
  std::string scheduler;
  int m = 0;
  Time max_flow = 0;
  Time opt_denominator = 0;
  /// True when opt_denominator is a certified exact OPT, false when it is
  /// only a lower bound (ratio then conservative / possibly overstated
  /// against true OPT — never understated).
  bool denominator_exact = false;
  double ratio = 0.0;
  FlowStats flow_stats;
  SimStats sim_stats;
};

/// Runs `scheduler` on `instance` with m processors and divides the
/// achieved maximum flow by `certified_opt` (> 0) or, if certified_opt
/// == 0, by the computed lower bound.  The RunContext form fires
/// `context.observer`'s hooks during the measured run.
///
/// The measurement only consumes aggregates, so flow-only runs
/// (RecordMode::kFlowOnly, e.g. via FlowOnlyOptions()) are the preferred
/// mode for sweeps; full-mode runs additionally re-validate the produced
/// schedule end to end with ScheduleValidator.
RatioMeasurement MeasureRatio(const Instance& instance, int m,
                              Scheduler& scheduler, Time certified_opt,
                              const RunContext& context);

RatioMeasurement MeasureRatio(const Instance& instance, int m,
                              Scheduler& scheduler, Time certified_opt = 0,
                              const SimOptions& options = {});

}  // namespace otsched
