// Empirical verification of the Section 5.3 proof structure on Algorithm
// A schedules.
//
// From a finished schedule, the batch releases, and the parameters
// (alpha, window W), the checker verifies the mechanics Theorem 5.6's
// proof relies on:
//
//   * width cap — no batch ever occupies more than p = m/alpha
//     processors in any slot (heads replay LPF[p]; MC grants <= p);
//   * head confinement — a batch's first OPT' = 2W slots of activity use
//     at most p processors per slot and finish the batch's LPF head;
//     operationally: every subjob executed at batch age <= 2W counts as
//     head work, everything later as tail work;
//   * head-priority — while a batch is inside its head window, it is
//     never starved: it runs at every slot of its head window until its
//     head work is exhausted (LPF replay is unconditional in the
//     algorithm);
//   * tail spans — tail processing of each batch, once started, keeps
//     the batch at width exactly min(p, remaining) unless newer heads +
//     older tails saturate the machine (reported as a utilization
//     share, not asserted — this is where the beta-counting of the
//     proof lives).
//
// Batches here are RELEASE GROUPS: all jobs sharing a release time,
// matching the algorithm's union convention.
#pragma once

#include <string>

#include "job/instance.h"
#include "sim/schedule.h"

namespace otsched {

struct Section5Report {
  bool width_cap_holds = true;
  bool head_priority_holds = true;
  /// Max per-batch width observed (should be <= m / alpha).
  int max_batch_width = 0;
  /// Share of tail slots where a live old batch ran strictly fewer than
  /// min(p, its remaining work) subjobs — the "contention" slots the
  /// Theorem 5.6 proof budgets with beta.
  double tail_contention_share = 0.0;
  std::int64_t checks = 0;
  std::string violation;

  bool all_hold() const { return width_cap_holds && head_priority_holds; }
};

/// Verifies the Section 5.3 structure of `schedule` (produced by the
/// semi-batched Algorithm A with the given alpha and window on
/// `instance`, whose releases are multiples of `window`).
Section5Report CheckSection5Structure(const Schedule& schedule,
                                      const Instance& instance, int m,
                                      int alpha, Time window);

}  // namespace otsched
