#include "analysis/sweep.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

SeedAggregate Aggregate(const std::vector<double>& values) {
  SeedAggregate agg;
  agg.count = values.size();
  if (values.empty()) return agg;
  agg.min = *std::min_element(values.begin(), values.end());
  agg.max = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (double v : values) total += v;
  agg.mean = total / static_cast<double>(values.size());
  return agg;
}

MetricsRegistry MergedMetrics(
    std::span<const BatchRunner::InstrumentedRun> runs) {
  MetricsRegistry merged;
  for (const BatchRunner::InstrumentedRun& run : runs) {
    merged.merge_from(run.metrics);
  }
  return merged;
}

}  // namespace otsched
