#include "analysis/sweep.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/assert.h"

namespace otsched {

SeedAggregate Aggregate(const std::vector<double>& values) {
  SeedAggregate agg;
  agg.count = values.size();
  if (values.empty()) return agg;
  agg.min = *std::min_element(values.begin(), values.end());
  agg.max = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (double v : values) total += v;
  agg.mean = total / static_cast<double>(values.size());
  return agg;
}

MetricsRegistry MergedMetrics(
    std::span<const BatchRunner::InstrumentedRun> runs) {
  MetricsRegistry merged;
  for (const BatchRunner::InstrumentedRun& run : runs) {
    merged.merge_from(run.metrics);
  }
  return merged;
}

namespace {

constexpr const char* kCheckpointMagic = "otsched-sweep-checkpoint-v1";

}  // namespace

SweepCheckpoint::SweepCheckpoint(std::string path, Identity identity)
    : path_(std::move(path)), identity_(std::move(identity)) {}

bool SweepCheckpoint::resume(std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  cells_.clear();

  std::ifstream in(path_);
  if (!in.good()) return true;  // Nothing on disk yet: fresh start.

  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = path_ + ": " + what;
    cells_.clear();
    return false;
  };

  std::string line;
  if (!std::getline(in, line) || line != kCheckpointMagic) {
    return fail("not a sweep checkpoint (want " + std::string(kCheckpointMagic) +
                ")");
  }

  // The header pins the sweep's identity: resuming against a checkpoint
  // from a different instance / policy / grid would silently splice wrong
  // results into the table, so any mismatch is a hard (but recoverable)
  // error the CLI surfaces.
  auto expect_header = [&](const std::string& key,
                           const std::string& want) -> bool {
    if (!std::getline(in, line)) {
      fail("truncated header (missing '" + key + "')");
      return false;
    }
    std::istringstream fields(line);
    std::string got_key;
    fields >> got_key;
    std::string got_value;
    std::getline(fields, got_value);
    const std::size_t start = got_value.find_first_not_of(' ');
    got_value = start == std::string::npos ? "" : got_value.substr(start);
    if (got_key != key) {
      fail("header line '" + line + "' (want '" + key + " ...')");
      return false;
    }
    if (got_value != want) {
      fail("checkpoint is for a different sweep: " + key + " '" + got_value +
           "' vs this run's '" + want + "'");
      return false;
    }
    return true;
  };

  if (!expect_header("instance", identity_.instance_hash)) return false;
  if (!expect_header("policy", identity_.policy)) return false;
  if (!expect_header("machines", identity_.machines)) return false;
  if (!expect_header("seeds", std::to_string(identity_.seeds))) return false;
  if (!expect_header("record", identity_.record)) return false;
  if (!expect_header("faults", identity_.faults)) return false;

  // Cell lines.  A malformed line can only be the torn tail of a write
  // that never completed (every successful record() rewrites the file
  // atomically) — stop there and keep every intact record before it.
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    SweepCellRecord cell;
    if (!(fields >> keyword >> cell.index >> cell.m >> cell.seed >>
          cell.max_flow >> cell.horizon >> cell.busy_slots >>
          cell.executed_subjobs >> cell.idle_processor_slots) ||
        keyword != "cell") {
      break;
    }
    cells_[cell.index] = cell;
  }
  return true;
}

std::optional<SweepCellRecord> SweepCheckpoint::completed(
    std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cells_.find(index);
  if (it == cells_.end()) return std::nullopt;
  return it->second;
}

std::size_t SweepCheckpoint::completed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cells_.size();
}

void SweepCheckpoint::record(const SweepCellRecord& cell) {
  std::lock_guard<std::mutex> lock(mutex_);
  cells_[cell.index] = cell;
  persist_locked();
}

std::string SweepCheckpoint::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return serialize_locked();
}

std::string SweepCheckpoint::serialize_locked() const {
  std::ostringstream out;
  out << kCheckpointMagic << '\n';
  out << "instance " << identity_.instance_hash << '\n';
  out << "policy " << identity_.policy << '\n';
  out << "machines " << identity_.machines << '\n';
  out << "seeds " << identity_.seeds << '\n';
  out << "record " << identity_.record << '\n';
  out << "faults " << identity_.faults << '\n';
  for (const auto& [index, cell] : cells_) {
    out << "cell " << index << ' ' << cell.m << ' ' << cell.seed << ' '
        << cell.max_flow << ' ' << cell.horizon << ' ' << cell.busy_slots
        << ' ' << cell.executed_subjobs << ' ' << cell.idle_processor_slots
        << '\n';
  }
  return out.str();
}

void SweepCheckpoint::persist_locked() const {
  // Full rewrite to a sibling tmp file, then an atomic rename: readers
  // (and a resume after SIGKILL) only ever see a complete manifest.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    OTSCHED_CHECK(out.good(), "cannot open " << tmp << " for writing");
    out << serialize_locked();
    out.flush();
    OTSCHED_CHECK(out.good(), "write failure on " << tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  OTSCHED_CHECK(!ec, "cannot rename " << tmp << " over " << path_ << ": "
                                      << ec.message());
}

}  // namespace otsched
