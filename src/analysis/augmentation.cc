#include "analysis/augmentation.h"

#include <cmath>

#include "common/assert.h"

namespace otsched {

AugmentedMeasurement MeasureAugmentedRatio(const Instance& instance, int m,
                                           double eps, Scheduler& scheduler,
                                           Time certified_opt) {
  OTSCHED_CHECK(m >= 1);
  OTSCHED_CHECK(eps >= 0.0);
  AugmentedMeasurement result;
  result.eps = eps;
  result.algorithm_m = static_cast<int>(
      std::ceil((1.0 + eps) * static_cast<double>(m)));

  // Aggregate-only measurement: run flow-only (the engine validates
  // every pick online; no schedule is materialized).
  SimResult sim =
      Simulate(instance, result.algorithm_m, scheduler, FlowOnlyOptions());
  OTSCHED_CHECK(sim.flows.all_completed);

  RatioMeasurement& r = result.measurement;
  r.scheduler = scheduler.name();
  r.m = result.algorithm_m;
  r.max_flow = sim.flows.max_flow;
  if (certified_opt > 0) {
    r.opt_denominator = certified_opt;
    r.denominator_exact = true;
  } else {
    r.opt_denominator = MaxFlowLowerBound(instance, m);
    r.denominator_exact = false;
  }
  OTSCHED_CHECK(r.opt_denominator > 0);
  r.ratio = static_cast<double>(r.max_flow) /
            static_cast<double>(r.opt_denominator);
  r.flow_stats = ComputeFlowStats(sim.flows);
  r.sim_stats = sim.stats;
  return result;
}

}  // namespace otsched
