#include "analysis/ratio.h"

#include "common/assert.h"
#include "opt/flow_network.h"

namespace otsched {

RatioMeasurement MeasureRatio(const Instance& instance, int m,
                              Scheduler& scheduler, Time certified_opt,
                              const RunContext& context) {
  RatioMeasurement result;
  result.scheduler = scheduler.name();
  result.m = m;

  SimResult sim = Simulate(instance, m, scheduler, context);
  if (sim.has_schedule()) {
    // Full-mode runs get the end-to-end re-validation; flow-only runs
    // have no schedule to re-check, but the engine already validated
    // every pick (readiness, capacity, duplicates) online.
    const ValidationReport report =
        ValidateSchedule(sim.full_schedule(), instance);
    OTSCHED_CHECK(report.feasible, "scheduler '" << scheduler.name()
                                                 << "' produced an infeasible "
                                                    "schedule: "
                                                 << report.violation);
  }
  OTSCHED_CHECK(sim.flows.all_completed);

  result.max_flow = sim.flows.max_flow;
  if (certified_opt > 0) {
    result.opt_denominator = certified_opt;
    result.denominator_exact = true;
  } else {
    result.opt_denominator = MaxFlowLowerBound(instance, m);
    result.denominator_exact = false;
  }
  OTSCHED_CHECK(result.opt_denominator > 0);
  if (result.denominator_exact) {
    OTSCHED_CHECK(result.max_flow >= result.opt_denominator,
                  "schedule beat certified OPT — certification bug ("
                      << result.max_flow << " < " << result.opt_denominator
                      << ")");
  }
  result.ratio = static_cast<double>(result.max_flow) /
                 static_cast<double>(result.opt_denominator);
  result.flow_stats = ComputeFlowStats(sim.flows);
  result.sim_stats = sim.stats;
  return result;
}

void AttachCertificate(RatioMeasurement& measurement,
                       const Instance& instance, const BudgetTrace* budget) {
  const Certificate certificate =
      MaxFlowCertificate(instance, measurement.m, budget);
  std::string why;
  measurement.certificate_verified =
      certificate.verify(instance, budget, &why);
  OTSCHED_CHECK(measurement.certificate_verified,
                "certified bound failed its own verification: " << why);
  measurement.certified_bound = certificate.value;
  measurement.certificate_method = certificate.method;
  if (certificate.value > 0) {
    OTSCHED_CHECK(measurement.max_flow >= certificate.value,
                  "measured max flow " << measurement.max_flow
                                       << " beats the certified lower bound "
                                       << certificate.value << " on "
                                       << measurement.m
                                       << " processors — flow accounting or "
                                          "certificate is broken");
    measurement.ratio_vs_certificate =
        static_cast<double>(measurement.max_flow) /
        static_cast<double>(certificate.value);
  }
}

}  // namespace otsched
