// Summary statistics over per-job flow times.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/schedule.h"

namespace otsched {

struct FlowStats {
  std::int64_t jobs = 0;
  Time max = 0;
  Time min = 0;
  double mean = 0.0;
  Time p50 = 0;
  Time p90 = 0;
  Time p99 = 0;
  /// Total flow (the l1 objective, for context).
  std::int64_t total = 0;
};

/// Computes stats over finished jobs; aborts if any job is unfinished
/// (experiments always run to completion).
FlowStats ComputeFlowStats(const FlowSummary& flows);

std::string ToString(const FlowStats& stats);

}  // namespace otsched
