#include "analysis/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.h"

namespace otsched {

std::int64_t RunTimeSeries::peak_queue() const {
  std::int64_t peak = 0;
  for (std::int64_t q : queue_length) peak = std::max(peak, q);
  return peak;
}

std::int64_t RunTimeSeries::peak_backlog() const {
  std::int64_t peak = 0;
  for (std::int64_t b : backlog) peak = std::max(peak, b);
  return peak;
}

double RunTimeSeries::average_utilization(int m) const {
  OTSCHED_CHECK(m >= 1);
  if (busy.empty()) return 0.0;
  std::int64_t total = 0;
  for (int b : busy) total += b;
  return static_cast<double>(total) /
         (static_cast<double>(busy.size()) * static_cast<double>(m));
}

std::string RunTimeSeries::to_csv() const {
  std::ostringstream out;
  out << "slot,busy,queue,backlog\n";
  for (std::size_t i = 0; i < busy.size(); ++i) {
    out << (first_slot + static_cast<Time>(i)) << ',' << busy[i] << ','
        << queue_length[i] << ',' << backlog[i] << '\n';
  }
  return out.str();
}

RunTimeSeries ComputeTimeSeries(const Schedule& schedule,
                                const Instance& instance) {
  RunTimeSeries series;
  const Time horizon = schedule.horizon();
  if (horizon == 0) return series;
  series.busy.resize(static_cast<std::size_t>(horizon), 0);
  series.queue_length.resize(static_cast<std::size_t>(horizon), 0);
  series.backlog.resize(static_cast<std::size_t>(horizon), 0);

  // Per-job remaining counts, updated slot by slot; arrivals sorted.
  std::vector<std::int64_t> remaining(
      static_cast<std::size_t>(instance.job_count()));
  for (JobId id = 0; id < instance.job_count(); ++id) {
    remaining[static_cast<std::size_t>(id)] = instance.job(id).work();
  }
  std::vector<JobId> arrivals = instance.release_order();
  std::size_t next_arrival = 0;
  std::int64_t alive = 0;
  std::int64_t outstanding = 0;  // released, unexecuted subjobs

  for (Time t = 1; t <= horizon; ++t) {
    while (next_arrival < arrivals.size() &&
           instance.job(arrivals[next_arrival]).release() < t) {
      ++alive;
      outstanding +=
          remaining[static_cast<std::size_t>(arrivals[next_arrival])];
      ++next_arrival;
    }
    const auto slot = schedule.at(t);
    series.busy[static_cast<std::size_t>(t - 1)] =
        static_cast<int>(slot.size());
    for (const SubjobRef& ref : slot) {
      auto& left = remaining[static_cast<std::size_t>(ref.job)];
      --left;
      --outstanding;
      if (left == 0) --alive;
    }
    series.queue_length[static_cast<std::size_t>(t - 1)] = alive;
    series.backlog[static_cast<std::size_t>(t - 1)] = outstanding;
  }
  return series;
}

LogFit FitLogarithm(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  OTSCHED_CHECK(xs.size() == ys.size());
  OTSCHED_CHECK(xs.size() >= 2, "need at least two points to fit");
  const auto n = static_cast<double>(xs.size());
  double sum_l = 0.0;
  double sum_y = 0.0;
  double sum_ll = 0.0;
  double sum_ly = 0.0;
  double sum_yy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    OTSCHED_CHECK(xs[i] > 0.0, "log fit needs positive x");
    const double l = std::log2(xs[i]);
    sum_l += l;
    sum_y += ys[i];
    sum_ll += l * l;
    sum_ly += l * ys[i];
    sum_yy += ys[i] * ys[i];
  }
  LogFit fit;
  const double denom = n * sum_ll - sum_l * sum_l;
  OTSCHED_CHECK(std::fabs(denom) > 1e-12,
                "degenerate x values (all equal?)");
  fit.slope = (n * sum_ly - sum_l * sum_y) / denom;
  fit.intercept = (sum_y - fit.slope * sum_l) / n;
  const double ss_tot = sum_yy - sum_y * sum_y / n;
  if (ss_tot > 1e-12) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double predicted =
          fit.slope * std::log2(xs[i]) + fit.intercept;
      ss_res += (ys[i] - predicted) * (ys[i] - predicted);
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1.0;  // constant data, perfectly fit by slope ~0
  }
  return fit;
}

}  // namespace otsched
