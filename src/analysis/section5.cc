#include "analysis/section5.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/assert.h"

namespace otsched {

Section5Report CheckSection5Structure(const Schedule& schedule,
                                      const Instance& instance, int m,
                                      int alpha, Time window) {
  OTSCHED_CHECK(m >= 1);
  OTSCHED_CHECK(alpha >= 2 && m % alpha == 0);
  OTSCHED_CHECK(window >= 1);
  const int p = m / alpha;

  Section5Report report;
  if (instance.job_count() == 0) return report;

  auto fail = [&report](bool& flag, const std::string& message) {
    if (report.violation.empty()) report.violation = message;
    flag = false;
  };

  // Batch = release group.
  std::map<Time, std::int64_t> batch_work;
  for (const Job& job : instance.jobs()) {
    OTSCHED_CHECK(job.release() % window == 0,
                  "semi-batched instance required");
    batch_work[job.release()] += job.work();
  }
  // Remaining work per batch, updated slot by slot.
  std::map<Time, std::int64_t> remaining = batch_work;

  std::int64_t tail_live_slots = 0;
  std::int64_t tail_contended_slots = 0;

  for (Time t = 1; t <= schedule.horizon(); ++t) {
    // Width per batch this slot.
    std::map<Time, int> width;
    for (const SubjobRef& ref : schedule.at(t)) {
      ++width[instance.job(ref.job).release()];
    }
    int used = 0;
    for (const auto& [release, count] : width) used += count;

    for (const auto& [release, count] : width) {
      ++report.checks;
      report.max_batch_width = std::max(report.max_batch_width, count);
      if (count > p) {
        std::ostringstream out;
        out << "batch at release " << release << " ran " << count
            << " subjobs in slot " << t << " > p = " << p;
        fail(report.width_cap_holds, out.str());
      }
    }

    // Tail contention accounting: for every batch older than 2W with
    // work remaining, it is a "live tail"; if it ran fewer than
    // min(p, remaining) subjobs while the machine had spare capacity for
    // it, that is a contention-free shortfall (a bug in MC);
    // shortfalls WITH a saturated machine are the proof's beta-budgeted
    // slots.
    for (auto& [release, left] : remaining) {
      if (left <= 0) continue;
      const Time age = t - release;
      if (age <= 2 * window) continue;
      ++tail_live_slots;
      const int ran =
          width.count(release) ? width.at(release) : 0;
      const std::int64_t expected =
          std::min<std::int64_t>(p, left);
      if (ran < expected) {
        if (used < m) {
          // Spare processors existed and an old tail still fell short:
          // head-priority / busy property broken.
          std::ostringstream out;
          out << "batch at release " << release << " ran " << ran << " < "
              << expected << " in slot " << t << " with only " << used
              << "/" << m << " processors used";
          fail(report.head_priority_holds, out.str());
        } else {
          ++tail_contended_slots;
        }
      }
    }

    for (const SubjobRef& ref : schedule.at(t)) {
      --remaining[instance.job(ref.job).release()];
    }
  }

  if (tail_live_slots > 0) {
    report.tail_contention_share =
        static_cast<double>(tail_contended_slots) /
        static_cast<double>(tail_live_slots);
  }
  return report;
}

}  // namespace otsched
