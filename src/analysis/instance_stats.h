// Descriptive statistics of an instance: what load a scheduler is about
// to face.  Used by the CLI `describe` command and by experiment logs.
#pragma once

#include <string>

#include "job/instance.h"

namespace otsched {

struct InstanceStats {
  JobId jobs = 0;
  std::int64_t total_work = 0;
  std::int64_t min_work = 0;
  std::int64_t max_work = 0;
  std::int64_t max_span = 0;
  /// Average parallelism of the widest job: max_i work_i / span_i.
  double max_avg_parallelism = 0.0;
  Time first_release = 0;
  Time last_release = 0;
  /// Offered load vs an m-processor machine over the arrival span:
  /// total_work / (m * (last_release - first_release + 1)).  > 1 means
  /// work arrives faster than the machine can drain it during arrivals.
  double load_factor = 0.0;
  bool all_out_forests = false;
  /// Largest quantum q such that all releases are multiples of q (0 when
  /// all releases are 0): reveals batched structure.
  Time release_gcd = 0;
};

InstanceStats ComputeInstanceStats(const Instance& instance, int m);

std::string ToString(const InstanceStats& stats);

}  // namespace otsched
