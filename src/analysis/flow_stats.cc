#include "analysis/flow_stats.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace otsched {

FlowStats ComputeFlowStats(const FlowSummary& flows) {
  OTSCHED_CHECK(flows.all_completed,
                "flow stats require a completed schedule");
  FlowStats stats;
  stats.jobs = static_cast<std::int64_t>(flows.flow.size());
  if (stats.jobs == 0) return stats;

  std::vector<Time> sorted = flows.flow;
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  };
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.p50 = pct(0.50);
  stats.p90 = pct(0.90);
  stats.p99 = pct(0.99);
  for (Time f : sorted) stats.total += f;
  stats.mean = static_cast<double>(stats.total) /
               static_cast<double>(stats.jobs);
  return stats;
}

std::string ToString(const FlowStats& stats) {
  std::ostringstream out;
  out << "jobs=" << stats.jobs << " max=" << stats.max
      << " mean=" << stats.mean << " p50=" << stats.p50
      << " p90=" << stats.p90 << " p99=" << stats.p99;
  return out.str();
}

}  // namespace otsched
