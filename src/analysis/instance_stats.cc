#include "analysis/instance_stats.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/assert.h"

namespace otsched {

InstanceStats ComputeInstanceStats(const Instance& instance, int m) {
  OTSCHED_CHECK(m >= 1);
  InstanceStats stats;
  stats.jobs = instance.job_count();
  if (stats.jobs == 0) return stats;

  stats.min_work = instance.job(0).work();
  stats.first_release = instance.min_release();
  stats.last_release = instance.max_release();
  for (const Job& job : instance.jobs()) {
    stats.total_work += job.work();
    stats.min_work = std::min(stats.min_work, job.work());
    stats.max_work = std::max(stats.max_work, job.work());
    stats.max_span = std::max(stats.max_span, job.span());
    stats.max_avg_parallelism =
        std::max(stats.max_avg_parallelism,
                 static_cast<double>(job.work()) /
                     static_cast<double>(job.span()));
    stats.release_gcd = std::gcd(stats.release_gcd, job.release());
  }
  const Time window = stats.last_release - stats.first_release + 1;
  stats.load_factor = static_cast<double>(stats.total_work) /
                      (static_cast<double>(m) * static_cast<double>(window));
  stats.all_out_forests = instance.all_out_forests();
  return stats;
}

std::string ToString(const InstanceStats& stats) {
  std::ostringstream out;
  out << stats.jobs << " jobs, work " << stats.total_work << " (per job "
      << stats.min_work << ".." << stats.max_work << "), max span "
      << stats.max_span << ", max avg parallelism "
      << stats.max_avg_parallelism << ", releases " << stats.first_release
      << ".." << stats.last_release << " (gcd " << stats.release_gcd
      << "), load factor " << stats.load_factor << ", "
      << (stats.all_out_forests ? "all out-forests" : "general DAGs");
  return out.str();
}

}  // namespace otsched
