// Empirical verification of the Section 6 analysis machinery.
//
// Theorem 6.1's proof tracks, for each job i in a FIFO schedule S:
//
//   S_i(t)   — S(t) restricted to jobs released no later than r_i,
//   z_i(t)   — the number of *idle* steps of S_i (|S_i(u)| < m) in
//              (r_i, t],
//   w_i(t)   — job i's remaining work at time t,
//
// and rests on two structural facts:
//
//   Proposition 6.2 — at every step u that is idle in S_i (with
//     r_i < u <= C_i), FIFO runs at least one subjob v of job i, and v
//     terminates a directed path of >= z_i(u) vertices in G_i (hence
//     z_i(u) <= OPT);
//   Lemma 6.4 — w_i(t) <= (OPT - z_i(t)) * m at all times t >= r_i.
//
// CheckSection6Invariants replays a finished schedule and verifies all of
// these exactly, job by job and slot by slot.  The checks are only
// guaranteed for FIFO schedules (they use FIFO's age-priority and
// work-conservation), which is what the callers pass.
#pragma once

#include <string>

#include "job/instance.h"
#include "sim/schedule.h"

namespace otsched {

struct Section6Report {
  bool lemma64_holds = true;
  bool prop62_runs_job = true;    // idle step in S_i runs a subjob of i
  bool prop62_path_depth = true;  // that subjob has depth >= z_i(t)
  bool z_bounded_by_opt = true;   // z_i(t) <= OPT throughout

  /// max over jobs i of z_i(C_i) — how much restricted idle time FIFO
  /// accumulated on its worst job.
  Time max_z = 0;
  /// Tightness of Lemma 6.4: max over (i, t) of w_i(t) / ((OPT-z_i(t))m).
  double lemma64_tightness = 0.0;
  std::int64_t checks = 0;
  std::string violation;  // first violation, when any flag is false

  bool all_hold() const {
    return lemma64_holds && prop62_runs_job && prop62_path_depth &&
           z_bounded_by_opt;
  }
};

/// Verifies the Section 6 invariants of `schedule` (produced by FIFO on
/// `instance` with m processors) against the optimum `opt`.  Pass a
/// certified exact OPT for the full-strength check; a valid upper bound
/// on OPT still yields a sound (just weaker) check.
Section6Report CheckSection6Invariants(const Schedule& schedule,
                                       const Instance& instance, int m,
                                       Time opt);

/// Lemma 6.5 — the MAIN lemma of Section 6, verified directly.
///
/// Setting: a batched instance with job i released exactly at i*opt
/// (one job per boundary; union jobs beforehand if needed).  With
/// tau = the power of two in [2*m*opt, 4*m*opt) and j = i - log(tau),
/// at every boundary t = i*opt:
///   (1) jobs 0 .. j-1 have completed by t;
///   (2) for 0 <= l <= log(tau)-1:
///         (1/m) * sum_{k=j}^{j+l} w_k(t) <= l*opt + min_k z_k(t);
///   (3) for 0 <= l <= log(tau)-1:
///         (1/m) * sum_{k=j}^{j+l} w_k(t) <= sum_{k=1}^{l+1}(1-1/2^k)*opt.
/// (Nonexistent job indices contribute w = 0 and are skipped in the min;
/// completed jobs have z = +infinity per the paper's convention.)
struct Lemma65Report {
  bool part1_holds = true;  // old jobs done
  bool part2_holds = true;  // work vs restricted idle (inequalities 12)
  bool part3_holds = true;  // absolute work bound (inequalities 13)
  std::int64_t boundaries_checked = 0;
  std::int64_t inequalities_checked = 0;
  Time tau = 0;
  int log_tau = 0;
  /// Max over boundaries of (alive job count) — Lemma 6.5 caps it at
  /// log(tau) + 1.
  std::int64_t max_alive_at_boundary = 0;
  /// Tightness of the part-3 bound: max LHS/RHS over all inequalities.
  double part3_tightness = 0.0;
  std::string violation;

  bool all_hold() const {
    return part1_holds && part2_holds && part3_holds;
  }
};

Lemma65Report CheckLemma65(const Schedule& schedule,
                           const Instance& instance, int m, Time opt);

}  // namespace otsched
