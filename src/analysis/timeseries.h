// Per-slot time series of a finished run: machine utilization, alive-job
// count (queue length), and work backlog.
//
// These are the quantities the paper's narrative reasons about — "the
// online scheduler can never allow a processor to be idle", "the number
// of unfinished jobs will continue to increase" (Lemma 4.1) — extracted
// from a schedule so experiments can plot them.
#pragma once

#include <string>
#include <vector>

#include "job/instance.h"
#include "sim/schedule.h"

namespace otsched {

struct RunTimeSeries {
  Time first_slot = 1;
  /// Subjobs executed per slot (utilization = busy[i] / m).
  std::vector<int> busy;
  /// Jobs released and unfinished per slot (measured at slot end).
  std::vector<std::int64_t> queue_length;
  /// Released-but-unexecuted subjobs per slot (backlog; FIFO "falls
  /// behind" exactly when this grows).
  std::vector<std::int64_t> backlog;

  Time horizon() const { return static_cast<Time>(busy.size()); }
  std::int64_t peak_queue() const;
  std::int64_t peak_backlog() const;
  double average_utilization(int m) const;

  /// CSV text ("slot,busy,queue,backlog") for plotting.
  std::string to_csv() const;
};

/// Derives the series from a finished schedule.
RunTimeSeries ComputeTimeSeries(const Schedule& schedule,
                                const Instance& instance);

/// Least-squares fit of y ~ a * log2(x) + b; used to report the measured
/// growth rate of ratio-vs-m curves (Theorem 4.2 predicts slope ~1 in
/// lg m for FIFO on the adversarial family, 0 for Algorithm A).
struct LogFit {
  double slope = 0.0;      // a
  double intercept = 0.0;  // b
  double r_squared = 0.0;
};
LogFit FitLogarithm(const std::vector<double>& xs,
                    const std::vector<double>& ys);

}  // namespace otsched
