#include "common/rng.h"

#include <numeric>

namespace otsched {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  OTSCHED_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire-style rejection: keep the low bits unbiased.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  OTSCHED_CHECK(lo <= hi, "empty range [" << lo << ", " << hi << "]");
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(width));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  return next_double() < p;
}

int Rng::next_geometric(double p, int cap) {
  int count = 0;
  while (count < cap && next_bool(p)) ++count;
  return count;
}

Rng Rng::split() {
  return Rng(next_u64());
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  OTSCHED_CHECK(k <= n, "cannot sample " << k << " of " << n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  shuffle(all);
  all.resize(k);
  return all;
}

}  // namespace otsched
