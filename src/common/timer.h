// Wall-clock timing for experiment harnesses.
#pragma once

#include <chrono>

namespace otsched {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace otsched
