// A small work-queue thread pool for parallel parameter sweeps.
//
// Experiments iterate over grids of (m, seed, workload-shape); the cells are
// independent, so we follow the standard HPC pattern of a fixed pool of
// workers draining a queue of tasks.  The pool is deliberately simple: no
// futures, no task graphs — `parallel_for_each_index` blocks until the whole
// grid is done and rethrows the first task exception on the caller thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace otsched {

class ThreadPool {
 public:
  /// Spawns `worker_count` threads (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(0), fn(1), ..., fn(n-1) across the pool, blocking until all
  /// complete.  The indices are claimed atomically, so long tasks load-
  /// balance naturally.  If any task throws, workers stop claiming new
  /// indices (already-claimed calls finish), and the FIRST exception is
  /// rethrown on the caller thread once every worker has quiesced —
  /// indices after the failure may therefore never run.  The pool stays
  /// usable after a failed loop.
  void parallel_for_each_index(std::size_t n,
                               const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> tasks_;
  bool shutting_down_ = false;
};

/// One-shot convenience wrapper: creates a pool sized for the machine, runs
/// the loop, and tears the pool down.
void ParallelForEachIndex(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t worker_count = 0);

}  // namespace otsched
