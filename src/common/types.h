// Core identifier and time types shared across the library.
//
// Time convention (matches the paper, Section 3): a subjob scheduled "at
// time t" executes during the half-open interval (t-1, t].  A job released
// at time r may first be scheduled at slot r+1, and its flow time is its
// completion slot minus r.  Slots are 1-based.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace otsched {

/// Discrete scheduling time (a 1-based slot index; 0 means "before start").
using Time = std::int64_t;

/// Index of a job within an Instance.
using JobId = std::int32_t;

/// Index of a subjob (DAG vertex) within a job's Dag.
using NodeId = std::int32_t;

inline constexpr JobId kInvalidJob = -1;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr Time kNoTime = 0;
inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::max();

/// A reference to one subjob of one job: the unit that schedulers place
/// into schedule slots.
struct SubjobRef {
  JobId job = kInvalidJob;
  NodeId node = kInvalidNode;

  friend bool operator==(const SubjobRef&, const SubjobRef&) = default;
  friend auto operator<=>(const SubjobRef&, const SubjobRef&) = default;
};

}  // namespace otsched

template <>
struct std::hash<otsched::SubjobRef> {
  std::size_t operator()(const otsched::SubjobRef& r) const noexcept {
    return (static_cast<std::size_t>(static_cast<std::uint32_t>(r.job)) << 32) |
           static_cast<std::uint32_t>(r.node);
  }
};
