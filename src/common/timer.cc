// Intentionally empty: WallTimer is header-only, but keeping a .cc per
// header makes the target layout uniform and catches ODR problems early.
#include "common/timer.h"
