#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/assert.h"

namespace otsched {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OTSCHED_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  OTSCHED_CHECK(cells.size() == header_.size(),
                "row width " << cells.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
    }
    out += " |\n";
  };

  std::string out;
  emit_row(header_, out);
  out += '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::print(const std::string& caption) const {
  if (!caption.empty()) std::cout << caption << '\n';
  std::cout << to_string() << std::flush;
}

}  // namespace otsched
