#include "common/csv.h"

#include <cstdio>
#include <filesystem>

#include "common/assert.h"

namespace otsched {
namespace {

// Benches write into results/ relative to the working directory; create
// the directory on demand so they run from a fresh checkout.
const std::string& EnsureParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  return path;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(EnsureParentDir(path)), columns_(header.size()) {
  OTSCHED_CHECK(out_.good(), "cannot open CSV output file " << path);
  OTSCHED_CHECK(!header.empty(), "CSV header must be non-empty");
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  OTSCHED_CHECK(cells.size() == columns_,
                "row has " << cells.size() << " cells, header has "
                           << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  OTSCHED_CHECK(out_.good(), "write failure on " << path_);
}

std::string CsvWriter::format_cell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string CsvWriter::format_cell(long long value) {
  return std::to_string(value);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace otsched
