// A small metrics registry: counters, gauges, fixed-bucket histograms,
// and sparse per-slot series, with deterministic JSON/CSV serialization.
//
// The registry is the wire format of the observability layer: engine
// observers write into one registry per run, BatchRunner merges per-cell
// registries in index order (so aggregates are identical for any worker
// count), and sinks serialize the result.  Iteration order everywhere is
// name order (std::map), so two registries with the same contents always
// produce the same bytes — the property the golden metrics-JSON test and
// the batch determinism contract rely on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace otsched {

/// Monotonic integer count.
class Counter {
 public:
  void inc(std::int64_t delta = 1) { value_ += delta; }
  void set(std::int64_t value) { value_ = value; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Point-in-time observation with running last/min/max/mean.
class Gauge {
 public:
  void set(double value);
  double last() const { return last_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Pools another gauge's observations (last = other's last).
  void merge_from(const Gauge& other);

 private:
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::int64_t count_ = 0;
};

/// Fixed-bucket histogram: counts per upper bound (`le`), plus an
/// implicit overflow bucket, total count, and sum of observations.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// One count per upper bound, plus the final overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Adds another histogram bucket-wise; the bounds must be identical.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> upper_bounds_;  // strictly increasing
  std::vector<std::int64_t> counts_;  // upper_bounds_.size() + 1
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

/// Sparse per-slot series: (slot, value) pairs in increasing slot order.
/// Sparse because engines fast-forward over empty stretches — a dense
/// vector would fabricate samples for slots the run never visited.
class Series {
 public:
  /// `slot` must be strictly greater than the last recorded slot.
  void record(std::int64_t slot, std::int64_t value);

  const std::vector<std::int64_t>& slots() const { return slots_; }
  const std::vector<std::int64_t>& values() const { return values_; }
  std::size_t size() const { return slots_.size(); }

  /// Merges by slot, summing values recorded at the same slot (the
  /// natural aggregate for aligned sweep cells).
  void merge_from(const Series& other);

 private:
  std::vector<std::int64_t> slots_;
  std::vector<std::int64_t> values_;
};

/// Named metrics plus a flat manifest of run provenance.  Lookup creates
/// on first use; a name denotes one kind of metric for the registry's
/// lifetime (re-requesting it as another kind aborts).
///
/// Serialization is cached behind a generation counter: every non-const
/// accessor (the registry cannot see writes through handles it already
/// handed out) bumps the generation, and writers that keep handles call
/// touch() after a write burst.  to_json_cached() re-renders only when
/// the generation moved, so a long-lived reader (the `otsched serve`
/// /metrics endpoint) polling an idle registry serves the same bytes
/// without re-serializing the whole document per request.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// The bounds are fixed on first request; later requests for the same
  /// name must pass identical bounds (or none via histogram(name)).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  Series& series(const std::string& name);

  /// Manifest entries (instance hash, policy, m, seed, ...).  Strings and
  /// integers keep their JSON type.
  void set_manifest(const std::string& key, const std::string& value);
  void set_manifest(const std::string& key, std::int64_t value);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, Series>& all_series() const { return series_; }

  /// Deterministic JSON document (see tools/metrics_schema.json).
  std::string to_json() const;

  /// to_json() through the generation cache: re-renders only when a
  /// mutator or touch() ran since the last call, else returns the cached
  /// bytes.  The returned reference is invalidated by the next mutation.
  const std::string& to_json_cached() const;

  /// Marks the registry dirty.  Needed ONLY by writers that mutate
  /// through handles obtained earlier (handle writes are invisible to
  /// the registry); direct accessor calls mark it automatically.
  void touch() { ++generation_; }

  /// How many times to_json_cached() actually rendered — the dirty-bit
  /// regression test's probe (idle polls must not increment this).
  std::int64_t json_renders() const { return json_renders_; }

  /// All series as CSV rows "name,slot,value" (header included).
  std::string series_csv() const;

  /// Merges `other` into this registry: counters add, gauges pool,
  /// histograms add bucket-wise, series sum by slot.  Manifest entries of
  /// `other` overwrite same-keyed entries here.  Associative, so folding
  /// per-cell registries in index order is deterministic.
  void merge_from(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Series> series_;
  // Manifest values pre-rendered as JSON literals (quoted or numeric).
  std::map<std::string, std::string> manifest_;

  // Dirty-bit serialization cache (see to_json_cached).  generation_
  // starts ahead of cached_generation_ so the first render always runs.
  std::uint64_t generation_ = 1;
  mutable std::uint64_t cached_generation_ = 0;
  mutable std::string cached_json_;
  mutable std::int64_t json_renders_ = 0;
};

/// Formats a double as a JSON number (shortest round-trip form).
std::string JsonNumber(double value);

/// Escapes and quotes a string for JSON.
std::string JsonString(const std::string& value);

}  // namespace otsched
