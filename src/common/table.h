// Fixed-width text table formatting for experiment binaries.
//
// Every bench_* executable prints one table per paper artifact it
// regenerates; this helper keeps them aligned and consistent.
#pragma once

#include <string>
#include <vector>

namespace otsched {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    add_row(std::move(cells));
  }

  /// Renders with a separator under the header, columns padded to the
  /// widest cell.
  std::string to_string() const;

  /// Prints to stdout with an optional caption line above.
  void print(const std::string& caption = "") const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      return format_double(value);
    } else {
      return std::to_string(value);
    }
  }
  static std::string format_double(double value);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace otsched
