#include "common/thread_pool.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Every queued task is a shard lambda that catches its own payload's
    // exceptions; one escaping here is a pool bug, so fail loudly instead
    // of letting std::terminate eat the message.
    try {
      task();
    } catch (...) {
      OTSCHED_CHECK(false, "thread pool task threw past its shard handler");
    }
  }
}

void ThreadPool::parallel_for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_once = std::make_shared<std::once_flag>();

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  // One queue entry per worker; each entry drains indices until exhausted
  // or a failure is flagged.  The caller waits for every shard to EXIT —
  // not merely for the index counter to drain — so no shard can still be
  // inside fn when the exception is rethrown below.
  const std::size_t shards = std::min(n, workers_.size());
  auto shards_left = std::make_shared<std::atomic<std::size_t>>(shards);
  auto shard = [=, &done_mutex, &done_cv, &done] {
    for (;;) {
      if (failed->load(std::memory_order_acquire)) break;
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        std::call_once(*error_once,
                       [&] { *first_error = std::current_exception(); });
        failed->store(true, std::memory_order_release);
      }
    }
    if (shards_left->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(done_mutex);
      done = true;
      done_cv.notify_all();
    }
  };

  {
    std::lock_guard lock(mutex_);
    OTSCHED_CHECK(!shutting_down_, "pool is shutting down");
    for (std::size_t s = 0; s < shards; ++s) tasks_.push(shard);
  }
  wake_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  if (*first_error) std::rethrow_exception(*first_error);
}

void ParallelForEachIndex(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t worker_count) {
  ThreadPool pool(worker_count);
  pool.parallel_for_each_index(n, fn);
}

}  // namespace otsched
