// Checked assertions that stay on in release builds.
//
// The simulator is the ground truth for every experimental claim in this
// repository, so internal invariants are enforced unconditionally (they are
// cheap relative to the work they guard).  OTSCHED_CHECK aborts with a
// source location and message; OTSCHED_DCHECK compiles out in NDEBUG builds
// and is reserved for hot inner loops.
#pragma once

#include <sstream>
#include <string>

namespace otsched::internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Builds the optional streamed message for a failing check.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace otsched::internal

#define OTSCHED_CHECK(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      ::otsched::internal::CheckFailed(                                   \
          __FILE__, __LINE__, #cond,                                      \
          (::otsched::internal::CheckMessageBuilder()                     \
               __VA_OPT__(<< __VA_ARGS__))                                \
              .str());                                                    \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define OTSCHED_DCHECK(cond, ...) \
  do {                            \
  } while (false)
#else
#define OTSCHED_DCHECK(cond, ...) OTSCHED_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#endif
