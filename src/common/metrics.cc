#include "common/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "common/assert.h"

namespace otsched {

void Gauge::set(double value) {
  last_ = value;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

void Gauge::merge_from(const Gauge& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  last_ = other.last_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  OTSCHED_CHECK(!upper_bounds_.empty(), "histogram needs at least one bucket");
  OTSCHED_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()) &&
                    std::adjacent_find(upper_bounds_.begin(),
                                       upper_bounds_.end()) ==
                        upper_bounds_.end(),
                "histogram bounds must be strictly increasing");
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += value;
}

void Histogram::merge_from(const Histogram& other) {
  OTSCHED_CHECK(upper_bounds_ == other.upper_bounds_,
                "merging histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Series::record(std::int64_t slot, std::int64_t value) {
  OTSCHED_CHECK(slots_.empty() || slot > slots_.back(),
                "series slots must be recorded in increasing order (got "
                    << slot << " after " << slots_.back() << ")");
  slots_.push_back(slot);
  values_.push_back(value);
}

void Series::merge_from(const Series& other) {
  std::vector<std::int64_t> slots;
  std::vector<std::int64_t> values;
  slots.reserve(slots_.size() + other.slots_.size());
  values.reserve(slots.capacity());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < slots_.size() || b < other.slots_.size()) {
    if (b == other.slots_.size() ||
        (a < slots_.size() && slots_[a] < other.slots_[b])) {
      slots.push_back(slots_[a]);
      values.push_back(values_[a]);
      ++a;
    } else if (a == slots_.size() || other.slots_[b] < slots_[a]) {
      slots.push_back(other.slots_[b]);
      values.push_back(other.values_[b]);
      ++b;
    } else {
      slots.push_back(slots_[a]);
      values.push_back(values_[a] + other.values_[b]);
      ++a;
      ++b;
    }
  }
  slots_ = std::move(slots);
  values_ = std::move(values);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  OTSCHED_CHECK(!gauges_.contains(name) && !histograms_.contains(name) &&
                    !series_.contains(name),
                "metric '" << name << "' already registered as another kind");
  touch();
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  OTSCHED_CHECK(!counters_.contains(name) && !histograms_.contains(name) &&
                    !series_.contains(name),
                "metric '" << name << "' already registered as another kind");
  touch();
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  OTSCHED_CHECK(!counters_.contains(name) && !gauges_.contains(name) &&
                    !series_.contains(name),
                "metric '" << name << "' already registered as another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(upper_bounds))).first;
  } else {
    OTSCHED_CHECK(upper_bounds.empty() ||
                      it->second.upper_bounds() == upper_bounds,
                  "histogram '" << name << "' re-requested with different "
                                   "bucket bounds");
  }
  touch();
  return it->second;
}

Series& MetricsRegistry::series(const std::string& name) {
  OTSCHED_CHECK(!counters_.contains(name) && !gauges_.contains(name) &&
                    !histograms_.contains(name),
                "metric '" << name << "' already registered as another kind");
  touch();
  return series_[name];
}

void MetricsRegistry::set_manifest(const std::string& key,
                                   const std::string& value) {
  manifest_[key] = JsonString(value);
  touch();
}

void MetricsRegistry::set_manifest(const std::string& key,
                                   std::int64_t value) {
  manifest_[key] = std::to_string(value);
  touch();
}

std::string JsonNumber(double value) {
  OTSCHED_CHECK(std::isfinite(value), "non-finite value in JSON output");
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  OTSCHED_CHECK(ec == std::errc());
  return std::string(buffer, ptr);
}

std::string JsonString(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

template <typename Map, typename EmitValue>
void EmitObject(std::ostringstream& out, const char* key, const Map& map,
                const EmitValue& emit_value, bool trailing_comma) {
  out << JsonString(key) << ": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out << ", ";
    first = false;
    out << JsonString(name) << ": ";
    emit_value(value);
  }
  out << '}';
  if (trailing_comma) out << ",\n  ";
}

template <typename T>
void EmitArray(std::ostringstream& out, const std::vector<T>& values) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ", ";
    if constexpr (std::is_same_v<T, double>) {
      out << JsonNumber(values[i]);
    } else {
      out << values[i];
    }
  }
  out << ']';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  ";
  EmitObject(out, "manifest", manifest_,
             [&](const std::string& literal) { out << literal; }, true);
  EmitObject(out, "counters", counters_,
             [&](const Counter& c) { out << c.value(); }, true);
  EmitObject(out, "gauges", gauges_,
             [&](const Gauge& g) {
               out << "{\"last\": " << JsonNumber(g.last())
                   << ", \"min\": " << JsonNumber(g.min())
                   << ", \"max\": " << JsonNumber(g.max())
                   << ", \"mean\": " << JsonNumber(g.mean())
                   << ", \"count\": " << g.count() << '}';
             },
             true);
  EmitObject(out, "histograms", histograms_,
             [&](const Histogram& h) {
               out << "{\"le\": ";
               EmitArray(out, h.upper_bounds());
               out << ", \"counts\": ";
               EmitArray(out, h.bucket_counts());
               out << ", \"count\": " << h.count()
                   << ", \"sum\": " << JsonNumber(h.sum()) << '}';
             },
             true);
  EmitObject(out, "series", series_,
             [&](const Series& s) {
               out << "{\"slots\": ";
               EmitArray(out, s.slots());
               out << ", \"values\": ";
               EmitArray(out, s.values());
               out << '}';
             },
             false);
  out << "\n}\n";
  return out.str();
}

const std::string& MetricsRegistry::to_json_cached() const {
  if (cached_generation_ != generation_) {
    cached_json_ = to_json();
    cached_generation_ = generation_;
    ++json_renders_;
  }
  return cached_json_;
}

std::string MetricsRegistry::series_csv() const {
  std::ostringstream out;
  out << "name,slot,value\n";
  for (const auto& [name, series] : series_) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      out << name << ',' << series.slots()[i] << ',' << series.values()[i]
          << '\n';
    }
  }
  return out.str();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).merge_from(g);
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.upper_bounds()).merge_from(h);
  }
  for (const auto& [name, s] : other.series_) {
    series(name).merge_from(s);
  }
  for (const auto& [key, literal] : other.manifest_) {
    manifest_[key] = literal;
  }
}

}  // namespace otsched
