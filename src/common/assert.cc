#include "common/assert.h"

#include <cstdio>
#include <cstdlib>

namespace otsched::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "OTSCHED_CHECK failed at %s:%d: %s", file, line, expr);
  if (!message.empty()) {
    std::fprintf(stderr, " — %s", message.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace otsched::internal
