// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the library (workload generators, the
// "arbitrary" tie-breaking in FIFO, adversarial processor-budget streams)
// takes an explicit Rng so that every experiment and test is reproducible
// from a single seed.  The generator is xoshiro256**, which is fast, has a
// 256-bit state, and passes BigCrush; `split()` derives an independent
// stream for parallel sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace otsched {

class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) with rejection sampling (no modulo bias).
  /// Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].  Requires lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p in [0, 1].
  bool next_bool(double p);

  /// Geometric-ish branching helper: number of successes before failure,
  /// capped at `cap`.  Used by tree generators.
  int next_geometric(double p, int cap);

  /// Derives an independently-seeded generator (for worker threads).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_[4];
};

}  // namespace otsched
