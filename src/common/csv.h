// Minimal CSV writer used by the experiment harnesses to dump raw sweep
// results next to the human-readable tables, so that downstream plotting
// does not require re-running the sweep.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace otsched {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  Aborts on I/O
  /// failure: losing experiment output silently is worse than crashing.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the cell count must match the header.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    write_row(cells);
  }

  const std::string& path() const { return path_; }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return format_cell(value);
    }
  }
  static std::string format_cell(double value);
  static std::string format_cell(long long value);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string format_cell(T value) {
    return format_cell(static_cast<long long>(value));
  }

  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace otsched
