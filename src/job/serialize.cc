#include "job/serialize.h"

#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace otsched {

std::string InstanceToText(const Instance& instance) {
  std::ostringstream out;
  out << "otsched-instance-v1\n";
  if (!instance.name().empty()) out << "name " << instance.name() << '\n';
  for (const Job& job : instance.jobs()) {
    out << "job " << job.release() << ' ' << job.dag().node_count();
    if (!job.name().empty()) out << ' ' << job.name();
    out << '\n';
    const Dag& dag = job.dag();
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      for (NodeId c : dag.children(v)) out << v << ' ' << c << '\n';
    }
    out << "end\n";
  }
  return out.str();
}

Instance InstanceFromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;

  auto next_line = [&](std::string& out_line) {
    while (std::getline(in, out_line)) {
      ++line_number;
      const std::size_t hash = out_line.find('#');
      if (hash != std::string::npos) out_line.resize(hash);
      // Skip whitespace-only lines.
      if (out_line.find_first_not_of(" \t\r") != std::string::npos) {
        return true;
      }
    }
    return false;
  };

  OTSCHED_CHECK(next_line(line), "empty instance file");
  {
    std::istringstream fields(line);
    std::string magic;
    fields >> magic;
    OTSCHED_CHECK(magic == "otsched-instance-v1",
                  "line " << line_number << ": bad magic '" << magic << "'");
  }

  Instance instance;
  while (next_line(line)) {
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "name") {
      std::string name;
      std::getline(fields, name);
      const std::size_t start = name.find_first_not_of(' ');
      instance.set_name(start == std::string::npos ? ""
                                                   : name.substr(start));
    } else if (keyword == "job") {
      Time release = -1;
      NodeId node_count = -1;
      OTSCHED_CHECK(static_cast<bool>(fields >> release >> node_count),
                    "line " << line_number << ": job needs release and size");
      OTSCHED_CHECK(release >= 0 && node_count >= 1,
                    "line " << line_number << ": bad job header");
      std::string job_name;
      fields >> job_name;

      Dag::Builder builder(node_count);
      while (true) {
        OTSCHED_CHECK(next_line(line),
                      "unterminated job started before line " << line_number);
        if (line.rfind("end", 0) == 0) break;
        std::istringstream edge(line);
        NodeId from = kInvalidNode;
        NodeId to = kInvalidNode;
        OTSCHED_CHECK(static_cast<bool>(edge >> from >> to),
                      "line " << line_number << ": expected an edge or 'end'");
        builder.add_edge(from, to);
      }
      instance.add_job(Job(std::move(builder).build(), release, job_name));
    } else {
      OTSCHED_CHECK(false,
                    "line " << line_number << ": unknown keyword '"
                            << keyword << "'");
    }
  }
  return instance;
}

void SaveInstance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  OTSCHED_CHECK(out.good(), "cannot open " << path << " for writing");
  out << InstanceToText(instance);
  OTSCHED_CHECK(out.good(), "write failure on " << path);
}

Instance LoadInstance(const std::string& path) {
  std::ifstream in(path);
  OTSCHED_CHECK(in.good(), "cannot open " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return InstanceFromText(buffer.str());
}

}  // namespace otsched
