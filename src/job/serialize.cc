#include "job/serialize.h"

#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace otsched {

std::string InstanceToText(const Instance& instance) {
  std::ostringstream out;
  out << "otsched-instance-v1\n";
  if (!instance.name().empty()) out << "name " << instance.name() << '\n';
  for (const Job& job : instance.jobs()) {
    out << "job " << job.release() << ' ' << job.dag().node_count();
    if (!job.name().empty()) out << ' ' << job.name();
    out << '\n';
    const Dag& dag = job.dag();
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      for (NodeId c : dag.children(v)) out << v << ' ' << c << '\n';
    }
    out << "end\n";
  }
  return out.str();
}

std::optional<Instance> TryInstanceFromText(const std::string& text,
                                            std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;

  auto fail = [&](const std::string& what) -> std::optional<Instance> {
    if (error != nullptr) {
      *error = "instance line " + std::to_string(line_number) + ": " + what;
    }
    return std::nullopt;
  };

  auto next_line = [&](std::string& out_line) {
    while (std::getline(in, out_line)) {
      ++line_number;
      const std::size_t hash = out_line.find('#');
      if (hash != std::string::npos) out_line.resize(hash);
      // Skip whitespace-only lines.
      if (out_line.find_first_not_of(" \t\r") != std::string::npos) {
        return true;
      }
    }
    return false;
  };

  if (!next_line(line)) return fail("empty instance file");
  {
    std::istringstream fields(line);
    std::string magic;
    fields >> magic;
    if (magic != "otsched-instance-v1") {
      return fail("bad magic '" + magic +
                  "' (want otsched-instance-v1)");
    }
  }

  Instance instance;
  while (next_line(line)) {
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "name") {
      std::string name;
      std::getline(fields, name);
      const std::size_t start = name.find_first_not_of(' ');
      instance.set_name(start == std::string::npos ? ""
                                                   : name.substr(start));
    } else if (keyword == "job") {
      Time release = -1;
      NodeId node_count = -1;
      if (!(fields >> release >> node_count)) {
        return fail("job needs release and size");
      }
      if (release < 0 || node_count < 1) {
        return fail("bad job header (release " + std::to_string(release) +
                    ", size " + std::to_string(node_count) + ")");
      }
      std::string job_name;
      fields >> job_name;

      const int job_line = line_number;
      Dag::Builder builder(node_count);
      while (true) {
        if (!next_line(line)) {
          return fail("unterminated job started at line " +
                      std::to_string(job_line));
        }
        if (line.rfind("end", 0) == 0) break;
        std::istringstream edge(line);
        NodeId from = kInvalidNode;
        NodeId to = kInvalidNode;
        if (!(edge >> from >> to)) {
          return fail("expected an edge or 'end'");
        }
        if (from < 0 || from >= node_count || to < 0 || to >= node_count) {
          return fail("edge " + std::to_string(from) + " -> " +
                      std::to_string(to) + " is outside the job's " +
                      std::to_string(node_count) + " nodes");
        }
        builder.add_edge(from, to);
      }
      instance.add_job(Job(std::move(builder).build(), release, job_name));
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }
  return instance;
}

Instance InstanceFromText(const std::string& text) {
  std::string error;
  std::optional<Instance> instance = TryInstanceFromText(text, &error);
  OTSCHED_CHECK(instance.has_value(), error);
  return *std::move(instance);
}

void SaveInstance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  OTSCHED_CHECK(out.good(), "cannot open " << path << " for writing");
  out << InstanceToText(instance);
  OTSCHED_CHECK(out.good(), "write failure on " << path);
}

std::optional<Instance> TryLoadInstance(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::optional<Instance> instance =
      TryInstanceFromText(buffer.str(), error);
  if (!instance.has_value() && error != nullptr) {
    *error = path + ": " + *error;
  }
  return instance;
}

Instance LoadInstance(const std::string& path) {
  std::string error;
  std::optional<Instance> instance = TryLoadInstance(path, &error);
  OTSCHED_CHECK(instance.has_value(), error);
  return *std::move(instance);
}

}  // namespace otsched
