// A Job is a DAG of unit-time subjobs plus a release time (Section 3).
#pragma once

#include <memory>
#include <string>

#include "dag/dag.h"
#include "dag/metrics.h"

namespace otsched {

class Job {
 public:
  Job() = default;
  Job(Dag dag, Time release, std::string name = "");

  const Dag& dag() const { return *dag_; }
  Time release() const { return release_; }
  const std::string& name() const { return name_; }

  /// Lazily-computed metrics (work, span, heights, depths, W(d)); cached
  /// because many schedulers/analyses consult the same job repeatedly.
  const DagMetrics& metrics() const;

  std::int64_t work() const { return dag().node_count(); }
  std::int64_t span() const { return metrics().span; }

 private:
  // shared_ptr so that Instances can be copied cheaply into sweep workers;
  // both Dag and DagMetrics are immutable after construction.
  std::shared_ptr<const Dag> dag_ = std::make_shared<const Dag>();
  mutable std::shared_ptr<const DagMetrics> metrics_;
  Time release_ = 0;
  std::string name_;
};

}  // namespace otsched
