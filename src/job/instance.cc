#include "job/instance.h"

#include <algorithm>

#include "common/assert.h"
#include "dag/validate.h"

namespace otsched {

Instance::Instance(std::vector<Job> jobs, std::string name)
    : jobs_(std::move(jobs)), name_(std::move(name)) {}

JobId Instance::add_job(Job job) {
  jobs_.push_back(std::move(job));
  return static_cast<JobId>(jobs_.size() - 1);
}

const Job& Instance::job(JobId id) const {
  OTSCHED_CHECK(id >= 0 && id < job_count(), "job id " << id);
  return jobs_[static_cast<std::size_t>(id)];
}

std::int64_t Instance::total_work() const {
  std::int64_t total = 0;
  for (const Job& job : jobs_) total += job.work();
  return total;
}

std::int64_t Instance::max_span() const {
  std::int64_t best = 0;
  for (const Job& job : jobs_) best = std::max(best, job.span());
  return best;
}

Time Instance::min_release() const {
  Time best = jobs_.empty() ? 0 : kInfiniteTime;
  for (const Job& job : jobs_) best = std::min(best, job.release());
  return best;
}

Time Instance::max_release() const {
  Time best = 0;
  for (const Job& job : jobs_) best = std::max(best, job.release());
  return best;
}

std::vector<JobId> Instance::release_order() const {
  std::vector<JobId> order(static_cast<std::size_t>(job_count()));
  for (JobId i = 0; i < job_count(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [this](JobId a, JobId b) {
    return job(a).release() < job(b).release();
  });
  return order;
}

bool Instance::all_out_forests() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const Job& job) { return IsOutForest(job.dag()); });
}

bool Instance::is_batched(Time quantum) const {
  OTSCHED_CHECK(quantum > 0);
  return std::all_of(jobs_.begin(), jobs_.end(), [quantum](const Job& job) {
    return job.release() % quantum == 0;
  });
}

}  // namespace otsched
