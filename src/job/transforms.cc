#include "job/transforms.h"

#include <map>

#include "common/assert.h"

namespace otsched {

Instance RoundReleasesUp(const Instance& instance, Time quantum) {
  OTSCHED_CHECK(quantum > 0);
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(instance.job_count()));
  for (const Job& job : instance.jobs()) {
    const Time rounded =
        ((job.release() + quantum - 1) / quantum) * quantum;
    jobs.emplace_back(Dag(job.dag()), rounded, job.name());
  }
  Instance result(std::move(jobs), instance.name());
  return result;
}

Instance UnionPerRelease(const Instance& instance, UnionMapping* mapping) {
  // Group job ids by release, keeping release order.
  std::map<Time, std::vector<JobId>> groups;
  for (JobId id = 0; id < instance.job_count(); ++id) {
    groups[instance.job(id).release()].push_back(id);
  }

  Instance result;
  result.set_name(instance.name());
  if (mapping != nullptr) mapping->original_refs.clear();

  for (const auto& [release, ids] : groups) {
    std::vector<Dag> parts;
    parts.reserve(ids.size());
    for (JobId id : ids) parts.push_back(instance.job(id).dag());
    std::vector<NodeId> offsets;
    Dag merged = DisjointUnion(parts, &offsets);

    if (mapping != nullptr) {
      std::vector<SubjobRef> refs(
          static_cast<std::size_t>(merged.node_count()));
      for (std::size_t p = 0; p < ids.size(); ++p) {
        const NodeId count = parts[p].node_count();
        for (NodeId v = 0; v < count; ++v) {
          refs[static_cast<std::size_t>(offsets[p] + v)] =
              SubjobRef{ids[p], v};
        }
      }
      mapping->original_refs.push_back(std::move(refs));
    }
    result.add_job(Job(std::move(merged), release));
  }
  return result;
}

Instance ShiftReleases(const Instance& instance, Time delta) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(instance.job_count()));
  for (const Job& job : instance.jobs()) {
    const Time shifted = job.release() + delta;
    OTSCHED_CHECK(shifted >= 0, "shift makes release negative");
    jobs.emplace_back(Dag(job.dag()), shifted, job.name());
  }
  return Instance(std::move(jobs), instance.name());
}

}  // namespace otsched
