#include "job/job.h"

#include "common/assert.h"

namespace otsched {

Job::Job(Dag dag, Time release, std::string name)
    : dag_(std::make_shared<const Dag>(std::move(dag))),
      release_(release),
      name_(std::move(name)) {
  OTSCHED_CHECK(release >= 0, "release times are nonnegative (Section 3)");
}

const DagMetrics& Job::metrics() const {
  if (!metrics_) {
    metrics_ = std::make_shared<const DagMetrics>(ComputeMetrics(*dag_));
  }
  return *metrics_;
}

}  // namespace otsched
