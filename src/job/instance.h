// An Instance is the full online input: a collection of jobs with release
// times, to be scheduled on m identical processors.
#pragma once

#include <string>
#include <vector>

#include "job/job.h"

namespace otsched {

class Instance {
 public:
  Instance() = default;
  explicit Instance(std::vector<Job> jobs, std::string name = "");

  /// Appends a job; returns its JobId.
  JobId add_job(Job job);

  JobId job_count() const { return static_cast<JobId>(jobs_.size()); }
  const Job& job(JobId id) const;
  const std::vector<Job>& jobs() const { return jobs_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool empty() const { return jobs_.empty(); }

  /// Total number of subjobs across all jobs.
  std::int64_t total_work() const;

  /// Maximum span over jobs (0 for the empty instance).
  std::int64_t max_span() const;

  /// Earliest and latest release times (0 for the empty instance).
  Time min_release() const;
  Time max_release() const;

  /// Job ids sorted by (release, id) — the FIFO priority order.
  std::vector<JobId> release_order() const;

  /// True iff every job's DAG is an out-forest (Section 5 precondition).
  bool all_out_forests() const;

  /// True iff all releases are integer multiples of `quantum` (> 0) — the
  /// batched (quantum = OPT) / semi-batched (quantum = OPT/2) property.
  bool is_batched(Time quantum) const;

 private:
  std::vector<Job> jobs_;
  std::string name_;
};

}  // namespace otsched
