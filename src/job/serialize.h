// Text serialization of whole instances (jobs + releases), so workloads
// can be saved, shipped, and replayed bit-identically — including the
// materialized Section 4 adversarial instances, which are expensive to
// regenerate at large m.
//
// Format (line oriented; '#' starts a comment):
//   otsched-instance-v1
//   name <instance name, may contain spaces>
//   job <release> <node_count> [job name]
//   <from> <to>          (one edge per line, node ids within the job)
//   ...
//   end
//   job ...
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "job/instance.h"

namespace otsched {

std::string InstanceToText(const Instance& instance);

/// Parses the format above.  On malformed input returns nullopt and
/// writes a per-line diagnostic ("instance line N: ...") to `error` —
/// the recoverable entry point CLI tools use so a typo in a hand-edited
/// file prints a diagnostic instead of aborting the process.
std::optional<Instance> TryInstanceFromText(const std::string& text,
                                            std::string* error);

/// TryInstanceFromText that aborts with the diagnostic on malformed
/// input — for callers whose input is trusted (tests, generators).
Instance InstanceFromText(const std::string& text);

/// File wrapper around TryInstanceFromText; unreadable files report
/// through `error` the same way.
std::optional<Instance> TryLoadInstance(const std::string& path,
                                        std::string* error);

/// Convenience file wrappers (abort on I/O and parse errors).
void SaveInstance(const Instance& instance, const std::string& path);
Instance LoadInstance(const std::string& path);

}  // namespace otsched
