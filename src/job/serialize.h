// Text serialization of whole instances (jobs + releases), so workloads
// can be saved, shipped, and replayed bit-identically — including the
// materialized Section 4 adversarial instances, which are expensive to
// regenerate at large m.
//
// Format (line oriented; '#' starts a comment):
//   otsched-instance-v1
//   name <instance name, may contain spaces>
//   job <release> <node_count> [job name]
//   <from> <to>          (one edge per line, node ids within the job)
//   ...
//   end
//   job ...
#pragma once

#include <iosfwd>
#include <string>

#include "job/instance.h"

namespace otsched {

std::string InstanceToText(const Instance& instance);

/// Parses the format above; aborts with a line diagnostic on malformed
/// input.
Instance InstanceFromText(const std::string& text);

/// Convenience file wrappers (abort on I/O errors).
void SaveInstance(const Instance& instance, const std::string& path);
Instance LoadInstance(const std::string& path);

}  // namespace otsched
