// Instance transforms used by the Section 5.4 and Section 6 reductions.
//
//  * RoundReleasesUp — the batching reduction: a job released at r is
//    treated as released at the next multiple of `quantum` (Section 5.4:
//    "The job that arrives at time i*OPT in I' is the union over all jobs
//    that arrived between (i-1)*OPT + 1 and i*OPT in I").  Job identities
//    are preserved; only releases move, so flows measured against ORIGINAL
//    releases differ by at most `quantum - 1`.
//  * UnionPerRelease — merges all jobs sharing a release time into one job
//    whose DAG is the disjoint union ("we will view all the jobs arriving
//    at the same time as being one job", Section 5.3).  Returns the mapping
//    from merged nodes back to (original job, original node).
#pragma once

#include <vector>

#include "job/instance.h"

namespace otsched {

/// Rounds every release up to the next multiple of `quantum` (releases that
/// already are multiples stay put).  quantum must be positive.
Instance RoundReleasesUp(const Instance& instance, Time quantum);

/// Mapping from a merged instance back to the original one.
struct UnionMapping {
  /// For merged job k, original_refs[k][v] is the (job, node) in the
  /// source instance that merged node v corresponds to.
  std::vector<std::vector<SubjobRef>> original_refs;
};

/// Merges jobs with equal release times into single jobs (disjoint unions,
/// ordered by release).  The merged instance has one job per distinct
/// release time.
Instance UnionPerRelease(const Instance& instance, UnionMapping* mapping);

/// Shifts all release times by `delta` (must keep them nonnegative).
Instance ShiftReleases(const Instance& instance, Time delta);

}  // namespace otsched
