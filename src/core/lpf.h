// Longest Path First (Section 5.1) and single-job schedule machinery.
//
// LPF schedules one job on p processors by always running the ready
// subjobs of greatest height.  For an out-forest:
//   * on m processors LPF is optimal (Lemma 5.3 / Corollary 5.4);
//   * on m/alpha processors LPF is alpha-competitive against OPT on m;
//   * the schedule's shape obeys Lemma 5.2: after its LAST underfull slot
//     t* (excluding the final slot), every slot is fully packed; moreover
//     every non-leaf subjob run at t* has its unique ancestor chain
//    occupying slots t*-1, t*-2, ..., 1 — which forces t* <= max depth
//     <= OPT.  This yields the Figure 2 head/tail picture: an arbitrary
//     "head" of at most OPT slots followed by a fully-packed rectangular
//     "tail" of length at most (alpha - 1) * OPT.
//
// The JobSchedule produced here is the input that the Most-Children
// replayer (most_children.h) and Algorithm A (alg_a.h) consume.
#pragma once

#include <string>
#include <vector>

#include "dag/dag.h"
#include "dag/metrics.h"
#include "sim/engine.h"

namespace otsched {

/// An explicit schedule of ONE job (release 0) on a fixed processor
/// budget p: slot s (1-based) runs `slots[s-1]`.
struct JobSchedule {
  int p = 0;
  std::vector<std::vector<NodeId>> slots;
  std::vector<Time> slot_of;  // per node; kNoTime = never (impossible here)

  Time length() const { return static_cast<Time>(slots.size()); }

  int load(Time slot) const {
    if (slot < 1 || slot > length()) return 0;
    return static_cast<int>(slots[static_cast<std::size_t>(slot - 1)].size());
  }

  const std::vector<NodeId>& at(Time slot) const;

  /// Last slot with load < p, or kNoTime if every slot is full.
  Time last_underfull_slot() const;

  /// Total scheduled subjobs.
  std::int64_t total() const;
};

/// Builds the LPF schedule of `dag` on p >= 1 processors.  Works for any
/// DAG (heights are well-defined); the optimality guarantees hold for
/// out-forests.
JobSchedule BuildLpfSchedule(const Dag& dag, const DagMetrics& metrics,
                             int p);
JobSchedule BuildLpfSchedule(const Dag& dag, int p);

/// Verifies a JobSchedule against the job's precedence constraints and the
/// budget p (single-job analogue of ScheduleValidator).  Returns an empty
/// string when valid, else a description of the first violation.
std::string CheckJobSchedule(const Dag& dag, const JobSchedule& schedule);

/// Structural check of Lemma 5.2 on an out-forest LPF schedule: at the
/// last underfull slot t (with t < length), every subjob j run at t that
/// is not a leaf has its unique ancestor chain at slots t-1, ..., 1.
struct Lemma52Report {
  bool holds = true;
  Time last_underfull = kNoTime;
  std::string detail;  // first violation, if any
};
Lemma52Report CheckLemma52(const Dag& dag, const JobSchedule& schedule);

/// Head/tail split of Figure 2: head = first `head_len` slots, tail = the
/// rest.  For LPF[m/alpha] with head_len = OPT[m], the tail is fully
/// packed except possibly its final slot and has length <= (alpha-1)*OPT.
struct HeadTailShape {
  Time head_len = 0;
  Time tail_len = 0;
  /// Tail slots (absolute slot numbers) with load < p, excluding the final
  /// slot of the schedule.  Empty iff the Figure 2 rectangle property
  /// holds.
  std::vector<Time> underfull_tail_slots;
};
HeadTailShape AnalyzeHeadTail(const JobSchedule& schedule, Time head_len);

/// Global LPF as an online multi-job policy (clairvoyant baseline): each
/// slot runs the m ready subjobs of greatest height, breaking ties toward
/// older jobs.  Not from the paper; included to separate "LPF shaping"
/// from Algorithm A's window structure in the experiments.
class GlobalLpfScheduler : public Scheduler {
 public:
  GlobalLpfScheduler() = default;
  std::string name() const override { return "global-lpf"; }
  bool requires_clairvoyance() const override { return true; }
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

 private:
  struct Entry {
    std::int32_t height;
    std::size_t age_rank;
    SubjobRef ref;
  };
  std::vector<Entry> pool_;
};

}  // namespace otsched
