// The Maximum Children (MC) algorithm of Section 5.2.
//
// MC replays a given feasible single-job schedule S (built on p
// processors, with an idle processor only at its final slot) under a
// fluctuating per-step processor budget m_t <= p.  At each of its own time
// steps it repeatedly takes, from the earliest S-level that still has
// unprocessed subjobs, a READY subjob with the greatest number of children
// scheduled in the next S-level.  Lemma 5.5: every step either uses the
// whole budget or finishes the job.
//
// Readiness (the parent must have completed in a strictly earlier MC step)
// is implicit in the paper's description; the Lemma 5.5 proof guarantees
// that enough ready subjobs exist, and the test suite exercises this under
// adversarial budget streams.
//
// Algorithm A uses MC on the *tail* of an LPF schedule: head subjobs are
// marked pre-executed via `mark_prefix_executed`.
#pragma once

#include <cstdint>
#include <vector>

#include "core/lpf.h"
#include "dag/dag.h"
#include "sim/ready_state.h"

namespace otsched {

class MostChildrenReplayer {
 public:
  /// `schedule` must schedule every node of `dag` exactly once (see
  /// CheckJobSchedule); the Lemma 5.5 busy guarantee additionally needs
  /// every slot except the last to be full.
  MostChildrenReplayer(const Dag& dag, const JobSchedule& schedule);

  /// Marks all subjobs in S-slots [1, prefix_len] as already executed
  /// (before MC time 0).  Must be called before the first step().
  void mark_prefix_executed(Time prefix_len);

  /// Runs one MC time step with `budget` processors.  Appends the chosen
  /// node ids to `out` and returns how many were scheduled.
  int step(int budget, std::vector<NodeId>* out = nullptr);

  bool done() const { return remaining_ == 0; }
  std::int64_t remaining() const { return remaining_; }

  /// Number of step() calls so far (the MC clock).
  Time now() const { return now_; }

  /// Steps where fewer subjobs than the budget were scheduled while the
  /// job was NOT finished by the end of the step — Lemma 5.5 says this
  /// stays 0.
  std::int64_t busy_violations() const { return busy_violations_; }

 private:
  const Dag& dag_;
  Time now_ = 0;
  std::int64_t remaining_ = 0;

  // Per S-level, the unprocessed nodes sorted by (static) count of
  // children in the next S-level, descending.
  std::vector<std::vector<NodeId>> level_nodes_;
  std::size_t min_level_ = 0;  // 0-based index of earliest unfinished level
  std::vector<char> executed_;
  // Readiness via incremental pending-predecessor counters (sim/ready_state):
  // a node is ready at step t iff its counter is 0.  Counters of a node's
  // children are decremented only when the FOLLOWING step starts
  // (flush_queue_), so same-step executions never enable children — the
  // deferred equivalent of the old `done_at_ < t` parent scan.
  PendingCounters pending_;
  std::vector<NodeId> flush_queue_;  // executed, children not yet decremented
  std::vector<std::int32_t> next_level_children_;
  std::int64_t busy_violations_ = 0;
  bool stepped_ = false;
};

}  // namespace otsched
