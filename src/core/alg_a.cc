#include "core/alg_a.h"

#include <algorithm>

#include "common/assert.h"
#include "dag/validate.h"

namespace otsched {

AlgAPlanner::AlgAPlanner(int m, int alpha, Time window,
                         bool allow_general_dags)
    : m_(m),
      alpha_(alpha),
      p_(m / alpha),
      window_(window),
      allow_general_dags_(allow_general_dags) {
  OTSCHED_CHECK(alpha >= 2, "Algorithm A needs alpha >= 2, got " << alpha);
  OTSCHED_CHECK(m % alpha == 0,
                "alpha must divide m (Section 5): m=" << m
                                                      << " alpha=" << alpha);
  OTSCHED_CHECK(p_ >= 1);
  OTSCHED_CHECK(window >= 1, "window must be positive");
}

void AlgAPlanner::add_batch(const SchedulerView& view,
                            std::span<const JobId> members,
                            Time visible_release) {
  OTSCHED_CHECK(visible_release % window_ == 0,
                "batch release " << visible_release
                                 << " is not a multiple of the window "
                                 << window_);
  OTSCHED_CHECK(batches_.empty() ||
                    batches_.back()->visible_release < visible_release,
                "batches must be added in release order");

  auto plan = std::make_unique<PlanJob>();
  plan->visible_release = visible_release;

  // Build the union of the members' unexecuted sub-DAGs.
  Dag::Builder builder;
  for (JobId id : members) {
    const Dag& dag = view.dag(id);
    std::vector<NodeId> plan_id(static_cast<std::size_t>(dag.node_count()),
                                kInvalidNode);
    bool any = false;
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      if (view.executed(id, v)) continue;
      plan_id[static_cast<std::size_t>(v)] = builder.add_node();
      plan->refs.push_back(SubjobRef{id, v});
      any = true;
    }
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      const NodeId pv = plan_id[static_cast<std::size_t>(v)];
      if (pv == kInvalidNode) continue;
      for (NodeId c : dag.children(v)) {
        const NodeId pc = plan_id[static_cast<std::size_t>(c)];
        OTSCHED_CHECK(pc != kInvalidNode,
                      "executed child below unexecuted parent: job "
                          << id << " edge " << v << "->" << c);
        builder.add_edge(pv, pc);
      }
    }
    if (any) plan->members.push_back(id);
  }
  plan->dag = std::move(builder).build();
  if (plan->dag.empty()) return;  // everything already executed

  OTSCHED_CHECK(allow_general_dags_ || IsOutForest(plan->dag),
                "Algorithm A requires out-forest jobs (Section 5); "
                "enable allow_general_dags for the heuristic extension");
  plan->lpf = BuildLpfSchedule(plan->dag, p_);
  plan->remaining = plan->dag.node_count();
  batches_.push_back(std::move(plan));
}

void AlgAPlanner::replay_head_slot(PlanJob& job, Time lpf_slot,
                                   std::vector<SubjobRef>& out, int& used) {
  if (lpf_slot < 1 || lpf_slot > job.lpf.length()) return;
  for (NodeId v : job.lpf.at(lpf_slot)) {
    out.push_back(job.refs[static_cast<std::size_t>(v)]);
    --job.remaining;
    ++used;
  }
}

void AlgAPlanner::plan_slot(Time t, std::vector<SubjobRef>& out) {
  int used = 0;

  // Retire finished front batches and release their heavy state, so long
  // streams do not accumulate cost or memory.
  while (first_active_ < batches_.size() &&
         batches_[first_active_]->finished()) {
    PlanJob& done = *batches_[first_active_];
    if (done.mc) {
      mc_busy_violations_ += done.mc->busy_violations();
      done.mc.reset();
    }
    done.dag = Dag();
    done.lpf = JobSchedule();
    done.refs = std::vector<SubjobRef>();
    ++first_active_;
  }

  // Phases 1 and 2: batches still in their head window (age <= 2W) replay
  // their LPF schedule directly.  Batch releases are spaced >= W apart, so
  // at most two batches are in this range, using at most 2p processors —
  // and they sit at the back of the (release-ordered) batch list.
  for (std::size_t k = batches_.size(); k-- > first_active_;) {
    PlanJob& batch = *batches_[k];
    const Time age = t - batch.visible_release;
    if (age > 2 * window_) break;
    if (age >= 1 && !batch.finished()) {
      replay_head_slot(batch, age, out, used);
    }
  }

  // Phase 3: older unfinished batches in FIFO order via Most-Children.
  for (std::size_t k = first_active_; k < batches_.size(); ++k) {
    PlanJob* batch = batches_[k].get();
    int available = m_ - used;
    if (available <= 0) break;
    const Time age = t - batch->visible_release;
    if (age <= 2 * window_) break;  // release-ordered: the rest are newer
    if (batch->finished()) continue;
    if (!batch->mc) {
      batch->mc = std::make_unique<MostChildrenReplayer>(batch->dag,
                                                         batch->lpf);
      // The head (LPF slots 1..2W) was replayed verbatim during the first
      // two windows, so it is exactly the executed prefix.
      batch->mc->mark_prefix_executed(2 * window_);
      OTSCHED_CHECK(batch->mc->remaining() == batch->remaining,
                    "head replay accounting mismatch: mc="
                        << batch->mc->remaining()
                        << " plan=" << batch->remaining);
    }
    const int grant = std::min(available, p_);
    std::vector<NodeId> nodes;
    const int scheduled = batch->mc->step(grant, &nodes);
    for (NodeId v : nodes) {
      out.push_back(batch->refs[static_cast<std::size_t>(v)]);
    }
    batch->remaining -= scheduled;
    used += scheduled;
  }
  OTSCHED_CHECK(used <= m_, "planner over-committed: " << used << " > " << m_);
}

std::optional<Time> AlgAPlanner::oldest_unfinished_age(Time t) const {
  for (const auto& batch : batches_) {
    if (!batch->finished()) return t - batch->visible_release;
  }
  return std::nullopt;
}

bool AlgAPlanner::all_finished() const {
  return std::all_of(batches_.begin(), batches_.end(),
                     [](const auto& b) { return b->finished(); });
}

std::vector<JobId> AlgAPlanner::unfinished_members() const {
  std::vector<JobId> result;
  for (const auto& batch : batches_) {
    if (!batch->finished()) {
      result.insert(result.end(), batch->members.begin(),
                    batch->members.end());
    }
  }
  return result;
}

std::int64_t AlgAPlanner::mc_busy_violations() const {
  std::int64_t total = mc_busy_violations_;
  for (const auto& batch : batches_) {
    if (batch->mc) total += batch->mc->busy_violations();
  }
  return total;
}

void AlgAPlanner::clear() {
  // Preserve the violation count across restarts for experiment reports.
  for (const auto& batch : batches_) {
    if (batch->mc) mc_busy_violations_ += batch->mc->busy_violations();
  }
  batches_.clear();
}

// --- Semi-batched scheduler -------------------------------------------

AlgASemiBatchedScheduler::AlgASemiBatchedScheduler(Options options)
    : options_(options) {
  OTSCHED_CHECK(options_.known_opt >= 2 && options_.known_opt % 2 == 0,
                "known_opt must be an even value >= 2 so that W = OPT/2 "
                "is a positive integer; got "
                    << options_.known_opt);
}

void AlgASemiBatchedScheduler::reset(int m, JobId job_count) {
  (void)job_count;
  planner_ = std::make_unique<AlgAPlanner>(m, options_.alpha,
                                           options_.known_opt / 2,
                                           options_.allow_general_dags);
  pending_.clear();
  pending_release_ = -1;
}

void AlgASemiBatchedScheduler::on_arrival(JobId id,
                                          const SchedulerView& view) {
  const Time release = view.release(id);
  OTSCHED_CHECK(release % planner_->window() == 0,
                "semi-batched instance required: job "
                    << id << " released at " << release
                    << " which is not a multiple of OPT/2 = "
                    << planner_->window());
  OTSCHED_CHECK(pending_.empty() || pending_release_ == release,
                "arrivals for a previous batch were never planned");
  pending_release_ = release;
  pending_.push_back(id);
}

void AlgASemiBatchedScheduler::pick(const SchedulerView& view,
                                    std::vector<SubjobRef>& out) {
  if (!pending_.empty()) {
    planner_->add_batch(view, pending_, pending_release_);
    pending_.clear();
  }
  planner_->plan_slot(view.slot(), out);
}

}  // namespace otsched
