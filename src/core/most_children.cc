#include "core/most_children.h"

#include <algorithm>

#include "common/assert.h"

namespace otsched {

MostChildrenReplayer::MostChildrenReplayer(const Dag& dag,
                                           const JobSchedule& schedule)
    : dag_(dag), remaining_(dag.node_count()) {
  const NodeId n = dag.node_count();
  executed_.assign(static_cast<std::size_t>(n), 0);
  pending_.init(dag);
  next_level_children_.assign(static_cast<std::size_t>(n), 0);

  // Static priority: children of v scheduled exactly one S-slot after v.
  for (NodeId v = 0; v < n; ++v) {
    const Time sv = schedule.slot_of[static_cast<std::size_t>(v)];
    OTSCHED_CHECK(sv != kNoTime,
                  "MC input schedule misses node " << v);
    for (NodeId c : dag.children(v)) {
      if (schedule.slot_of[static_cast<std::size_t>(c)] == sv + 1) {
        ++next_level_children_[static_cast<std::size_t>(v)];
      }
    }
  }

  level_nodes_.resize(static_cast<std::size_t>(schedule.length()));
  for (Time s = 1; s <= schedule.length(); ++s) {
    auto& level = level_nodes_[static_cast<std::size_t>(s - 1)];
    level = schedule.at(s);
    std::stable_sort(level.begin(), level.end(), [this](NodeId a, NodeId b) {
      return next_level_children_[static_cast<std::size_t>(a)] >
             next_level_children_[static_cast<std::size_t>(b)];
    });
  }
}

void MostChildrenReplayer::mark_prefix_executed(Time prefix_len) {
  OTSCHED_CHECK(!stepped_, "prefix must be marked before stepping");
  prefix_len = std::min<Time>(prefix_len,
                              static_cast<Time>(level_nodes_.size()));
  for (Time s = 1; s <= prefix_len; ++s) {
    for (NodeId v : level_nodes_[static_cast<std::size_t>(s - 1)]) {
      if (!executed_[static_cast<std::size_t>(v)]) {
        executed_[static_cast<std::size_t>(v)] = 1;
        flush_queue_.push_back(v);  // completed "before step 1"
        --remaining_;
      }
    }
  }
  min_level_ = static_cast<std::size_t>(prefix_len);
}

int MostChildrenReplayer::step(int budget, std::vector<NodeId>* out) {
  OTSCHED_CHECK(budget >= 0);
  stepped_ = true;
  ++now_;
  // Everything in the queue completed in a strictly earlier step (or the
  // prefix); its children may become ready from this step on.
  for (NodeId v : flush_queue_) {
    pending_.complete(dag_, v, [](NodeId) {});
  }
  flush_queue_.clear();
  int scheduled = 0;

  while (scheduled < budget && remaining_ > 0) {
    // Advance past exhausted levels.
    while (min_level_ < level_nodes_.size()) {
      auto& level = level_nodes_[static_cast<std::size_t>(min_level_)];
      std::erase_if(level, [this](NodeId v) {
        return executed_[static_cast<std::size_t>(v)] != 0;
      });
      if (!level.empty()) break;
      ++min_level_;
    }
    OTSCHED_CHECK(min_level_ < level_nodes_.size() || remaining_ == 0,
                  "MC lost track of " << remaining_ << " nodes");

    // Scan levels from the earliest unfinished one for a ready subjob;
    // within a level the list is pre-sorted by most-children priority.
    NodeId chosen = kInvalidNode;
    for (std::size_t lvl = min_level_;
         lvl < level_nodes_.size() && chosen == kInvalidNode; ++lvl) {
      for (NodeId v : level_nodes_[static_cast<std::size_t>(lvl)]) {
        if (executed_[static_cast<std::size_t>(v)]) continue;
        if (pending_.cleared(v)) {
          chosen = v;
          break;
        }
      }
    }
    if (chosen == kInvalidNode) break;  // no ready subjob anywhere

    executed_[static_cast<std::size_t>(chosen)] = 1;
    flush_queue_.push_back(chosen);
    --remaining_;
    ++scheduled;
    if (out != nullptr) out->push_back(chosen);
  }

  if (scheduled < budget && remaining_ > 0) ++busy_violations_;
  return scheduled;
}

}  // namespace otsched
