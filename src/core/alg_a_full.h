// The general clairvoyant Algorithm A (Section 5.4, Theorem 5.7):
// arbitrary release times, OPT unknown.
//
// Two reductions wrap the semi-batched planner:
//
//  * Release rounding (factor 2): with current guess G, a job released at
//    r is held and becomes visible at the next multiple of G.  The
//    resulting instance is semi-batched for an assumed optimum of 2G, so
//    the planner runs with window W = G.
//
//  * Guess-and-double (factor ~6): the guess G starts at
//    `initial_guess` and, whenever some visible batch's age exceeds
//    beta * G (the Theorem 5.6 flow bound for the assumed optimum 2G),
//    the algorithm concludes G < OPT, doubles G, and restarts: every
//    unfinished job's UNEXECUTED sub-forest re-enters as a fresh arrival
//    at the next multiple of the new G.  Executed prefixes of out-forests
//    leave out-forests, so the planner precondition is preserved.
//
// Flows are always measured by the engine against ORIGINAL releases, so
// the holding and restart delays are fully charged to the algorithm.
#pragma once

#include <map>

#include "core/alg_a.h"

namespace otsched {

class AlgAScheduler : public Scheduler {
 public:
  struct Options {
    int alpha = 4;
    /// Violation threshold multiplier; the paper's analysis uses
    /// beta = 258 with alpha = 4.  The threshold on a batch's age is
    /// beta * G (= beta * OPT'/2 for the assumed optimum OPT' = 2G).
    int beta = 258;
    Time initial_guess = 1;
    /// Heuristic extension beyond the paper: accept arbitrary DAG jobs
    /// (no O(1) guarantee; see AlgAPlanner).
    bool allow_general_dags = false;
  };

  AlgAScheduler() : AlgAScheduler(Options{}) {}
  explicit AlgAScheduler(Options options);

  std::string name() const override { return "alg-a/general"; }
  bool requires_clairvoyance() const override { return true; }
  // Window plans precompute per-slot assignments for a fixed m; a
  // capacity dip would silently break the Theorem 5.6/5.7 invariants,
  // so the engine must refuse the combination outright.
  bool supports_fluctuating_capacity() const override { return false; }
  void reset(int m, JobId job_count) override;
  void on_arrival(JobId id, const SchedulerView& view) override;
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

  /// Introspection for experiments.
  Time guess() const { return guess_; }
  int restarts() const { return restarts_; }
  std::int64_t mc_busy_violations() const {
    return carried_mc_violations_ +
           (planner_ ? planner_->mc_busy_violations() : 0);
  }

 private:
  void restart(const SchedulerView& view);
  void materialize_visible(const SchedulerView& view, Time slot);
  Time round_up_to_guess(Time t) const;

  Options options_;
  int m_ = 0;
  Time guess_ = 1;
  int restarts_ = 0;
  std::int64_t carried_mc_violations_ = 0;
  std::unique_ptr<AlgAPlanner> planner_;
  /// Held arrivals: visible_release -> engine jobs (grouped into one batch
  /// when their visibility slot is reached).
  std::map<Time, std::vector<JobId>> held_;
};

}  // namespace otsched
