#include "core/alg_a_full.h"

#include "common/assert.h"

namespace otsched {

AlgAScheduler::AlgAScheduler(Options options) : options_(options) {
  OTSCHED_CHECK(options_.beta >= 1);
  OTSCHED_CHECK(options_.initial_guess >= 1);
}

void AlgAScheduler::reset(int m, JobId job_count) {
  (void)job_count;
  m_ = m;
  guess_ = options_.initial_guess;
  restarts_ = 0;
  carried_mc_violations_ = 0;
  planner_ = std::make_unique<AlgAPlanner>(m, options_.alpha, guess_,
                                           options_.allow_general_dags);
  held_.clear();
}

Time AlgAScheduler::round_up_to_guess(Time t) const {
  return ((t + guess_ - 1) / guess_) * guess_;
}

void AlgAScheduler::on_arrival(JobId id, const SchedulerView& view) {
  // Section 5.4: a job released at r is ignored until the next multiple
  // of the (current) guess.
  held_[round_up_to_guess(view.release(id))].push_back(id);
}

void AlgAScheduler::materialize_visible(const SchedulerView& view,
                                        Time slot) {
  while (!held_.empty() && held_.begin()->first < slot) {
    const auto& [release, members] = *held_.begin();
    planner_->add_batch(view, members, release);
    held_.erase(held_.begin());
  }
}

void AlgAScheduler::restart(const SchedulerView& view) {
  guess_ *= 2;
  ++restarts_;

  // Everything unfinished — already planned or still held — re-enters as
  // a fresh arrival at the next multiple of the new guess.
  std::vector<JobId> displaced = planner_->unfinished_members();
  for (const auto& [release, members] : held_) {
    displaced.insert(displaced.end(), members.begin(), members.end());
  }
  held_.clear();

  carried_mc_violations_ += planner_->mc_busy_violations();
  planner_ = std::make_unique<AlgAPlanner>(m_, options_.alpha, guess_,
                                           options_.allow_general_dags);

  const Time revisit = round_up_to_guess(view.slot());
  for (JobId id : displaced) {
    if (view.finished(id)) continue;
    held_[revisit].push_back(id);
  }
}

void AlgAScheduler::pick(const SchedulerView& view,
                         std::vector<SubjobRef>& out) {
  const Time slot = view.slot();

  // Guess-and-double trigger: a visible batch older than beta * G means
  // the assumed optimum 2G is too small (Theorem 5.6 would have finished
  // it by now).
  const auto age = planner_->oldest_unfinished_age(slot);
  if (age.has_value() &&
      *age > static_cast<Time>(options_.beta) * guess_) {
    restart(view);
  }

  materialize_visible(view, slot);
  planner_->plan_slot(slot, out);
}

}  // namespace otsched
