// Algorithm A (Section 5.3): the clairvoyant O(1)-competitive scheduler
// for out-forest jobs on semi-batched instances, given the optimal
// maximum flow OPT.
//
// Structure per window of W = OPT/2 slots (with p = m/alpha processors):
//   phase 1 — the newest batch replays its LPF[p] schedule, slots 1..W;
//   phase 2 — the previous batch replays LPF[p] slots W+1..2W;
//   phase 3 — all older unfinished batches, in FIFO order, are replayed by
//             the Most-Children algorithm with per-step budget
//             min(remaining processors, p).
// After two windows a batch's LPF *head* (its first OPT slots) is done, and
// by Lemma 5.2 the remainder (the *tail*) is a fully-packed p-wide
// rectangle — exactly the precondition MC needs for Lemma 5.5.
//
// The AlgAPlanner below is the window/phase machinery shared by the
// semi-batched scheduler here and the general scheduler in alg_a_full.h
// (which adds the Section 5.4 reductions: release rounding and
// guess-and-double).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/lpf.h"
#include "core/most_children.h"
#include "sim/engine.h"

namespace otsched {

/// Window/phase planner.  One instance manages the set of materialized
/// batches ("plan jobs") and emits the subjobs to run at each engine slot.
class AlgAPlanner {
 public:
  /// `window` is W (OPT/2 in Section 5.3 terms, the guess G in Section
  /// 5.4 terms).  Requires alpha >= 2 (the paper uses alpha = 4) and
  /// alpha | m.
  ///
  /// `allow_general_dags` drops the out-forest precondition: LPF and MC
  /// run mechanically on any DAG (heights are well-defined; MC's
  /// readiness filter keeps every replay feasible), but the Lemma 5.2
  /// tail shape and the Lemma 5.5 busy guarantee are no longer theorems —
  /// this is the natural candidate for the conclusion's open question
  /// about series-parallel / general DAGs, and mc_busy_violations()
  /// measures exactly where the proof breaks.
  AlgAPlanner(int m, int alpha, Time window, bool allow_general_dags = false);

  Time window() const { return window_; }
  int p() const { return p_; }

  /// Materializes one batch from the UNEXECUTED portions of the member
  /// engine jobs, visible from slot visible_release + 1.  The remaining
  /// sub-DAGs must form an out-forest (always true when the originals are
  /// out-forests).  visible_release must be a multiple of `window` and
  /// strictly newer than any existing batch.
  void add_batch(const SchedulerView& view, std::span<const JobId> members,
                 Time visible_release);

  /// Emits the picks for engine slot t (head replays + MC tails).
  void plan_slot(Time t, std::vector<SubjobRef>& out);

  /// Age (t - visible_release) of the oldest unfinished batch, or
  /// nullopt if everything planned so far is finished.
  std::optional<Time> oldest_unfinished_age(Time t) const;

  bool all_finished() const;

  /// Engine jobs belonging to unfinished batches (used by the restart in
  /// the guess-and-double wrapper).
  std::vector<JobId> unfinished_members() const;

  /// Total Lemma 5.5 busy violations across all MC replayers (0 expected).
  std::int64_t mc_busy_violations() const;

  /// Drops all batches (guess-and-double restart).
  void clear();

 private:
  struct PlanJob {
    Time visible_release = 0;
    std::vector<JobId> members;
    std::vector<SubjobRef> refs;  // plan node -> engine subjob
    Dag dag;
    JobSchedule lpf;
    std::unique_ptr<MostChildrenReplayer> mc;
    std::int64_t remaining = 0;

    bool finished() const { return remaining == 0; }
  };

  void replay_head_slot(PlanJob& job, Time lpf_slot,
                        std::vector<SubjobRef>& out, int& used);

  int m_;
  int alpha_;
  int p_;
  Time window_;
  bool allow_general_dags_ = false;
  std::vector<std::unique_ptr<PlanJob>> batches_;  // by visible_release
  /// Index of the first possibly-unfinished batch; everything before it
  /// is finished and has had its heavy state released.  Keeps plan_slot
  /// O(active batches) over long streams.
  std::size_t first_active_ = 0;
  std::int64_t mc_busy_violations_ = 0;
};

/// The super-clairvoyant semi-batched Algorithm A (Theorem 5.6): requires
/// all releases to be multiples of known_opt / 2 and knows known_opt.
class AlgASemiBatchedScheduler : public Scheduler {
 public:
  struct Options {
    int alpha = 4;
    /// The known (or assumed) optimal maximum flow; must be even and >= 2
    /// so that W = known_opt / 2 is a positive integer.
    Time known_opt = 2;
    /// Heuristic extension beyond the paper: accept arbitrary DAG jobs
    /// (no O(1) guarantee; see AlgAPlanner).
    bool allow_general_dags = false;
  };

  explicit AlgASemiBatchedScheduler(Options options);

  std::string name() const override { return "alg-a/semi-batched"; }
  bool requires_clairvoyance() const override { return true; }
  // Window plans precompute per-slot assignments for a fixed m; a
  // capacity dip would silently break the Theorem 5.6/5.7 invariants,
  // so the engine must refuse the combination outright.
  bool supports_fluctuating_capacity() const override { return false; }
  void reset(int m, JobId job_count) override;
  void on_arrival(JobId id, const SchedulerView& view) override;
  void pick(const SchedulerView& view, std::vector<SubjobRef>& out) override;

  std::int64_t mc_busy_violations() const {
    return planner_ ? planner_->mc_busy_violations() : 0;
  }

 private:
  Options options_;
  std::unique_ptr<AlgAPlanner> planner_;
  // Arrivals of the current slot, grouped into one batch at pick time.
  std::vector<JobId> pending_;
  Time pending_release_ = -1;
};

}  // namespace otsched
