#include "core/lpf.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"
#include "sim/ready_state.h"

namespace otsched {

const std::vector<NodeId>& JobSchedule::at(Time slot) const {
  static const std::vector<NodeId> kEmpty;
  if (slot < 1 || slot > length()) return kEmpty;
  return slots[static_cast<std::size_t>(slot - 1)];
}

Time JobSchedule::last_underfull_slot() const {
  for (Time t = length(); t >= 1; --t) {
    if (load(t) < p) return t;
  }
  return kNoTime;
}

std::int64_t JobSchedule::total() const {
  std::int64_t sum = 0;
  for (const auto& slot : slots) sum += static_cast<std::int64_t>(slot.size());
  return sum;
}

JobSchedule BuildLpfSchedule(const Dag& dag, const DagMetrics& metrics,
                             int p) {
  OTSCHED_CHECK(p >= 1);
  JobSchedule schedule;
  schedule.p = p;
  const NodeId n = dag.node_count();
  schedule.slot_of.assign(static_cast<std::size_t>(n), kNoTime);
  if (n == 0) return schedule;

  // Ready nodes bucketed by height; the cursor walks down from the top.
  // Heights only decrease along edges, so children enabled by an execution
  // always land in buckets at or below the parent's — but selections for a
  // slot complete before enabling, so same-slot feasibility is automatic.
  std::vector<std::vector<NodeId>> bucket(
      static_cast<std::size_t>(metrics.span) + 1);
  PendingCounters pending;
  pending.init(dag);
  for (NodeId v : pending.roots()) {
    bucket[static_cast<std::size_t>(
               metrics.height[static_cast<std::size_t>(v)])]
        .push_back(v);
  }

  std::int64_t executed = 0;
  std::int64_t top = metrics.span;
  std::vector<NodeId> chosen;
  while (executed < n) {
    // Select up to p ready nodes of maximal height.
    chosen.clear();
    std::int64_t h = top;
    while (static_cast<int>(chosen.size()) < p && h >= 1) {
      auto& b = bucket[static_cast<std::size_t>(h)];
      while (!b.empty() && static_cast<int>(chosen.size()) < p) {
        chosen.push_back(b.back());
        b.pop_back();
      }
      if (b.empty()) --h;
    }
    OTSCHED_CHECK(!chosen.empty(),
                  "LPF stalled with " << (n - executed) << " nodes left");
    // Keep the cursor tight: everything above h is now empty.
    top = h < 1 ? metrics.span : h;

    schedule.slots.emplace_back(chosen);
    const Time slot = schedule.length();
    for (NodeId v : chosen) {
      schedule.slot_of[static_cast<std::size_t>(v)] = slot;
      ++executed;
      pending.complete(dag, v, [&](NodeId c) {
        const auto hc = static_cast<std::size_t>(
            metrics.height[static_cast<std::size_t>(c)]);
        bucket[hc].push_back(c);
        top = std::max<std::int64_t>(top, static_cast<std::int64_t>(hc));
      });
    }
  }
  return schedule;
}

JobSchedule BuildLpfSchedule(const Dag& dag, int p) {
  return BuildLpfSchedule(dag, ComputeMetrics(dag), p);
}

std::string CheckJobSchedule(const Dag& dag, const JobSchedule& schedule) {
  std::ostringstream out;
  const NodeId n = dag.node_count();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (Time t = 1; t <= schedule.length(); ++t) {
    const auto& slot = schedule.at(t);
    if (static_cast<int>(slot.size()) > schedule.p) {
      out << "slot " << t << " runs " << slot.size() << " > p="
          << schedule.p;
      return out.str();
    }
    for (NodeId v : slot) {
      if (v < 0 || v >= n) {
        out << "slot " << t << " has unknown node " << v;
        return out.str();
      }
      if (seen[static_cast<std::size_t>(v)]) {
        out << "node " << v << " scheduled twice";
        return out.str();
      }
      seen[static_cast<std::size_t>(v)] = 1;
      if (schedule.slot_of[static_cast<std::size_t>(v)] != t) {
        out << "slot_of[" << v << "] inconsistent";
        return out.str();
      }
      for (NodeId parent : dag.parents(v)) {
        const Time tp = schedule.slot_of[static_cast<std::size_t>(parent)];
        if (tp == kNoTime || tp >= t) {
          out << "precedence violated: " << parent << " -> " << v
              << " at slots " << tp << " -> " << t;
          return out.str();
        }
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!seen[static_cast<std::size_t>(v)]) {
      out << "node " << v << " never scheduled";
      return out.str();
    }
  }
  return "";
}

Lemma52Report CheckLemma52(const Dag& dag, const JobSchedule& schedule) {
  Lemma52Report report;
  // Find the last underfull slot strictly before the final slot.
  Time t = kNoTime;
  for (Time s = schedule.length() - 1; s >= 1; --s) {
    if (schedule.load(s) < schedule.p) {
      t = s;
      break;
    }
  }
  report.last_underfull = t;
  if (t == kNoTime) return report;  // fully packed: nothing to check

  for (NodeId j : schedule.at(t)) {
    if (dag.out_degree(j) == 0) continue;  // leaf
    // Walk the unique ancestor chain (out-forest): the ancestor i hops up
    // must sit at slot t - i, all the way down to slot 1.
    NodeId v = j;
    for (Time s = t - 1; s >= 1; --s) {
      const auto parents = dag.parents(v);
      if (parents.size() != 1) {
        report.holds = false;
        std::ostringstream out;
        out << "node " << v << " lacks an ancestor " << (t - s)
            << " hops above subjob " << j << " (slot " << t << ")";
        report.detail = out.str();
        return report;
      }
      v = parents[0];
      if (schedule.slot_of[static_cast<std::size_t>(v)] != s) {
        report.holds = false;
        std::ostringstream out;
        out << "ancestor " << v << " of subjob " << j << " runs at slot "
            << schedule.slot_of[static_cast<std::size_t>(v)]
            << ", expected " << s;
        report.detail = out.str();
        return report;
      }
    }
  }
  return report;
}

HeadTailShape AnalyzeHeadTail(const JobSchedule& schedule, Time head_len) {
  OTSCHED_CHECK(head_len >= 0);
  HeadTailShape shape;
  shape.head_len = std::min(head_len, schedule.length());
  shape.tail_len = schedule.length() - shape.head_len;
  for (Time t = head_len + 1; t < schedule.length(); ++t) {
    if (schedule.load(t) < schedule.p) {
      shape.underfull_tail_slots.push_back(t);
    }
  }
  return shape;
}

void GlobalLpfScheduler::pick(const SchedulerView& view,
                              std::vector<SubjobRef>& out) {
  pool_.clear();
  std::size_t age_rank = 0;
  for (JobId job : view.alive()) {
    const auto& height = view.metrics(job).height;
    for (NodeId v : view.ready(job)) {
      pool_.push_back(Entry{height[static_cast<std::size_t>(v)], age_rank,
                            SubjobRef{job, v}});
    }
    ++age_rank;
  }
  const std::size_t take =
      std::min(pool_.size(), static_cast<std::size_t>(view.capacity()));
  std::partial_sort(pool_.begin(), pool_.begin() + static_cast<std::ptrdiff_t>(take),
                    pool_.end(), [](const Entry& a, const Entry& b) {
                      if (a.height != b.height) return a.height > b.height;
                      return a.age_rank < b.age_rank;
                    });
  for (std::size_t i = 0; i < take; ++i) out.push_back(pool_[i].ref);
}

}  // namespace otsched
