// The `otsched serve` streaming scheduler daemon (docs/SERVING.md).
//
// ScheduleServer is a single-threaded poll() loop over one listening
// socket (TCP "host:port", port 0 for ephemeral, or "unix:/path") and
// its accepted connections, multiplexing two protocols by the first
// bytes of each connection:
//
//   * "GET ..."  — a one-shot HTTP request: /metrics serves the
//     registry's cached JSON (MetricsRegistry::to_json_cached — idle
//     daemons re-serve the same bytes without re-rendering), /healthz
//     serves "ok"; the response closes the connection.
//   * anything else — a newline-delimited JSON job stream (one
//     serve::SubmitRequest per line); each finished job is answered
//     with one reply line on the connection that submitted it.
//
// Between poll rounds the loop ticks the embedded SimDriver
// (advance/take_finished/retire_finished), so simulation progress
// interleaves with I/O and memory stays proportional to the live width
// of the stream: finished jobs are retired as soon as their replies are
// written.  A requested release in the simulated past is clamped up to
// the driver's current slot (the effective release is echoed in the
// reply, so an offline replay of the effective stream reproduces the
// daemon's flows bit-identically — the serve integration test's check).
//
// Shutdown: request_stop() (the CLI wires SIGTERM/SIGINT to it through
// a sig_atomic_t flag polled via ServeOptions::stop_flag) closes the
// listener, drains all submitted work, flushes the remaining replies,
// and returns from run() — exit 0.
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sim/driver.h"

namespace otsched::serve {

struct ServeOptions {
  /// "host:port" (port 0 = ephemeral) or "unix:/path/to.sock".
  std::string listen = "127.0.0.1:0";
  int m = 4;
  /// Registry name of the policy driving the embedded SimDriver (the
  /// default general Algorithm A pipeline is the reason the daemon
  /// exists; see docs/SERVING.md on its guess-and-double restarts).
  std::string policy = "alg-a/general";
  std::uint64_t seed = 0;
  /// Slots simulated per poll round while work is pending.  Small
  /// enough that new submissions interleave with progress, large enough
  /// to amortize the loop; correctness does not depend on it.
  Time chunk_slots = 128;
  /// Poll timeout while idle (no pending work), milliseconds.
  int idle_poll_ms = 50;
  /// Longest accepted submission (or HTTP request-head) line, bytes.  A
  /// connection whose unconsumed input exceeds this without a newline —
  /// the degenerate no-newline flood — gets one structured error reply
  /// and is closed, so per-connection memory is bounded by this cap
  /// plus one read chunk (counted in serve.rejected_lines).
  std::size_t max_line_bytes = 1 << 20;
  /// Optional external stop flag (e.g. set by a SIGTERM handler); the
  /// loop treats a nonzero value exactly like request_stop().
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

class ScheduleServer {
 public:
  /// The scheduler is owned; construct it via MakePolicy(options.policy)
  /// or hand in any Scheduler for tests.
  ScheduleServer(ServeOptions options, std::unique_ptr<Scheduler> scheduler);
  ~ScheduleServer();

  ScheduleServer(const ScheduleServer&) = delete;
  ScheduleServer& operator=(const ScheduleServer&) = delete;

  /// Binds and listens.  Returns false (with a diagnostic in `error`)
  /// on bad addresses or bind failures; no partial state survives.
  bool start(std::string* error);

  /// The bound address ("127.0.0.1:41873" with the ephemeral port
  /// resolved, or the unix path).  Valid after start().
  const std::string& address() const { return address_; }

  /// Serves until request_stop() / *stop_flag, then drains and returns.
  void run();

  /// Signals run() to stop accepting, drain, and return.  Callable from
  /// another thread (the in-process integration test's shape).
  void request_stop() { stop_ = 1; }

  /// The daemon's metrics registry (the /metrics document).
  const MetricsRegistry& registry() const { return registry_; }

  std::int64_t jobs_submitted() const { return jobs_submitted_; }
  std::int64_t jobs_finished() const { return jobs_finished_; }

  /// Arena node slots backing the embedded driver (live + free-listed)
  /// — the bounded-memory probe the integration test asserts on.
  std::int64_t arena_nodes() const { return driver_.arena_nodes(); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;        // unconsumed request bytes
    std::string out;       // unwritten reply bytes
    bool http = false;     // classified as a one-shot HTTP request
    bool classified = false;
    bool eof = false;      // peer half-closed; flush replies then close
    // Rejected (oversized-line) connection: further input is read and
    // dropped, and once the error reply and any owed replies have
    // flushed the write side is shut down (FIN) — closing outright
    // with unread bytes in the kernel buffer would RST the socket and
    // destroy the reply in flight.
    bool discard_input = false;
    bool write_shut = false;  // shutdown(SHUT_WR) already issued
    std::int64_t pending_jobs = 0;  // submitted, not yet replied
  };

  void accept_ready();
  void read_connection(Connection& conn);
  void process_lines(Connection& conn);
  void reject_oversized_line(Connection& conn);
  void handle_http(Connection& conn);
  void tick_driver();
  void flush_writes();
  void close_connection(Connection& conn);
  bool stopping() const {
    return stop_ != 0 ||
           (options_.stop_flag != nullptr && *options_.stop_flag != 0);
  }

  ServeOptions options_;
  std::unique_ptr<Scheduler> scheduler_;
  MetricsRegistry registry_;
  SimDriver driver_;

  int listen_fd_ = -1;
  std::string address_;
  std::string unix_path_;  // unlinked on close when non-empty
  std::vector<Connection> connections_;
  // job id -> (connection index, client tag); parallel to driver ids.
  struct PendingJob {
    std::size_t conn = 0;
    std::string tag;
  };
  std::vector<PendingJob> pending_;

  volatile std::sig_atomic_t stop_ = 0;
  std::int64_t jobs_submitted_ = 0;
  std::int64_t jobs_finished_ = 0;
  std::int64_t total_submitted_work_ = 0;
};

/// Installs `flag` as the target of SIGTERM/SIGINT (handler just sets
/// it) and returns true; the CLI passes the same flag via
/// ServeOptions::stop_flag.
bool InstallStopSignalHandlers(volatile std::sig_atomic_t* flag);

}  // namespace otsched::serve
