// The `otsched serve` streaming scheduler daemon (docs/SERVING.md).
//
// ScheduleServer is a single-threaded poll() loop over one listening
// socket (TCP "host:port", port 0 for ephemeral, or "unix:/path") and
// its accepted connections, multiplexing two protocols by the first
// bytes of each connection:
//
//   * "GET ..."  — a one-shot HTTP request: /metrics serves the
//     registry's cached JSON (MetricsRegistry::to_json_cached — idle
//     daemons re-serve the same bytes without re-rendering), /healthz
//     serves "ok"; the response closes the connection.
//   * anything else — a newline-delimited JSON job stream (one
//     serve::SubmitRequest per line); each finished job is answered
//     with one reply line on the connection that submitted it.
//
// Between poll rounds the loop ticks the embedded SimDriver
// (advance/take_finished/retire_finished), so simulation progress
// interleaves with I/O and memory stays proportional to the live width
// of the stream: finished jobs are retired as soon as their replies are
// written.  A requested release in the simulated past is clamped up to
// the driver's current slot (the effective release is echoed in the
// reply, so an offline replay of the effective stream reproduces the
// daemon's flows bit-identically — the serve integration test's check).
//
// Durability (docs/SERVING.md, "Durability & recovery"): with
// ServeOptions::journal_path set, every accepted submission and slot
// advance is appended to a write-ahead journal (serve/journal.h) and
// fsynced BEFORE the cycle's replies flush, so any reply a client ever
// saw is backed by a durable record; recover_path replays such a
// journal through the driver before the listener binds, re-deriving
// the crashed daemon's state bit-identically.  Replies whose owning
// connection is gone (it died, or the whole process did) are parked by
// client tag; a client that reconnects and resubmits its unacknowledged
// tags gets the parked reply (already finished) or adopts the in-flight
// job (exactly-once per unique tag, at-least-once otherwise).
//
// Overload behavior (docs/SERVING.md): oversized lines, the connection
// ceiling, the pending-jobs watermark, and idle deadlines each shed
// load with a structured error reply and a metric rather than letting
// memory grow.
//
// Shutdown: request_stop() (the CLI wires SIGTERM/SIGINT to it through
// a sig_atomic_t flag polled via ServeOptions::stop_flag) closes the
// listener, drains all submitted work, flushes the remaining replies,
// and returns from run() — exit 0.  halt() abandons the loop without
// draining — the crash-recovery tests' stand-in for SIGKILL.
#pragma once

#include <chrono>
#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "serve/journal.h"
#include "sim/driver.h"

namespace otsched::serve {

struct ServeOptions {
  /// "host:port" (port 0 = ephemeral) or "unix:/path/to.sock".
  std::string listen = "127.0.0.1:0";
  int m = 4;
  /// Registry name of the policy driving the embedded SimDriver (the
  /// default general Algorithm A pipeline is the reason the daemon
  /// exists; see docs/SERVING.md on its guess-and-double restarts).
  std::string policy = "alg-a/general";
  std::uint64_t seed = 0;
  /// Slots simulated per poll round while work is pending.  Small
  /// enough that new submissions interleave with progress, large enough
  /// to amortize the loop; correctness does not depend on it.
  Time chunk_slots = 128;
  /// Poll timeout while idle (no pending work), milliseconds.
  int idle_poll_ms = 50;
  /// Longest accepted submission (or HTTP request-head) line, bytes.  A
  /// connection whose unconsumed input exceeds this without a newline —
  /// the degenerate no-newline flood — gets one structured error reply
  /// and is closed, so per-connection memory is bounded by this cap
  /// plus one read chunk (counted in serve.rejected_lines).
  std::size_t max_line_bytes = 1 << 20;
  /// Write-ahead journal path ("" = no journaling).  With recovery, it
  /// must be the SAME file as recover_path (the appended records must
  /// follow the replayed history they extend).
  std::string journal_path;
  /// Journal to replay before the listener binds ("" = cold start).
  std::string recover_path;
  /// Truncate the journal to open-header + base snapshot at quiescent
  /// points (requires journal_path and a warm-startable policy).
  bool journal_rotate = false;
  /// Append a snapshot record at the first quiescent point after this
  /// many journal records (0 = only the rotation default).  Requires a
  /// warm-startable policy.
  std::int64_t snapshot_every = 0;
  /// Live-connection ceiling (0 = unlimited): connections past it get
  /// one "overloaded" error reply and are closed
  /// (serve.rejected_connections).
  std::size_t max_connections = 0;
  /// Pending (accepted, unfinished) jobs watermark (0 = unlimited):
  /// submissions past it get an explicit "overloaded" error reply and
  /// are NOT accepted (serve.overloaded_replies).
  std::int64_t max_pending_jobs = 0;
  /// Idle deadline, milliseconds (0 = none): a connection that makes no
  /// read/write progress for this long while owing nothing and being
  /// owed nothing is closed (serve.idle_timeouts); a rejected
  /// (discarding) connection is closed unconditionally at the deadline.
  int idle_timeout_ms = 0;
  /// Optional external stop flag (e.g. set by a SIGTERM handler); the
  /// loop treats a nonzero value exactly like request_stop().
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

class ScheduleServer {
 public:
  /// The scheduler is owned; construct it via MakePolicy(options.policy)
  /// or hand in any Scheduler for tests.
  ScheduleServer(ServeOptions options, std::unique_ptr<Scheduler> scheduler);
  ~ScheduleServer();

  ScheduleServer(const ScheduleServer&) = delete;
  ScheduleServer& operator=(const ScheduleServer&) = delete;

  /// Replays recover_path (if set), opens the journal (if set), binds
  /// and listens — in that order, so a recovery or journal problem is
  /// diagnosed before the address is taken.  Returns false (with a
  /// diagnostic in `error`) on any failure; no partial state survives
  /// a bind failure.
  bool start(std::string* error);

  /// The bound address ("127.0.0.1:41873" with the ephemeral port
  /// resolved, or the unix path).  Valid after start().
  const std::string& address() const { return address_; }

  /// One-line human summary of what recovery replayed (empty when no
  /// recovery ran) — the CLI prints it before "listening on".
  const std::string& recovery_summary() const { return recovery_summary_; }

  /// Serves until request_stop() / *stop_flag, then drains and returns.
  void run();

  /// Signals run() to stop accepting, drain, and return.  Callable from
  /// another thread (the in-process integration test's shape).
  void request_stop() { stop_ = 1; }

  /// Signals run() to return IMMEDIATELY: no drain, no reply flush, no
  /// journal commit beyond what already happened.  The recovery tests'
  /// in-process stand-in for SIGKILL (thread-safe like request_stop).
  void halt() { halt_ = 1; }

  /// The daemon's metrics registry (the /metrics document).
  const MetricsRegistry& registry() const { return registry_; }

  std::int64_t jobs_submitted() const { return jobs_submitted_; }
  std::int64_t jobs_finished() const { return jobs_finished_; }

  /// Arena node slots backing the embedded driver (live + free-listed)
  /// — the bounded-memory probe the integration test asserts on.
  std::int64_t arena_nodes() const { return driver_.arena_nodes(); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;        // unconsumed request bytes
    std::string out;       // unwritten reply bytes
    bool http = false;     // classified as a one-shot HTTP request
    bool classified = false;
    bool eof = false;      // peer half-closed; flush replies then close
    // Rejected (oversized-line) connection: further input is read and
    // dropped, and once the error reply and any owed replies have
    // flushed the write side is shut down (FIN) — closing outright
    // with unread bytes in the kernel buffer would RST the socket and
    // destroy the reply in flight.
    bool discard_input = false;
    bool write_shut = false;  // shutdown(SHUT_WR) already issued
    std::int64_t pending_jobs = 0;  // submitted, not yet replied
    // Distinguishes successive tenants of a reused slot: a finished
    // job's reply is only delivered when the slot's generation still
    // matches the submitter's, never to a newer client that happens to
    // occupy the same index.
    std::uint64_t generation = 0;
    std::chrono::steady_clock::time_point last_activity{};
  };

  /// pending_[driver job id] -> who gets the reply.  conn == kNoConn
  /// marks an orphan (recovered from the journal, or its submitter
  /// died): the finished reply parks under the job's tag instead.
  struct PendingJob {
    static constexpr std::size_t kNoConn = static_cast<std::size_t>(-1);
    std::size_t conn = kNoConn;
    std::uint64_t generation = 0;
    std::string tag;
  };

  void accept_ready();
  void read_connection(Connection& conn);
  void process_lines(Connection& conn);
  void reject_oversized_line(Connection& conn);
  void handle_http(Connection& conn);
  void tick_driver();
  /// take_finished + reply/park + retire — shared by the live tick and
  /// the recovery replay.
  void deliver_finished();
  void commit_journal();
  void maybe_snapshot();
  void enforce_idle_deadline();
  void flush_writes();
  void close_connection(Connection& conn);
  bool replay_journal(std::string* error);
  bool open_journal(std::string* error);
  /// Consumes one submission whose tag is already known: parked reply
  /// delivered, orphaned in-flight job adopted, or live duplicate
  /// dropped.  False = not matched (a genuinely new submission).
  bool adopt_recovered(Connection& conn, const std::string& tag);
  /// Accepted-job bookkeeping shared by live submission and replay.
  JobId admit_job(Dag dag, Time release, const std::string& tag);
  JournalSnapshot snapshot_now() const;
  void refresh_metrics();
  bool stopping() const {
    return stop_ != 0 ||
           (options_.stop_flag != nullptr && *options_.stop_flag != 0);
  }

  ServeOptions options_;
  std::unique_ptr<Scheduler> scheduler_;
  MetricsRegistry registry_;
  SimDriver driver_;

  int listen_fd_ = -1;
  std::string address_;
  std::string unix_path_;  // unlinked on close when non-empty
  std::vector<Connection> connections_;
  std::vector<PendingJob> pending_;  // parallel to driver job ids

  std::unique_ptr<JournalWriter> journal_;
  /// Wire job id = id_base_ + driver id: a recovery that warm-starts
  /// from a rotated journal rebuilds a fresh driver (ids from 0) while
  /// the wire ids stay dense across the daemon's whole lineage.
  std::int64_t id_base_ = 0;
  Time last_journaled_slot_ = 0;
  std::int64_t last_snapshot_records_ = 0;
  std::string recovery_summary_;
  // Replay leftovers open_journal() needs: how much of the recovered
  // file was valid (a torn tail is truncated away before appending).
  std::int64_t recovered_valid_bytes_ = 0;
  std::int64_t recovered_records_ = 0;
  bool recovered_torn_tail_ = false;
  /// tag -> reply line, for finished jobs whose submitter is gone.
  std::unordered_map<std::string, std::string> parked_replies_;
  /// tag -> driver job id for EVERY tagged unfinished job — the dedup
  /// index.  A resubmitted pending tag is idempotent: it adopts the job
  /// when its owner is gone (reconnect after a drop or a recovery) and
  /// is ignored as a duplicate when the owner is alive (a retried or
  /// chaos-duplicated line), so a tag never yields two replies.
  std::unordered_map<std::string, JobId> pending_tags_;

  volatile std::sig_atomic_t stop_ = 0;
  volatile std::sig_atomic_t halt_ = 0;
  std::int64_t jobs_submitted_ = 0;
  std::int64_t jobs_finished_ = 0;
  std::int64_t total_submitted_work_ = 0;
  std::int64_t total_flow_ = 0;  // sum of finished flows (snapshots)
  Time max_flow_ = 0;            // the served stream's F_max so far
};

/// Installs `flag` as the target of SIGTERM/SIGINT (handler just sets
/// it) and returns true; the CLI passes the same flag via
/// ServeOptions::stop_flag.
bool InstallStopSignalHandlers(volatile std::sig_atomic_t* flag);

}  // namespace otsched::serve
