#include "serve/protocol.h"

#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

#include "common/metrics.h"  // JsonString

namespace otsched::serve {
namespace {

/// Recursive-descent reader over one submission line.  Only the subset
/// the protocol needs: one top-level object with string / integer /
/// array-of-integer / array-of-integer-pair values.
class LineParser {
 public:
  explicit LineParser(const std::string& text) : text_(text) {}

  bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
      *error = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

  bool parse_string(std::string* out, std::string* error) {
    skip_ws();
    if (!consume('"')) return fail(error, "expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ == text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default:
            return fail(error, std::string("unsupported escape '\\") + esc +
                                   "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_int(std::int64_t* out, std::string* error) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) {
      return fail(error, "expected an integer");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  /// [1, -1, 0, ...]
  bool parse_int_array(std::vector<std::int64_t>* out, std::string* error) {
    if (!consume('[')) return fail(error, "expected '['");
    out->clear();
    if (consume(']')) return true;
    while (true) {
      std::int64_t value = 0;
      if (!parse_int(&value, error)) return false;
      out->push_back(value);
      if (consume(']')) return true;
      if (!consume(',')) return fail(error, "expected ',' or ']'");
    }
  }

  /// [[0, 1], [0, 2], ...]
  bool parse_pair_array(
      std::vector<std::pair<std::int64_t, std::int64_t>>* out,
      std::string* error) {
    if (!consume('[')) return fail(error, "expected '['");
    out->clear();
    if (consume(']')) return true;
    while (true) {
      std::pair<std::int64_t, std::int64_t> edge;
      if (!consume('[')) return fail(error, "expected '[' (edge pair)");
      if (!parse_int(&edge.first, error)) return false;
      if (!consume(',')) return fail(error, "expected ',' in edge pair");
      if (!parse_int(&edge.second, error)) return false;
      if (!consume(']')) return fail(error, "expected ']' after edge pair");
      out->push_back(edge);
      if (consume(']')) return true;
      if (!consume(',')) return fail(error, "expected ',' or ']'");
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<SubmitRequest> ParseSubmitRequest(const std::string& line,
                                                std::string* error) {
  LineParser p(line);
  if (!p.consume('{')) {
    p.fail(error, "expected a JSON object");
    return std::nullopt;
  }

  SubmitRequest request;
  bool saw_parents = false;
  bool saw_edges = false;
  std::int64_t nodes = -1;
  std::vector<std::int64_t> parents;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;

  if (!p.consume('}')) {
    while (true) {
      std::string key;
      if (!p.parse_string(&key, error)) return std::nullopt;
      if (!p.consume(':')) {
        p.fail(error, "expected ':'");
        return std::nullopt;
      }
      if (key == "id") {
        if (!p.parse_string(&request.tag, error)) return std::nullopt;
      } else if (key == "release") {
        std::int64_t value = 0;
        if (!p.parse_int(&value, error)) return std::nullopt;
        request.release = value;
      } else if (key == "nodes") {
        if (!p.parse_int(&nodes, error)) return std::nullopt;
      } else if (key == "parents") {
        if (!p.parse_int_array(&parents, error)) return std::nullopt;
        saw_parents = true;
      } else if (key == "edges") {
        if (!p.parse_pair_array(&edges, error)) return std::nullopt;
        saw_edges = true;
      } else {
        p.fail(error, "unknown key \"" + key + "\"");
        return std::nullopt;
      }
      if (p.consume('}')) break;
      if (!p.consume(',')) {
        p.fail(error, "expected ',' or '}'");
        return std::nullopt;
      }
    }
  }
  if (!p.at_end()) {
    p.fail(error, "trailing bytes after object");
    return std::nullopt;
  }

  if (request.release < 0) {
    p.fail(error, "negative release");
    return std::nullopt;
  }
  if (saw_parents == (saw_edges || nodes >= 0)) {
    p.fail(error,
           "exactly one DAG spelling required: \"parents\" or "
           "\"nodes\"+\"edges\"");
    return std::nullopt;
  }

  if (saw_parents) {
    const std::int64_t n = static_cast<std::int64_t>(parents.size());
    if (n == 0) {
      p.fail(error, "\"parents\" must be non-empty");
      return std::nullopt;
    }
    Dag::Builder builder(static_cast<NodeId>(n));
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int64_t parent = parents[static_cast<std::size_t>(v)];
      if (parent == -1) continue;
      // Parents must precede children, so the ids alone prove acyclicity.
      if (parent < 0 || parent >= v) {
        p.fail(error, "parents[" + std::to_string(v) + "] = " +
                          std::to_string(parent) +
                          " out of range (want -1 or a smaller node id)");
        return std::nullopt;
      }
      builder.add_edge(static_cast<NodeId>(parent), static_cast<NodeId>(v));
    }
    request.dag = std::move(builder).build();
    return request;
  }

  if (nodes < 1) {
    p.fail(error, "\"nodes\" must be >= 1");
    return std::nullopt;
  }
  Dag::Builder builder(static_cast<NodeId>(nodes));
  for (const auto& [from, to] : edges) {
    // Same topological-id convention as the parents form.
    if (from < 0 || to <= from || to >= nodes) {
      p.fail(error, "edge [" + std::to_string(from) + ", " +
                        std::to_string(to) +
                        "] out of range (want 0 <= from < to < nodes)");
      return std::nullopt;
    }
    builder.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to));
  }
  request.dag = std::move(builder).build();
  return request;
}

std::string FormatFinishedReply(JobId job, const std::string& tag,
                                Time release, Time finish, Time flow) {
  std::ostringstream out;
  out << "{\"job_id\": " << job;
  if (!tag.empty()) out << ", \"id\": " << JsonString(tag);
  out << ", \"release\": " << release << ", \"finish\": " << finish
      << ", \"flow\": " << flow << "}\n";
  return out.str();
}

std::string FormatErrorReply(const std::string& message) {
  return "{\"error\": " + JsonString(message) + "}\n";
}

std::string FormatHttpResponse(int status, const std::string& content_type,
                               const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                                       : "Error";
  std::ostringstream out;
  out << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace otsched::serve
