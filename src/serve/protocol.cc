#include "serve/protocol.h"

#include <sstream>
#include <vector>

#include "common/metrics.h"  // JsonString
#include "serve/json.h"

namespace otsched::serve {

std::optional<SubmitRequest> ParseSubmitRequest(const std::string& line,
                                                std::string* error) {
  LineParser p(line);
  if (!p.consume('{')) {
    p.fail(error, "expected a JSON object");
    return std::nullopt;
  }

  SubmitRequest request;
  bool saw_parents = false;
  bool saw_edges = false;
  std::int64_t nodes = -1;
  std::vector<std::int64_t> parents;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;

  if (!p.consume('}')) {
    while (true) {
      std::string key;
      if (!p.parse_string(&key, error)) return std::nullopt;
      if (!p.consume(':')) {
        p.fail(error, "expected ':'");
        return std::nullopt;
      }
      if (key == "id") {
        if (!p.parse_string(&request.tag, error)) return std::nullopt;
      } else if (key == "release") {
        std::int64_t value = 0;
        if (!p.parse_int(&value, error)) return std::nullopt;
        request.release = value;
      } else if (key == "nodes") {
        if (!p.parse_int(&nodes, error)) return std::nullopt;
      } else if (key == "parents") {
        if (!p.parse_int_array(&parents, error)) return std::nullopt;
        saw_parents = true;
      } else if (key == "edges") {
        if (!p.parse_pair_array(&edges, error)) return std::nullopt;
        saw_edges = true;
      } else {
        p.fail(error, "unknown key \"" + key + "\"");
        return std::nullopt;
      }
      if (p.consume('}')) break;
      if (!p.consume(',')) {
        p.fail(error, "expected ',' or '}'");
        return std::nullopt;
      }
    }
  }
  if (!p.at_end()) {
    p.fail(error, "trailing bytes after object");
    return std::nullopt;
  }

  if (request.release < 0) {
    p.fail(error, "negative release");
    return std::nullopt;
  }
  if (saw_parents == (saw_edges || nodes >= 0)) {
    p.fail(error,
           "exactly one DAG spelling required: \"parents\" or "
           "\"nodes\"+\"edges\"");
    return std::nullopt;
  }

  if (saw_parents) {
    const std::int64_t n = static_cast<std::int64_t>(parents.size());
    if (n == 0) {
      p.fail(error, "\"parents\" must be non-empty");
      return std::nullopt;
    }
    Dag::Builder builder(static_cast<NodeId>(n));
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int64_t parent = parents[static_cast<std::size_t>(v)];
      if (parent == -1) continue;
      // Parents must precede children, so the ids alone prove acyclicity.
      if (parent < 0 || parent >= v) {
        p.fail(error, "parents[" + std::to_string(v) + "] = " +
                          std::to_string(parent) +
                          " out of range (want -1 or a smaller node id)");
        return std::nullopt;
      }
      builder.add_edge(static_cast<NodeId>(parent), static_cast<NodeId>(v));
    }
    request.dag = std::move(builder).build();
    return request;
  }

  if (nodes < 1) {
    p.fail(error, "\"nodes\" must be >= 1");
    return std::nullopt;
  }
  Dag::Builder builder(static_cast<NodeId>(nodes));
  for (const auto& [from, to] : edges) {
    // Same topological-id convention as the parents form.
    if (from < 0 || to <= from || to >= nodes) {
      p.fail(error, "edge [" + std::to_string(from) + ", " +
                        std::to_string(to) +
                        "] out of range (want 0 <= from < to < nodes)");
      return std::nullopt;
    }
    builder.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to));
  }
  request.dag = std::move(builder).build();
  return request;
}

std::string FormatFinishedReply(JobId job, const std::string& tag,
                                Time release, Time finish, Time flow) {
  std::ostringstream out;
  out << "{\"job_id\": " << job;
  if (!tag.empty()) out << ", \"id\": " << JsonString(tag);
  out << ", \"release\": " << release << ", \"finish\": " << finish
      << ", \"flow\": " << flow << "}\n";
  return out.str();
}

std::string FormatErrorReply(const std::string& message) {
  return "{\"error\": " + JsonString(message) + "}\n";
}

std::string FormatHttpResponse(int status, const std::string& content_type,
                               const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                                       : "Error";
  std::ostringstream out;
  out << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace otsched::serve
