#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/assert.h"
#include "common/metrics.h"  // JsonString
#include "serve/json.h"

namespace otsched::serve {
namespace {

const std::uint32_t* Crc32Table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string CrcHex(std::uint32_t crc) {
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", crc);
  return hex;
}

}  // namespace

std::uint32_t JournalCrc32(const std::string& text) {
  const std::uint32_t* table = Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : text) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string FrameJournalLine(const std::string& json) {
  return CrcHex(JournalCrc32(json)) + " " + json + "\n";
}

std::string EncodeOpen(const JournalOpen& open) {
  std::ostringstream json;
  json << "{\"type\": \"open\", \"version\": 1, \"policy\": "
       << JsonString(open.policy) << ", \"m\": " << open.m
       << ", \"seed\": " << open.seed << "}";
  return FrameJournalLine(json.str());
}

std::string EncodeJob(const JournalJob& job) {
  std::ostringstream json;
  json << "{\"type\": \"job\", \"id\": " << job.id
       << ", \"release\": " << job.release
       << ", \"tag\": " << JsonString(job.tag) << ", \"nodes\": " << job.nodes
       << ", \"edges\": [";
  bool first = true;
  for (const auto& [from, to] : job.edges) {
    if (!first) json << ", ";
    first = false;
    json << "[" << from << ", " << to << "]";
  }
  json << "]}";
  return FrameJournalLine(json.str());
}

std::string EncodeAdvance(const JournalAdvance& advance) {
  return FrameJournalLine("{\"type\": \"adv\", \"slot\": " +
                          std::to_string(advance.slot) + "}");
}

std::string EncodeSnapshot(const JournalSnapshot& snapshot) {
  std::ostringstream json;
  json << "{\"type\": \"snap\", \"slot\": " << snapshot.slot
       << ", \"jobs\": " << snapshot.jobs_submitted
       << ", \"finished\": " << snapshot.jobs_finished
       << ", \"work\": " << snapshot.total_work
       << ", \"flow\": " << snapshot.total_flow
       << ", \"max_flow\": " << snapshot.max_flow
       << ", \"offset\": " << snapshot.offset
       << ", \"records\": " << snapshot.records << "}";
  return FrameJournalLine(json.str());
}

bool ParseJournalLine(const std::string& line, JournalRecord* out,
                      std::string* error) {
  // Frame: 8 hex digits, one space, the json payload.
  if (line.size() < 10 || line[8] != ' ') {
    if (error != nullptr) *error = "bad frame (want '<crc32> <json>')";
    return false;
  }
  std::uint32_t framed_crc = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = line[static_cast<std::size_t>(i)];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else {
      if (error != nullptr) *error = "bad crc hex";
      return false;
    }
    framed_crc = (framed_crc << 4) | static_cast<std::uint32_t>(digit);
  }
  const std::string json = line.substr(9);
  if (JournalCrc32(json) != framed_crc) {
    if (error != nullptr) *error = "crc mismatch";
    return false;
  }

  LineParser p(json);
  if (!p.consume('{')) {
    p.fail(error, "expected a JSON object");
    return false;
  }
  std::string type;
  JournalRecord record;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  bool saw_type = false;
  if (!p.consume('}')) {
    while (true) {
      std::string key;
      if (!p.parse_string(&key, error)) return false;
      if (!p.consume(':')) return p.fail(error, "expected ':'");
      if (key == "type") {
        if (!p.parse_string(&type, error)) return false;
        saw_type = true;
      } else if (key == "policy") {
        if (!p.parse_string(&record.open.policy, error)) return false;
      } else if (key == "tag") {
        if (!p.parse_string(&record.job.tag, error)) return false;
      } else if (key == "edges") {
        if (!p.parse_pair_array(&record.job.edges, error)) return false;
      } else {
        std::int64_t value = 0;
        if (!p.parse_int(&value, error)) return false;
        if (key == "version") {
          if (value != 1) return p.fail(error, "unsupported journal version");
        } else if (key == "m") {
          record.open.m = value;
        } else if (key == "seed") {
          record.open.seed = value;
        } else if (key == "id") {
          record.job.id = value;
        } else if (key == "release") {
          record.job.release = value;
        } else if (key == "nodes") {
          record.job.nodes = value;
        } else if (key == "slot") {
          record.advance.slot = value;
          record.snapshot.slot = value;
        } else if (key == "jobs") {
          record.snapshot.jobs_submitted = value;
        } else if (key == "finished") {
          record.snapshot.jobs_finished = value;
        } else if (key == "work") {
          record.snapshot.total_work = value;
        } else if (key == "flow") {
          record.snapshot.total_flow = value;
        } else if (key == "max_flow") {
          record.snapshot.max_flow = value;
        } else if (key == "offset") {
          record.snapshot.offset = value;
        } else if (key == "records") {
          record.snapshot.records = value;
        } else {
          return p.fail(error, "unknown key \"" + key + "\"");
        }
      }
      if (p.consume('}')) break;
      if (!p.consume(',')) return p.fail(error, "expected ',' or '}'");
    }
  }
  if (!p.at_end()) return p.fail(error, "trailing bytes after object");
  if (!saw_type) return p.fail(error, "record without \"type\"");

  if (type == "open") {
    record.type = JournalRecord::Type::kOpen;
  } else if (type == "job") {
    record.type = JournalRecord::Type::kJob;
    if (record.job.nodes < 1) return p.fail(error, "job with no nodes");
    if (record.job.release < 0) return p.fail(error, "negative release");
    for (const auto& [from, to] : record.job.edges) {
      if (from < 0 || to <= from || to >= record.job.nodes) {
        return p.fail(error, "edge [" + std::to_string(from) + ", " +
                                 std::to_string(to) + "] out of range");
      }
    }
  } else if (type == "adv") {
    record.type = JournalRecord::Type::kAdvance;
    if (record.advance.slot < 0) return p.fail(error, "negative slot");
  } else if (type == "snap") {
    record.type = JournalRecord::Type::kSnapshot;
  } else {
    return p.fail(error, "unknown record type \"" + type + "\"");
  }
  *out = std::move(record);
  return true;
}

std::unique_ptr<JournalWriter> JournalWriter::Open(const std::string& path,
                                                   std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open journal '" + path + "': " + strerror(errno);
    }
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) {
      *error = "cannot stat journal '" + path + "': " + strerror(errno);
    }
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, fd, static_cast<std::int64_t>(st.st_size)));
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::buffer(std::string line) {
  pending_ += line;
  ++pending_records_;
}

void JournalWriter::append_snapshot(JournalSnapshot snapshot) {
  snapshot.offset =
      bytes_committed_ + static_cast<std::int64_t>(pending_.size());
  snapshot.records = records_committed_ + pending_records_;
  buffer(EncodeSnapshot(snapshot));
}

bool JournalWriter::commit(std::string* error) {
  if (pending_.empty()) return true;
  std::size_t written = 0;
  while (written < pending_.size()) {
    const ssize_t wrote = ::write(fd_, pending_.data() + written,
                                  pending_.size() - written);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "journal write '" + path_ + "': " + strerror(errno);
      }
      return false;
    }
    written += static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd_) != 0) {
    if (error != nullptr) {
      *error = "journal fsync '" + path_ + "': " + strerror(errno);
    }
    return false;
  }
  bytes_committed_ += static_cast<std::int64_t>(pending_.size());
  records_committed_ += pending_records_;
  pending_.clear();
  pending_records_ = 0;
  return true;
}

bool JournalWriter::rotate(const JournalOpen& open, JournalSnapshot snapshot,
                           std::string* error) {
  OTSCHED_CHECK(pending_.empty(), "rotate with uncommitted journal records");
  const std::string open_line = EncodeOpen(open);
  snapshot.offset = static_cast<std::int64_t>(open_line.size());
  snapshot.records = 1;
  const std::string content = open_line + EncodeSnapshot(snapshot);

  const std::string tmp = path_ + ".tmp";
  const int tmp_fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    if (error != nullptr) {
      *error = "cannot open '" + tmp + "': " + strerror(errno);
    }
    return false;
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t wrote =
        ::write(tmp_fd, content.data() + written, content.size() - written);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "write '" + tmp + "': " + strerror(errno);
      }
      ::close(tmp_fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(wrote);
  }
  if (::fsync(tmp_fd) != 0 || ::close(tmp_fd) != 0) {
    if (error != nullptr) {
      *error = "fsync '" + tmp + "': " + strerror(errno);
    }
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename '" + tmp + "' -> '" + path_ + "': " + strerror(errno);
    }
    ::unlink(tmp.c_str());
    return false;
  }
  // Re-point the append fd at the rotated file.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "cannot reopen '" + path_ + "': " + strerror(errno);
    }
    return false;
  }
  bytes_committed_ = static_cast<std::int64_t>(content.size());
  records_committed_ = 2;
  return true;
}

bool ReadJournal(const std::string& path, JournalReadResult* result,
                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open journal '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  *result = JournalReadResult{};
  std::size_t pos = 0;
  std::size_t line_number = 0;
  // Tail-tolerance state: once a line fails, everything after it must
  // fail too (the fsync batch the crash tore); a later GOOD line means
  // the corruption is interior and the journal is unusable.
  bool tail_bad = false;
  std::size_t bad_line = 0;
  std::string bad_reason;
  while (pos < content.size()) {
    const std::size_t newline = content.find('\n', pos);
    const bool complete = newline != std::string::npos;
    const std::string line = content.substr(
        pos, complete ? newline - pos : std::string::npos);
    ++line_number;
    JournalRecord record;
    std::string line_error;
    const bool ok =
        complete && ParseJournalLine(line, &record, &line_error);
    if (ok) {
      if (tail_bad) {
        if (error != nullptr) {
          *error = "journal '" + path + "': corrupt record at line " +
                   std::to_string(bad_line) + " (" + bad_reason +
                   ") followed by a valid record at line " +
                   std::to_string(line_number) +
                   " — interior corruption, not a torn tail";
        }
        return false;
      }
      if (result->records.empty() &&
          record.type != JournalRecord::Type::kOpen) {
        if (error != nullptr) {
          *error = "journal '" + path + "': first record is not an open "
                   "header";
        }
        return false;
      }
      if (!result->records.empty() &&
          record.type == JournalRecord::Type::kOpen) {
        if (error != nullptr) {
          *error = "journal '" + path + "': duplicate open header at line " +
                   std::to_string(line_number);
        }
        return false;
      }
      result->records.push_back(std::move(record));
      result->valid_bytes = static_cast<std::int64_t>(newline + 1);
    } else if (!tail_bad) {
      tail_bad = true;
      bad_line = line_number;
      bad_reason = complete ? line_error : "incomplete final line";
    }
    if (!complete) break;
    pos = newline + 1;
  }
  if (result->records.empty()) {
    if (error != nullptr) {
      *error = tail_bad ? "journal '" + path + "': no valid records (line 1: " +
                              bad_reason + ")"
                        : "journal '" + path + "' is empty";
    }
    return false;
  }
  if (tail_bad) {
    result->torn_tail = true;
    result->tail_error =
        "line " + std::to_string(bad_line) + ": " + bad_reason;
  }
  return true;
}

}  // namespace otsched::serve
