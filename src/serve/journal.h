// Write-ahead journal for the `otsched serve` daemon (docs/SERVING.md,
// "Durability & recovery").
//
// The engine is deterministic: the daemon's entire state is a function
// of the accepted submission stream (with effective, i.e. clamped,
// releases) interleaved with how far the driver had advanced between
// acceptances.  The journal records exactly that — one NDJSON record
// per accepted job and one per slot change — so `serve --recover`
// re-derives the crashed daemon's state by replaying the file through a
// fresh SimDriver.  Nothing else (no engine state, no policy state) is
// persisted, mirroring how the sweep checkpoints (analysis/sweep.h) and
// the PR 9 rollback oracles re-derive state from inputs alone.
//
// Line framing: every record is one line, `<8-hex-crc32> <json>\n`,
// CRC-32 over the json payload.  A crash can tear the tail of the file
// (the last fsync batch), so readers tolerate a trailing run of
// corrupt/incomplete lines — but a bad line FOLLOWED by a good one is
// interior corruption and a hard error, the same contract as
// SweepCheckpoint.
//
// Record types:
//   open  {"type":"open","version":1,"policy":P,"m":M,"seed":S}
//         identity header; --recover refuses a journal whose identity
//         does not match the daemon's own options.
//   job   {"type":"job","id":I,"release":R,"tag":T,"nodes":N,
//          "edges":[[u,v],...]}
//         one accepted submission; `release` is the effective release,
//         `id` the wire job id (dense across rotations).
//   adv   {"type":"adv","slot":S}
//         the driver finished simulating through slot S.
//   snap  {"type":"snap","slot":S,"jobs":J,"finished":F,"work":W,
//          "flow":Fl,"max_flow":Mf,"offset":O,"records":K}
//         retired-flow summary at a quiescent point (driver idle, all
//         replies delivered) plus the byte offset where the record
//         begins.  A snapshot directly after the open header is a
//         *base* snapshot: replay warm-starts the driver at its slot
//         instead of re-running history — the form `--journal-rotate`
//         truncates to.  Only policies whose decisions are a function
//         of the current view (Scheduler::supports_warm_start) may
//         write snapshots; stateful policies replay the full journal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace otsched::serve {

struct JournalOpen {
  std::string policy;
  std::int64_t m = 0;
  std::int64_t seed = 0;
};

struct JournalJob {
  std::int64_t id = 0;  // wire job id
  Time release = 0;     // effective (clamped) release
  std::string tag;      // client tag; may be empty
  std::int64_t nodes = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
};

struct JournalAdvance {
  Time slot = 0;
};

struct JournalSnapshot {
  Time slot = 0;
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_finished = 0;
  std::int64_t total_work = 0;
  std::int64_t total_flow = 0;
  Time max_flow = 0;
  std::int64_t offset = 0;   // byte offset of this record in the file
  std::int64_t records = 0;  // records preceding this one
};

struct JournalRecord {
  enum class Type { kOpen, kJob, kAdvance, kSnapshot };
  Type type = Type::kOpen;
  JournalOpen open;
  JournalJob job;
  JournalAdvance advance;
  JournalSnapshot snapshot;
};

/// CRC-32 (IEEE, reflected) over `text` — the journal's line checksum.
std::uint32_t JournalCrc32(const std::string& text);

/// Wraps one json payload into its framed journal line:
/// "<8-hex-crc32> <json>\n".
std::string FrameJournalLine(const std::string& json);

/// Parses one framed line (no trailing newline).  Returns false with a
/// diagnostic on bad framing, CRC mismatch, or malformed json.
bool ParseJournalLine(const std::string& line, JournalRecord* out,
                      std::string* error);

// Record encoders (framed, newline-terminated).
std::string EncodeOpen(const JournalOpen& open);
std::string EncodeJob(const JournalJob& job);
std::string EncodeAdvance(const JournalAdvance& advance);
std::string EncodeSnapshot(const JournalSnapshot& snapshot);

/// Appender with per-poll-cycle fsync batching: append_*() buffers in
/// memory; commit() writes the batch and fsyncs once.  The serve loop
/// commits after simulation and BEFORE replies flush, so every reply a
/// client ever sees is backed by a durable record.
class JournalWriter {
 public:
  /// Opens (creating or appending).  Null + diagnostic on failure.
  static std::unique_ptr<JournalWriter> Open(const std::string& path,
                                             std::string* error);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append(const JournalOpen& open) { buffer(EncodeOpen(open)); }
  void append(const JournalJob& job) { buffer(EncodeJob(job)); }
  void append(const JournalAdvance& advance) { buffer(EncodeAdvance(advance)); }
  /// Fills snapshot.offset / snapshot.records from the writer's own
  /// position before encoding.
  void append_snapshot(JournalSnapshot snapshot);

  /// True when append_*() calls are waiting for a commit().
  bool dirty() const { return !pending_.empty(); }

  /// Writes the pending batch and fsyncs.  Returns false (with a
  /// diagnostic) on I/O errors; the daemon treats that as fatal rather
  /// than serve acknowledgements it cannot back.
  bool commit(std::string* error);

  /// Atomically replaces the journal with `open` + a base `snapshot`
  /// (tmp + fsync + rename — a crash leaves either file, never a torn
  /// one).  Requires nothing pending.  The writer continues appending
  /// to the rotated file.
  bool rotate(const JournalOpen& open, JournalSnapshot snapshot,
              std::string* error);

  /// Tells a writer opened on a pre-existing (recovered) file how many
  /// valid records it already holds, so records_committed() and
  /// snapshot record counts stay absolute.
  void note_existing_records(std::int64_t records) {
    records_committed_ = records;
  }

  std::int64_t records_committed() const { return records_committed_; }
  std::int64_t bytes_committed() const { return bytes_committed_; }
  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::string path, int fd, std::int64_t bytes)
      : path_(std::move(path)), fd_(fd), bytes_committed_(bytes) {}

  void buffer(std::string line);

  std::string path_;
  int fd_ = -1;
  std::string pending_;
  std::int64_t pending_records_ = 0;
  std::int64_t records_committed_ = 0;
  std::int64_t bytes_committed_ = 0;
};

/// The whole journal, read strictly.
struct JournalReadResult {
  std::vector<JournalRecord> records;
  std::int64_t valid_bytes = 0;  // file prefix covered by `records`
  bool torn_tail = false;        // trailing bad/incomplete lines dropped
  std::string tail_error;        // why the tail was dropped (diagnostic)
};

/// Reads and validates `path`.  Returns false with a diagnostic on an
/// unreadable file, a missing/mispositioned open header, or interior
/// corruption (a bad line followed by a good one); a torn TAIL is
/// tolerated and reported via result->torn_tail.
bool ReadJournal(const std::string& path, JournalReadResult* result,
                 std::string* error);

}  // namespace otsched::serve
