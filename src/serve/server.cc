#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "common/assert.h"
#include "serve/protocol.h"

namespace otsched::serve {
namespace {

volatile std::sig_atomic_t* g_stop_flag = nullptr;

void StopSignalHandler(int) {
  if (g_stop_flag != nullptr) *g_stop_flag = 1;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// 16-hex-digit FNV-1a — same shape as FingerprintInstance, over the
/// daemon's pseudo-instance name, so the /metrics manifest satisfies the
/// schema's instance_hash pattern.
std::string FingerprintString(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return hex;
}

SimOptions FlowOnlyStreamOptions() {
  SimOptions options;
  options.record = RecordMode::kFlowOnly;
  return options;
}

}  // namespace

bool InstallStopSignalHandlers(volatile std::sig_atomic_t* flag) {
  g_stop_flag = flag;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = StopSignalHandler;
  sigemptyset(&action.sa_mask);
  return sigaction(SIGTERM, &action, nullptr) == 0 &&
         sigaction(SIGINT, &action, nullptr) == 0;
}

ScheduleServer::ScheduleServer(ServeOptions options,
                               std::unique_ptr<Scheduler> scheduler)
    : options_(std::move(options)),
      scheduler_(std::move(scheduler)),
      driver_(options_.m, *scheduler_, RunContext(FlowOnlyStreamOptions())) {
  OTSCHED_CHECK(scheduler_ != nullptr, "serve: null scheduler");
  OTSCHED_CHECK(options_.chunk_slots >= 1);
}

ScheduleServer::~ScheduleServer() {
  for (Connection& conn : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

bool ScheduleServer::start(std::string* error) {
  const std::string& listen = options_.listen;
  if (listen.rfind("unix:", 0) == 0) {
    const std::string path = listen.substr(5);
    if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error != nullptr) *error = "bad unix socket path '" + path + "'";
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
      return false;
    }
    ::unlink(path.c_str());  // stale socket from a previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = "bind " + path + ": " + strerror(errno);
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    unix_path_ = path;
    address_ = listen;
  } else {
    const std::size_t colon = listen.rfind(':');
    if (colon == std::string::npos) {
      if (error != nullptr) {
        *error = "bad listen address '" + listen +
                 "' (want host:port or unix:/path)";
      }
      return false;
    }
    const std::string host = listen.substr(0, colon);
    const std::string port_text = listen.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port_text.empty() || port < 0 ||
        port > 65535) {
      if (error != nullptr) *error = "bad port '" + port_text + "'";
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad host '" + host + "'";
      return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = "bind " + listen + ": " + strerror(errno);
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    address_ = host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 64) != 0 || !SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!unix_path_.empty()) {
      ::unlink(unix_path_.c_str());
      unix_path_.clear();
    }
    return false;
  }

  // The /metrics manifest: the stream is the daemon's "instance".
  const std::string instance = "serve:" + address_;
  registry_.set_manifest("instance", instance);
  registry_.set_manifest("instance_hash", FingerprintString(instance));
  registry_.set_manifest("jobs", std::int64_t{0});
  registry_.set_manifest("total_work", std::int64_t{0});
  registry_.set_manifest("policy", options_.policy);
  registry_.set_manifest("m", static_cast<std::int64_t>(options_.m));
  registry_.set_manifest("seed", static_cast<std::int64_t>(options_.seed));
  registry_.set_manifest("max_horizon", std::int64_t{0});
  registry_.set_manifest("clairvoyance", "policy-default");
  registry_.set_manifest("record", "flow-only");
  registry_.set_manifest("faults", "none");
  return true;
}

void ScheduleServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    registry_.counter("serve.connections").inc();
    // Reuse a dead slot so pending_ job -> connection indices stay
    // stable for the connections that are still alive.
    Connection* slot = nullptr;
    for (Connection& conn : connections_) {
      if (conn.fd < 0) {
        slot = &conn;
        break;
      }
    }
    if (slot == nullptr) {
      connections_.push_back(Connection{});
      slot = &connections_.back();
    }
    *slot = Connection{};
    slot->fd = fd;
  }
}

void ScheduleServer::read_connection(Connection& conn) {
  char buffer[65536];
  while (true) {
    // Stop pulling once the buffer already holds an over-cap line:
    // process_lines() will reject it, and reading further just feeds a
    // no-newline flood.  The bound is cap + one chunk.
    if (!conn.discard_input && conn.in.size() > options_.max_line_bytes) {
      break;
    }
    const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (got > 0) {
      // Rejected connections drain-and-discard: closing with unread
      // bytes would RST the socket and destroy the error reply in
      // flight, so the remaining input is read and dropped (memory
      // O(1)) until the peer half-closes.
      if (!conn.discard_input) {
        conn.in.append(buffer, static_cast<std::size_t>(got));
      }
      if (got < static_cast<ssize_t>(sizeof(buffer))) break;
      continue;
    }
    if (got == 0) {
      conn.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.eof = true;  // hard error: flush what we owe, then close
    break;
  }
  if (!conn.discard_input) process_lines(conn);
}

void ScheduleServer::process_lines(Connection& conn) {
  if (!conn.classified && conn.in.size() >= 4) {
    conn.http = conn.in.compare(0, 4, "GET ") == 0;
    conn.classified = true;
  }
  if (!conn.classified && conn.eof && !conn.in.empty()) {
    conn.classified = true;  // short non-HTTP scrap: treat as NDJSON
  }
  if (!conn.classified) return;

  if (conn.http) {
    handle_http(conn);
    return;
  }

  std::size_t start = 0;
  while (true) {
    const std::size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) {
      // No complete line: bounded as long as the partial tail stays
      // under the cap.  Past it, this is the no-newline flood — reject
      // with a structured reply and close (docs/SERVING.md, "Overload
      // behavior"); the peer's owed replies still flush first.
      if (conn.in.size() - start > options_.max_line_bytes) {
        reject_oversized_line(conn);
        return;
      }
      break;
    }
    if (newline - start > options_.max_line_bytes) {
      reject_oversized_line(conn);
      return;
    }
    std::string line = conn.in.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (stopping()) {
      conn.out += FormatErrorReply("draining: submission rejected");
      continue;
    }
    std::string error;
    std::optional<SubmitRequest> request = ParseSubmitRequest(line, &error);
    if (!request.has_value()) {
      registry_.counter("serve.parse_errors").inc();
      conn.out += FormatErrorReply(error);
      continue;
    }
    // A release in the simulated past cannot be honored (those slots are
    // gone); clamp up to the current slot.  The reply echoes the
    // effective release, keeping offline replays faithful.
    const Time release = std::max(request->release, driver_.now());
    total_submitted_work_ += request->dag.node_count();
    const JobId id = driver_.submit(
        Job(std::move(request->dag), release,
            request->tag.empty() ? "job-" + std::to_string(jobs_submitted_)
                                 : request->tag));
    OTSCHED_CHECK(static_cast<std::size_t>(id) == pending_.size());
    pending_.push_back(PendingJob{
        static_cast<std::size_t>(&conn - connections_.data()),
        std::move(request->tag)});
    ++conn.pending_jobs;
    ++jobs_submitted_;
  }
  conn.in.erase(0, start);
}

void ScheduleServer::reject_oversized_line(Connection& conn) {
  registry_.counter("serve.rejected_lines").inc();
  conn.out += FormatErrorReply(
      "line exceeds max length (" +
      std::to_string(options_.max_line_bytes) + " bytes): connection closed");
  conn.in.clear();
  conn.in.shrink_to_fit();
  // Switch to drain-and-discard: the error reply and any owed replies
  // flush, then flush_writes() half-closes the write side; the read
  // side keeps draining (dropping bytes) until the peer's EOF so the
  // final close never carries unread data.
  conn.discard_input = true;
}

void ScheduleServer::handle_http(Connection& conn) {
  const std::size_t line_end = conn.in.find("\r\n");
  if (line_end == std::string::npos) {
    if (conn.in.size() > options_.max_line_bytes) {
      // An HTTP request head has the same line cap as a submission.
      reject_oversized_line(conn);
      return;
    }
    if (!conn.eof) return;  // need more
  }
  const std::string request_line = conn.in.substr(
      0, line_end == std::string::npos ? conn.in.size() : line_end);
  // "GET <path> HTTP/1.x" — the path is the second token.
  const std::size_t path_begin = request_line.find(' ');
  std::string path;
  if (path_begin != std::string::npos) {
    const std::size_t path_end = request_line.find(' ', path_begin + 1);
    path = request_line.substr(path_begin + 1,
                               path_end == std::string::npos
                                   ? std::string::npos
                                   : path_end - path_begin - 1);
  }
  registry_.counter("serve.http_requests").inc();
  if (path == "/metrics") {
    conn.out += FormatHttpResponse(200, "application/json",
                                   registry_.to_json_cached());
  } else if (path == "/healthz") {
    conn.out += FormatHttpResponse(200, "text/plain", "ok\n");
  } else {
    conn.out += FormatHttpResponse(404, "text/plain",
                                   "not found (try /metrics or /healthz)\n");
  }
  conn.eof = true;  // one-shot: close once the response is flushed
  conn.in.clear();
}

void ScheduleServer::tick_driver() {
  bool activity = false;
  if (!driver_.idle()) {
    // While draining, run to completion in one go; otherwise a bounded
    // chunk so fresh submissions interleave with progress.
    const Time budget = stopping() ? std::numeric_limits<Time>::max()
                                   : options_.chunk_slots;
    activity = driver_.advance(budget) > 0;
  }
  const std::vector<SimDriver::FinishedJob> finished =
      driver_.take_finished();
  for (const SimDriver::FinishedJob& job : finished) {
    PendingJob& owner = pending_[static_cast<std::size_t>(job.job)];
    Connection& conn = connections_[owner.conn];
    if (conn.fd >= 0 && !conn.http) {
      conn.out += FormatFinishedReply(job.job, owner.tag, job.release,
                                      job.finish, job.flow);
      --conn.pending_jobs;
    }
    owner.tag.clear();
    owner.tag.shrink_to_fit();
    ++jobs_finished_;
  }
  driver_.retire_finished();

  if (activity || !finished.empty()) {
    registry_.counter("serve.jobs_submitted").set(jobs_submitted_);
    registry_.counter("serve.jobs_finished").set(jobs_finished_);
    registry_.gauge("serve.pending_work")
        .set(static_cast<double>(driver_.pending_work()));
    registry_.gauge("serve.arena_nodes")
        .set(static_cast<double>(driver_.arena_nodes()));
    registry_.gauge("serve.slot").set(static_cast<double>(driver_.now()));
    registry_.set_manifest("jobs", jobs_submitted_);
    registry_.set_manifest("total_work", total_submitted_work_);
  }
}

void ScheduleServer::flush_writes() {
  for (Connection& conn : connections_) {
    if (conn.fd < 0) continue;
    while (!conn.out.empty()) {
      const ssize_t wrote =
          ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (wrote > 0) {
        conn.out.erase(0, static_cast<std::size_t>(wrote));
        continue;
      }
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_connection(conn);  // peer went away; drop its replies
      break;
    }
    if (conn.fd >= 0 && conn.out.empty() && conn.discard_input &&
        conn.pending_jobs == 0 && !conn.write_shut) {
      // Rejected connection, everything owed delivered: FIN the write
      // side so the peer sees end-of-replies; keep draining its input.
      ::shutdown(conn.fd, SHUT_WR);
      conn.write_shut = true;
    }
    if (conn.fd >= 0 && conn.out.empty() && conn.eof &&
        conn.pending_jobs == 0) {
      close_connection(conn);
    }
  }
}

void ScheduleServer::close_connection(Connection& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn = Connection{};
}

void ScheduleServer::run() {
  OTSCHED_CHECK(listen_fd_ >= 0, "run() before start()");
  bool listener_open = true;
  std::vector<pollfd> fds;
  std::vector<std::size_t> polled;  // connections_ index; npos = listener

  while (true) {
    const bool draining = stopping();
    if (draining && listener_open) {
      ::close(listen_fd_);
      if (!unix_path_.empty()) {
        ::unlink(unix_path_.c_str());
        unix_path_.clear();
      }
      listener_open = false;
    }

    fds.clear();
    polled.clear();
    if (listener_open) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      polled.push_back(std::string::npos);
    }
    bool writes_pending = false;
    for (std::size_t c = 0; c < connections_.size(); ++c) {
      Connection& conn = connections_[c];
      if (conn.fd < 0) continue;
      short events = 0;
      if (!conn.eof && !draining) events |= POLLIN;
      if (!conn.out.empty()) {
        events |= POLLOUT;
        writes_pending = true;
      }
      if (events == 0) continue;
      fds.push_back(pollfd{conn.fd, events, 0});
      polled.push_back(c);
    }

    if (draining && driver_.idle() && !writes_pending) break;

    const int timeout =
        (!driver_.idle() || draining) ? 0 : options_.idle_poll_ms;
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
    if (ready > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        if (polled[i] == std::string::npos) {
          accept_ready();
          continue;
        }
        Connection& conn = connections_[polled[i]];
        if (conn.fd < 0) continue;
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
            !draining && !conn.eof) {
          read_connection(conn);
        } else if ((fds[i].revents & (POLLHUP | POLLERR)) != 0 &&
                   conn.out.empty()) {
          close_connection(conn);
        }
      }
    }

    tick_driver();
    flush_writes();
  }

  // Drained: nothing left to write, close whatever connections remain.
  for (Connection& conn : connections_) close_connection(conn);
}

}  // namespace otsched::serve
