#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "common/assert.h"
#include "serve/protocol.h"

namespace otsched::serve {
namespace {

volatile std::sig_atomic_t* g_stop_flag = nullptr;

void StopSignalHandler(int) {
  if (g_stop_flag != nullptr) *g_stop_flag = 1;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// 16-hex-digit FNV-1a — same shape as FingerprintInstance, over the
/// daemon's pseudo-instance name, so the /metrics manifest satisfies the
/// schema's instance_hash pattern.
std::string FingerprintString(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return hex;
}

SimOptions FlowOnlyStreamOptions() {
  SimOptions options;
  options.record = RecordMode::kFlowOnly;
  return options;
}

}  // namespace

bool InstallStopSignalHandlers(volatile std::sig_atomic_t* flag) {
  g_stop_flag = flag;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = StopSignalHandler;
  sigemptyset(&action.sa_mask);
  return sigaction(SIGTERM, &action, nullptr) == 0 &&
         sigaction(SIGINT, &action, nullptr) == 0;
}

ScheduleServer::ScheduleServer(ServeOptions options,
                               std::unique_ptr<Scheduler> scheduler)
    : options_(std::move(options)),
      scheduler_(std::move(scheduler)),
      driver_(options_.m, *scheduler_, RunContext(FlowOnlyStreamOptions())) {
  OTSCHED_CHECK(scheduler_ != nullptr, "serve: null scheduler");
  OTSCHED_CHECK(options_.chunk_slots >= 1);
}

ScheduleServer::~ScheduleServer() {
  for (Connection& conn : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

JournalSnapshot ScheduleServer::snapshot_now() const {
  JournalSnapshot snapshot;
  snapshot.slot = driver_.now();
  snapshot.jobs_submitted = jobs_submitted_;
  snapshot.jobs_finished = jobs_finished_;
  snapshot.total_work = total_submitted_work_;
  snapshot.total_flow = total_flow_;
  snapshot.max_flow = max_flow_;
  return snapshot;
}

bool ScheduleServer::replay_journal(std::string* error) {
  JournalReadResult journal;
  if (!ReadJournal(options_.recover_path, &journal, error)) return false;
  const JournalOpen& open = journal.records.front().open;
  if (open.policy != options_.policy || open.m != options_.m ||
      open.seed != static_cast<std::int64_t>(options_.seed)) {
    if (error != nullptr) {
      *error = "journal '" + options_.recover_path +
               "' identity mismatch: written by policy=" + open.policy +
               " m=" + std::to_string(open.m) +
               " seed=" + std::to_string(open.seed) +
               ", daemon runs policy=" + options_.policy +
               " m=" + std::to_string(options_.m) +
               " seed=" + std::to_string(options_.seed);
    }
    return false;
  }

  std::size_t next = 1;
  if (next < journal.records.size() &&
      journal.records[next].type == JournalRecord::Type::kSnapshot) {
    // Base snapshot (the rotated form): warm-start instead of replaying
    // the truncated history.
    const JournalSnapshot& snap = journal.records[next].snapshot;
    if (!scheduler_->supports_warm_start()) {
      if (error != nullptr) {
        *error = "journal '" + options_.recover_path +
                 "' has a base snapshot but policy '" + options_.policy +
                 "' is stateful (no warm start): it cannot have written it";
      }
      return false;
    }
    driver_.warm_start(snap.slot);
    id_base_ = snap.jobs_submitted;
    jobs_submitted_ = snap.jobs_submitted;
    jobs_finished_ = snap.jobs_finished;
    total_submitted_work_ = snap.total_work;
    total_flow_ = snap.total_flow;
    max_flow_ = snap.max_flow;
    last_journaled_slot_ = snap.slot;
    ++next;
  }

  std::int64_t replayed_jobs = 0;
  for (; next < journal.records.size(); ++next) {
    const JournalRecord& record = journal.records[next];
    switch (record.type) {
      case JournalRecord::Type::kJob: {
        if (record.job.id != jobs_submitted_) {
          if (error != nullptr) {
            *error = "journal '" + options_.recover_path +
                     "': job record has id " + std::to_string(record.job.id) +
                     ", expected " + std::to_string(jobs_submitted_) +
                     " (wire ids must be dense)";
          }
          return false;
        }
        if (record.job.release < driver_.now()) {
          if (error != nullptr) {
            *error = "journal '" + options_.recover_path + "': job " +
                     std::to_string(record.job.id) + " released at slot " +
                     std::to_string(record.job.release) +
                     ", already replayed past it (slot " +
                     std::to_string(driver_.now()) + ")";
          }
          return false;
        }
        Dag::Builder builder(static_cast<NodeId>(record.job.nodes));
        for (const auto& [from, to] : record.job.edges) {
          builder.add_edge(static_cast<NodeId>(from),
                           static_cast<NodeId>(to));
        }
        admit_job(std::move(builder).build(), record.job.release,
                  record.job.tag);
        ++replayed_jobs;
        break;
      }
      case JournalRecord::Type::kAdvance: {
        // advance(n) budgets n ITERATIONS, and an iteration fast-forwards
        // across idle stretches — advance(target - now) can overshoot the
        // journaled slot.  Single-iteration steps walk the exact slot
        // sequence the live daemon walked (tick ≡ batch, per the
        // driver-equivalence gate), so now() lands on every adv boundary.
        const Time target = record.advance.slot;
        while (driver_.now() < target) {
          if (driver_.advance(1) == 0) break;
        }
        if (driver_.now() != target) {
          if (error != nullptr) {
            *error = "journal '" + options_.recover_path +
                     "': replay diverged — journal advances to slot " +
                     std::to_string(target) + " but the driver reached " +
                     std::to_string(driver_.now());
          }
          return false;
        }
        deliver_finished();
        last_journaled_slot_ = target;
        break;
      }
      case JournalRecord::Type::kSnapshot: {
        deliver_finished();
        const JournalSnapshot& snap = record.snapshot;
        if (snap.slot != driver_.now() ||
            snap.jobs_submitted != jobs_submitted_ ||
            snap.jobs_finished != jobs_finished_) {
          if (error != nullptr) {
            *error = "journal '" + options_.recover_path +
                     "': snapshot disagrees with the replayed state "
                     "(snapshot slot=" + std::to_string(snap.slot) +
                     " jobs=" + std::to_string(snap.jobs_submitted) +
                     " finished=" + std::to_string(snap.jobs_finished) +
                     ", replay slot=" + std::to_string(driver_.now()) +
                     " jobs=" + std::to_string(jobs_submitted_) +
                     " finished=" + std::to_string(jobs_finished_) + ")";
          }
          return false;
        }
        break;
      }
      case JournalRecord::Type::kOpen:
        break;  // unreachable: ReadJournal rejects a duplicate header
    }
  }
  deliver_finished();
  refresh_metrics();
  registry_.counter("serve.recovered_jobs").set(replayed_jobs);
  registry_.counter("serve.recovered_replies").set(0);

  recovered_valid_bytes_ = journal.valid_bytes;
  recovered_records_ = static_cast<std::int64_t>(journal.records.size());
  recovered_torn_tail_ = journal.torn_tail;
  recovery_summary_ =
      "recovered " + std::to_string(replayed_jobs) + " jobs (" +
      std::to_string(parked_replies_.size()) + " finished replies parked, " +
      std::to_string(pending_tags_.size()) +
      " in flight) through slot " + std::to_string(driver_.now()) +
      " from '" + options_.recover_path + "'";
  if (journal.torn_tail) {
    recovery_summary_ += " — dropped torn tail (" + journal.tail_error + ")";
  }
  return true;
}

bool ScheduleServer::open_journal(std::string* error) {
  const bool wants_snapshots =
      options_.journal_rotate || options_.snapshot_every > 0;
  if (options_.journal_path.empty()) {
    if (wants_snapshots) {
      if (error != nullptr) {
        *error = "--journal-rotate / --snapshot-every need --journal";
      }
      return false;
    }
    return true;
  }
  if (wants_snapshots && !scheduler_->supports_warm_start()) {
    if (error != nullptr) {
      *error = "policy '" + options_.policy +
               "' is stateful: snapshot-truncated journals would lose its "
               "decision state (full-journal replay still works; rotation "
               "needs a warm-startable policy such as fifo/first-ready)";
    }
    return false;
  }
  const bool recovering = !options_.recover_path.empty();
  if (recovering && recovered_torn_tail_) {
    // Drop the torn bytes so new records append to the valid prefix —
    // leaving them would read as interior corruption next recovery.
    if (::truncate(options_.journal_path.c_str(), recovered_valid_bytes_) !=
        0) {
      if (error != nullptr) {
        *error = "cannot truncate torn tail of '" + options_.journal_path +
                 "': " + strerror(errno);
      }
      return false;
    }
  }
  std::string journal_error;
  journal_ = JournalWriter::Open(options_.journal_path, &journal_error);
  if (journal_ == nullptr) {
    if (error != nullptr) *error = journal_error;
    return false;
  }
  if (recovering) {
    journal_->note_existing_records(recovered_records_);
  } else {
    if (journal_->bytes_committed() > 0) {
      if (error != nullptr) {
        *error = "journal '" + options_.journal_path + "' already holds " +
                 std::to_string(journal_->bytes_committed()) +
                 " bytes; pass --recover " + options_.journal_path +
                 " to resume it, or remove the file";
      }
      return false;
    }
    journal_->append(
        JournalOpen{options_.policy, options_.m,
                    static_cast<std::int64_t>(options_.seed)});
    if (!journal_->commit(&journal_error)) {
      if (error != nullptr) *error = journal_error;
      return false;
    }
  }
  last_snapshot_records_ = journal_->records_committed();
  registry_.counter("serve.journal_records")
      .set(journal_->records_committed());
  registry_.counter("serve.journal_bytes").set(journal_->bytes_committed());
  return true;
}

bool ScheduleServer::start(std::string* error) {
  // Flag coherence first, before the (possibly long) replay: appended
  // records must extend the history they follow.
  if (!options_.recover_path.empty() && !options_.journal_path.empty() &&
      options_.recover_path != options_.journal_path) {
    if (error != nullptr) {
      *error = "--journal must name the same file as --recover: appended "
               "records must extend the history they follow";
    }
    return false;
  }
  if (!options_.recover_path.empty() && !replay_journal(error)) return false;
  if (!open_journal(error)) return false;

  const std::string& listen = options_.listen;
  if (listen.rfind("unix:", 0) == 0) {
    const std::string path = listen.substr(5);
    if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error != nullptr) *error = "bad unix socket path '" + path + "'";
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
      return false;
    }
    ::unlink(path.c_str());  // stale socket from a previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = "bind " + path + ": " + strerror(errno);
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    unix_path_ = path;
    address_ = listen;
  } else {
    const std::size_t colon = listen.rfind(':');
    if (colon == std::string::npos) {
      if (error != nullptr) {
        *error = "bad listen address '" + listen +
                 "' (want host:port or unix:/path)";
      }
      return false;
    }
    const std::string host = listen.substr(0, colon);
    const std::string port_text = listen.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port_text.empty() || port < 0 ||
        port > 65535) {
      if (error != nullptr) *error = "bad port '" + port_text + "'";
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad host '" + host + "'";
      return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = "bind " + listen + ": " + strerror(errno);
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    address_ = host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 64) != 0 || !SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!unix_path_.empty()) {
      ::unlink(unix_path_.c_str());
      unix_path_.clear();
    }
    return false;
  }

  // The /metrics manifest: the stream is the daemon's "instance".
  const std::string instance = "serve:" + address_;
  registry_.set_manifest("instance", instance);
  registry_.set_manifest("instance_hash", FingerprintString(instance));
  registry_.set_manifest("jobs", jobs_submitted_);
  registry_.set_manifest("total_work", total_submitted_work_);
  registry_.set_manifest("policy", options_.policy);
  registry_.set_manifest("m", static_cast<std::int64_t>(options_.m));
  registry_.set_manifest("seed", static_cast<std::int64_t>(options_.seed));
  registry_.set_manifest("max_horizon", std::int64_t{0});
  registry_.set_manifest("clairvoyance", "policy-default");
  registry_.set_manifest("record", "flow-only");
  registry_.set_manifest("faults", "none");
  return true;
}

void ScheduleServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    if (options_.max_connections > 0) {
      std::size_t live = 0;
      for (const Connection& conn : connections_) {
        if (conn.fd >= 0) ++live;
      }
      if (live >= options_.max_connections) {
        // Shed at the door: one structured reply, then close.  The
        // short reply fits any socket buffer, so the blocking-free
        // send is best-effort but reliable in practice.
        registry_.counter("serve.rejected_connections").inc();
        const std::string reply = FormatErrorReply(
            "overloaded: connection limit (" +
            std::to_string(options_.max_connections) + ") reached");
        ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
    }
    registry_.counter("serve.connections").inc();
    // Reuse a dead slot so pending_ job -> connection indices stay
    // stable for the connections that are still alive.
    Connection* slot = nullptr;
    for (Connection& conn : connections_) {
      if (conn.fd < 0) {
        slot = &conn;
        break;
      }
    }
    if (slot == nullptr) {
      connections_.push_back(Connection{});
      slot = &connections_.back();
    }
    const std::uint64_t generation = slot->generation;  // bumped at close
    *slot = Connection{};
    slot->generation = generation;
    slot->fd = fd;
    slot->last_activity = std::chrono::steady_clock::now();
  }
}

void ScheduleServer::read_connection(Connection& conn) {
  char buffer[65536];
  bool progressed = false;
  while (true) {
    // Stop pulling once the buffer already holds an over-cap line:
    // process_lines() will reject it, and reading further just feeds a
    // no-newline flood.  The bound is cap + one chunk.
    if (!conn.discard_input && conn.in.size() > options_.max_line_bytes) {
      break;
    }
    const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (got > 0) {
      // Rejected connections drain-and-discard: closing with unread
      // bytes would RST the socket and destroy the error reply in
      // flight, so the remaining input is read and dropped (memory
      // O(1)) until the peer half-closes.  Discarded bytes do NOT
      // count as activity — a flood cannot outlive the idle deadline.
      if (!conn.discard_input) {
        conn.in.append(buffer, static_cast<std::size_t>(got));
        progressed = true;
      }
      if (got < static_cast<ssize_t>(sizeof(buffer))) break;
      continue;
    }
    if (got == 0) {
      conn.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.eof = true;  // hard error: flush what we owe, then close
    break;
  }
  if (progressed) conn.last_activity = std::chrono::steady_clock::now();
  if (!conn.discard_input) process_lines(conn);
}

bool ScheduleServer::adopt_recovered(Connection& conn,
                                     const std::string& tag) {
  const auto parked = parked_replies_.find(tag);
  if (parked != parked_replies_.end()) {
    // The job finished in a previous life (or after its submitter
    // died); the resubmission is the claim ticket, not a new job.
    conn.out += parked->second;
    parked_replies_.erase(parked);
    registry_.counter("serve.recovered_replies").inc();
    return true;
  }
  const auto pending = pending_tags_.find(tag);
  if (pending != pending_tags_.end()) {
    PendingJob& owner = pending_[static_cast<std::size_t>(pending->second)];
    if (owner.conn == PendingJob::kNoConn) {
      // In flight with no owner (recovered from the journal, or the
      // submitter died): adopt it — the reply lands here when it
      // finishes, under the original wire id.
      owner.conn = static_cast<std::size_t>(&conn - connections_.data());
      owner.generation = conn.generation;
      ++conn.pending_jobs;
      registry_.counter("serve.recovered_replies").inc();
    } else {
      // In flight and owned: a retried (or chaos-duplicated) line.
      // Drop it — exactly one reply per tag, to the original owner.
      registry_.counter("serve.duplicate_submissions").inc();
    }
    return true;
  }
  return false;
}

JobId ScheduleServer::admit_job(Dag dag, Time release,
                                const std::string& tag) {
  const NodeId nodes = dag.node_count();
  if (journal_ != nullptr) {
    JournalJob record;
    record.id = jobs_submitted_;
    record.release = release;
    record.tag = tag;
    record.nodes = nodes;
    record.edges.reserve(static_cast<std::size_t>(dag.edge_count()));
    for (NodeId v = 0; v < nodes; ++v) {
      for (const NodeId child : dag.children(v)) {
        record.edges.emplace_back(v, child);
      }
    }
    journal_->append(record);
  }
  total_submitted_work_ += nodes;
  const JobId id = driver_.submit(
      Job(std::move(dag), release,
          tag.empty() ? "job-" + std::to_string(jobs_submitted_) : tag));
  OTSCHED_CHECK(static_cast<std::size_t>(id) == pending_.size());
  pending_.push_back(PendingJob{PendingJob::kNoConn, 0, tag});
  if (!tag.empty()) pending_tags_[tag] = id;
  ++jobs_submitted_;
  return id;
}

void ScheduleServer::process_lines(Connection& conn) {
  if (!conn.classified && conn.in.size() >= 4) {
    conn.http = conn.in.compare(0, 4, "GET ") == 0;
    conn.classified = true;
  }
  if (!conn.classified && conn.eof && !conn.in.empty()) {
    conn.classified = true;  // short non-HTTP scrap: treat as NDJSON
  }
  if (!conn.classified) return;

  if (conn.http) {
    handle_http(conn);
    return;
  }

  std::size_t start = 0;
  while (true) {
    const std::size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) {
      // No complete line: bounded as long as the partial tail stays
      // under the cap.  Past it, this is the no-newline flood — reject
      // with a structured reply and close (docs/SERVING.md, "Overload
      // behavior"); the peer's owed replies still flush first.
      if (conn.in.size() - start > options_.max_line_bytes) {
        reject_oversized_line(conn);
        return;
      }
      break;
    }
    if (newline - start > options_.max_line_bytes) {
      reject_oversized_line(conn);
      return;
    }
    std::string line = conn.in.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (stopping()) {
      conn.out += FormatErrorReply("draining: submission rejected");
      continue;
    }
    std::string error;
    std::optional<SubmitRequest> request = ParseSubmitRequest(line, &error);
    if (!request.has_value()) {
      registry_.counter("serve.parse_errors").inc();
      conn.out += FormatErrorReply(error);
      continue;
    }
    // A resubmission of a pending tag (its owner died, the daemon did,
    // or the line was duplicated in flight): deliver the parked reply,
    // adopt the in-flight job, or drop the duplicate — never run a
    // second copy.
    if (!request->tag.empty() && adopt_recovered(conn, request->tag)) {
      continue;
    }
    if (options_.max_pending_jobs > 0 &&
        jobs_submitted_ - jobs_finished_ >= options_.max_pending_jobs) {
      // Watermark shedding: an explicit overloaded reply instead of
      // silent queue growth.  Nothing is journaled for a shed job.
      registry_.counter("serve.overloaded_replies").inc();
      conn.out += FormatErrorReply(
          "overloaded: " +
          std::to_string(jobs_submitted_ - jobs_finished_) +
          " jobs pending (watermark " +
          std::to_string(options_.max_pending_jobs) + "); resubmit later");
      continue;
    }
    // A release in the simulated past cannot be honored (those slots are
    // gone); clamp up to the current slot.  The reply echoes the
    // effective release, keeping offline replays faithful.
    const Time release = std::max(request->release, driver_.now());
    const JobId id =
        admit_job(std::move(request->dag), release, request->tag);
    pending_[static_cast<std::size_t>(id)].conn =
        static_cast<std::size_t>(&conn - connections_.data());
    pending_[static_cast<std::size_t>(id)].generation = conn.generation;
    ++conn.pending_jobs;
  }
  conn.in.erase(0, start);
}

void ScheduleServer::reject_oversized_line(Connection& conn) {
  registry_.counter("serve.rejected_lines").inc();
  conn.out += FormatErrorReply(
      "line exceeds max length (" +
      std::to_string(options_.max_line_bytes) + " bytes): connection closed");
  conn.in.clear();
  conn.in.shrink_to_fit();
  // Switch to drain-and-discard: the error reply and any owed replies
  // flush, then flush_writes() half-closes the write side; the read
  // side keeps draining (dropping bytes) until the peer's EOF so the
  // final close never carries unread data.
  conn.discard_input = true;
}

void ScheduleServer::handle_http(Connection& conn) {
  const std::size_t line_end = conn.in.find("\r\n");
  if (line_end == std::string::npos) {
    if (conn.in.size() > options_.max_line_bytes) {
      // An HTTP request head has the same line cap as a submission.
      reject_oversized_line(conn);
      return;
    }
    if (!conn.eof) return;  // need more
  }
  const std::string request_line = conn.in.substr(
      0, line_end == std::string::npos ? conn.in.size() : line_end);
  // "GET <path> HTTP/1.x" — the path is the second token.
  const std::size_t path_begin = request_line.find(' ');
  std::string path;
  if (path_begin != std::string::npos) {
    const std::size_t path_end = request_line.find(' ', path_begin + 1);
    path = request_line.substr(path_begin + 1,
                               path_end == std::string::npos
                                   ? std::string::npos
                                   : path_end - path_begin - 1);
  }
  registry_.counter("serve.http_requests").inc();
  if (path == "/metrics") {
    conn.out += FormatHttpResponse(200, "application/json",
                                   registry_.to_json_cached());
  } else if (path == "/healthz") {
    conn.out += FormatHttpResponse(200, "text/plain", "ok\n");
  } else {
    conn.out += FormatHttpResponse(404, "text/plain",
                                   "not found (try /metrics or /healthz)\n");
  }
  conn.eof = true;  // one-shot: close once the response is flushed
  conn.in.clear();
}

void ScheduleServer::deliver_finished() {
  const std::vector<SimDriver::FinishedJob> finished =
      driver_.take_finished();
  for (const SimDriver::FinishedJob& job : finished) {
    PendingJob& owner = pending_[static_cast<std::size_t>(job.job)];
    const JobId wire_id = static_cast<JobId>(id_base_) + job.job;
    total_flow_ += job.flow;
    max_flow_ = std::max(max_flow_, job.flow);
    bool delivered = false;
    if (owner.conn != PendingJob::kNoConn) {
      Connection& conn = connections_[owner.conn];
      // The generation pin: a reused slot holds a DIFFERENT client;
      // its replies must never leak there.
      if (conn.fd >= 0 && !conn.http &&
          conn.generation == owner.generation) {
        conn.out += FormatFinishedReply(wire_id, owner.tag, job.release,
                                        job.finish, job.flow);
        --conn.pending_jobs;
        delivered = true;
      }
    }
    if (!owner.tag.empty()) pending_tags_.erase(owner.tag);
    if (!delivered && !owner.tag.empty()) {
      // Recovery replay, or the submitter died: park the reply for a
      // reconnecting client to claim by resubmitting the tag.
      parked_replies_[owner.tag] = FormatFinishedReply(
          wire_id, owner.tag, job.release, job.finish, job.flow);
      registry_.counter("serve.replies_parked").inc();
    }
    owner.conn = PendingJob::kNoConn;
    owner.generation = 0;
    owner.tag.clear();
    owner.tag.shrink_to_fit();
    ++jobs_finished_;
  }
  driver_.retire_finished();
}

void ScheduleServer::refresh_metrics() {
  registry_.counter("serve.jobs_submitted").set(jobs_submitted_);
  registry_.counter("serve.jobs_finished").set(jobs_finished_);
  registry_.gauge("serve.pending_work")
      .set(static_cast<double>(driver_.pending_work()));
  registry_.gauge("serve.arena_nodes")
      .set(static_cast<double>(driver_.arena_nodes()));
  registry_.gauge("serve.slot").set(static_cast<double>(driver_.now()));
  registry_.set_manifest("jobs", jobs_submitted_);
  registry_.set_manifest("total_work", total_submitted_work_);
}

void ScheduleServer::tick_driver() {
  bool activity = false;
  if (!driver_.idle()) {
    // While draining, run to completion in one go; otherwise a bounded
    // chunk so fresh submissions interleave with progress.
    const Time budget = stopping() ? std::numeric_limits<Time>::max()
                                   : options_.chunk_slots;
    activity = driver_.advance(budget) > 0;
  }
  const std::int64_t finished_before = jobs_finished_;
  deliver_finished();
  if (journal_ != nullptr && driver_.now() != last_journaled_slot_) {
    journal_->append(JournalAdvance{driver_.now()});
    last_journaled_slot_ = driver_.now();
  }
  if (activity || jobs_finished_ != finished_before) refresh_metrics();
}

void ScheduleServer::commit_journal() {
  if (journal_ == nullptr || !journal_->dirty()) return;
  std::string error;
  // A journal the daemon cannot persist means acknowledgements it
  // cannot back — dying loudly beats lying about durability.
  OTSCHED_CHECK(journal_->commit(&error), "serve: " << error);
  registry_.counter("serve.journal_records")
      .set(journal_->records_committed());
  registry_.counter("serve.journal_bytes").set(journal_->bytes_committed());
}

void ScheduleServer::maybe_snapshot() {
  if (journal_ == nullptr ||
      (!options_.journal_rotate && options_.snapshot_every <= 0)) {
    return;
  }
  // Quiescent point: everything accepted has finished (which empties
  // pending_tags_), every reply has been handed over (none parked,
  // none buffered) — the whole history is summarized by its counters,
  // so a base snapshot loses nothing a future recovery needs.
  if (!driver_.idle() || jobs_finished_ != jobs_submitted_ ||
      !parked_replies_.empty()) {
    return;
  }
  for (const Connection& conn : connections_) {
    if (conn.fd >= 0 && !conn.out.empty()) return;
  }
  const std::int64_t cadence =
      options_.snapshot_every > 0 ? options_.snapshot_every : 256;
  if (journal_->records_committed() - last_snapshot_records_ < cadence) {
    return;
  }
  std::string error;
  const JournalOpen open{options_.policy, options_.m,
                         static_cast<std::int64_t>(options_.seed)};
  if (options_.journal_rotate) {
    OTSCHED_CHECK(journal_->rotate(open, snapshot_now(), &error),
                  "serve: journal rotation failed: " << error);
    registry_.counter("serve.journal_rotations").inc();
  } else {
    journal_->append_snapshot(snapshot_now());
    OTSCHED_CHECK(journal_->commit(&error), "serve: " << error);
    registry_.counter("serve.journal_snapshots").inc();
  }
  last_snapshot_records_ = journal_->records_committed();
  registry_.counter("serve.journal_records")
      .set(journal_->records_committed());
  registry_.counter("serve.journal_bytes").set(journal_->bytes_committed());
}

void ScheduleServer::flush_writes() {
  for (Connection& conn : connections_) {
    if (conn.fd < 0) continue;
    bool progressed = false;
    while (!conn.out.empty()) {
      const ssize_t wrote =
          ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (wrote > 0) {
        conn.out.erase(0, static_cast<std::size_t>(wrote));
        progressed = true;
        continue;
      }
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_connection(conn);  // peer went away; park its replies
      break;
    }
    if (conn.fd < 0) continue;
    if (progressed) conn.last_activity = std::chrono::steady_clock::now();
    if (conn.out.empty() && conn.discard_input && conn.pending_jobs == 0 &&
        !conn.write_shut) {
      // Rejected connection, everything owed delivered: FIN the write
      // side so the peer sees end-of-replies; keep draining its input.
      ::shutdown(conn.fd, SHUT_WR);
      conn.write_shut = true;
    }
    if (conn.out.empty() && conn.eof && conn.pending_jobs == 0) {
      close_connection(conn);
    }
  }
}

void ScheduleServer::enforce_idle_deadline() {
  if (options_.idle_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  for (Connection& conn : connections_) {
    if (conn.fd < 0 || now - conn.last_activity < limit) continue;
    // A connection that owes us nothing and is owed nothing is stuck,
    // not waiting; a rejected (discarding) one is closed regardless —
    // its reply went out with the FIN long ago.
    if (conn.discard_input ||
        (conn.out.empty() && conn.pending_jobs == 0)) {
      registry_.counter("serve.idle_timeouts").inc();
      close_connection(conn);
    }
  }
}

void ScheduleServer::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  if (conn.pending_jobs > 0) {
    // The peer died still owed replies: orphan its in-flight jobs
    // (their tags stay in pending_tags_) so a reconnecting client can
    // resubmit the tags and claim them.
    const std::size_t index =
        static_cast<std::size_t>(&conn - connections_.data());
    for (PendingJob& owner : pending_) {
      if (owner.conn != index || owner.generation != conn.generation) {
        continue;
      }
      owner.conn = PendingJob::kNoConn;
      owner.generation = 0;
    }
  }
  const std::uint64_t generation = conn.generation + 1;
  conn = Connection{};
  conn.generation = generation;
}

void ScheduleServer::run() {
  OTSCHED_CHECK(listen_fd_ >= 0, "run() before start()");
  bool listener_open = true;
  std::vector<pollfd> fds;
  std::vector<std::size_t> polled;  // connections_ index; npos = listener

  while (true) {
    if (halt_ != 0) return;  // simulated crash: abandon everything

    const bool draining = stopping();
    if (draining && listener_open) {
      ::close(listen_fd_);
      if (!unix_path_.empty()) {
        ::unlink(unix_path_.c_str());
        unix_path_.clear();
      }
      listener_open = false;
    }

    fds.clear();
    polled.clear();
    if (listener_open) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      polled.push_back(std::string::npos);
    }
    bool writes_pending = false;
    for (std::size_t c = 0; c < connections_.size(); ++c) {
      Connection& conn = connections_[c];
      if (conn.fd < 0) continue;
      short events = 0;
      if (!conn.eof && !draining) events |= POLLIN;
      if (!conn.out.empty()) {
        events |= POLLOUT;
        writes_pending = true;
      }
      if (events == 0) continue;
      fds.push_back(pollfd{conn.fd, events, 0});
      polled.push_back(c);
    }

    if (draining && driver_.idle() && !writes_pending) break;

    const int timeout =
        (!driver_.idle() || draining) ? 0 : options_.idle_poll_ms;
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
    if (ready > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        if (polled[i] == std::string::npos) {
          accept_ready();
          continue;
        }
        Connection& conn = connections_[polled[i]];
        if (conn.fd < 0) continue;
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
            !draining && !conn.eof) {
          read_connection(conn);
        } else if ((fds[i].revents & (POLLHUP | POLLERR)) != 0 &&
                   conn.out.empty()) {
          close_connection(conn);
        }
      }
    }

    tick_driver();
    // Durability ordering: the records behind this cycle's work hit
    // the disk BEFORE flush_writes() lets any reply out, so a client
    // can never hold an acknowledgement the journal does not.
    commit_journal();
    maybe_snapshot();
    flush_writes();
    enforce_idle_deadline();
  }

  // Drained: nothing left to write, close whatever connections remain.
  for (Connection& conn : connections_) close_connection(conn);
}

}  // namespace otsched::serve
