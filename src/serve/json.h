// The serve subsystem's hand-rolled JSON line reader.
//
// Shared by the wire protocol (serve/protocol.cc) and the write-ahead
// journal (serve/journal.cc): both read one-object-per-line NDJSON with
// string / integer / array-of-integer / array-of-integer-pair values
// and nothing more, and neither can take on a JSON dependency.  Parse
// errors carry the byte position so diagnostics point at the offending
// byte.
#pragma once

#include <cctype>
#include <charconv>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace otsched::serve {

/// Recursive-descent reader over one NDJSON line.
class LineParser {
 public:
  explicit LineParser(const std::string& text) : text_(text) {}

  bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
      *error = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

  bool parse_string(std::string* out, std::string* error) {
    skip_ws();
    if (!consume('"')) return fail(error, "expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ == text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default:
            return fail(error, std::string("unsupported escape '\\") + esc +
                                   "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_int(std::int64_t* out, std::string* error) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) {
      return fail(error, "expected an integer");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  /// [1, -1, 0, ...]
  bool parse_int_array(std::vector<std::int64_t>* out, std::string* error) {
    if (!consume('[')) return fail(error, "expected '['");
    out->clear();
    if (consume(']')) return true;
    while (true) {
      std::int64_t value = 0;
      if (!parse_int(&value, error)) return false;
      out->push_back(value);
      if (consume(']')) return true;
      if (!consume(',')) return fail(error, "expected ',' or ']'");
    }
  }

  /// [[0, 1], [0, 2], ...]
  bool parse_pair_array(
      std::vector<std::pair<std::int64_t, std::int64_t>>* out,
      std::string* error) {
    if (!consume('[')) return fail(error, "expected '['");
    out->clear();
    if (consume(']')) return true;
    while (true) {
      std::pair<std::int64_t, std::int64_t> edge;
      if (!consume('[')) return fail(error, "expected '[' (edge pair)");
      if (!parse_int(&edge.first, error)) return false;
      if (!consume(',')) return fail(error, "expected ',' in edge pair");
      if (!parse_int(&edge.second, error)) return false;
      if (!consume(']')) return fail(error, "expected ']' after edge pair");
      out->push_back(edge);
      if (consume(']')) return true;
      if (!consume(',')) return fail(error, "expected ',' or ']'");
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace otsched::serve
