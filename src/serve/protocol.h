// The `otsched serve` wire protocol (see docs/SERVING.md).
//
// Submissions are newline-delimited JSON objects, one job per line:
//
//   {"id": "my-job", "release": 7, "parents": [-1, 0, 0, 1]}
//   {"id": "fanout", "release": 0, "nodes": 4,
//    "edges": [[0, 1], [0, 2], [0, 3]]}
//
// The two DAG spellings:
//   * "parents": parents[v] is the (single) parent of node v, -1 for a
//     root — the natural encoding for the paper's out-trees.  Node count
//     is the array length.
//   * "nodes" + "edges": explicit node count and [from, to] precedence
//     edge pairs — general DAGs.
// "release" is optional (default 0) and is clamped up to the daemon's
// current slot on arrival; "id" is an optional client tag echoed back.
//
// Each finished job produces one reply line:
//
//   {"job_id": 3, "id": "my-job", "release": 7, "finish": 12, "flow": 5}
//
// The parser is a deliberately small hand-rolled recursive-descent JSON
// reader (objects, arrays, strings, integers) — the daemon cannot take
// on a JSON dependency, and the schema above needs nothing more.  Parse
// errors carry a position so the daemon's error replies
// ({"error": "..."}) point at the offending byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "job/job.h"

namespace otsched::serve {

/// One parsed submission line.
struct SubmitRequest {
  std::string tag;   // client "id" (may be empty)
  Time release = 0;  // requested release slot
  Dag dag;
};

/// Parses one NDJSON submission line.  On malformed input returns
/// nullopt and writes a diagnostic (with byte position) to `error`.
std::optional<SubmitRequest> ParseSubmitRequest(const std::string& line,
                                                std::string* error);

/// The reply line for a finished job (newline included).
std::string FormatFinishedReply(JobId job, const std::string& tag,
                                Time release, Time finish, Time flow);

/// An error reply line (newline included): {"error": "..."}.
std::string FormatErrorReply(const std::string& message);

/// A minimal HTTP/1.0 response (Connection: close semantics — the serve
/// loop writes it and closes the socket).
std::string FormatHttpResponse(int status, const std::string& content_type,
                               const std::string& body);

}  // namespace otsched::serve
