// Exact optimal maximum flow by exhaustive search, for tiny instances.
//
// Used only in tests, to certify that (a) the lower bounds in
// lower_bounds.h never exceed true OPT, (b) Corollary 5.4 matches true OPT
// on single-batch out-forests, and (c) Algorithm A's flows stay within the
// proven factor of true OPT on small inputs.
//
// Method: binary search on the flow bound F.  Feasibility of F is decided
// by depth-first search over (slot, executed-set) states with memoized
// dead states.  Two standard reductions keep the search small:
//  * maximal steps are WLOG: executing more ready subjobs in a slot never
//    hurts (unit tasks, capacity is the only resource), so each slot runs
//    exactly min(m, |ready|) subjobs and branching is only over WHICH;
//  * per-job pruning: a job whose remaining longest path (or remaining
//    work / m) exceeds its remaining deadline window kills the branch.
#pragma once

#include <cstdint>

#include "job/instance.h"

namespace otsched {

struct BruteForceLimits {
  /// Hard cap on total subjobs across all jobs (the state is a bitmask).
  int max_total_nodes = 30;
  /// Abort the search (with a CHECK failure) past this many explored
  /// states: exceeding it means the test instance is too big, not that the
  /// answer is unknowable.
  std::int64_t max_states = 20'000'000;
};

/// Exact OPT[I, m].  Aborts if the instance exceeds the limits.
Time BruteForceOpt(const Instance& instance, int m,
                   const BruteForceLimits& limits = {});

/// Decision version: is there a schedule with maximum flow <= flow_bound?
bool BruteForceFeasible(const Instance& instance, int m, Time flow_bound,
                        const BruteForceLimits& limits = {});

}  // namespace otsched
