#include "opt/lower_bounds.h"

#include <algorithm>
#include <map>

#include "common/assert.h"

namespace otsched {

const char* ToString(BoundComponent component) {
  switch (component) {
    case BoundComponent::kDepthInterval:
      return "depth-interval";
    case BoundComponent::kDepthProfile:
      return "depth-profile";
    case BoundComponent::kInterval:
      return "interval";
    case BoundComponent::kWork:
      return "work";
    case BoundComponent::kSpan:
      return "span";
  }
  return "?";
}

Time LowerBounds::best() const {
  return std::max({span_bound, work_bound, depth_profile_bound,
                   interval_bound, depth_interval_bound});
}

BoundComponent LowerBounds::best_component() const {
  const Time winner = best();
  if (span_bound == winner) return BoundComponent::kSpan;
  if (work_bound == winner) return BoundComponent::kWork;
  if (interval_bound == winner) return BoundComponent::kInterval;
  if (depth_profile_bound == winner) return BoundComponent::kDepthProfile;
  return BoundComponent::kDepthInterval;
}

Time DepthProfileBound(const Job& job, int m) {
  OTSCHED_CHECK(m >= 1, "lower bounds need a machine: m >= 1, got " << m);
  const DagMetrics& metrics = job.metrics();
  Time best = 0;
  for (std::int64_t d = 0; d <= metrics.span; ++d) {
    const std::int64_t w = metrics.w_deeper(d);
    const Time bound = d + (w + m - 1) / m;
    best = std::max(best, bound);
  }
  return best;
}

LowerBounds ComputeLowerBounds(const Instance& instance, int m) {
  OTSCHED_CHECK(m >= 1, "lower bounds need a machine: m >= 1, got " << m);
  LowerBounds bounds;
  for (const Job& job : instance.jobs()) {
    bounds.span_bound = std::max<Time>(bounds.span_bound, job.span());
    bounds.work_bound =
        std::max<Time>(bounds.work_bound, (job.work() + m - 1) / m);
    bounds.depth_profile_bound =
        std::max(bounds.depth_profile_bound, DepthProfileBound(job, m));
  }

  // Interval bound over distinct release times, via a prefix sum of work
  // in release order.
  std::map<Time, std::int64_t> work_at_release;
  for (const Job& job : instance.jobs()) {
    work_at_release[job.release()] += job.work();
  }
  std::vector<Time> releases;
  std::vector<std::int64_t> prefix = {0};
  releases.reserve(work_at_release.size());
  for (const auto& [release, work] : work_at_release) {
    releases.push_back(release);
    prefix.push_back(prefix.back() + work);
  }
  for (std::size_t a = 0; a < releases.size(); ++a) {
    for (std::size_t b = a; b < releases.size(); ++b) {
      const std::int64_t window_work = prefix[b + 1] - prefix[a];
      const Time bound =
          (window_work + m - 1) / m - (releases[b] - releases[a]);
      bounds.interval_bound = std::max(bounds.interval_bound, bound);
    }
  }

  // Combined depth x interval bound.  For each window [a, b] sum the
  // depth profiles of its jobs and scan d up to the window's max span.
  // O(R^2 * maxspan) over distinct release times — the experiment
  // instance families keep this tiny.
  const std::int64_t max_span = instance.max_span();
  std::vector<std::int64_t> window_profile;
  for (std::size_t a = 0; a < releases.size(); ++a) {
    window_profile.assign(static_cast<std::size_t>(max_span) + 1, 0);
    for (std::size_t b = a; b < releases.size(); ++b) {
      // Add jobs released exactly at releases[b] to the running profile.
      for (const Job& job : instance.jobs()) {
        if (job.release() != releases[b]) continue;
        const DagMetrics& metrics = job.metrics();
        for (std::int64_t d = 0; d <= metrics.span; ++d) {
          window_profile[static_cast<std::size_t>(d)] +=
              metrics.w_deeper(d);
        }
      }
      const Time width = releases[b] - releases[a];
      for (std::int64_t d = 0; d <= max_span; ++d) {
        const std::int64_t w = window_profile[static_cast<std::size_t>(d)];
        if (w == 0) break;  // profiles are non-increasing in d
        const Time bound = d + (w + m - 1) / m - width;
        bounds.depth_interval_bound =
            std::max(bounds.depth_interval_bound, bound);
      }
    }
  }
  return bounds;
}

Time MaxFlowLowerBound(const Instance& instance, int m) {
  return ComputeLowerBounds(instance, m).best();
}

}  // namespace otsched
