// Exact optimum for a single out-forest released at one time.
//
// Corollary 5.4: for an out-forest J on m processors,
//     OPT = max_{d in [0, D]} ( d + ceil(W(d) / m) ),
// where W(d) is the number of subjobs at depth strictly greater than d.
// The LPF schedule attains this value (Lemma 5.3), so the formula is both
// a lower bound and achievable.
#pragma once

#include "job/job.h"

namespace otsched {

/// Exact OPT for the out-forest `job` alone on m processors (Corollary
/// 5.4).  Aborts if the DAG is not an out-forest: the formula is only a
/// lower bound for general DAGs (use DepthProfileBound for those).
Time SingleBatchOpt(const Job& job, int m);

/// The same value computed from a bare DAG.
Time SingleBatchOpt(const Dag& dag, int m);

}  // namespace otsched
