// Machine-verifiable OPT lower-bound certificates via dual fitting.
//
// A certificate claims OPT[I, m] >= value and carries a witness that a
// schedule with maximum flow value - 1 cannot exist.  The witness is a
// dual-feasible weight assignment in the style of the dual-fitting
// analyses of Angelopoulos–Lucarelli–Thang (arXiv:1502.03946): a
// nonnegative weight y_t on each slot t, nonzero on finitely many
// intervals.  Writing F = value - 1 and giving each subjob v of a job
// released at r_j the slot window
//
//   window(v) = [ r_j + depth(v),  r_j + F - height(v) + 1 ]
//
// (v cannot run before its longest ancestor chain completes, and must
// leave room for its longest descendant chain before the deadline
// r_j + F), any flow-F schedule places every subjob in its window while
// respecting the per-slot capacity c_t (m, or the BudgetTrace value on a
// faulted machine).  Counting weight on both sides of such a placement:
//
//   sum_v min_{t in window(v)} y_t  <=  sum_t c_t * y_t.
//
// A witness with the INEQUALITY REVERSED therefore proves no flow-F
// schedule exists, i.e. OPT >= F + 1 = value.  Certificate::verify()
// re-derives the windows from nothing but the instance, m, and the
// optional trace, and checks that reversed inequality — so verification
// never trusts the solver that produced the certificate.
//
// Two special forms avoid degenerate witnesses:
//   * value <= 1 with a nonempty instance needs no witness (every job
//     needs at least one slot),
//   * an empty window at F certifies on its own (F is below some
//     longest chain), matching the span bound with an empty witness.
//
// The 0/1-weight case is exactly a Hall-condition deficiency witness: a
// set T of slots whose contained windows demand more units than T can
// supply.  opt/flow_network extracts such witnesses from min cuts;
// DualFitCertificate below builds them directly from an
// interval-times-depth enumeration, generalizing every closed-form
// bound in opt/lower_bounds to per-slot capacities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "job/instance.h"
#include "sim/faults.h"

namespace otsched {

/// The [earliest, latest] slot window of one subjob at flow bound F (see
/// the file comment); earliest > latest means the window is empty, i.e.
/// F is below the longest chain through the subjob.
struct SlotWindow {
  Time earliest = 0;
  Time latest = 0;
};

/// Windows of every subjob (job-major, node-id order within each job) at
/// flow bound F — the shared vocabulary of the dual checker and the
/// flow-network relaxation in opt/flow_network.
std::vector<SlotWindow> ComputeSubjobWindows(const Instance& instance,
                                             Time flow_bound);

/// One weighted slot interval of a dual witness: y_t += weight for every
/// t in [first, last].  Intervals must be sorted and non-overlapping.
struct DualInterval {
  Time first = 0;
  Time last = 0;
  std::int64_t weight = 1;
};

/// A self-verifying lower bound: OPT[instance, m] >= value, on a machine
/// degraded by `budget` (per-slot capacities; nullptr = always m).
struct Certificate {
  Time value = 0;
  int m = 1;
  /// Producer tag ("max-flow", "dual-fit", "trivial"); informational.
  std::string method = "trivial";
  /// Dual weights proving that flow value - 1 is infeasible.  May be
  /// empty for value <= 1 or when some window is already empty at
  /// value - 1 (the span case).
  std::vector<DualInterval> witness;

  /// Re-derives the subjob windows at F = value - 1 from the instance
  /// and checks the dual inequality above.  Pure: depends only on the
  /// arguments and the fields of this certificate.  When the check
  /// fails and `why` is non-null, a diagnostic is written to it.
  bool verify(const Instance& instance, const BudgetTrace* budget = nullptr,
              std::string* why = nullptr) const;
};

/// Builds a certificate from the strongest 0/1 dual witness over the
/// window family T(a, b, d, B) = [a + d + 1, b + B - 1]: for release
/// times a <= b and depth d, the subjobs deeper than d of jobs released
/// in [a, b] all have windows inside T, so whenever their count exceeds
/// the capacity sum of T the bound B is certified.  With full capacity
/// this reproduces (and its best value dominates) the span, work,
/// interval, depth-profile, and depth-interval bounds of
/// opt/lower_bounds; with a BudgetTrace the capacity sums shrink and the
/// bound strengthens accordingly.  The result always passes verify().
Certificate DualFitCertificate(const Instance& instance, int m,
                               const BudgetTrace* budget = nullptr);

}  // namespace otsched
