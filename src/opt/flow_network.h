// The Cho–Easwaran max-flow lower bound on OPT[I, m] (arXiv:1810.08342),
// generalized to release dates and fluctuating budgets.
//
// Fix a candidate flow bound F.  Any schedule with maximum flow <= F
// places each subjob v of a job released at r_j in the slot window
//
//   window(v) = [ r_j + depth(v),  r_j + F - height(v) + 1 ]
//
// while using at most c_t processors in slot t (c_t = m, or the
// BudgetTrace capacity on a degraded machine).  Dropping the precedence
// constraints WITHIN a window leaves a bipartite transportation problem
// — subjobs on one side, slots with capacities on the other — whose
// feasibility is decided exactly by a max-flow computation over the
// opt/maxflow core:
//
//   source --count--> window groups --inf--> slot intervals --cap--> sink
//
// where slots are compressed into the elementary intervals induced by
// the window endpoints (every window either contains an elementary
// interval or misses it entirely, so the compression is lossless).
// Feasibility is monotone in F (windows only widen), so the smallest
// feasible F* is found by binary search and OPT >= F*.
//
// The subsystem never asks anyone to trust the solver: infeasibility of
// F* - 1 is exported as a Hall-condition deficiency witness read off the
// final residual graph's minimum cut — the slot set T of cut-side
// intervals satisfies demand(T) > capacity(T) — and packaged as an
// opt/dual_fitting Certificate whose verify() re-checks that inequality
// from the instance alone.
//
// On a single out-forest released alone the bound collapses to the
// Corollary 5.4 closed form (the depth profile is exactly the binding
// window family), which tests/opt_exactness_test.cc pins bit-for-bit.
#pragma once

#include <vector>

#include "job/instance.h"
#include "opt/dual_fitting.h"
#include "sim/faults.h"

namespace otsched {

/// Decides the window-assignment relaxation at `flow_bound`.  When the
/// relaxation is infeasible and `hall_witness` is non-null, fills it
/// with a 0/1 dual witness (sorted, disjoint intervals T with
/// demand(T) > capacity(T)); the witness is empty when some window is
/// already empty (flow_bound below a longest chain — no slot set is
/// needed to prove that).  `budget` degrades per-slot capacities;
/// nullptr means a healthy machine.
bool FlowRelaxationFeasible(const Instance& instance, int m, Time flow_bound,
                            const BudgetTrace* budget = nullptr,
                            std::vector<DualInterval>* hall_witness = nullptr);

/// The certified max-flow lower bound: the smallest F whose relaxation
/// is feasible, packaged with the Hall witness for F - 1.  The result
/// always passes Certificate::verify() (checked in-process before
/// returning) and dominates both DualFitCertificate and every
/// opt/lower_bounds component; opt/brute_force stays above it on small
/// instances.  value 0 is returned only for the empty instance.
Certificate MaxFlowCertificate(const Instance& instance, int m,
                               const BudgetTrace* budget = nullptr);

}  // namespace otsched
