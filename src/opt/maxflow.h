// A self-contained max-flow core (Dinic's algorithm) for the certified
// lower bounds in opt/flow_network.
//
// The graphs built there are small and shallow — a bipartite
// windows-to-slot-intervals network with a super source and sink — so
// Dinic's level-graph blocking flows are far below their worst case and
// the implementation favours auditability over micro-optimisation: an
// adjacency list of explicit forward/backward edge pairs, level BFS,
// and a blocking-flow DFS with per-node iterator pruning.
//
// No external dependencies: the certificate machinery must stand on its
// own so a verification failure can never be blamed on a third-party
// solver.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace otsched {

class MaxFlowGraph {
 public:
  /// A graph with `node_count` nodes (ids 0 .. node_count - 1) and no
  /// edges.  Nodes cannot be added later; size the graph up front.
  explicit MaxFlowGraph(int node_count);

  int node_count() const { return static_cast<int>(head_.size()); }

  /// Adds a directed edge `from -> to` with the given capacity (>= 0)
  /// and its zero-capacity residual twin.  Returns the edge's index for
  /// flow queries after max_flow().
  int add_edge(int from, int to, std::int64_t capacity);

  /// Computes the maximum s-t flow.  Destructive on capacities (they
  /// become residuals); call at most once per graph.
  std::int64_t max_flow(int source, int sink);

  /// Flow pushed over the edge returned by add_edge (valid after
  /// max_flow()).
  std::int64_t flow_on(int edge_index) const;

  /// The source side S of a minimum cut: nodes reachable from `source`
  /// in the residual graph.  Valid after max_flow(); by max-flow/min-cut
  /// duality the saturated edges leaving S certify the flow value.
  std::vector<char> min_cut_source_side(int source) const;

 private:
  struct Edge {
    int to = 0;
    int next = -1;          // next edge index out of the same node
    std::int64_t cap = 0;   // residual capacity
    std::int64_t init = 0;  // original capacity (for flow_on)
  };

  bool BuildLevels(int source, int sink);
  std::int64_t Augment(int node, int sink, std::int64_t limit);

  std::vector<Edge> edges_;
  std::vector<int> head_;   // per-node first edge index (-1 = none)
  std::vector<int> level_;  // BFS levels during a phase
  std::vector<int> iter_;   // per-node DFS cursor during a phase
};

}  // namespace otsched
