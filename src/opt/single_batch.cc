#include "opt/single_batch.h"

#include "common/assert.h"
#include "dag/validate.h"
#include "opt/lower_bounds.h"

namespace otsched {

Time SingleBatchOpt(const Job& job, int m) {
  OTSCHED_CHECK(IsOutForest(job.dag()),
                "Corollary 5.4 requires an out-forest");
  return DepthProfileBound(job, m);
}

Time SingleBatchOpt(const Dag& dag, int m) {
  return SingleBatchOpt(Job(Dag(dag), 0), m);
}

}  // namespace otsched
