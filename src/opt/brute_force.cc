#include "opt/brute_force.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "opt/lower_bounds.h"

namespace otsched {
namespace {

// Flattened instance: nodes across all jobs mapped into [0, total).
struct Flat {
  int total = 0;
  int m = 0;
  std::vector<int> job_of;            // node -> job index
  std::vector<Time> release_of_job;   // job -> release
  std::vector<std::vector<int>> parents;
  std::vector<int> height;            // longest path to a leaf (nodes)
  std::vector<std::int64_t> job_work;
};

Flat Flatten(const Instance& instance, int m) {
  Flat flat;
  flat.m = m;
  for (JobId id = 0; id < instance.job_count(); ++id) {
    const Job& job = instance.job(id);
    const int base = flat.total;
    flat.total += job.dag().node_count();
    flat.release_of_job.push_back(job.release());
    flat.job_work.push_back(job.work());
    for (NodeId v = 0; v < job.dag().node_count(); ++v) {
      flat.job_of.push_back(id);
      flat.parents.emplace_back();
      flat.height.push_back(
          job.metrics().height[static_cast<std::size_t>(v)]);
      for (NodeId p : job.dag().parents(v)) {
        flat.parents.back().push_back(base + p);
      }
    }
  }
  return flat;
}

class Search {
 public:
  Search(const Flat& flat, const BruteForceLimits& limits)
      : flat_(flat),
        limits_(limits),
        deadline_(flat.release_of_job.size(), 0) {}

  bool feasible(Time flow_bound) {
    dead_from_.clear();
    states_ = 0;
    for (std::size_t j = 0; j < flat_.release_of_job.size(); ++j) {
      deadline_[j] = flat_.release_of_job[j] + flow_bound;
    }
    return dfs(1, 0);
  }

 private:
  using Mask = std::uint64_t;

  Mask full_mask() const {
    return flat_.total == 64 ? ~Mask{0} : ((Mask{1} << flat_.total) - 1);
  }

  bool dfs(Time slot, Mask executed) {
    if (executed == full_mask()) return true;
    OTSCHED_CHECK(++states_ <= limits_.max_states,
                  "brute force exceeded state budget; shrink the instance");

    // Feasibility from (slot, mask) is monotone in slot: infeasible states
    // stay infeasible when less time remains.  So one Time per mask
    // memoizes all dead (slot, mask) pairs soundly.
    const auto dead_it = dead_from_.find(executed);
    if (dead_it != dead_from_.end() && slot >= dead_it->second) return false;

    std::vector<std::int64_t> remaining(flat_.job_work.size(), 0);
    for (int v = 0; v < flat_.total; ++v) {
      if (!(executed >> v & 1)) {
        ++remaining[static_cast<std::size_t>(
            flat_.job_of[static_cast<std::size_t>(v)])];
      }
    }

    std::vector<int> ready;
    for (int v = 0; v < flat_.total; ++v) {
      if (executed >> v & 1) continue;
      const int job = flat_.job_of[static_cast<std::size_t>(v)];
      if (flat_.release_of_job[static_cast<std::size_t>(job)] >= slot) {
        continue;
      }
      bool ok = true;
      for (int p : flat_.parents[static_cast<std::size_t>(v)]) {
        if (!(executed >> p & 1)) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(v);
    }

    bool prunable = false;
    for (std::size_t j = 0; j < remaining.size() && !prunable; ++j) {
      if (remaining[j] == 0) continue;
      const Time window = deadline_[j] - (slot - 1);
      // Remaining work must fit the job's own deadline window.
      if ((remaining[j] + flat_.m - 1) / flat_.m > window) prunable = true;
      // Remaining longest path must fit too: executed sets are downward
      // closed, so every unexecuted node of j sits under some ready node
      // of j, and the remaining span is the max ready-node height in j.
      Time span_needed = 0;
      for (int v : ready) {
        if (flat_.job_of[static_cast<std::size_t>(v)] ==
            static_cast<int>(j)) {
          span_needed = std::max<Time>(
              span_needed, flat_.height[static_cast<std::size_t>(v)]);
        }
      }
      if (span_needed > window) prunable = true;
    }
    if (prunable) {
      mark_dead(executed, slot);
      return false;
    }

    if (ready.empty()) {
      // Nothing can run; fast-forward to the next release.
      Time next = kInfiniteTime;
      for (std::size_t j = 0; j < remaining.size(); ++j) {
        if (remaining[j] > 0 && flat_.release_of_job[j] >= slot) {
          next = std::min(next, flat_.release_of_job[j] + 1);
        }
      }
      if (next == kInfiniteTime) return false;  // stuck with work left
      return dfs(next, executed);
    }

    const int k = std::min<int>(flat_.m, static_cast<int>(ready.size()));
    std::vector<int> choice(static_cast<std::size_t>(k));
    // Maximal steps are WLOG for unit tasks, so branch only over WHICH k
    // ready nodes run.
    const bool found = enumerate(slot, executed, ready, choice, 0, 0);
    if (!found) mark_dead(executed, slot);
    return found;
  }

  void mark_dead(Mask executed, Time slot) {
    auto [it, inserted] = dead_from_.try_emplace(executed, slot);
    if (!inserted) it->second = std::min(it->second, slot);
  }

  bool enumerate(Time slot, Mask executed, const std::vector<int>& ready,
                 std::vector<int>& choice, std::size_t depth,
                 std::size_t start) {
    if (depth == choice.size()) {
      Mask next = executed;
      for (int v : choice) next |= Mask{1} << v;
      return dfs(slot + 1, next);
    }
    const std::size_t needed = choice.size() - depth;
    for (std::size_t i = start; ready.size() - i >= needed; ++i) {
      choice[depth] = ready[i];
      if (enumerate(slot, executed, ready, choice, depth + 1, i + 1)) {
        return true;
      }
    }
    return false;
  }

  const Flat& flat_;
  const BruteForceLimits& limits_;
  std::vector<Time> deadline_;
  std::unordered_map<Mask, Time> dead_from_;
  std::int64_t states_ = 0;
};

}  // namespace

bool BruteForceFeasible(const Instance& instance, int m, Time flow_bound,
                        const BruteForceLimits& limits) {
  OTSCHED_CHECK(m >= 1);
  OTSCHED_CHECK(instance.total_work() <= limits.max_total_nodes,
                "instance too large for brute force: "
                    << instance.total_work() << " nodes");
  OTSCHED_CHECK(limits.max_total_nodes <= 64,
                "bitmask state limits brute force to 64 nodes");
  if (instance.job_count() == 0) return true;
  const Flat flat = Flatten(instance, m);
  Search search(flat, limits);
  return search.feasible(flow_bound);
}

Time BruteForceOpt(const Instance& instance, int m,
                   const BruteForceLimits& limits) {
  if (instance.job_count() == 0) return 0;
  Time lo = MaxFlowLowerBound(instance, m);
  // A serial schedule finishes all work within total_work slots of the
  // last release, so OPT is at most:
  Time hi = instance.max_release() - instance.min_release() +
            instance.total_work();
  hi = std::max(hi, lo);
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (BruteForceFeasible(instance, m, mid, limits)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace otsched
