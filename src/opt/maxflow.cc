#include "opt/maxflow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/assert.h"

namespace otsched {

MaxFlowGraph::MaxFlowGraph(int node_count) {
  OTSCHED_CHECK(node_count >= 0, "node_count must be >= 0, got "
                                     << node_count);
  head_.assign(static_cast<std::size_t>(node_count), -1);
}

int MaxFlowGraph::add_edge(int from, int to, std::int64_t capacity) {
  OTSCHED_CHECK(from >= 0 && from < node_count(), "bad edge source "
                                                      << from);
  OTSCHED_CHECK(to >= 0 && to < node_count(), "bad edge target " << to);
  OTSCHED_CHECK(capacity >= 0, "negative capacity " << capacity);
  const int index = static_cast<int>(edges_.size());
  edges_.push_back({to, head_[static_cast<std::size_t>(from)], capacity,
                    capacity});
  head_[static_cast<std::size_t>(from)] = index;
  edges_.push_back({from, head_[static_cast<std::size_t>(to)], 0, 0});
  head_[static_cast<std::size_t>(to)] = index + 1;
  return index;
}

bool MaxFlowGraph::BuildLevels(int source, int sink) {
  level_.assign(head_.size(), -1);
  std::queue<int> frontier;
  level_[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (int e = head_[static_cast<std::size_t>(node)]; e != -1;
         e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.cap <= 0) continue;
      if (level_[static_cast<std::size_t>(edge.to)] != -1) continue;
      level_[static_cast<std::size_t>(edge.to)] =
          level_[static_cast<std::size_t>(node)] + 1;
      frontier.push(edge.to);
    }
  }
  return level_[static_cast<std::size_t>(sink)] != -1;
}

std::int64_t MaxFlowGraph::Augment(int node, int sink, std::int64_t limit) {
  if (node == sink) return limit;
  for (int& e = iter_[static_cast<std::size_t>(node)]; e != -1;
       e = edges_[static_cast<std::size_t>(e)].next) {
    Edge& edge = edges_[static_cast<std::size_t>(e)];
    if (edge.cap <= 0) continue;
    if (level_[static_cast<std::size_t>(edge.to)] !=
        level_[static_cast<std::size_t>(node)] + 1) {
      continue;
    }
    const std::int64_t pushed =
        Augment(edge.to, sink, std::min(limit, edge.cap));
    if (pushed > 0) {
      edge.cap -= pushed;
      edges_[static_cast<std::size_t>(e ^ 1)].cap += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlowGraph::max_flow(int source, int sink) {
  OTSCHED_CHECK(source >= 0 && source < node_count(), "bad source "
                                                          << source);
  OTSCHED_CHECK(sink >= 0 && sink < node_count(), "bad sink " << sink);
  OTSCHED_CHECK(source != sink, "source == sink");
  std::int64_t total = 0;
  while (BuildLevels(source, sink)) {
    iter_ = head_;
    while (true) {
      const std::int64_t pushed =
          Augment(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::int64_t MaxFlowGraph::flow_on(int edge_index) const {
  OTSCHED_CHECK(edge_index >= 0 &&
                    edge_index < static_cast<int>(edges_.size()),
                "bad edge index " << edge_index);
  const Edge& edge = edges_[static_cast<std::size_t>(edge_index)];
  return edge.init - edge.cap;
}

std::vector<char> MaxFlowGraph::min_cut_source_side(int source) const {
  OTSCHED_CHECK(source >= 0 && source < node_count(), "bad source "
                                                          << source);
  std::vector<char> reachable(head_.size(), 0);
  std::queue<int> frontier;
  reachable[static_cast<std::size_t>(source)] = 1;
  frontier.push(source);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (int e = head_[static_cast<std::size_t>(node)]; e != -1;
         e = edges_[static_cast<std::size_t>(e)].next) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.cap <= 0) continue;
      if (reachable[static_cast<std::size_t>(edge.to)]) continue;
      reachable[static_cast<std::size_t>(edge.to)] = 1;
      frontier.push(edge.to);
    }
  }
  return reachable;
}

}  // namespace otsched
