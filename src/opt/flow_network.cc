#include "opt/flow_network.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/assert.h"
#include "opt/maxflow.h"

namespace otsched {
namespace {

struct RelaxationNetwork {
  /// Distinct (earliest, latest) windows with their subjob counts.
  std::vector<std::pair<SlotWindow, std::int64_t>> groups;
  /// Elementary intervals [first, last] induced by window endpoints,
  /// ascending and disjoint.
  std::vector<std::pair<Time, Time>> intervals;
};

RelaxationNetwork BuildNetwork(const std::vector<SlotWindow>& windows) {
  RelaxationNetwork net;
  std::map<std::pair<Time, Time>, std::int64_t> counts;
  std::vector<Time> boundaries;
  for (const SlotWindow& w : windows) {
    ++counts[{w.earliest, w.latest}];
    boundaries.push_back(w.earliest);
    boundaries.push_back(w.latest + 1);
  }
  net.groups.reserve(counts.size());
  for (const auto& [window, count] : counts) {
    net.groups.push_back({{window.first, window.second}, count});
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    net.intervals.push_back({boundaries[i], boundaries[i + 1] - 1});
  }
  return net;
}

}  // namespace

bool FlowRelaxationFeasible(const Instance& instance, int m, Time flow_bound,
                            const BudgetTrace* budget,
                            std::vector<DualInterval>* hall_witness) {
  OTSCHED_CHECK(m >= 1, "m must be >= 1, got " << m);
  if (hall_witness != nullptr) hall_witness->clear();
  if (instance.empty()) return true;

  const std::vector<SlotWindow> windows =
      ComputeSubjobWindows(instance, flow_bound);
  for (const SlotWindow& w : windows) {
    // Below the longest chain through some subjob: infeasible with no
    // slot-set witness needed (Certificate::verify's empty-window rule).
    if (w.earliest > w.latest) return false;
  }

  const RelaxationNetwork net = BuildNetwork(windows);
  const std::int64_t total_work = instance.total_work();
  const int group_count = static_cast<int>(net.groups.size());
  const int interval_count = static_cast<int>(net.intervals.size());

  // Node layout: 0 = source, 1 .. G = window groups, G + 1 .. G + K =
  // elementary intervals, G + K + 1 = sink.
  const int source = 0;
  const int sink = group_count + interval_count + 1;
  MaxFlowGraph graph(sink + 1);
  for (int g = 0; g < group_count; ++g) {
    graph.add_edge(source, 1 + g, net.groups[static_cast<std::size_t>(g)].second);
  }
  // Window -> interval edges get capacity total_work + 1 so no minimum
  // cut ever severs them: cuts consist purely of source-side group
  // edges and interval->sink capacity edges, which is what makes the
  // cut readable as a Hall deficiency witness below.
  for (int g = 0; g < group_count; ++g) {
    const SlotWindow& w = net.groups[static_cast<std::size_t>(g)].first;
    for (int k = 0; k < interval_count; ++k) {
      const auto& [first, last] = net.intervals[static_cast<std::size_t>(k)];
      if (first >= w.earliest && last <= w.latest) {
        graph.add_edge(1 + g, 1 + group_count + k, total_work + 1);
      }
    }
  }
  for (int k = 0; k < interval_count; ++k) {
    const auto& [first, last] = net.intervals[static_cast<std::size_t>(k)];
    graph.add_edge(1 + group_count + k, sink,
                   SlotCapacitySum(budget, first, last, m));
  }

  const std::int64_t flow = graph.max_flow(source, sink);
  OTSCHED_CHECK(flow <= total_work, "relaxation flow exceeds total work");
  if (flow == total_work) return true;

  if (hall_witness != nullptr) {
    // Min-cut side S (residual-reachable from the source).  Every group
    // in S keeps its infinite edges uncut, so all its intervals are in
    // S too: the windows of S-groups sit inside T = union of S-side
    // intervals, and cut value < total_work gives demand(T) >
    // capacity(T).
    const std::vector<char> in_cut = graph.min_cut_source_side(source);
    Time open_first = 0;
    Time open_last = -1;
    bool open = false;
    for (int k = 0; k < interval_count; ++k) {
      if (!in_cut[static_cast<std::size_t>(1 + group_count + k)]) continue;
      const auto& [first, last] = net.intervals[static_cast<std::size_t>(k)];
      if (open && first == open_last + 1) {
        open_last = last;
      } else {
        if (open) hall_witness->push_back({open_first, open_last, 1});
        open_first = first;
        open_last = last;
        open = true;
      }
    }
    if (open) hall_witness->push_back({open_first, open_last, 1});
    OTSCHED_CHECK(!hall_witness->empty(),
                  "infeasible relaxation produced an empty cut witness");
  }
  return false;
}

Certificate MaxFlowCertificate(const Instance& instance, int m,
                               const BudgetTrace* budget) {
  OTSCHED_CHECK(m >= 1, "m must be >= 1, got " << m);
  Certificate cert;
  cert.m = m;
  if (instance.empty()) {
    cert.value = 0;
    cert.method = "trivial";
    return cert;
  }
  cert.method = "max-flow";

  // F = 0 is always infeasible for a nonempty instance (every window
  // [r + depth, r - height + 1] is empty), so the invariant below is
  // lo infeasible / hi feasible from the start.
  Time lo = 0;
  Time hi = instance.max_span() +
            (instance.max_release() - instance.min_release()) +
            instance.total_work() +
            (budget == nullptr ? 0 : budget->length()) + 1;
  for (int doubling = 0; !FlowRelaxationFeasible(instance, m, hi, budget);
       ++doubling) {
    OTSCHED_CHECK(doubling < 16, "no feasible flow bound below " << hi);
    hi *= 2;
  }
  while (hi - lo > 1) {
    const Time mid = lo + (hi - lo) / 2;
    (FlowRelaxationFeasible(instance, m, mid, budget) ? hi : lo) = mid;
  }
  cert.value = hi;

  const bool below_feasible = FlowRelaxationFeasible(
      instance, m, cert.value - 1, budget, &cert.witness);
  OTSCHED_CHECK(!below_feasible, "binary search lost the infeasible side");
  std::string why;
  OTSCHED_CHECK(cert.verify(instance, budget, &why),
                "max-flow certificate failed self-verification: " << why);
  return cert;
}

}  // namespace otsched
