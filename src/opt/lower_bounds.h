// Lower bounds on the optimal maximum flow OPT[I, m].
//
// Competitive ratios reported by the experiment harnesses divide by a
// certified OPT when the generator provides one, and otherwise by the max
// of these lower bounds — so measured ratios are never flattering.
//
//   span bound      F >= P_i for each job (Section 3),
//   work bound      F >= ceil(W_i / m) for each job (Section 3),
//   depth profile   F >= d + ceil(W_i(d) / m) for each job and every depth
//                   d (Lemma 5.1),
//   interval bound  for release times a <= b, all work released in [a, b]
//                   must fit into m * (b - a + F) processor-slots, so
//                   F >= ceil(W[a,b] / m) - (b - a).
#pragma once

#include <cstdint>

#include "job/instance.h"

namespace otsched {

/// Names the component that realizes LowerBounds::best(); listed in the
/// documented tie-break priority order, SIMPLEST explanation first.
/// (The general components can never lose a tie the other way: the
/// depth x interval bound provably dominates every other component, so
/// a most-general-first rule would attribute everything to it.)
enum class BoundComponent {
  kSpan,
  kWork,
  kInterval,
  kDepthProfile,
  kDepthInterval,
};

const char* ToString(BoundComponent component);

struct LowerBounds {
  Time span_bound = 0;
  Time work_bound = 0;
  Time depth_profile_bound = 0;  // Lemma 5.1 per job
  Time interval_bound = 0;
  /// Combined depth x interval bound: for release times a <= b and any
  /// depth d, subjobs of depth > d from jobs released in [a, b] cannot
  /// start before their release + d and must finish by b + F, so
  ///   F >= d + ceil( sum_{r_i in [a,b]} W_i(d) / m ) - (b - a).
  /// Strictly generalizes both the interval bound (d = 0) and the
  /// per-job Lemma 5.1 bound (a = b = r_i).
  Time depth_interval_bound = 0;

  Time best() const;

  /// The component achieving best().  Ties break toward the simplest
  /// explanation, in the fixed order span > work > interval >
  /// depth_profile > depth_interval (BoundComponent declaration order)
  /// — pinned by golden tests so reports never silently change
  /// attribution.
  BoundComponent best_component() const;
};

/// Computes all bounds.  The interval bound enumerates pairs of distinct
/// release times, which is O(R^2) in the number of distinct releases with
/// prefix sums — fine for every instance family used here.
LowerBounds ComputeLowerBounds(const Instance& instance, int m);

/// Shorthand for ComputeLowerBounds(...).best().
Time MaxFlowLowerBound(const Instance& instance, int m);

/// Lemma 5.1 bound for a single job: max_d (d + ceil(W(d)/m)) over
/// d in [0, span].  For an out-forest released alone this equals OPT
/// exactly (Corollary 5.4).
Time DepthProfileBound(const Job& job, int m);

}  // namespace otsched
