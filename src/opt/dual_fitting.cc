#include "opt/dual_fitting.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/assert.h"
#include "dag/metrics.h"

namespace otsched {

std::vector<SlotWindow> ComputeSubjobWindows(const Instance& instance,
                                             Time flow_bound) {
  std::vector<SlotWindow> windows;
  windows.reserve(static_cast<std::size_t>(instance.total_work()));
  for (const Job& job : instance.jobs()) {
    const DagMetrics& metrics = job.metrics();
    const Time release = job.release();
    for (NodeId v = 0; v < job.dag().node_count(); ++v) {
      const std::size_t i = static_cast<std::size_t>(v);
      windows.push_back(
          {release + metrics.depth[i],
           release + flow_bound - metrics.height[i] + 1});
    }
  }
  return windows;
}

namespace {

/// min_{t in [earliest, latest]} y_t for sorted, disjoint weighted
/// intervals; 0 as soon as any slot of the window is uncovered.
std::int64_t MinWeightOver(const std::vector<DualInterval>& witness,
                           Time earliest, Time latest) {
  auto it = std::lower_bound(
      witness.begin(), witness.end(), earliest,
      [](const DualInterval& d, Time t) { return d.last < t; });
  if (it == witness.end() || it->first > earliest) return 0;
  std::int64_t min_weight = it->weight;
  Time covered = it->last;
  while (covered < latest) {
    ++it;
    if (it == witness.end() || it->first != covered + 1) return 0;
    min_weight = std::min(min_weight, it->weight);
    covered = it->last;
  }
  return min_weight;
}

bool Fail(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
  return false;
}

}  // namespace

bool Certificate::verify(const Instance& instance, const BudgetTrace* budget,
                         std::string* why) const {
  if (m < 1) return Fail(why, "certificate m must be >= 1");
  if (value < 0) return Fail(why, "negative certificate value");
  if (value == 0) return true;  // OPT >= 0 holds vacuously
  if (instance.empty()) {
    return Fail(why, "positive bound claimed for the empty instance");
  }
  if (value == 1) return true;  // every job needs at least one slot

  const Time flow_bound = value - 1;
  const std::vector<SlotWindow> windows =
      ComputeSubjobWindows(instance, flow_bound);
  for (const SlotWindow& w : windows) {
    // An empty window means flow_bound is below the longest chain
    // through this subjob, so OPT > flow_bound without any witness.
    if (w.earliest > w.latest) return true;
  }

  if (witness.empty()) {
    return Fail(why, "no witness and every window at flow bound " +
                         std::to_string(flow_bound) + " is nonempty");
  }
  for (std::size_t i = 0; i < witness.size(); ++i) {
    const DualInterval& d = witness[i];
    if (d.first > d.last) return Fail(why, "empty witness interval");
    if (d.weight < 1) return Fail(why, "witness weight must be >= 1");
    if (i > 0 && d.first <= witness[i - 1].last) {
      return Fail(why, "witness intervals unsorted or overlapping");
    }
  }

  // Wide accumulators: a corrupted witness may carry huge weights, and
  // rejecting it must not depend on signed overflow.
  __int128 demand = 0;
  for (const SlotWindow& w : windows) {
    demand += MinWeightOver(witness, w.earliest, w.latest);
  }
  __int128 capacity = 0;
  for (const DualInterval& d : witness) {
    capacity += static_cast<__int128>(d.weight) *
                SlotCapacitySum(budget, d.first, d.last, m);
  }
  if (demand > capacity) return true;

  std::ostringstream message;
  message << "dual witness does not certify flow bound " << flow_bound
          << " infeasible: weighted demand "
          << static_cast<long long>(demand) << " <= weighted capacity "
          << static_cast<long long>(capacity);
  return Fail(why, message.str());
}

Certificate DualFitCertificate(const Instance& instance, int m,
                               const BudgetTrace* budget) {
  OTSCHED_CHECK(m >= 1, "m must be >= 1, got " << m);
  Certificate cert;
  cert.m = m;
  if (instance.empty()) {
    cert.value = 0;
    cert.method = "trivial";
    return cert;
  }
  cert.method = "dual-fit";

  // The span candidate needs no witness: at F = max_span - 1 some
  // root-to-leaf chain has an empty window.
  Time best = std::max<Time>(1, instance.max_span());
  std::vector<DualInterval> best_witness;

  // Enumerate 0/1 witnesses T(a, b, d, B) = [a + d + 1, b + B - 1] over
  // distinct release pairs and depths, mirroring the depth x interval
  // enumeration of opt/lower_bounds but with exact (possibly faulted)
  // capacity sums.  For fixed (a, b, d) the capacity of T grows with B
  // while the demand W stays put, so the best certified B is found by
  // binary search on "capacity < W".
  std::map<Time, std::vector<const Job*>> by_release;
  for (const Job& job : instance.jobs()) {
    by_release[job.release()].push_back(&job);
  }
  std::vector<Time> releases;
  releases.reserve(by_release.size());
  for (const auto& [release, jobs] : by_release) releases.push_back(release);

  const std::int64_t max_span = instance.max_span();
  const Time trace_len = budget == nullptr ? 0 : budget->length();
  std::vector<std::int64_t> profile;
  for (std::size_t ai = 0; ai < releases.size(); ++ai) {
    const Time a = releases[ai];
    profile.assign(static_cast<std::size_t>(max_span) + 1, 0);
    for (std::size_t bi = ai; bi < releases.size(); ++bi) {
      const Time b = releases[bi];
      for (const Job* job : by_release[b]) {
        const DagMetrics& metrics = job->metrics();
        for (std::int64_t d = 0; d <= metrics.span; ++d) {
          profile[static_cast<std::size_t>(d)] += metrics.w_deeper(d);
        }
      }
      for (std::int64_t d = 0; d <= max_span; ++d) {
        const std::int64_t demand = profile[static_cast<std::size_t>(d)];
        if (demand == 0) break;  // profiles are non-increasing in d
        const auto capacity = [&](Time bound) {
          return SlotCapacitySum(budget, a + d + 1, b + bound - 1, m);
        };
        // Smallest B making T nonempty; larger B only adds capacity.
        Time lo = std::max<Time>(1, d + 2 - (b - a));
        if (capacity(lo) >= demand) continue;
        // Beyond the trace every slot supplies m >= 1 units, so the
        // bound saturates within demand + trace_len extra slots.
        Time hi = lo + demand + trace_len + 1;
        OTSCHED_CHECK(capacity(hi) >= demand,
                      "dual-fit search horizon too small");
        while (hi - lo > 1) {
          const Time mid = lo + (hi - lo) / 2;
          (capacity(mid) < demand ? lo : hi) = mid;
        }
        if (lo > best) {
          best = lo;
          best_witness = {{a + d + 1, b + lo - 1, 1}};
        }
      }
    }
  }

  cert.value = best;
  cert.witness = std::move(best_witness);
  std::string why;
  OTSCHED_CHECK(cert.verify(instance, budget, &why),
                "dual-fit certificate failed self-verification: " << why);
  return cert;
}

}  // namespace otsched
