// Machine-checkable per-run oracles for the paper's structural theorems.
//
// Every oracle is a pure function from DATA (an instance, a schedule, a
// replay log, flow numbers) to a verdict, so that the same code path both
// (a) certifies real runs inside the differential fuzz harness and
// (b) can be tested by mutation injection: corrupt a known-good artifact
// and assert that exactly the intended oracle fires.
//
// Theorem <-> oracle map (mirrored in docs/ALGORITHMS.md):
//
//   Section 3 axioms (1)-(4)   CheckFeasibilityOracle   (via sim/validator)
//   Lemma 5.3 / Corollary 5.4  CheckLpfValueOracle      LPF[m] length ==
//                              max_d (d + ceil(W(d)/m)), == brute force OPT
//                              on small instances
//   Lemma 5.2 / Figure 2       CheckHeadTailOracle      LPF[ceil(m/alpha)]
//                              = arbitrary head (<= OPT slots) + fully
//                              packed rectangular tail
//   Lemma 5.5                  CheckMcBusyOracle        a Most-Children
//                              replay never wastes a processor before the
//                              job finishes
//   Lemma 5.5 (faulted)        CheckMcNoWasteUnderFaultsOracle   the same
//                              no-waste property on an ARBITRARY budget
//                              trace from sim/faults (the lemma never
//                              assumes the budget stream's shape)
//   Theorem 5.6 / 5.7          CheckRatioCeilingOracle  Algorithm A's max
//                              flow stays below the proven constant times
//                              a certified OPT (or a lower-bound
//                              certificate from opt/lower_bounds)
//   Cho–Easwaran flow bound /  CheckOptLowerBoundOracle  the certified
//   ALT dual fitting           lower-bound sandwich: heuristic bounds <=
//                              dual-fit certificate <= max-flow
//                              certificate <= brute-force OPT, and every
//                              certificate passes its own verify()
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lpf.h"
#include "job/instance.h"
#include "sched/registry.h"  // kTheorem56Ceiling / kTheorem57Ceiling
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/schedule.h"
#include "sim/trace.h"

namespace otsched {

enum class OracleId {
  kFeasibility,   // Section 3 axioms (1)-(4) + completion
  kLpfValue,      // Lemma 5.3 / Corollary 5.4
  kHeadTail,      // Lemma 5.2 / Figure 2
  kMcBusy,            // Lemma 5.5
  kRatioCeiling,      // Theorem 5.6 / 5.7
  kTraceEquivalence,  // streaming observer trace == DeriveTrace
  kRecordModeEquivalence,  // flow-only run == full run (flows and stats)
  kMCNoWasteUnderFaults,   // Lemma 5.5 on an arbitrary faulted budget trace
  kFaultedEngineEquivalence,  // faulted run: both engines bit-identical
  kOptLowerBound,  // certified bounds: heuristic <= dual-fit <= max-flow
                   // certificate <= brute-force OPT, certificates verify
  kNoLostWorkWhenHealthy,  // armed-but-silent job faults == plain run
  kCommittedFeasibility,   // Section 3 axioms over committed work only
};

const char* ToString(OracleId id);

struct OracleResult {
  OracleId id = OracleId::kFeasibility;
  bool ok = true;
  /// Empty when ok; otherwise a description of the first violation.
  std::string detail;

  explicit operator bool() const { return ok; }
};

// ---- Section 3: feasibility ----

/// Wraps sim/validator's four-axiom check and additionally requires every
/// job to complete (an online policy that stalls forever would otherwise
/// pass vacuously).
OracleResult CheckFeasibilityOracle(const Schedule& schedule,
                                    const Instance& instance);

// ---- Lemma 5.3 / Corollary 5.4: LPF value ----

/// Verifies that `lpf` (built for the full machine, p == m) is internally
/// consistent and that its length equals the Corollary 5.4 closed form
/// max_d (d + ceil(W(d)/m)).  When `cross_check_brute_force` is set and
/// the DAG is small enough for opt/brute_force, additionally certifies the
/// closed form against exhaustive search.
OracleResult CheckLpfValueOracle(const Dag& dag, int m,
                                 const JobSchedule& lpf,
                                 bool cross_check_brute_force = false);

// ---- Lemma 5.2 / Figure 2: head/tail rectangle ----

/// Verifies the LPF[p] shape for p = ceil(m/alpha): the Lemma 5.2 ancestor
/// chain at the last underfull slot, last underfull slot <= OPT[m], and
/// the Figure 2 decomposition into a head of at most OPT[m] slots followed
/// by a fully packed tail of at most (alpha - 1) * OPT[m] slots.
OracleResult CheckHeadTailOracle(const Dag& dag, int m, int alpha,
                                 const JobSchedule& reduced);

// ---- Lemma 5.5: Most-Children never wastes a processor ----

/// A recorded Most-Children replay: the per-step budgets and the node ids
/// actually scheduled.  Produced by RunMostChildrenLog (below) for real
/// runs and hand-corrupted by the mutation tests.
struct McReplayLog {
  /// S-slots [1, prefix_len] of the source schedule were marked executed
  /// before step 1 (Algorithm A's "head already done" convention).
  Time prefix_len = 0;
  struct Step {
    int budget = 0;
    std::vector<NodeId> scheduled;
  };
  std::vector<Step> steps;
};

/// Replays `schedule` through MostChildrenReplayer under the given
/// per-step budgets (cycled if the job outlives the vector) and records
/// the log.  `prefix_len` S-slots are marked pre-executed.
McReplayLog RunMostChildrenLog(const Dag& dag, const JobSchedule& schedule,
                               std::span<const int> budgets,
                               Time prefix_len = 0);

/// Verifies Lemma 5.5 on a replay log: every step schedules ready,
/// not-yet-executed nodes within budget; every node outside the prefix is
/// scheduled exactly once; and no step wastes budget while work remains
/// after it (the no-wasted-processor property).
OracleResult CheckMcBusyOracle(const Dag& dag, const JobSchedule& schedule,
                               const McReplayLog& log);

// ---- Lemma 5.5 under faults: no waste on arbitrary budget traces ----

/// Replays `schedule` through MostChildrenReplayer with per-step budgets
/// drawn from a sim/faults BudgetSequencer on a p-processor machine —
/// budgets may be ZERO mid-run (an outage stalls the replay, which is
/// exactly the case Lemma 5.5 must survive).  `faults` must be active and
/// must eventually grant capacity (a spec that starves forever trips the
/// termination check).  The remaining-work count feeds the sequencer's
/// alive stream, so kAdversarialDip dips exactly once per replay.
McReplayLog RunMostChildrenFaultLog(const Dag& dag,
                                    const JobSchedule& schedule,
                                    const FaultSpec& faults, int p,
                                    Time prefix_len = 0);

/// The Lemma 5.5 verdict on a faulted replay log: identical checks to
/// CheckMcBusyOracle (the lemma never assumes the budget stream's shape),
/// reported under OracleId::kMCNoWasteUnderFaults so fuzz repros name the
/// faulted leg explicitly.
OracleResult CheckMcNoWasteUnderFaultsOracle(const Dag& dag,
                                             const JobSchedule& schedule,
                                             const McReplayLog& log);

// ---- Theorem 5.6 / 5.7: competitive-ratio ceiling ----

/// Verifies max_flow <= ceiling * OPT.  `certified_opt` > 0 is trusted
/// (generator-certified); otherwise the denominator is the best lower
/// bound from opt/lower_bounds, which only makes the check stricter in
/// the failing direction (a flow above ceiling * lower_bound is above
/// ceiling * OPT only if the bound is tight — so the oracle reports the
/// denominator kind in its detail and uses the lower bound as the
/// conservative denominator: violations are real, passes are not proofs).
OracleResult CheckRatioCeilingOracle(const Instance& instance, int m,
                                     Time max_flow, double ceiling,
                                     Time certified_opt = 0);

// ---- certified lower bounds: flow network + dual fitting ----

/// Options for CheckOptLowerBoundOracle.  `budget` degrades per-slot
/// capacities (nullptr = healthy machine); brute-force cross-checks are
/// skipped on faulted machines (opt/brute_force models full capacity)
/// and on instances above `brute_force_node_cap` total subjobs.
struct OptBoundCheckOptions {
  const BudgetTrace* budget = nullptr;
  bool cross_check_brute_force = true;
  std::int64_t brute_force_node_cap = 16;
  /// A trusted exact OPT (0 = none): the certified bounds must not
  /// exceed it.  Must refer to OPT under the SAME budget as `budget` —
  /// generator certificates cover the healthy machine only, so callers
  /// with a degraded budget must pass 0 here (a faulted bound above the
  /// healthy OPT is expected, not a violation).
  Time certified_opt = 0;
};

/// The certified lower-bound sandwich on one (instance, m) pair:
///
///   opt/lower_bounds best  <=  DualFitCertificate.value
///                          <=  MaxFlowCertificate.value
///                          <=  brute-force OPT (healthy, small instances)
///
/// with both certificates passing Certificate::verify() against nothing
/// but the instance, m, and the budget; on a faulted machine the
/// max-flow bound must additionally be >= its healthy-machine value
/// (capacity never increases under faults).  Pure and deterministic, so
/// fuzz repros replay it with no extra state.
OracleResult CheckOptLowerBoundOracle(const Instance& instance, int m,
                                      const OptBoundCheckOptions& options = {});

// ---- job faults: no lost work when healthy ----

/// The kNoLostWorkWhenHealthy contract of sim/job_faults.h: a run with the
/// job-fault machinery ARMED but never firing (e.g. random-crash at rate 0)
/// must match the plain run exactly — same per-job flows, same max flow,
/// same busy/executed/idle slot accounting — and must itself report zero
/// rollbacks and zero wasted slots.  `stats.checkpoints` is exempt: commits
/// are bookkeeping, not behaviour, and the armed run legitimately counts
/// them.  Pure over the two SimResults, so fuzz repros replay it verbatim.
OracleResult CheckNoLostWorkWhenHealthyOracle(const SimResult& baseline,
                                              const SimResult& armed);

// ---- job faults: Section 3 feasibility over committed work ----

/// Section 3 feasibility of a run WITH rollbacks, checked on the streamed
/// event trace (job faults force RecordMode::kFlowOnly, so no Schedule
/// exists; re-executed subjobs appear in the trace once per execution):
///
///   - at most m executes per slot (the machine-size cap; concurrent
///     capacity faults only make the true cap tighter, never looser),
///   - every execute lands strictly after its job's release,
///   - every subjob executes at least once, and the FINAL execution of a
///     node lands strictly after the FINAL execution of each of its
///     parents — rollbacks un-execute suffix-closed sets, so the
///     executions that survive respect precedence even though earlier
///     attempts were discarded,
///   - each job's kComplete coincides with its last execute,
///   - reconciliation: total executes == instance total work +
///     `stats.wasted_subjob_slots` (every discarded slot is re-done,
///     nothing else is).
OracleResult CheckCommittedFeasibilityOracle(const EventTrace& trace,
                                             const Instance& instance, int m,
                                             const SimStats& stats);

// ---- observability: streaming trace equivalence ----

/// Verifies that a trace streamed online by StreamingTraceObserver equals
/// the canonical DeriveTrace of the finished schedule.  The two are
/// produced by independent code paths (hook stream vs post-hoc
/// reconstruction), so agreement certifies both the observer wiring and
/// the hook ordering contract of sim/observer.h.
OracleResult CheckTraceEquivalenceOracle(const EventTrace& streamed,
                                         const Schedule& schedule,
                                         const Instance& instance);

// The proven Theorem 5.6 / 5.7 ceilings for alpha = 4 live next to the
// policy specs they annotate: kTheorem56Ceiling / kTheorem57Ceiling in
// sched/registry.h (included above).

// ---- aggregation ----

/// Runs the single-job structural oracles (LPF value, head/tail, MC busy,
/// MC no-waste under a deterministically derived fault model) on one
/// out-forest and returns every verdict; a convenience used by the fuzz
/// harness and the bench smoke tests.  The fault leg derives its FaultSpec
/// purely from (node_count, m), so a replayed repro re-runs the identical
/// budget stream with no extra repro state.
std::vector<OracleResult> CheckSingleJobOracles(const Dag& dag, int m,
                                                int alpha,
                                                bool cross_check_brute_force);

}  // namespace otsched
