// Registry of every online scheduling policy in src/sched and src/core,
// with the preconditions and theorem ceilings the differential fuzz
// harness needs to drive them safely.
//
// A policy bug caught here is caught for EVERY policy: a new scheduler
// only has to register itself to inherit the full oracle battery.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/engine.h"

namespace otsched {

struct PolicySpec {
  /// Stable registry name (matches Scheduler::name() where possible).
  std::string name;

  /// Builds a fresh scheduler; `seed` feeds randomized tie-breaking so the
  /// fuzz harness explores different executions per fuzz seed.
  std::function<std::unique_ptr<Scheduler>(std::uint64_t seed)> make;

  /// Requires every job DAG to be an out-forest (Section 5 algorithms).
  bool needs_out_forests = false;

  /// Requires alpha (= 4) to divide m (the AlgAPlanner precondition).
  bool needs_alpha_divides_m = false;

  /// Only runs on certified semi-batched instances (releases multiples of
  /// known OPT / 2); the harness passes the certified OPT via
  /// `make_semi_batched` instead of `make`.
  bool needs_semi_batched = false;

  /// For semi-batched policies: factory taking the certified OPT.
  std::function<std::unique_ptr<Scheduler>(Time known_opt)>
      make_semi_batched;

  /// Theorem ceiling on max_flow / OPT enforced by the ratio oracle
  /// (0 = no proven bound; only feasibility is checked).
  double ratio_ceiling = 0.0;
};

/// Every policy in src/sched plus the Section 5 algorithms in src/core.
const std::vector<PolicySpec>& AllPolicies();

/// True when `spec` can run on (instance properties, m).
bool PolicyApplies(const PolicySpec& spec, bool all_out_forests,
                   bool semi_batched_certified, int m);

}  // namespace otsched
