// DEPRECATED forwarding shim — the policy registry moved to
// sched/registry.h so the CLI, benches, and fuzz harness share one
// construction API.  Include "sched/registry.h" directly; this header
// will be removed after one release.
#pragma once

#include "sched/registry.h"
