#include "check/oracles.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"
#include "core/most_children.h"
#include "dag/metrics.h"
#include "dag/validate.h"
#include "opt/brute_force.h"
#include "opt/dual_fitting.h"
#include "opt/flow_network.h"
#include "opt/lower_bounds.h"
#include "opt/single_batch.h"
#include "sim/validator.h"

namespace otsched {
namespace {

OracleResult Pass(OracleId id) { return {id, true, ""}; }

OracleResult Fail(OracleId id, const std::string& detail) {
  return {id, false, detail};
}

/// Upper cap so the brute-force cross-check stays in the microsecond
/// range inside the fuzz harness's inner loop.
constexpr NodeId kBruteForceNodeCap = 16;

}  // namespace

const char* ToString(OracleId id) {
  switch (id) {
    case OracleId::kFeasibility:
      return "feasibility(S3-axioms)";
    case OracleId::kLpfValue:
      return "lpf-value(Cor5.4)";
    case OracleId::kHeadTail:
      return "head-tail(L5.2)";
    case OracleId::kMcBusy:
      return "mc-busy(L5.5)";
    case OracleId::kRatioCeiling:
      return "ratio-ceiling(T5.6)";
    case OracleId::kTraceEquivalence:
      return "trace-equivalence(observer)";
    case OracleId::kRecordModeEquivalence:
      return "record-mode-equivalence(flow-only)";
    case OracleId::kMCNoWasteUnderFaults:
      return "mc-no-waste-under-faults(L5.5)";
    case OracleId::kFaultedEngineEquivalence:
      return "faulted-engine-equivalence(budget)";
    case OracleId::kOptLowerBound:
      return "opt-lower-bound(certified)";
    case OracleId::kNoLostWorkWhenHealthy:
      return "no-lost-work-when-healthy(job-faults)";
    case OracleId::kCommittedFeasibility:
      return "committed-feasibility(S3,job-faults)";
  }
  return "unknown-oracle";
}

OracleResult CheckNoLostWorkWhenHealthyOracle(const SimResult& baseline,
                                              const SimResult& armed) {
  OracleResult result;
  result.id = OracleId::kNoLostWorkWhenHealthy;
  const auto fail = [&result](std::string detail) {
    result.ok = false;
    result.detail = std::move(detail);
  };
  if (armed.stats.job_rollbacks != 0) {
    fail("armed-but-silent run reported " +
         std::to_string(armed.stats.job_rollbacks) + " rollbacks");
    return result;
  }
  if (armed.stats.wasted_subjob_slots != 0) {
    fail("armed-but-silent run reported " +
         std::to_string(armed.stats.wasted_subjob_slots) + " wasted slots");
    return result;
  }
  if (armed.flows.max_flow != baseline.flows.max_flow) {
    fail("max flow diverged: baseline " +
         std::to_string(baseline.flows.max_flow) + " vs armed " +
         std::to_string(armed.flows.max_flow));
    return result;
  }
  if (armed.flows.flow != baseline.flows.flow) {
    for (std::size_t i = 0; i < baseline.flows.flow.size(); ++i) {
      if (i >= armed.flows.flow.size() ||
          armed.flows.flow[i] != baseline.flows.flow[i]) {
        fail("flow of job " + std::to_string(i) + " diverged: baseline " +
             std::to_string(baseline.flows.flow[i]) + " vs armed " +
             (i < armed.flows.flow.size()
                  ? std::to_string(armed.flows.flow[i])
                  : std::string("<missing>")));
        return result;
      }
    }
    fail("armed run has extra per-job flows");
    return result;
  }
  const auto check_stat = [&](const char* name, std::int64_t want,
                              std::int64_t got) {
    if (result.ok && want != got) {
      fail(std::string(name) + " diverged: baseline " + std::to_string(want) +
           " vs armed " + std::to_string(got));
    }
  };
  check_stat("horizon", baseline.stats.horizon, armed.stats.horizon);
  check_stat("executed_subjobs", baseline.stats.executed_subjobs,
             armed.stats.executed_subjobs);
  check_stat("idle_processor_slots", baseline.stats.idle_processor_slots,
             armed.stats.idle_processor_slots);
  check_stat("busy_slots", baseline.stats.busy_slots, armed.stats.busy_slots);
  check_stat("faulted_slots", baseline.stats.faulted_slots,
             armed.stats.faulted_slots);
  check_stat("capacity_shortfall", baseline.stats.capacity_shortfall,
             armed.stats.capacity_shortfall);
  // stats.checkpoints intentionally unchecked: commits are bookkeeping.
  return result;
}

OracleResult CheckCommittedFeasibilityOracle(const EventTrace& trace,
                                             const Instance& instance, int m,
                                             const SimStats& stats) {
  OracleResult result;
  result.id = OracleId::kCommittedFeasibility;
  const auto fail = [&result](std::string detail) {
    result.ok = false;
    result.detail = std::move(detail);
  };
  const JobId jobs = instance.job_count();
  // Per (job, node): last execution slot; per job: last execute and
  // completion slots; per slot: execute count.
  std::vector<std::vector<Time>> last_exec(static_cast<std::size_t>(jobs));
  for (JobId j = 0; j < jobs; ++j) {
    last_exec[static_cast<std::size_t>(j)].assign(
        static_cast<std::size_t>(instance.job(j).dag().node_count()), 0);
  }
  std::vector<Time> job_last_exec(static_cast<std::size_t>(jobs), 0);
  std::vector<Time> job_complete(static_cast<std::size_t>(jobs), 0);
  std::int64_t total_executes = 0;
  Time current_slot = 0;
  std::int64_t slot_executes = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind != TraceEventKind::kExecute) {
      if (event.kind == TraceEventKind::kComplete) {
        job_complete[static_cast<std::size_t>(event.job)] = event.slot;
      }
      continue;
    }
    if (event.slot != current_slot) {
      current_slot = event.slot;
      slot_executes = 0;
    }
    if (++slot_executes > m) {
      fail("slot " + std::to_string(event.slot) + " executes more than m=" +
           std::to_string(m) + " subjobs");
      return result;
    }
    const Job& job = instance.job(event.job);
    if (event.slot <= job.release()) {
      fail("job " + std::to_string(event.job) + " node " +
           std::to_string(event.node) + " executed at slot " +
           std::to_string(event.slot) + " <= release " +
           std::to_string(job.release()));
      return result;
    }
    ++total_executes;
    last_exec[static_cast<std::size_t>(event.job)]
             [static_cast<std::size_t>(event.node)] = event.slot;
    job_last_exec[static_cast<std::size_t>(event.job)] = std::max(
        job_last_exec[static_cast<std::size_t>(event.job)], event.slot);
  }
  for (JobId j = 0; j < jobs; ++j) {
    const Dag& dag = instance.job(j).dag();
    const auto& last = last_exec[static_cast<std::size_t>(j)];
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      const Time slot = last[static_cast<std::size_t>(v)];
      if (slot == 0) {
        fail("job " + std::to_string(j) + " node " + std::to_string(v) +
             " never executed");
        return result;
      }
      for (const NodeId p : dag.parents(v)) {
        const Time parent_slot = last[static_cast<std::size_t>(p)];
        if (parent_slot >= slot) {
          fail("committed precedence violated: job " + std::to_string(j) +
               " edge " + std::to_string(p) + "->" + std::to_string(v) +
               " final executions at slots " + std::to_string(parent_slot) +
               " >= " + std::to_string(slot));
          return result;
        }
      }
    }
    if (job_complete[static_cast<std::size_t>(j)] !=
        job_last_exec[static_cast<std::size_t>(j)]) {
      fail("job " + std::to_string(j) + " completion slot " +
           std::to_string(job_complete[static_cast<std::size_t>(j)]) +
           " != last execute slot " +
           std::to_string(job_last_exec[static_cast<std::size_t>(j)]));
      return result;
    }
  }
  const std::int64_t expected =
      instance.total_work() + stats.wasted_subjob_slots;
  if (total_executes != expected) {
    fail("execute reconciliation failed: trace has " +
         std::to_string(total_executes) + " executes, expected total work " +
         std::to_string(instance.total_work()) + " + wasted " +
         std::to_string(stats.wasted_subjob_slots));
    return result;
  }
  return result;
}

OracleResult CheckTraceEquivalenceOracle(const EventTrace& streamed,
                                         const Schedule& schedule,
                                         const Instance& instance) {
  const EventTrace derived = DeriveTrace(schedule, instance);
  const std::int64_t divergence = FirstDivergence(streamed, derived);
  if (divergence < 0) return Pass(OracleId::kTraceEquivalence);
  std::ostringstream detail;
  detail << "streamed trace diverges from DeriveTrace at event " << divergence
         << " (streamed " << streamed.size() << " events, derived "
         << derived.size() << ")";
  return Fail(OracleId::kTraceEquivalence, detail.str());
}

OracleResult CheckFeasibilityOracle(const Schedule& schedule,
                                    const Instance& instance) {
  const ValidationReport report = ValidateSchedule(schedule, instance);
  if (!report.feasible) {
    return Fail(OracleId::kFeasibility, report.violation);
  }
  return Pass(OracleId::kFeasibility);
}

OracleResult CheckLpfValueOracle(const Dag& dag, int m,
                                 const JobSchedule& lpf,
                                 bool cross_check_brute_force) {
  if (!IsOutForest(dag)) {
    return Fail(OracleId::kLpfValue,
                "Corollary 5.4 oracle requires an out-forest input");
  }
  const std::string schedule_error = CheckJobSchedule(dag, lpf);
  if (!schedule_error.empty()) {
    return Fail(OracleId::kLpfValue,
                "LPF schedule is not feasible: " + schedule_error);
  }
  if (lpf.total() != dag.node_count()) {
    std::ostringstream detail;
    detail << "LPF schedule places " << lpf.total() << " of "
           << dag.node_count() << " subjobs";
    return Fail(OracleId::kLpfValue, detail.str());
  }
  const Time closed_form = SingleBatchOpt(dag, m);
  if (lpf.length() != closed_form) {
    std::ostringstream detail;
    detail << "LPF[" << m << "] length " << lpf.length()
           << " != Corollary 5.4 value " << closed_form;
    return Fail(OracleId::kLpfValue, detail.str());
  }
  if (cross_check_brute_force && dag.node_count() > 0 &&
      dag.node_count() <= kBruteForceNodeCap) {
    Instance single;
    single.add_job(Job(Dag(dag), 0));
    const Time brute = BruteForceOpt(single, m);
    if (brute != closed_form) {
      std::ostringstream detail;
      detail << "Corollary 5.4 value " << closed_form
             << " != brute-force OPT " << brute << " on " << m
             << " processors";
      return Fail(OracleId::kLpfValue, detail.str());
    }
  }
  return Pass(OracleId::kLpfValue);
}

OracleResult CheckHeadTailOracle(const Dag& dag, int m, int alpha,
                                 const JobSchedule& reduced) {
  OTSCHED_CHECK(alpha >= 2, "alpha must be at least 2, got " << alpha);
  if (!IsOutForest(dag)) {
    return Fail(OracleId::kHeadTail,
                "Lemma 5.2 oracle requires an out-forest input");
  }
  const int p = (m + alpha - 1) / alpha;
  if (reduced.p != p) {
    std::ostringstream detail;
    detail << "schedule built for p = " << reduced.p
           << ", expected ceil(m/alpha) = " << p;
    return Fail(OracleId::kHeadTail, detail.str());
  }
  const std::string schedule_error = CheckJobSchedule(dag, reduced);
  if (!schedule_error.empty()) {
    return Fail(OracleId::kHeadTail,
                "reduced LPF schedule is not feasible: " + schedule_error);
  }
  const Lemma52Report chain = CheckLemma52(dag, reduced);
  if (!chain.holds) {
    return Fail(OracleId::kHeadTail,
                "Lemma 5.2 ancestor chain violated: " + chain.detail);
  }
  const Time opt = SingleBatchOpt(dag, m);
  if (chain.last_underfull != kNoTime && chain.last_underfull > opt) {
    std::ostringstream detail;
    detail << "last underfull slot " << chain.last_underfull
           << " exceeds OPT[" << m << "] = " << opt;
    return Fail(OracleId::kHeadTail, detail.str());
  }
  const HeadTailShape shape = AnalyzeHeadTail(reduced, opt);
  if (!shape.underfull_tail_slots.empty()) {
    std::ostringstream detail;
    detail << "tail is not a packed rectangle: slot "
           << shape.underfull_tail_slots.front() << " of "
           << reduced.length() << " runs fewer than p = " << p
           << " subjobs (head = " << opt << " slots)";
    return Fail(OracleId::kHeadTail, detail.str());
  }
  if (shape.tail_len > static_cast<Time>(alpha - 1) * opt) {
    std::ostringstream detail;
    detail << "tail length " << shape.tail_len << " exceeds (alpha-1)*OPT = "
           << static_cast<Time>(alpha - 1) * opt;
    return Fail(OracleId::kHeadTail, detail.str());
  }
  return Pass(OracleId::kHeadTail);
}

McReplayLog RunMostChildrenLog(const Dag& dag, const JobSchedule& schedule,
                               std::span<const int> budgets,
                               Time prefix_len) {
  OTSCHED_CHECK(!budgets.empty(), "budget stream must be non-empty");
  bool positive = false;
  for (int b : budgets) positive = positive || b > 0;
  OTSCHED_CHECK(positive, "budget stream needs at least one positive entry");

  McReplayLog log;
  log.prefix_len = prefix_len;
  MostChildrenReplayer replayer(dag, schedule);
  if (prefix_len > 0) replayer.mark_prefix_executed(prefix_len);
  std::size_t i = 0;
  while (!replayer.done()) {
    McReplayLog::Step step;
    step.budget = budgets[i % budgets.size()];
    ++i;
    replayer.step(step.budget, &step.scheduled);
    log.steps.push_back(std::move(step));
    OTSCHED_CHECK(log.steps.size() <=
                      static_cast<std::size_t>(dag.node_count()) +
                          budgets.size() + 1,
                  "Most-Children replay failed to terminate");
  }
  return log;
}

namespace {

/// The shared Lemma 5.5 verifier: the lemma's statement never assumes the
/// budget stream's shape, so the fixed-cycle (kMcBusy) and faulted
/// (kMCNoWasteUnderFaults) oracles run the identical checks and differ
/// only in the id stamped on the verdict.
OracleResult CheckMcLogOracle(OracleId id, const Dag& dag,
                              const JobSchedule& schedule,
                              const McReplayLog& log) {
  const NodeId n = dag.node_count();
  // done_step[v]: MC step at which v completed; 0 = pre-executed prefix,
  // -1 = not yet executed.
  std::vector<Time> done_step(static_cast<std::size_t>(n), -1);
  std::int64_t prefix_nodes = 0;
  const Time prefix = std::min<Time>(log.prefix_len, schedule.length());
  for (Time s = 1; s <= prefix; ++s) {
    for (NodeId v : schedule.at(s)) {
      done_step[static_cast<std::size_t>(v)] = 0;
      ++prefix_nodes;
    }
  }
  std::int64_t remaining = n - prefix_nodes;

  for (std::size_t i = 0; i < log.steps.size(); ++i) {
    const McReplayLog::Step& step = log.steps[i];
    const Time now = static_cast<Time>(i) + 1;
    if (static_cast<int>(step.scheduled.size()) > step.budget) {
      std::ostringstream detail;
      detail << "step " << now << " schedules " << step.scheduled.size()
             << " subjobs with budget " << step.budget;
      return Fail(id, detail.str());
    }
    for (NodeId v : step.scheduled) {
      if (v < 0 || v >= n) {
        std::ostringstream detail;
        detail << "step " << now << " schedules unknown node " << v;
        return Fail(id, detail.str());
      }
      if (done_step[static_cast<std::size_t>(v)] >= 0) {
        std::ostringstream detail;
        detail << "step " << now << " re-executes node " << v
               << " (already done at step "
               << done_step[static_cast<std::size_t>(v)] << ")";
        return Fail(id, detail.str());
      }
      for (NodeId parent : dag.parents(v)) {
        const Time parent_done = done_step[static_cast<std::size_t>(parent)];
        if (parent_done < 0 || parent_done >= now) {
          std::ostringstream detail;
          detail << "step " << now << " runs node " << v
                 << " before its parent " << parent << " completed";
          return Fail(id, detail.str());
        }
      }
    }
    for (NodeId v : step.scheduled) {
      done_step[static_cast<std::size_t>(v)] = now;
    }
    remaining -= static_cast<std::int64_t>(step.scheduled.size());
    // Lemma 5.5: a step either uses its whole budget or finishes the job.
    if (static_cast<int>(step.scheduled.size()) < step.budget &&
        remaining > 0) {
      std::ostringstream detail;
      detail << "step " << now << " wastes "
             << step.budget - static_cast<int>(step.scheduled.size())
             << " processors with " << remaining << " subjobs remaining";
      return Fail(id, detail.str());
    }
  }
  if (remaining != 0) {
    std::ostringstream detail;
    detail << "replay ends with " << remaining << " subjobs never executed";
    return Fail(id, detail.str());
  }
  return Pass(id);
}

}  // namespace

OracleResult CheckMcBusyOracle(const Dag& dag, const JobSchedule& schedule,
                               const McReplayLog& log) {
  return CheckMcLogOracle(OracleId::kMcBusy, dag, schedule, log);
}

OracleResult CheckMcNoWasteUnderFaultsOracle(const Dag& dag,
                                             const JobSchedule& schedule,
                                             const McReplayLog& log) {
  return CheckMcLogOracle(OracleId::kMCNoWasteUnderFaults, dag, schedule,
                          log);
}

McReplayLog RunMostChildrenFaultLog(const Dag& dag,
                                    const JobSchedule& schedule,
                                    const FaultSpec& faults, int p,
                                    Time prefix_len) {
  OTSCHED_CHECK(faults.active(),
                "RunMostChildrenFaultLog needs an active fault model");
  OTSCHED_CHECK(p >= 1, "machine size p must be >= 1, got " << p);

  McReplayLog log;
  log.prefix_len = prefix_len;
  MostChildrenReplayer replayer(dag, schedule);
  if (prefix_len > 0) replayer.mark_prefix_executed(prefix_len);
  BudgetSequencer sequencer(faults, p);
  Time slot = 0;
  // Zero-budget outage steps make no progress, so the fixed-cycle bound
  // (node_count + cycle + 1) does not apply; the rate cap (<= 0.9) keeps
  // the expected stall fraction bounded and 64x head-room covers it.
  const std::size_t max_steps =
      64 * static_cast<std::size_t>(dag.node_count()) + 4096;
  while (!replayer.done()) {
    McReplayLog::Step step;
    ++slot;
    // Remaining work stands in for the engine's alive stream: it only
    // drops, so kAdversarialDip dips at most once per replay.
    step.budget = sequencer.capacity(slot, replayer.remaining());
    replayer.step(step.budget, &step.scheduled);
    log.steps.push_back(std::move(step));
    OTSCHED_CHECK(log.steps.size() <= max_steps,
                  "faulted Most-Children replay failed to terminate (spec "
                      << ToString(faults) << " starves the machine)");
  }
  return log;
}

OracleResult CheckRatioCeilingOracle(const Instance& instance, int m,
                                     Time max_flow, double ceiling,
                                     Time certified_opt) {
  OTSCHED_CHECK(ceiling > 0, "ratio ceiling must be positive");
  if (instance.empty()) return Pass(OracleId::kRatioCeiling);
  const bool exact = certified_opt > 0;
  const Time denominator =
      exact ? certified_opt
            : std::max<Time>(Time{1}, MaxFlowLowerBound(instance, m));
  if (max_flow == kInfiniteTime ||
      static_cast<double>(max_flow) >
          ceiling * static_cast<double>(denominator)) {
    std::ostringstream detail;
    detail << "max flow " << max_flow << " exceeds ceiling " << ceiling
           << " * " << (exact ? "certified OPT " : "lower bound ")
           << denominator << " on " << m << " processors";
    return Fail(OracleId::kRatioCeiling, detail.str());
  }
  return Pass(OracleId::kRatioCeiling);
}

OracleResult CheckOptLowerBoundOracle(const Instance& instance, int m,
                                      const OptBoundCheckOptions& options) {
  const auto fail = [](const std::string& detail) {
    return Fail(OracleId::kOptLowerBound, detail);
  };
  if (instance.empty()) return Pass(OracleId::kOptLowerBound);

  const Time heuristic = MaxFlowLowerBound(instance, m);

  std::string why;
  const Certificate dual = DualFitCertificate(instance, m, options.budget);
  if (!dual.verify(instance, options.budget, &why)) {
    return fail("dual-fit certificate failed verify(): " + why);
  }
  const Certificate flow = MaxFlowCertificate(instance, m, options.budget);
  if (!flow.verify(instance, options.budget, &why)) {
    return fail("max-flow certificate failed verify(): " + why);
  }

  std::ostringstream detail;
  // The heuristic bounds assume a healthy machine but remain valid
  // under faults (removing capacity never decreases OPT), so the
  // sandwich holds with or without a budget.
  if (heuristic > dual.value) {
    detail << "heuristic lower bound " << heuristic
           << " exceeds dual-fit certificate " << dual.value << " on " << m
           << " processors";
    return fail(detail.str());
  }
  if (dual.value > flow.value) {
    detail << "dual-fit certificate " << dual.value
           << " exceeds max-flow certificate " << flow.value << " on " << m
           << " processors";
    return fail(detail.str());
  }

  if (options.budget != nullptr) {
    const Time healthy = MaxFlowCertificate(instance, m).value;
    if (flow.value < healthy) {
      detail << "faulted max-flow certificate " << flow.value
             << " below the healthy-machine certificate " << healthy
             << " (losing capacity cannot lower OPT)";
      return fail(detail.str());
    }
  }

  if (options.certified_opt > 0 && flow.value > options.certified_opt) {
    detail << "max-flow certificate " << flow.value
           << " exceeds the generator-certified OPT "
           << options.certified_opt << " on " << m << " processors";
    return fail(detail.str());
  }

  if (options.cross_check_brute_force && options.budget == nullptr &&
      instance.total_work() <= options.brute_force_node_cap) {
    const Time opt = BruteForceOpt(instance, m);
    if (flow.value > opt) {
      detail << "max-flow certificate " << flow.value
             << " exceeds brute-force OPT " << opt << " on " << m
             << " processors";
      return fail(detail.str());
    }
  }
  return Pass(OracleId::kOptLowerBound);
}

std::vector<OracleResult> CheckSingleJobOracles(
    const Dag& dag, int m, int alpha, bool cross_check_brute_force) {
  std::vector<OracleResult> results;
  if (dag.empty()) return results;

  // Corollary 5.4: LPF on the full machine achieves the closed form.
  const JobSchedule full = BuildLpfSchedule(dag, m);
  results.push_back(
      CheckLpfValueOracle(dag, m, full, cross_check_brute_force));

  // Lemma 5.2 / Figure 2 on the reduced machine.
  const int p = (m + alpha - 1) / alpha;
  const JobSchedule reduced = BuildLpfSchedule(dag, p);
  results.push_back(CheckHeadTailOracle(dag, m, alpha, reduced));

  // Lemma 5.5: MC replays the packed tail of LPF[p] (head pre-executed,
  // exactly Algorithm A's usage) under a fluctuating budget <= p.
  const Time opt = SingleBatchOpt(dag, m);
  const Time prefix = std::min<Time>(opt, reduced.length());
  if (reduced.length() > prefix) {
    std::vector<int> budgets;
    for (int k = 0; k < 7; ++k) {
      budgets.push_back(1 + (k * 2 + static_cast<int>(dag.node_count())) %
                                std::max(1, p));
    }
    const McReplayLog log =
        RunMostChildrenLog(dag, reduced, budgets, prefix);
    results.push_back(CheckMcBusyOracle(dag, reduced, log));

    // Lemma 5.5 under faults: the same tail replay on a stochastic budget
    // stream with mid-run zero-capacity outages.  The spec is a pure
    // function of (node_count, m) — FNV-1a over the two — so a replayed
    // fuzz repro regenerates the identical stream with no extra state.
    std::uint64_t h = 14695981039346656037ULL;
    h = (h ^ static_cast<std::uint64_t>(dag.node_count())) *
        1099511628211ULL;
    h = (h ^ static_cast<std::uint64_t>(m)) * 1099511628211ULL;
    FaultSpec faulted;
    faulted.model = (dag.node_count() % 2 == 0) ? FaultModel::kRandomBlip
                                                : FaultModel::kBurstOutage;
    faulted.seed = h;
    faulted.rate = 0.2 + 0.1 * static_cast<double>(h % 5);  // [0.2, 0.6]
    faulted.burst_len = 1 + static_cast<Time>(h % 7);
    const McReplayLog fault_log =
        RunMostChildrenFaultLog(dag, reduced, faulted, p, prefix);
    results.push_back(
        CheckMcNoWasteUnderFaultsOracle(dag, reduced, fault_log));
  }
  return results;
}

}  // namespace otsched
