#include "check/diffrun.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/random_trees.h"
#include "job/serialize.h"
#include "opt/brute_force.h"
#include "opt/lower_bounds.h"
#include "sched/registry.h"
#include "sim/batch_runner.h"
#include "sim/engine.h"
#include "sim/observers.h"

namespace otsched {
namespace {

constexpr NodeId kBruteForceNodeCap = 16;

/// Pseudo-policy names for policy-independent checks.
constexpr const char* kStructuralPolicy = "<lpf-structural>";
constexpr const char* kLowerBoundsPolicy = "<lower-bounds>";
constexpr const char* kOptCertificatePolicy = "<opt-certificate>";

/// Exact OPT by exhaustive search when the instance is small enough;
/// 0 when it is not (callers fall back to the lower-bound certificate).
Time TryBruteOpt(const Instance& instance, int m) {
  if (instance.empty() || instance.total_work() > kBruteForceNodeCap) {
    return 0;
  }
  return BruteForceOpt(instance, m);
}

/// The flow floor: no feasible schedule can beat OPT, so a max flow below
/// a certified OPT (or any certified lower bound on it) convicts either
/// the certificate or the flow accounting.  Reported under the ratio
/// oracle: both directions certify the same denominator machinery.
OracleResult CheckFlowFloor(Time max_flow, Time floor, bool exact, int m) {
  if (max_flow != kInfiniteTime && max_flow < floor) {
    std::ostringstream detail;
    detail << "achieved max flow " << max_flow << " beats the "
           << (exact ? "certified OPT " : "certified lower bound ") << floor
           << " on " << m << " processors";
    return {OracleId::kRatioCeiling, false, detail.str()};
  }
  return {OracleId::kRatioCeiling, true, ""};
}

struct PolicyCaseConfig {
  const PolicySpec* spec = nullptr;
  std::uint64_t seed = 0;
  int m = 1;
  /// Assumed optimum handed to semi-batched Algorithm A (stays valid
  /// under shrinking: removing work keeps releases on the OPT/2 grid).
  Time known_opt = 0;
  /// Exact OPT certificate for floor/ceiling checks; 0 = derive from
  /// lower bounds / brute force on the spot.
  Time certified_opt = 0;
  bool brute_cross_check = false;
  /// Run the job-fault legs (FuzzOptions::job_faults threaded through so
  /// shrinking and `--replay` rerun the identical trials).
  bool job_faults = false;
};

/// FNV-1a over (seed, m, policy): the case identity hash behind every
/// derived trial dimension (record-mode toggle, fault leg).  Pure function
/// of the case — never global state — so `--replay` of a repro file
/// reproduces the exact same trials with no new headers.
std::uint64_t CaseIdentityHash(const PolicyCaseConfig& cfg) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(cfg.seed);
  mix(static_cast<std::uint64_t>(cfg.m));
  for (const char c : cfg.spec->name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Whether a case also gets a flow-only rerun compared against the full
/// run.
bool FuzzRecordModeToggle(const PolicyCaseConfig& cfg) {
  return (CaseIdentityHash(cfg) & 1) == 0;
}

/// The case's fault-dimension spec: roughly half of all cases rerun under
/// an active fault model, alternating kRandomBlip / kBurstOutage with
/// hash-derived seed, rate and burst length.  Inactive (kNone) otherwise.
FaultSpec FuzzFaultSpec(const PolicyCaseConfig& cfg) {
  const std::uint64_t h = CaseIdentityHash(cfg);
  FaultSpec spec;
  if (((h >> 1) & 1) != 0) return spec;  // kNone: no fault leg
  spec.model = (((h >> 2) & 1) == 0) ? FaultModel::kRandomBlip
                                     : FaultModel::kBurstOutage;
  spec.seed = h;
  spec.rate = 0.15 + 0.05 * static_cast<double>((h >> 3) % 8);  // [.15,.5]
  spec.burst_len = 1 + static_cast<Time>((h >> 6) % 8);
  return spec;
}

/// The case's job-fault checkpoint policy, shared by both job-fault legs:
/// always kEveryKSlots.  A commit fires every k slots no matter how the
/// machine served the job, so every crash model is guaranteed to make
/// progress (any job served during a commit slot banks at least that
/// slot's work) and the engines' horizon-trip livelock check stays a
/// real-bug detector.  The service-coupled policies (kEveryKSubjobs,
/// kOnCompletion) CAN livelock against a fast-enough crash model by
/// design; they are exercised in the deterministic unit tests instead.
void DeriveCheckpointPolicy(std::uint64_t h, JobFaultSpec& spec) {
  spec.checkpoint = CheckpointPolicy::kEveryKSlots;
  spec.checkpoint_every = 2 + static_cast<std::int64_t>((h >> 9) % 6);
}

/// Domain-separated case hash for the job-fault dimension (distinct from
/// the capacity-fault stream so the two legs draw independent bits).
std::uint64_t JobFaultCaseHash(const PolicyCaseConfig& cfg) {
  std::uint64_t h = CaseIdentityHash(cfg);
  for (const char c : {'j', 'b', 'f'}) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The armed-but-silent spec for the kNoLostWorkWhenHealthy leg: the
/// fault machinery (commit tracking, checkpoint commits) runs, but
/// random-crash at rate 0 never fires, so the run must be bit-identical
/// to the plain one.
JobFaultSpec FuzzArmedJobFaultSpec(const PolicyCaseConfig& cfg) {
  const std::uint64_t h = JobFaultCaseHash(cfg);
  JobFaultSpec spec;
  spec.model = JobFaultModel::kRandomCrash;
  spec.seed = h;
  spec.rate = 0.0;
  DeriveCheckpointPolicy(h, spec);
  return spec;
}

/// The actively crashing spec for the committed-feasibility leg: the
/// three models round-robin on the case hash with hash-derived
/// parameters.  Every spec pairs with an interval checkpoint policy whose
/// interval is well below the periodic-crash period, so each run is
/// guaranteed to make progress (the horizon-trip livelock check stays a
/// real-bug detector, not a fuzz flake).
JobFaultSpec FuzzActiveJobFaultSpec(const PolicyCaseConfig& cfg) {
  const std::uint64_t h = JobFaultCaseHash(cfg);
  JobFaultSpec spec;
  spec.seed = h;
  switch (h % 3) {
    case 0:
      spec.model = JobFaultModel::kRandomCrash;
      spec.rate = 0.05 + 0.05 * static_cast<double>((h >> 2) % 6);  // [.05,.3]
      break;
    case 1:
      spec.model = JobFaultModel::kPeriodicCrash;
      spec.period = 16 + static_cast<std::int64_t>((h >> 2) % 48);  // [16,63]
      break;
    default:
      spec.model = JobFaultModel::kAdversarialLoss;
      spec.threshold = 2 + static_cast<std::int64_t>((h >> 2) % 8);  // [2,9]
      break;
  }
  DeriveCheckpointPolicy(h, spec);
  return spec;
}

/// Slot-by-slot, entry-by-entry schedule equality (same subjobs in the
/// same order within every slot).
bool SchedulesEqual(const Schedule& a, const Schedule& b) {
  if (a.horizon() != b.horizon() || a.total_placed() != b.total_placed()) {
    return false;
  }
  for (Time t = 1; t <= a.horizon(); ++t) {
    const auto lhs = a.at(t);
    const auto rhs = b.at(t);
    if (lhs.size() != rhs.size()) return false;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      if (!(lhs[i] == rhs[i])) return false;
    }
  }
  return true;
}

/// Compares the faulted incremental run against the faulted reference
/// run: schedules, FlowSummary and SimStats (including the fault
/// counters) must be bit-identical — the engine-equivalence gate extended
/// to fluctuating budgets.
OracleResult CheckFaultedEquivalenceOracle(const SimResult& fast,
                                           const SimResult& reference) {
  std::ostringstream detail;
  if (fast.flows.completion != reference.flows.completion ||
      fast.flows.flow != reference.flows.flow ||
      fast.flows.max_flow != reference.flows.max_flow ||
      fast.flows.max_flow_job != reference.flows.max_flow_job ||
      fast.flows.all_completed != reference.flows.all_completed) {
    detail << "faulted FlowSummary diverges between engines (max_flow "
           << fast.flows.max_flow << " vs " << reference.flows.max_flow
           << ")";
    return {OracleId::kFaultedEngineEquivalence, false, detail.str()};
  }
  if (fast.stats.horizon != reference.stats.horizon ||
      fast.stats.executed_subjobs != reference.stats.executed_subjobs ||
      fast.stats.idle_processor_slots !=
          reference.stats.idle_processor_slots ||
      fast.stats.busy_slots != reference.stats.busy_slots ||
      fast.stats.faulted_slots != reference.stats.faulted_slots ||
      fast.stats.capacity_shortfall != reference.stats.capacity_shortfall) {
    detail << "faulted SimStats diverge between engines (faulted_slots "
           << fast.stats.faulted_slots << " vs "
           << reference.stats.faulted_slots << ", horizon "
           << fast.stats.horizon << " vs " << reference.stats.horizon << ")";
    return {OracleId::kFaultedEngineEquivalence, false, detail.str()};
  }
  if (fast.has_schedule() != reference.has_schedule() ||
      (fast.has_schedule() &&
       !SchedulesEqual(fast.full_schedule(), reference.full_schedule()))) {
    return {OracleId::kFaultedEngineEquivalence, false,
            "faulted schedules diverge between engines"};
  }
  return {OracleId::kFaultedEngineEquivalence, true, ""};
}

/// Compares a flow-only rerun against the recorded full run: FlowSummary
/// and SimStats must be bit-identical (the engines compute both online,
/// so any divergence convicts the record-mode plumbing).
OracleResult CheckRecordModeOracle(const SimResult& full,
                                   const SimResult& flow_only) {
  std::ostringstream detail;
  if (flow_only.has_schedule()) {
    return {OracleId::kRecordModeEquivalence, false,
            "flow-only run materialized a schedule"};
  }
  if (full.flows.completion != flow_only.flows.completion ||
      full.flows.flow != flow_only.flows.flow ||
      full.flows.max_flow != flow_only.flows.max_flow ||
      full.flows.max_flow_job != flow_only.flows.max_flow_job ||
      full.flows.all_completed != flow_only.flows.all_completed) {
    detail << "flow-only FlowSummary diverges from the full run (max_flow "
           << flow_only.flows.max_flow << " vs " << full.flows.max_flow
           << ")";
    return {OracleId::kRecordModeEquivalence, false, detail.str()};
  }
  if (full.stats.horizon != flow_only.stats.horizon ||
      full.stats.executed_subjobs != flow_only.stats.executed_subjobs ||
      full.stats.idle_processor_slots != flow_only.stats.idle_processor_slots ||
      full.stats.busy_slots != flow_only.stats.busy_slots) {
    detail << "flow-only SimStats diverge from the full run (horizon "
           << flow_only.stats.horizon << " vs " << full.stats.horizon << ")";
    return {OracleId::kRecordModeEquivalence, false, detail.str()};
  }
  return {OracleId::kRecordModeEquivalence, true, ""};
}

/// Runs one (policy, m, instance) case and returns every oracle verdict.
std::vector<OracleResult> RunPolicyCase(const PolicyCaseConfig& cfg,
                                        const Instance& instance,
                                        std::int64_t* simulations) {
  std::vector<OracleResult> results;
  if (instance.empty()) return results;

  std::unique_ptr<Scheduler> scheduler =
      cfg.spec->needs_semi_batched ? cfg.spec->make_semi_batched(cfg.known_opt)
                                   : cfg.spec->make(cfg.seed);
  // Every fuzz case doubles as an observability check: stream the trace
  // through the observer hooks and hold it against DeriveTrace below.
  // The schedule-dependent oracles need a full-mode run.
  EventTrace streamed;
  StreamingTraceObserver tracer(streamed);
  RunContext context;
  context.observer = &tracer;
  const SimResult run = Simulate(instance, cfg.m, *scheduler, context);
  if (simulations != nullptr) ++*simulations;

  // Full-record run: the feasibility and trace-equivalence oracles walk
  // the materialized schedule.
  results.push_back(CheckFeasibilityOracle(run.full_schedule(), instance));
  results.push_back(
      CheckTraceEquivalenceOracle(streamed, run.full_schedule(), instance));

  if (FuzzRecordModeToggle(cfg)) {
    // Flow-only leg: a fresh identically-seeded scheduler rerun with
    // RecordMode::kFlowOnly must reproduce the full run's aggregates.
    std::unique_ptr<Scheduler> flow_scheduler =
        cfg.spec->needs_semi_batched
            ? cfg.spec->make_semi_batched(cfg.known_opt)
            : cfg.spec->make(cfg.seed);
    const SimResult flow_only =
        Simulate(instance, cfg.m, *flow_scheduler, FlowOnlyOptions());
    if (simulations != nullptr) ++*simulations;
    results.push_back(CheckRecordModeOracle(run, flow_only));
  }

  const FaultSpec faults = FuzzFaultSpec(cfg);
  if (faults.active() && scheduler->supports_fluctuating_capacity()) {
    // Fault dimension: rerun the case under a fluctuating budget on BOTH
    // engines.  The faulted schedule must stay feasible (axioms (1)-(4)
    // hold on a degraded machine too) and the engines must agree
    // bit-for-bit — the counter-based fault models make the streams a
    // pure function of (seed, slot), so any divergence convicts the
    // capacity plumbing, not the model.
    SimOptions faulted_options;
    faulted_options.faults = faults;
    std::unique_ptr<Scheduler> faulted_scheduler =
        cfg.spec->needs_semi_batched
            ? cfg.spec->make_semi_batched(cfg.known_opt)
            : cfg.spec->make(cfg.seed);
    const SimResult faulted =
        Simulate(instance, cfg.m, *faulted_scheduler, faulted_options);
    std::unique_ptr<Scheduler> faulted_reference_scheduler =
        cfg.spec->needs_semi_batched
            ? cfg.spec->make_semi_batched(cfg.known_opt)
            : cfg.spec->make(cfg.seed);
    const SimResult faulted_reference = ReferenceSimulate(
        instance, cfg.m, *faulted_reference_scheduler, faulted_options);
    if (simulations != nullptr) *simulations += 2;
    results.push_back(
        CheckFeasibilityOracle(faulted.full_schedule(), instance));
    results.push_back(
        CheckFaultedEquivalenceOracle(faulted, faulted_reference));
  }

  if (cfg.job_faults && scheduler->supports_fluctuating_capacity() &&
      scheduler->supports_job_rollback()) {
    // Job-fault dimension (sim/job_faults.h), two legs:
    //
    // (a) kNoLostWorkWhenHealthy: a flow-only rerun with the fault
    //     machinery ARMED (commit tracking on, checkpoints firing) but a
    //     rate-0 crash model must be bit-identical to a plain flow-only
    //     run — arming alone may never change behaviour.
    auto rerun_scheduler = [&cfg]() {
      return cfg.spec->needs_semi_batched
                 ? cfg.spec->make_semi_batched(cfg.known_opt)
                 : cfg.spec->make(cfg.seed);
    };
    std::unique_ptr<Scheduler> plain_scheduler = rerun_scheduler();
    const SimResult plain =
        Simulate(instance, cfg.m, *plain_scheduler, FlowOnlyOptions());
    SimOptions armed_options = FlowOnlyOptions();
    armed_options.job_faults = FuzzArmedJobFaultSpec(cfg);
    std::unique_ptr<Scheduler> armed_scheduler = rerun_scheduler();
    const SimResult armed =
        Simulate(instance, cfg.m, *armed_scheduler, armed_options);
    results.push_back(CheckNoLostWorkWhenHealthyOracle(plain, armed));

    // (b) committed feasibility: an actively crashing run, streamed, must
    //     satisfy the Section 3 axioms over the work that SURVIVED and
    //     reconcile executes == total work + wasted slots exactly.
    RunContext faulted_context;
    faulted_context.options = FlowOnlyOptions();
    faulted_context.options.job_faults = FuzzActiveJobFaultSpec(cfg);
    EventTrace faulted_trace;
    StreamingTraceObserver faulted_tracer(faulted_trace);
    faulted_context.observer = &faulted_tracer;
    std::unique_ptr<Scheduler> crash_scheduler = rerun_scheduler();
    const SimResult crashed =
        Simulate(instance, cfg.m, *crash_scheduler, faulted_context);
    results.push_back(CheckCommittedFeasibilityOracle(
        faulted_trace, instance, cfg.m, crashed.stats));
    if (simulations != nullptr) *simulations += 3;
  }

  Time exact = cfg.certified_opt;
  if (exact == 0 && cfg.brute_cross_check) {
    exact = TryBruteOpt(instance, cfg.m);
  }
  const Time floor =
      exact > 0 ? exact : MaxFlowLowerBound(instance, cfg.m);
  results.push_back(
      CheckFlowFloor(run.flows.max_flow, floor, exact > 0, cfg.m));

  if (cfg.spec->ratio_ceiling > 0) {
    results.push_back(CheckRatioCeilingOracle(instance, cfg.m,
                                              run.flows.max_flow,
                                              cfg.spec->ratio_ceiling,
                                              exact));
  }
  return results;
}

bool AnyFailed(const std::vector<OracleResult>& results, OracleId target,
               std::string* detail) {
  for (const OracleResult& r : results) {
    if (r.id == target && !r.ok) {
      if (detail != nullptr) *detail = r.detail;
      return true;
    }
  }
  return false;
}

// ---- shrinking helpers ----

Instance DropJob(const Instance& instance, JobId drop) {
  Instance out;
  out.set_name(instance.name());
  for (JobId i = 0; i < instance.job_count(); ++i) {
    if (i != drop) out.add_job(instance.job(i));
  }
  return out;
}

Instance ReplaceJobDag(const Instance& instance, JobId target, Dag pruned) {
  Instance out;
  out.set_name(instance.name());
  for (JobId i = 0; i < instance.job_count(); ++i) {
    if (i == target) {
      out.add_job(Job(std::move(pruned), instance.job(i).release(),
                      instance.job(i).name()));
    } else {
      out.add_job(instance.job(i));
    }
  }
  return out;
}

}  // namespace

Dag RemoveSubtree(const Dag& dag, NodeId root) {
  OTSCHED_CHECK(root >= 0 && root < dag.node_count(),
                "RemoveSubtree: node " << root << " out of range");
  std::vector<char> removed(static_cast<std::size_t>(dag.node_count()), 0);
  std::vector<NodeId> stack = {root};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (removed[static_cast<std::size_t>(v)]) continue;
    removed[static_cast<std::size_t>(v)] = 1;
    for (NodeId c : dag.children(v)) stack.push_back(c);
  }
  std::vector<NodeId> relabel(static_cast<std::size_t>(dag.node_count()),
                              kInvalidNode);
  NodeId kept = 0;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (!removed[static_cast<std::size_t>(v)]) {
      relabel[static_cast<std::size_t>(v)] = kept++;
    }
  }
  Dag::Builder builder(kept);
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (removed[static_cast<std::size_t>(v)]) continue;
    for (NodeId c : dag.children(v)) {
      if (removed[static_cast<std::size_t>(c)]) continue;
      builder.add_edge(relabel[static_cast<std::size_t>(v)],
                       relabel[static_cast<std::size_t>(c)]);
    }
  }
  return std::move(builder).build();
}

Instance ShrinkInstance(const Instance& failing,
                        const FailurePredicate& still_fails, int max_evals,
                        std::int64_t* evals_used) {
  Instance current = failing;
  std::int64_t evals = 0;
  bool progress = true;
  while (progress && evals < max_evals) {
    progress = false;

    // Pass 1: drop whole jobs (cheapest big wins first).
    for (JobId i = 0; i < current.job_count() && evals < max_evals; ++i) {
      if (current.job_count() <= 1) break;
      Instance candidate = DropJob(current, i);
      ++evals;
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;  // restart the scan against the smaller instance
      }
    }
    if (progress) continue;

    // Pass 2: drop one subtree from one job.
    for (JobId i = 0; i < current.job_count() && !progress; ++i) {
      const Dag& dag = current.job(i).dag();
      for (NodeId v = 0; v < dag.node_count() && evals < max_evals; ++v) {
        Dag pruned = RemoveSubtree(dag, v);
        Instance candidate = pruned.empty()
                                 ? DropJob(current, i)
                                 : ReplaceJobDag(current, i, std::move(pruned));
        if (candidate.empty()) continue;
        ++evals;
        if (still_fails(candidate)) {
          current = std::move(candidate);
          progress = true;
          break;
        }
      }
    }
  }
  if (evals_used != nullptr) *evals_used += evals;
  return current;
}

namespace {

struct SeedOutcome {
  std::int64_t simulations = 0;
  std::int64_t oracle_checks = 0;
  std::int64_t shrink_evals = 0;
  std::vector<FuzzFailure> failures;
};

/// Failures per seed are capped: a systematic bug fires on every policy
/// and machine size, and one shrunk repro per few cases is worth more
/// than a thousand copies of the same stack of violations.
constexpr std::size_t kMaxFailuresPerSeed = 8;

std::string SanitizeForFilename(std::string text) {
  for (char& c : text) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '-';
  }
  return text;
}

void RecordFailure(const FuzzOptions& options, SeedOutcome& outcome,
                   const std::string& policy, int m, std::uint64_t seed,
                   OracleId oracle, const std::string& detail,
                   const Instance& instance, const std::string& kind,
                   Time known_opt, const FailurePredicate& still_fails) {
  FuzzFailure failure;
  failure.policy = policy;
  failure.m = m;
  failure.seed = seed;
  failure.oracle = oracle;
  failure.detail = detail;

  Instance shrunk =
      still_fails ? ShrinkInstance(instance, still_fails,
                                   options.max_shrink_evals,
                                   &outcome.shrink_evals)
                  : instance;

  std::ostringstream text;
  text << "# otsched_fuzz repro (deterministic; re-run with"
       << " `otsched_fuzz --replay <this file>`)\n"
       << "# policy: " << policy << "\n"
       << "# m: " << m << "\n"
       << "# seed: " << seed << "\n";
  if (known_opt > 0) text << "# known-opt: " << known_opt << "\n";
  text << "# oracle: " << ToString(oracle) << "\n"
       << "# detail: " << detail << "\n"
       << InstanceToText(shrunk);
  failure.instance_text = text.str();

  if (!options.repro_dir.empty()) {
    std::ostringstream name;
    name << "repro_seed" << seed << "_m" << m << '_'
         << SanitizeForFilename(policy) << '_'
         << SanitizeForFilename(ToString(oracle)) << '_' << kind << ".inst";
    const std::filesystem::path path =
        std::filesystem::path(options.repro_dir) / name.str();
    std::ofstream out(path);
    if (out.good()) {
      out << failure.instance_text;
      failure.repro_path = path.string();
    }
  }
  outcome.failures.push_back(std::move(failure));
}

/// The certificate oracle's fault leg: a deterministic BudgetTrace
/// derived purely from (seed, m).  Roughly half the cells get an empty
/// trace (healthy-machine sandwich only); the rest pin a short prefix of
/// slots to hash-derived capacities in [0, m], including hard m_t = 0
/// stalls.  Pure function of the cell — a replayed repro regenerates the
/// identical trace from its `# seed:` / `# m:` headers, so the
/// certificate leg needs no new repro state.
BudgetTrace CertificateBudgetTrace(std::uint64_t seed, int m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(seed);
  mix(static_cast<std::uint64_t>(m));
  mix(0x6365727469ULL);  // domain-separate from CaseIdentityHash
  BudgetTrace trace;
  if ((h & 1) != 0) return trace;
  const int pins = 1 + static_cast<int>((h >> 1) % 6);
  Time slot = 1 + static_cast<Time>((h >> 4) % 3);
  for (int i = 0; i < pins; ++i) {
    const int capacity =
        static_cast<int>((h >> (8 + 4 * i)) % static_cast<std::uint64_t>(m + 1));
    trace.set(slot, capacity);
    slot += 1 + static_cast<Time>((h >> (12 + 4 * i)) % 3);
  }
  return trace;
}

/// The certified lower-bound leg: runs CheckOptLowerBoundOracle on one
/// (instance, m) cell — healthy or, on hash-selected cells, under the
/// deterministic CertificateBudgetTrace — and records any violation under
/// the "<opt-certificate>" pseudo-policy.  `certified_opt` > 0
/// additionally pits the certificates against a generator-certified exact
/// OPT (the differential direction: certificate vs construction).
void RunCertificateCheck(const FuzzOptions& options, SeedOutcome& outcome,
                         std::uint64_t seed, int m, const Instance& instance,
                         const std::string& kind, Time certified_opt) {
  if (outcome.failures.size() >= kMaxFailuresPerSeed) return;
  const BudgetTrace trace = CertificateBudgetTrace(seed, m);
  OptBoundCheckOptions check;
  check.budget = trace.empty() ? nullptr : &trace;
  check.cross_check_brute_force = options.cross_check_brute_force;
  // The generator certifies OPT on a HEALTHY machine; under a degraded
  // budget the true optimum (and so the certified bound) may exceed it,
  // so the exact-OPT cross-check only applies to healthy cells.
  check.certified_opt = trace.empty() ? certified_opt : 0;
  ++outcome.oracle_checks;
  const OracleResult result = CheckOptLowerBoundOracle(instance, m, check);
  if (result.ok) return;
  const int m_local = m;
  const bool brute = options.cross_check_brute_force;
  const std::uint64_t seed_local = seed;
  RecordFailure(
      options, outcome, kOptCertificatePolicy, m, seed, result.id,
      result.detail, instance, kind, /*known_opt=*/0,
      // Shrink against the same cell, but drop the exact-OPT certificate:
      // it only covers the original instance.
      [m_local, brute, seed_local](const Instance& candidate) {
        if (candidate.empty()) return false;
        const BudgetTrace rerun_trace =
            CertificateBudgetTrace(seed_local, m_local);
        OptBoundCheckOptions rerun;
        rerun.budget = rerun_trace.empty() ? nullptr : &rerun_trace;
        rerun.cross_check_brute_force = brute;
        return !CheckOptLowerBoundOracle(candidate, m_local, rerun).ok;
      });
}

/// Runs every applicable policy on one instance and records violations.
void RunPolicyGrid(const FuzzOptions& options, SeedOutcome& outcome,
                   std::uint64_t seed, int m, const Instance& instance,
                   const std::string& kind, Time certified_opt,
                   Time known_opt, bool semi_batched_certified) {
  for (const PolicySpec& spec : AllPolicies()) {
    if (outcome.failures.size() >= kMaxFailuresPerSeed) return;
    if (!PolicyApplies(spec, instance.all_out_forests(),
                       semi_batched_certified, m)) {
      continue;
    }
    PolicyCaseConfig cfg;
    cfg.spec = &spec;
    cfg.seed = seed;
    cfg.m = m;
    cfg.known_opt = known_opt;
    cfg.certified_opt = certified_opt;
    cfg.brute_cross_check = options.cross_check_brute_force;
    cfg.job_faults = options.job_faults;

    const std::vector<OracleResult> results =
        RunPolicyCase(cfg, instance, &outcome.simulations);
    outcome.oracle_checks += static_cast<std::int64_t>(results.size());

    for (const OracleResult& result : results) {
      if (result.ok) continue;
      // Shrink against the same case, but re-derive the floor/ceiling
      // denominators per candidate: the exact-OPT certificate only covers
      // the original instance.
      PolicyCaseConfig shrink_cfg = cfg;
      shrink_cfg.certified_opt = 0;
      const OracleId target = result.id;
      FailurePredicate still_fails =
          [shrink_cfg, target](const Instance& candidate) {
            const std::vector<OracleResult> rerun =
                RunPolicyCase(shrink_cfg, candidate, nullptr);
            return AnyFailed(rerun, target, nullptr);
          };
      RecordFailure(options, outcome, spec.name, m, seed, result.id,
                    result.detail, instance, kind, known_opt, still_fails);
      if (outcome.failures.size() >= kMaxFailuresPerSeed) return;
    }
  }
}

SeedOutcome RunSeed(const FuzzOptions& options, std::uint64_t seed) {
  SeedOutcome outcome;
  Rng rng(options.seed_base + seed * 0x9E3779B97F4A7C15ULL);

  // ---- instance 1: general online mix ----
  const int jobs =
      2 + static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(std::max(1, options.max_jobs - 1))));
  const NodeId max_nodes = std::max<NodeId>(4, options.max_job_nodes);
  Instance general = MakePoissonArrivals(
      jobs, 0.15,
      [max_nodes](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(
                            4 + r.next_below(
                                    static_cast<std::uint64_t>(max_nodes - 3))),
                        r);
      },
      rng);
  {
    std::ostringstream name;
    name << "fuzz-general-seed" << seed;
    general.set_name(name.str());
  }

  for (int m : options.machine_sizes) {
    if (outcome.failures.size() >= kMaxFailuresPerSeed) return outcome;

    // Certificate soundness: the lower bounds may never exceed true OPT.
    if (options.cross_check_brute_force) {
      const Time brute = TryBruteOpt(general, m);
      if (brute > 0) {
        ++outcome.oracle_checks;
        const Time lb = MaxFlowLowerBound(general, m);
        if (lb > brute) {
          std::ostringstream detail;
          detail << "lower bound " << lb << " exceeds brute-force OPT "
                 << brute << " on " << m << " processors";
          const int m_local = m;
          RecordFailure(
              options, outcome, kLowerBoundsPolicy, m, seed,
              OracleId::kRatioCeiling, detail.str(), general, "gen",
              /*known_opt=*/0, [m_local](const Instance& candidate) {
                const Time candidate_brute = TryBruteOpt(candidate, m_local);
                return candidate_brute > 0 &&
                       MaxFlowLowerBound(candidate, m_local) >
                           candidate_brute;
              });
        }
      }
    }

    // Certified-bound sandwich on the same cell (healthy + derived
    // budget-trace legs).
    if (options.opt_certificates) {
      RunCertificateCheck(options, outcome, seed, m, general, "gen",
                          /*certified_opt=*/0);
    }

    RunPolicyGrid(options, outcome, seed, m, general, "gen",
                  /*certified_opt=*/0, /*known_opt=*/0,
                  /*semi_batched_certified=*/false);
  }

  // ---- instance 2: certified semi-batched (exact OPT known) ----
  for (int m : options.machine_sizes) {
    if (outcome.failures.size() >= kMaxFailuresPerSeed) return outcome;
    if (m % 4 != 0 || m < 2) continue;  // pipelined gen needs m even;
                                        // Algorithm A needs alpha | m
    const Time delta = 1 + static_cast<Time>(rng.next_below(3));
    const int batches = 2 + static_cast<int>(rng.next_below(3));
    CertifiedInstance certified =
        MakePipelinedSemiBatchedInstance(m, delta, batches, rng);
    {
      std::ostringstream name;
      name << "fuzz-certified-seed" << seed << "-m" << m;
      certified.instance.set_name(name.str());
    }
    // The differential direction: the certificates must stay below the
    // generator-certified exact OPT.
    if (options.opt_certificates) {
      RunCertificateCheck(options, outcome, seed, m, certified.instance,
                          "cert", /*certified_opt=*/certified.opt);
    }
    RunPolicyGrid(options, outcome, seed, m, certified.instance, "cert",
                  /*certified_opt=*/certified.opt,
                  /*known_opt=*/certified.opt,
                  /*semi_batched_certified=*/true);
  }

  // ---- single-job structural oracles on the generated trees ----
  const int alpha = options.alpha;
  const JobId structural_jobs = std::min<JobId>(2, general.job_count());
  for (JobId j = 0; j < structural_jobs; ++j) {
    for (int m : options.machine_sizes) {
      if (outcome.failures.size() >= kMaxFailuresPerSeed) return outcome;
      const Dag& dag = general.job(j).dag();
      const std::vector<OracleResult> results = CheckSingleJobOracles(
          dag, m, alpha, options.cross_check_brute_force);
      outcome.oracle_checks += static_cast<std::int64_t>(results.size());
      for (const OracleResult& result : results) {
        if (result.ok) continue;
        Instance single;
        single.add_job(Job(Dag(dag), 0));
        {
          std::ostringstream name;
          name << "fuzz-structural-seed" << seed << "-job" << j;
          single.set_name(name.str());
        }
        const OracleId target = result.id;
        const int m_local = m;
        const bool brute = options.cross_check_brute_force;
        RecordFailure(
            options, outcome, kStructuralPolicy, m, seed, result.id,
            result.detail, single, "tree",
            /*known_opt=*/0,
            [target, m_local, alpha, brute](const Instance& candidate) {
              if (candidate.empty()) return false;
              const std::vector<OracleResult> rerun = CheckSingleJobOracles(
                  candidate.job(0).dag(), m_local, alpha, brute);
              return AnyFailed(rerun, target, nullptr);
            });
      }
    }
  }
  return outcome;
}

}  // namespace

std::string FuzzReport::summary() const {
  std::ostringstream out;
  out << "otsched_fuzz: " << simulations << " simulations, " << oracle_checks
      << " oracle checks, " << shrink_evals << " shrink evaluations, "
      << failures.size() << " invariant violation"
      << (failures.size() == 1 ? "" : "s") << "\n";
  for (const FuzzFailure& failure : failures) {
    out << "  [" << ToString(failure.oracle) << "] policy=" << failure.policy
        << " m=" << failure.m << " seed=" << failure.seed << ": "
        << failure.detail << "\n";
    if (!failure.repro_path.empty()) {
      out << "    repro: " << failure.repro_path << "\n";
    }
  }
  return out.str();
}

FuzzReport RunDifferentialFuzz(const FuzzOptions& options) {
  OTSCHED_CHECK(options.seeds >= 1, "need at least one fuzz seed");
  OTSCHED_CHECK(!options.machine_sizes.empty(),
                "need at least one machine size");
  for (int m : options.machine_sizes) {
    OTSCHED_CHECK(m >= 1, "machine sizes must be positive, got " << m);
  }
  OTSCHED_CHECK(options.alpha >= 2, "alpha must be at least 2");

  if (!options.repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.repro_dir, ec);
    OTSCHED_CHECK(!ec, "cannot create repro directory "
                           << options.repro_dir << ": " << ec.message());
  }

  const BatchRunner runner(options.workers);
  std::vector<SeedOutcome> outcomes = runner.Map<SeedOutcome>(
      static_cast<std::size_t>(options.seeds), [&](std::size_t i) {
        return RunSeed(options, static_cast<std::uint64_t>(i));
      });

  FuzzReport report;
  for (SeedOutcome& outcome : outcomes) {
    report.simulations += outcome.simulations;
    report.oracle_checks += outcome.oracle_checks;
    report.shrink_evals += outcome.shrink_evals;
    for (FuzzFailure& failure : outcome.failures) {
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

FuzzReport ReplayRepro(const std::string& repro_text,
                       const FuzzOptions& options) {
  // Parse the provenance headers the harness wrote.
  std::string policy;
  int m = 1;
  std::uint64_t seed = 0;
  Time known_opt = 0;
  {
    std::istringstream in(repro_text);
    std::string line;
    while (std::getline(in, line)) {
      auto field = [&line](const char* key) -> std::string {
        const std::string prefix = std::string("# ") + key + ": ";
        if (line.rfind(prefix, 0) != 0) return "";
        return line.substr(prefix.size());
      };
      if (std::string v = field("policy"); !v.empty()) policy = v;
      if (std::string v = field("m"); !v.empty()) m = std::stoi(v);
      if (std::string v = field("seed"); !v.empty()) seed = std::stoull(v);
      if (std::string v = field("known-opt"); !v.empty()) {
        known_opt = std::stoll(v);
      }
    }
  }
  FuzzReport report;
  // Repro files are hand-editable; a broken header is a reported failure,
  // not a contract violation.
  auto malformed = [&](const std::string& detail) {
    FuzzFailure failure;
    failure.policy = "<malformed-repro>";
    failure.m = m;
    failure.seed = seed;
    failure.detail = detail;
    failure.instance_text = repro_text;
    report.failures.push_back(std::move(failure));
    return report;
  };
  if (policy.empty()) {
    return malformed("repro file is missing the '# policy:' header");
  }
  const Instance instance = InstanceFromText(repro_text);

  auto record = [&](const OracleResult& result) {
    ++report.oracle_checks;
    if (result.ok) return;
    FuzzFailure failure;
    failure.policy = policy;
    failure.m = m;
    failure.seed = seed;
    failure.oracle = result.id;
    failure.detail = result.detail;
    failure.instance_text = repro_text;
    report.failures.push_back(std::move(failure));
  };

  if (policy == kStructuralPolicy) {
    if (instance.empty()) return malformed("structural repro has no job");
    for (const OracleResult& result :
         CheckSingleJobOracles(instance.job(0).dag(), m, options.alpha,
                               options.cross_check_brute_force)) {
      record(result);
    }
    return report;
  }
  if (policy == kOptCertificatePolicy) {
    // Re-derive the cell's budget trace from the headers (pure function
    // of seed and m) and re-run the certificate sandwich.  The exact-OPT
    // cross-check is dropped: the generator's certificate covered the
    // original, unshrunk instance only.
    const BudgetTrace trace = CertificateBudgetTrace(seed, m);
    OptBoundCheckOptions check;
    check.budget = trace.empty() ? nullptr : &trace;
    check.cross_check_brute_force = options.cross_check_brute_force;
    record(CheckOptLowerBoundOracle(instance, m, check));
    return report;
  }
  if (policy == kLowerBoundsPolicy) {
    const Time brute = TryBruteOpt(instance, m);
    const Time lb = MaxFlowLowerBound(instance, m);
    OracleResult result{OracleId::kRatioCeiling, true, ""};
    if (brute > 0 && lb > brute) {
      std::ostringstream detail;
      detail << "lower bound " << lb << " exceeds brute-force OPT " << brute
             << " on " << m << " processors";
      result = {OracleId::kRatioCeiling, false, detail.str()};
    }
    record(result);
    return report;
  }

  const PolicySpec* spec = nullptr;
  for (const PolicySpec& candidate : AllPolicies()) {
    if (candidate.name == policy) spec = &candidate;
  }
  if (spec == nullptr) {
    return malformed("unknown policy in repro: " + policy);
  }
  if (spec->needs_semi_batched && known_opt <= 0) {
    return malformed("semi-batched repro is missing the '# known-opt:' header");
  }
  PolicyCaseConfig cfg;
  cfg.spec = spec;
  cfg.seed = seed;
  cfg.m = m;
  cfg.known_opt = known_opt;
  cfg.brute_cross_check = options.cross_check_brute_force;
  cfg.job_faults = options.job_faults;
  for (const OracleResult& result :
       RunPolicyCase(cfg, instance, &report.simulations)) {
    record(result);
  }
  return report;
}

}  // namespace otsched
