// Differential fuzz harness: every registered policy, on shared seeded
// random instances, cross-validated through the invariant oracles.
//
// Per fuzz seed the harness builds
//   * a general online mix (Poisson arrivals of random out-trees), and
//   * a certified semi-batched instance (known exact OPT by construction)
// and for every (instance, m, policy) triple checks
//   * the Section 3 feasibility axioms of the produced schedule,
//   * the flow floor: no policy may beat a certified OPT or any
//     opt/lower_bounds certificate (a "too good" flow means the bound or
//     the flow accounting is broken — the differential part),
//   * the Theorem 5.6 / 5.7 ratio ceilings for Algorithm A,
// plus the single-job structural oracles (Corollary 5.4, Lemma 5.2,
// Lemma 5.5) on the generated trees themselves, and per (instance, m)
// cell the certified lower-bound sandwich (CheckOptLowerBoundOracle:
// heuristic bounds <= dual-fit certificate <= max-flow certificate <=
// brute-force OPT, every certificate self-verifying) — on hash-selected
// cells additionally under a deterministic fluctuating BudgetTrace, and
// on certified instances against the generator's exact OPT.
//
// The seed grid is drained in parallel over common/thread_pool.  On
// failure the harness greedily shrinks the instance — dropping whole jobs,
// then subtrees — while the violation persists, and serializes a minimal
// deterministic repro via job/serialize.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "job/instance.h"

namespace otsched {

struct FuzzOptions {
  int seeds = 64;
  std::uint64_t seed_base = 1;
  /// Maximum jobs per generated instance (at least 2 are generated).
  int max_jobs = 10;
  /// Maximum subjobs per generated job.
  NodeId max_job_nodes = 36;
  std::vector<int> machine_sizes = {1, 2, 3, 4, 8};
  int alpha = 4;
  /// Cross-check Corollary 5.4 and the lower bounds against exhaustive
  /// search on instances small enough for opt/brute_force.
  bool cross_check_brute_force = true;
  /// Run the certified lower-bound oracle (max-flow + dual-fitting
  /// certificates, CheckOptLowerBoundOracle) on every (instance, m) cell.
  bool opt_certificates = true;
  /// Run the job-fault dimension (sim/job_faults.h) on every applicable
  /// case: an armed-but-silent rerun held to bit-identity with the plain
  /// run (kNoLostWorkWhenHealthy), plus an actively crashing rerun whose
  /// streamed trace must pass Section 3 feasibility over committed work
  /// and reconcile executes == total work + wasted.  Both legs derive
  /// their specs purely from (seed, m, policy), so `--replay` reruns
  /// them with no extra repro state.
  bool job_faults = false;
  /// Thread-pool width; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Directory for shrunk repro files; empty = keep repros in memory only.
  std::string repro_dir;
  /// Budget of candidate evaluations per failure during shrinking.
  int max_shrink_evals = 160;
};

struct FuzzFailure {
  /// Registry policy name, or a pseudo-policy for policy-independent
  /// checks ("<lpf-structural>", "<lower-bounds>", "<opt-certificate>").
  std::string policy;
  int m = 0;
  std::uint64_t seed = 0;
  OracleId oracle = OracleId::kFeasibility;
  std::string detail;
  /// The shrunk instance, serialized (with provenance comments).
  std::string instance_text;
  /// Where the repro was written ("" when repro_dir is empty).
  std::string repro_path;
};

struct FuzzReport {
  std::int64_t simulations = 0;
  std::int64_t oracle_checks = 0;
  std::int64_t shrink_evals = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// Human-readable multi-line summary.
  std::string summary() const;
};

/// Runs the whole grid.  Deterministic for fixed options (worker count
/// does not affect the outcome, only the wall clock).
FuzzReport RunDifferentialFuzz(const FuzzOptions& options);

/// Re-runs one repro exactly as serialized by the harness (the `# policy`,
/// `# m`, `# seed`, `# known-opt` comment headers select the case) and
/// reports any violation that is still present.  Deterministic: the same
/// file yields the same verdict on every machine.
FuzzReport ReplayRepro(const std::string& repro_text,
                       const FuzzOptions& options);

// ---- exposed for unit tests ----

/// Returns true when the candidate still exhibits the failure under
/// investigation.
using FailurePredicate = std::function<bool(const Instance&)>;

/// Greedy minimization: repeatedly drop whole jobs, then subtrees, while
/// `still_fails` holds, spending at most `max_evals` candidate
/// evaluations.  Returns the smallest failing instance found.
Instance ShrinkInstance(const Instance& failing,
                        const FailurePredicate& still_fails, int max_evals,
                        std::int64_t* evals_used = nullptr);

/// Removes `root` and all of its descendants, relabelling the survivors
/// densely (id order preserved).  An out-forest stays an out-forest.
Dag RemoveSubtree(const Dag& dag, NodeId root);

}  // namespace otsched
