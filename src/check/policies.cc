#include "check/policies.h"

#include "check/oracles.h"
#include "core/alg_a.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/remaining_work.h"
#include "sched/round_robin.h"
#include "sched/work_stealing.h"

namespace otsched {
namespace {

PolicySpec Fifo(const std::string& name, FifoTieBreak tie_break) {
  PolicySpec spec;
  spec.name = name;
  spec.make = [tie_break](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
    FifoScheduler::Options options;
    options.tie_break = tie_break;
    options.seed = seed;
    return std::make_unique<FifoScheduler>(std::move(options));
  };
  return spec;
}

std::vector<PolicySpec> BuildRegistry() {
  std::vector<PolicySpec> registry;

  // src/sched — the baseline zoo.
  registry.push_back(Fifo("fifo/first-ready", FifoTieBreak::kFirstReady));
  registry.push_back(Fifo("fifo/last-ready", FifoTieBreak::kLastReady));
  registry.push_back(Fifo("fifo/random", FifoTieBreak::kRandom));
  registry.push_back(Fifo("fifo/lpf-height", FifoTieBreak::kLpfHeight));
  registry.push_back(Fifo("fifo/most-children", FifoTieBreak::kMostChildren));

  {
    PolicySpec spec;
    spec.name = "list-greedy";
    spec.make = [](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
      return std::make_unique<ListGreedyScheduler>(seed);
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "round-robin-equi";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<RoundRobinScheduler>();
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "work-stealing";
    spec.make = [](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
      WorkStealingScheduler::Options options;
      options.seed = seed;
      return std::make_unique<WorkStealingScheduler>(std::move(options));
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "remaining-work/smallest";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<RemainingWorkScheduler>(
          RemainingWorkOrder::kSmallestFirst);
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "remaining-work/largest";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<RemainingWorkScheduler>(
          RemainingWorkOrder::kLargestFirst);
    };
    registry.push_back(std::move(spec));
  }

  // src/core — the Section 5 machinery.
  {
    PolicySpec spec;
    spec.name = "global-lpf";
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<GlobalLpfScheduler>();
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "alg-a/general";
    spec.needs_out_forests = true;
    spec.needs_alpha_divides_m = true;
    spec.ratio_ceiling = kTheorem57Ceiling;
    spec.make = [](std::uint64_t) -> std::unique_ptr<Scheduler> {
      return std::make_unique<AlgAScheduler>();
    };
    registry.push_back(std::move(spec));
  }
  {
    PolicySpec spec;
    spec.name = "alg-a/semi-batched";
    spec.needs_out_forests = true;
    spec.needs_alpha_divides_m = true;
    spec.needs_semi_batched = true;
    spec.ratio_ceiling = kTheorem56Ceiling;
    spec.make_semi_batched =
        [](Time known_opt) -> std::unique_ptr<Scheduler> {
      AlgASemiBatchedScheduler::Options options;
      options.known_opt = known_opt;
      return std::make_unique<AlgASemiBatchedScheduler>(std::move(options));
    };
    registry.push_back(std::move(spec));
  }

  return registry;
}

}  // namespace

const std::vector<PolicySpec>& AllPolicies() {
  static const std::vector<PolicySpec> registry = BuildRegistry();
  return registry;
}

bool PolicyApplies(const PolicySpec& spec, bool all_out_forests,
                   bool semi_batched_certified, int m) {
  if (spec.needs_out_forests && !all_out_forests) return false;
  if (spec.needs_alpha_divides_m && m % 4 != 0) return false;
  if (spec.needs_semi_batched && !semi_batched_certified) return false;
  return true;
}

}  // namespace otsched
