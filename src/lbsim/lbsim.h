// Specialized fast simulator for FIFO on the Section 4 lower-bound family.
//
// The Section 4 instance is defined ADAPTIVELY against FIFO: job J_i is
// released at i*(m+1) and consists of (up to) m layers; the first time
// FIFO schedules anything from a fresh layer with q processors available,
// the layer is fixed to have q+1 subjobs, one of which — the one FIFO did
// not schedule — becomes the *key* subjob, parent of the whole next layer.
// Every arbitrary-tie-break FIFO realizes the same dynamics, because the
// adversary names the key AFTER seeing FIFO's choice.
//
// On this family FIFO's behaviour per slot collapses to a tiny state
// machine per job ("fresh layer" eats every remaining processor, "key
// pending" eats exactly one), so the co-simulation runs in O(alive jobs)
// per slot instead of O(m) — that is what makes the Theorem 4.2 sweep
// reach m = 4096.  The generic engine + FifoScheduler(kAvoidMarked) on the
// materialized instance reproduces these flows exactly; a test checks
// this cross-validation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace otsched {

struct LowerBoundSimOptions {
  int m = 16;
  /// Number of jobs released (job i arrives at i*(m+1)).  The paper's
  /// Theorem 4.2 argument uses 2*m*lg(m) jobs; the queue saturates much
  /// earlier in practice.
  std::int64_t num_jobs = 256;
  /// Layers per job; the paper uses exactly m.
  int layers_per_job = -1;  // -1 = m
  /// Record U(t) (unfinished sublayers of already-released jobs) at every
  /// release boundary t = k*(m+1) — the quantity tracked by Lemma 4.1.
  bool record_sublayer_trace = true;
  /// Record per-job layer sizes (needed to materialize the instance).
  /// Costs O(num_jobs * layers) memory — disable for deep ratio sweeps.
  bool record_layer_sizes = true;
};

struct LowerBoundSimResult {
  int m = 0;
  std::int64_t num_jobs = 0;
  /// Realized layer sizes: layer_sizes[i][l] for job i, layer l (0-based).
  std::vector<std::vector<int>> layer_sizes;
  /// Completion slot and flow per job under the co-simulated FIFO.
  std::vector<Time> completion;
  std::vector<Time> flow;
  Time max_flow = 0;
  /// OPT certification: the instance admits a schedule with maximum flow
  /// <= m + 1 by construction (run each layer's key at r_i + l).
  Time certified_opt_upper = 0;  // = m + 1
  /// Lower bound on OPT (per-job span: the key spine has `layers` nodes,
  /// plus one leaf).
  Time opt_lower = 0;
  /// U(k*(m+1)) trace, one entry per release boundary (Lemma 4.1).
  std::vector<std::int64_t> sublayer_trace;
  /// Largest number of simultaneously alive jobs observed.
  std::int64_t max_alive = 0;
  Time horizon = 0;
};

/// Co-simulates arbitrary FIFO against the adaptive adversary.
LowerBoundSimResult RunLowerBoundSim(const LowerBoundSimOptions& options);

}  // namespace otsched
