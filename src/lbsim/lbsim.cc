#include "lbsim/lbsim.h"

#include <algorithm>
#include <deque>

#include "common/assert.h"

namespace otsched {
namespace {

enum class Stage : std::uint8_t { kFresh, kKeyPending };

struct JobState {
  std::int64_t id = 0;
  int layer = 0;  // 0-based index of the current layer
  Stage stage = Stage::kFresh;
};

}  // namespace

LowerBoundSimResult RunLowerBoundSim(const LowerBoundSimOptions& options) {
  const int m = options.m;
  OTSCHED_CHECK(m >= 2);
  OTSCHED_CHECK(options.num_jobs >= 1);
  const int layers = options.layers_per_job > 0 ? options.layers_per_job : m;
  const Time gap = m + 1;  // release period

  LowerBoundSimResult result;
  result.m = m;
  result.num_jobs = options.num_jobs;
  result.certified_opt_upper = gap;
  result.opt_lower = layers;  // span of the key spine
  if (options.record_layer_sizes) {
    result.layer_sizes.assign(static_cast<std::size_t>(options.num_jobs),
                              {});
  }
  result.completion.assign(static_cast<std::size_t>(options.num_jobs),
                           kNoTime);
  result.flow.assign(static_cast<std::size_t>(options.num_jobs), 0);

  std::deque<JobState> alive;  // FIFO order (jobs arrive in id order)
  std::int64_t next_job = 0;
  std::int64_t unfinished_released = 0;

  // Unfinished sublayers per alive job: 2 per remaining layer, minus one
  // if the current layer's parallel sublayer is already done.
  auto sublayers_left = [&](const JobState& job) -> std::int64_t {
    std::int64_t left = 2LL * (layers - job.layer);
    if (job.stage == Stage::kKeyPending) --left;
    return left;
  };

  Time t = 0;
  while (next_job < options.num_jobs || !alive.empty()) {
    ++t;
    if (alive.empty() && next_job < options.num_jobs) {
      // Fast-forward to the next arrival, recording empty-queue trace
      // points for the boundaries we skip.
      const Time next_release = next_job * gap;
      while (options.record_sublayer_trace &&
             static_cast<Time>(result.sublayer_trace.size() + 1) * gap <
                 next_release + 1) {
        result.sublayer_trace.push_back(0);
      }
      t = std::max(t, next_release + 1);
    }
    // Releases: job i is released at i*gap and can run from slot i*gap+1.
    while (next_job < options.num_jobs && next_job * gap < t) {
      alive.push_back(JobState{next_job, 0, Stage::kFresh});
      if (options.record_layer_sizes) {
        result.layer_sizes[static_cast<std::size_t>(next_job)].assign(
            static_cast<std::size_t>(layers), 0);
      }
      ++next_job;
      ++unfinished_released;
    }
    result.max_alive =
        std::max(result.max_alive, static_cast<std::int64_t>(alive.size()));

    // One FIFO slot.
    int avail = m;
    for (auto it = alive.begin(); it != alive.end() && avail > 0; ++it) {
      JobState& job = *it;
      if (job.stage == Stage::kKeyPending) {
        // Only the key subjob of the current layer is ready: run it.
        --avail;
        ++job.layer;
        job.stage = Stage::kFresh;
        if (job.layer == layers) {
          result.completion[static_cast<std::size_t>(job.id)] = t;
          result.flow[static_cast<std::size_t>(job.id)] = t - job.id * gap;
          --unfinished_released;
        }
      } else {
        // Fresh layer: the adversary fixes its size to avail+1, FIFO runs
        // the avail non-key subjobs, and the unscheduled one becomes the
        // key.  All remaining processors are consumed.
        if (options.record_layer_sizes) {
          result.layer_sizes[static_cast<std::size_t>(job.id)]
                            [static_cast<std::size_t>(job.layer)] =
              avail + 1;
        }
        job.stage = Stage::kKeyPending;
        avail = 0;
      }
    }
    std::erase_if(alive,
                  [layers](const JobState& job) { return job.layer == layers; });

    if (options.record_sublayer_trace && t % gap == 0) {
      // U(t): unfinished sublayers of jobs released strictly before t,
      // measured after slot t completes.  All alive jobs were released
      // strictly before t (the job released exactly at t arrives at slot
      // t+1).
      std::int64_t u = 0;
      for (const JobState& job : alive) u += sublayers_left(job);
      const auto boundary = static_cast<std::size_t>(t / gap);
      if (result.sublayer_trace.size() < boundary) {
        result.sublayer_trace.resize(boundary, 0);
      }
      result.sublayer_trace[boundary - 1] = u;
    }
  }

  result.horizon = t;
  for (Time flow : result.flow) result.max_flow = std::max(result.max_flow, flow);

  // Any layer never touched keeps size 0; that only happens for jobs cut
  // short by the simulation end, which cannot occur because we drain the
  // queue.  Assert the invariant.
  if (options.record_layer_sizes) {
    for (const auto& sizes : result.layer_sizes) {
      for (int size : sizes) {
        OTSCHED_CHECK(size >= 1, "undefined layer size after drain");
      }
    }
  }
  return result;
}

}  // namespace otsched
