// Tests for the batched SlotEvent delivery contract (sim/observer.h):
// native on_slot_batch consumption and the default per-pick replay must
// produce identical observations for every registry policy on every
// engine, and the ring-buffer flush discipline (pre-execution, end of
// slot, buffer-full) must hold down to a capacity of one record.
#include "gtest_compat.h"

#include <string>
#include <vector>

#include "advsim/adaptive.h"
#include "common/metrics.h"
#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "sched/fifo.h"
#include "sched/registry.h"
#include "sim/engine.h"
#include "sim/observers.h"
#include "sim/trace.h"

namespace otsched {
namespace {

Instance MixedInstance(std::uint64_t seed, int jobs) {
  Rng rng(seed);
  return MakePoissonArrivals(
      jobs, 0.25,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(6 + r.next_below(18)), r);
      },
      rng);
}

/// Forwards every fine-grained hook to a target WITHOUT overriding
/// on_slot_batch, so the engine's batches go through RunObserver's
/// default replay adapter before reaching the target.  Wrapping a sink
/// in this is exactly "per-pick delivery": comparing a wrapped sink
/// against a bare one proves the replay and the native batch path are
/// observationally identical.
class ReplayThroughFineHooks final : public RunObserver {
 public:
  explicit ReplayThroughFineHooks(RunObserver& target) : target_(target) {}

  void on_run_begin(const EngineBackend& engine) override {
    target_.on_run_begin(engine);
  }
  void on_slot_begin(Time slot, const EngineBackend& engine) override {
    target_.on_slot_begin(slot, engine);
  }
  void on_arrival(Time slot, JobId job) override {
    target_.on_arrival(slot, job);
  }
  void on_capacity_change(Time slot, int capacity) override {
    target_.on_capacity_change(slot, capacity);
  }
  void on_pick(Time slot, const EngineBackend& engine,
               std::span<const SubjobRef> picks,
               double pick_seconds) override {
    target_.on_pick(slot, engine, picks, pick_seconds);
  }
  void on_execute(Time slot, SubjobRef ref) override {
    target_.on_execute(slot, ref);
  }
  void on_complete(Time slot, JobId job) override {
    target_.on_complete(slot, job);
  }
  void on_finish(const SimResult& result) override {
    target_.on_finish(result);
  }
  bool wants_pick_timing() const override {
    return target_.wants_pick_timing();
  }
  // on_slot_batch deliberately NOT overridden: the default replays.

 private:
  RunObserver& target_;
};

/// Copies every delivered batch verbatim for boundary assertions.
class BatchRecorder final : public RunObserver {
 public:
  void on_slot_batch(const EngineBackend& engine,
                     std::span<const SlotEvent> events) override {
    (void)engine;
    batches_.emplace_back(events.begin(), events.end());
  }
  bool wants_pick_timing() const override { return false; }

  const std::vector<std::vector<SlotEvent>>& batches() const {
    return batches_;
  }
  std::vector<SlotEvent> stream() const {
    std::vector<SlotEvent> all;
    for (const auto& batch : batches_) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
  }

 private:
  std::vector<std::vector<SlotEvent>> batches_;
};

bool SameEvent(const SlotEvent& a, const SlotEvent& b) {
  // `seconds` is excluded: pick wall time is nondeterministic (and 0
  // whenever no attached observer wants it).
  return a.kind == b.kind && a.job == b.job && a.node == b.node &&
         a.value == b.value && a.slot == b.slot && a.width == b.width;
}

using EngineFn = SimResult (*)(const Instance&, int, Scheduler&,
                               const RunContext&);

// ---- native vs replayed delivery ----

TEST(BatchDelivery, NativeAndReplayedSinksAgreeForAllPolicies) {
  const Instance instance = MixedInstance(404, 6);
  const struct {
    const char* name;
    EngineFn run;
  } engines[] = {{"Simulate", &Simulate},
                 {"ReferenceSimulate", &ReferenceSimulate}};
  for (const PolicySpec& spec : AllPolicies()) {
    if (!PolicyApplies(spec, instance.all_out_forests(),
                       /*semi_batched_certified=*/false, /*m=*/4)) {
      continue;
    }
    for (const auto& engine : engines) {
      for (RecordMode record : {RecordMode::kFull, RecordMode::kFlowOnly}) {
        auto scheduler = spec.make(13);

        MetricsObserver::Options metric_options;
        metric_options.record_pick_times = false;  // nondeterministic
        MetricsRegistry native_registry;
        MetricsObserver native_metrics(native_registry, metric_options);
        MetricsRegistry replayed_registry;
        MetricsObserver replayed_target(replayed_registry, metric_options);
        ReplayThroughFineHooks replayed_metrics(replayed_target);

        EventTrace native_trace;
        StreamingTraceObserver native_tracer(native_trace);
        EventTrace replayed_trace;
        StreamingTraceObserver replayed_tracer_target(replayed_trace);
        ReplayThroughFineHooks replayed_tracer(replayed_tracer_target);

        // One run, both delivery styles attached: any divergence is the
        // adapter's fault, not run-to-run nondeterminism.
        ObserverList observers;
        observers.add(&native_metrics);
        observers.add(&replayed_metrics);
        observers.add(&native_tracer);
        observers.add(&replayed_tracer);
        SimOptions options;
        options.record = record;
        RunContext context{options, &observers};
        const SimResult result =
            engine.run(instance, 4, *scheduler, context);

        const std::string label = std::string(spec.name) + " on " +
                                  engine.name +
                                  (record == RecordMode::kFull
                                       ? " [full]"
                                       : " [flow-only]");
        EXPECT_EQ(native_registry.to_json(), replayed_registry.to_json())
            << label;
        EXPECT_EQ(FirstDivergence(native_trace, replayed_trace), -1)
            << label;
        if (record == RecordMode::kFull) {
          EXPECT_EQ(FirstDivergence(
                        native_trace,
                        DeriveTrace(result.full_schedule(), instance)),
                    -1)
              << label;
        }
      }
    }
  }
}

TEST(BatchDelivery, AdaptiveEngineAgreesAcrossDeliveryStyles) {
  AdaptiveAdversaryOptions options;
  options.m = 4;
  options.num_jobs = 5;
  FifoScheduler fifo;

  MetricsObserver::Options metric_options;
  metric_options.record_pick_times = false;
  MetricsRegistry native_registry;
  MetricsObserver native_metrics(native_registry, metric_options);
  MetricsRegistry replayed_registry;
  MetricsObserver replayed_target(replayed_registry, metric_options);
  ReplayThroughFineHooks replayed_metrics(replayed_target);
  EventTrace native_trace;
  StreamingTraceObserver native_tracer(native_trace);
  EventTrace replayed_trace;
  StreamingTraceObserver replayed_tracer_target(replayed_trace);
  ReplayThroughFineHooks replayed_tracer(replayed_tracer_target);

  ObserverList observers;
  observers.add(&native_metrics);
  observers.add(&replayed_metrics);
  observers.add(&native_tracer);
  observers.add(&replayed_tracer);
  RunContext context;
  context.observer = &observers;
  const AdaptiveAdversaryResult result =
      RunAdaptiveAdversary(fifo, options, context);

  EXPECT_EQ(native_registry.to_json(), replayed_registry.to_json());
  EXPECT_EQ(FirstDivergence(native_trace, replayed_trace), -1);
  EXPECT_EQ(FirstDivergence(native_trace, DeriveTrace(result.full_schedule(),
                                                      result.instance)),
            -1);
}

// ---- flush discipline ----

TEST(BatchDelivery, FlushBoundariesHoldDownToCapacityOne) {
  const Instance instance = MixedInstance(88, 6);
  const struct {
    const char* name;
    EngineFn run;
  } engines[] = {{"Simulate", &Simulate},
                 {"ReferenceSimulate", &ReferenceSimulate}};
  for (const auto& engine : engines) {
    // The reference stream: one engine pass at the default capacity.
    FifoScheduler baseline_fifo;
    BatchRecorder baseline;
    RunContext baseline_context{FlowOnlyOptions(), &baseline};
    engine.run(instance, 3, baseline_fifo, baseline_context);
    const std::vector<SlotEvent> want = baseline.stream();
    ASSERT_FALSE(want.empty()) << engine.name;

    for (std::size_t capacity : {std::size_t{1}, std::size_t{2},
                                 std::size_t{3}, std::size_t{5},
                                 std::size_t{8}}) {
      FifoScheduler fifo;
      BatchRecorder recorder;
      RunContext context{FlowOnlyOptions(), &recorder, capacity};
      engine.run(instance, 3, fifo, context);
      const std::string label =
          std::string(engine.name) + " capacity=" + std::to_string(capacity);

      for (const auto& batch : recorder.batches()) {
        ASSERT_FALSE(batch.empty()) << label << ": empty flush";
        // Batches never span slots.
        for (const SlotEvent& event : batch) {
          EXPECT_EQ(event.slot, batch.front().slot) << label;
        }
        // A pick block (kPickBegin + its kExecute records) is never
        // split: the `value` executes follow their kPickBegin in the
        // SAME batch, contiguously, even when the block alone exceeds
        // the ring capacity (m=3 > capacity=1).
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (batch[i].kind != SlotEvent::Kind::kPickBegin) continue;
          const auto picked = static_cast<std::size_t>(batch[i].value);
          ASSERT_LE(i + picked, batch.size()) << label << ": split block";
          for (std::size_t k = 1; k <= picked; ++k) {
            EXPECT_EQ(batch[i + k].kind, SlotEvent::Kind::kExecute)
                << label;
            EXPECT_EQ(batch[i + k].slot, batch[i].slot) << label;
          }
        }
        // Oversized batches happen only to keep a block contiguous.
        if (batch.size() > capacity) {
          EXPECT_EQ(batch.front().kind, SlotEvent::Kind::kPickBegin)
              << label << ": oversized batch without a pick block";
        }
      }

      // The capacity changes WHERE the stream is cut, never WHAT it
      // carries: the concatenation is identical to the default-capacity
      // stream record for record.
      const std::vector<SlotEvent> got = recorder.stream();
      ASSERT_EQ(got.size(), want.size()) << label;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(SameEvent(got[i], want[i])) << label << " event " << i;
      }
    }
  }
}

TEST(BatchDelivery, PickBeginCarriesAliveAndReadyWidth) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeStar(4), 0));
  FifoScheduler fifo;
  BatchRecorder recorder;
  RunContext context{SimOptions{}, &recorder};
  const SimResult result = Simulate(instance, 2, fifo, context);

  std::int64_t executes = 0;
  std::int64_t slots = 0;
  for (const SlotEvent& event : recorder.stream()) {
    switch (event.kind) {
      case SlotEvent::Kind::kSlotBegin:
        ++slots;
        break;
      case SlotEvent::Kind::kPickBegin:
        // job = alive count, width = total ready width, value = picks.
        EXPECT_GE(event.job, 1);
        EXPECT_LE(event.job, instance.job_count());
        EXPECT_GE(event.width, event.value);
        EXPECT_EQ(event.seconds, 0.0);  // recorder opted out of timing
        break;
      case SlotEvent::Kind::kExecute:
        ++executes;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(executes, result.stats.executed_subjobs);
  EXPECT_EQ(slots, result.stats.busy_slots);
}

}  // namespace
}  // namespace otsched
