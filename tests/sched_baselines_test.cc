// Tests for sched/list_greedy.h and sched/round_robin.h.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "sched/list_greedy.h"
#include "sched/round_robin.h"
#include "sim/validator.h"

namespace otsched {
namespace {

Instance MixedInstance(std::uint64_t seed) {
  Rng rng(seed);
  return MakePoissonArrivals(
      10, 0.15,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4), 25, r);
      },
      rng);
}

template <typename SchedulerT>
void CheckFeasibleAndWorkConserving(SchedulerT&& scheduler, int m) {
  const Instance instance = MixedInstance(321);

  // Wrap to check work conservation each slot.
  class Wrapper : public Scheduler {
   public:
    Wrapper(Scheduler& inner) : inner_(inner) {}
    std::string name() const override { return inner_.name(); }
    bool requires_clairvoyance() const override {
      return inner_.requires_clairvoyance();
    }
    void reset(int m, JobId n) override { inner_.reset(m, n); }
    void on_arrival(JobId id, const SchedulerView& v) override {
      inner_.on_arrival(id, v);
    }
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      inner_.pick(view, out);
      std::int64_t ready = 0;
      for (JobId job : view.alive()) {
        ready += static_cast<std::int64_t>(view.ready(job).size());
      }
      EXPECT_EQ(static_cast<std::int64_t>(out.size()),
                std::min<std::int64_t>(view.m(), ready))
          << "not work-conserving at slot " << view.slot();
    }

   private:
    Scheduler& inner_;
  } wrapper(scheduler);

  const SimResult result = Simulate(instance, m, wrapper);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(ListGreedy, FeasibleAndWorkConserving) {
  ListGreedyScheduler scheduler(5);
  CheckFeasibleAndWorkConserving(scheduler, 3);
}

TEST(ListGreedy, SeedDeterminism) {
  const Instance instance = MixedInstance(11);
  ListGreedyScheduler a(9);
  ListGreedyScheduler b(9);
  EXPECT_EQ(Simulate(instance, 3, a).flows.max_flow,
            Simulate(instance, 3, b).flows.max_flow);
}

TEST(RoundRobin, FeasibleAndWorkConserving) {
  RoundRobinScheduler scheduler;
  CheckFeasibleAndWorkConserving(scheduler, 3);
}

TEST(RoundRobin, SharesAcrossJobs) {
  // Two blobs, 4 processors: each should get ~2 per slot at the start.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(8), 0));
  instance.add_job(Job(MakeParallelBlob(8), 0));

  class Probe : public RoundRobinScheduler {
   public:
    void pick(const SchedulerView& view,
              std::vector<SubjobRef>& out) override {
      RoundRobinScheduler::pick(view, out);
      if (view.slot() == 1) {
        int job0 = 0;
        for (const auto& ref : out) job0 += ref.job == 0 ? 1 : 0;
        EXPECT_EQ(job0, 2);
        EXPECT_EQ(out.size(), 4u);
      }
    }
  } probe;
  const SimResult result = Simulate(instance, 4, probe);
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
}

TEST(RoundRobin, RedistributesUnusedShares) {
  // Job 0 is a chain (can use 1 proc); job 1 a blob: the blob should soak
  // up the chain's unused share, keeping the machine busy.
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));
  instance.add_job(Job(MakeParallelBlob(12), 0));
  RoundRobinScheduler scheduler;
  const SimResult result = Simulate(instance, 4, scheduler);
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  // 16 work units on 4 processors with a span-4 chain: horizon 4.
  EXPECT_EQ(result.stats.horizon, 4);
}

}  // namespace
}  // namespace otsched
