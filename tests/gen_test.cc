// Tests for src/gen: structural properties of every workload generator
// and the OPT certificates of the certified families.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "dag/metrics.h"
#include "dag/validate.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/recursive.h"
#include "gen/random_trees.h"
#include "opt/brute_force.h"
#include "opt/single_batch.h"

namespace otsched {
namespace {

TEST(RandomTrees, AttachmentTreeShapes) {
  Rng rng(1);
  const Dag bushy = MakeAttachmentTree(300, 0.0, rng);
  const Dag spiny = MakeAttachmentTree(300, 0.95, rng);
  EXPECT_TRUE(IsOutTree(bushy));
  EXPECT_TRUE(IsOutTree(spiny));
  // Recency bias produces much deeper trees.
  EXPECT_LT(Span(bushy) * 3, Span(spiny));
}

TEST(RandomTrees, ChainAtFullBias) {
  Rng rng(2);
  const Dag chain = MakeAttachmentTree(50, 1.0, rng);
  EXPECT_EQ(Span(chain), 50);
}

TEST(RandomTrees, BranchingTreeReachesRequestedSize) {
  Rng rng(3);
  for (double p : {0.2, 0.5, 0.8}) {
    const Dag tree = MakeBranchingTree(120, p, 3, rng);
    EXPECT_EQ(tree.node_count(), 120);
    EXPECT_TRUE(IsOutTree(tree));
  }
}

TEST(RandomTrees, LayeredTreeProfile) {
  Rng rng(4);
  const std::vector<NodeId> levels = {2, 5, 3, 1};
  const Dag tree = MakeLayeredRandomTree(levels, rng);
  const DagMetrics m = ComputeMetrics(tree);
  EXPECT_EQ(m.work, 11);
  EXPECT_EQ(m.span, 4);
  EXPECT_EQ(m.w_deeper(1), 9);
  EXPECT_EQ(m.w_deeper(3), 1);
  EXPECT_TRUE(IsOutForest(tree));
}

TEST(RandomTrees, ForestHasRequestedTreeCount) {
  Rng rng(5);
  const Dag forest = MakeRandomForest(40, 4, 0.5, rng);
  EXPECT_EQ(forest.node_count(), 40);
  EXPECT_TRUE(IsOutForest(forest));
  EXPECT_EQ(forest.roots().size(), 4u);
}

TEST(Recursive, QuicksortTreeIsOutTree) {
  Rng rng(6);
  QuicksortOptions options;
  options.n = 2000;
  options.grain = 50;
  options.cutoff = 50;
  const Dag tree = MakeQuicksortTree(options, rng);
  EXPECT_TRUE(IsOutTree(tree));
  EXPECT_GT(tree.node_count(), 20);
  // Partition chains mean nontrivial depth.
  EXPECT_GT(Span(tree), 5);
}

TEST(Recursive, QuicksortCutoffYieldsSingleNode) {
  Rng rng(7);
  QuicksortOptions options;
  options.n = 10;
  options.cutoff = 16;
  const Dag tree = MakeQuicksortTree(options, rng);
  EXPECT_EQ(tree.node_count(), 1);
}

TEST(Recursive, ParallelForSeriesShape) {
  const std::vector<NodeId> widths = {3, 1, 4};
  const Dag dag = MakeParallelForSeries(widths);
  // 3 spawn nodes + 8 iterations.
  EXPECT_EQ(dag.node_count(), 11);
  EXPECT_TRUE(IsOutTree(dag));
  // Span: spawn chain (3) + trailing iteration = 4.
  EXPECT_EQ(Span(dag), 4);
}

TEST(Recursive, FibTreeCounts) {
  // Nodes in the fib call tree: T(k) = T(k-1) + T(k-2) + 1; T(0)=T(1)=1.
  EXPECT_EQ(MakeFibTree(0).node_count(), 1);
  EXPECT_EQ(MakeFibTree(1).node_count(), 1);
  EXPECT_EQ(MakeFibTree(2).node_count(), 3);
  EXPECT_EQ(MakeFibTree(5).node_count(), 15);
  EXPECT_TRUE(IsOutTree(MakeFibTree(8)));
}

TEST(Recursive, MapReducePipelineIsGeneralDag) {
  Rng rng(8);
  const Dag dag = MakeMapReducePipeline(3, 5, rng);
  EXPECT_TRUE(IsAcyclic(dag));
  EXPECT_FALSE(IsOutForest(dag));
}

TEST(Arrivals, PeriodicReleases) {
  Rng rng(9);
  const Instance instance = MakePeriodicArrivals(
      5, 7, [](std::int64_t, Rng&) { return MakeChain(2); }, rng);
  for (JobId i = 0; i < 5; ++i) {
    EXPECT_EQ(instance.job(i).release(), 7 * i);
  }
}

TEST(Arrivals, PoissonReleasesAreMonotone) {
  Rng rng(10);
  const Instance instance = MakePoissonArrivals(
      30, 0.3, [](std::int64_t, Rng&) { return MakeChain(1); }, rng);
  for (JobId i = 0; i + 1 < instance.job_count(); ++i) {
    EXPECT_LE(instance.job(i).release(), instance.job(i + 1).release());
  }
}

TEST(Arrivals, BurstyGroups) {
  Rng rng(11);
  const Instance instance = MakeBurstyArrivals(
      3, 4, 10, [](std::int64_t, Rng&) { return MakeChain(1); }, rng);
  EXPECT_EQ(instance.job_count(), 12);
  EXPECT_EQ(instance.job(0).release(), 0);
  EXPECT_EQ(instance.job(4).release(), 10);
  EXPECT_EQ(instance.job(11).release(), 20);
}

// ---- Certified constructions ----

class SaturatedForestTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SaturatedForestTest, OptIsPinnedExactly) {
  const auto [m, delta, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 911 + m * 31 + delta);
  const Time depth_limit = std::max<Time>(1, delta - 1);
  const Dag forest = MakeSaturatedForest(m, delta, depth_limit, rng);
  EXPECT_TRUE(IsOutForest(forest));
  EXPECT_EQ(forest.node_count(), m * delta);  // fully saturated
  EXPECT_EQ(SingleBatchOpt(forest, m), delta);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SaturatedForestTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(2, 5, 9),
                                            ::testing::Values(1, 2, 3)));

TEST(Certified, SpacedSaturatedCertificateAgainstBruteForce) {
  // Small enough for exhaustive verification: m=2, delta=2, 2 batches ->
  // 8 nodes total.
  Rng rng(12);
  const CertifiedInstance cert = MakeSpacedSaturatedInstance(2, 2, 2, rng);
  EXPECT_EQ(cert.instance.total_work(), 8);
  EXPECT_EQ(BruteForceOpt(cert.instance, 2), cert.opt);
}

TEST(Certified, PipelinedCertificateAgainstBruteForce) {
  Rng rng(13);
  const CertifiedInstance cert = MakePipelinedSemiBatchedInstance(2, 2, 2, rng);
  // Each batch: 1-wide, 4-deep chain-ish; 2 batches, 8 nodes.
  EXPECT_EQ(cert.opt, 4);
  EXPECT_EQ(BruteForceOpt(cert.instance, 2), cert.opt);
}

TEST(Certified, PipelinedReleasesAreSemiBatched) {
  Rng rng(14);
  const CertifiedInstance cert =
      MakePipelinedSemiBatchedInstance(8, 3, 5, rng);
  EXPECT_EQ(cert.opt, 6);
  EXPECT_TRUE(cert.instance.is_batched(cert.opt / 2));
  EXPECT_TRUE(cert.instance.all_out_forests());
}

TEST(Certified, BatchedFamilySpacingEqualsOpt) {
  Rng rng(15);
  const CertifiedInstance cert =
      MakeBatchedFamilyInstance(4, 5, 4, TreeFamily::kMixed, rng);
  EXPECT_TRUE(cert.instance.is_batched(cert.opt));
  // Every batch alone fits in opt; at least one batch realizes it.
  Time worst = 0;
  for (const Job& job : cert.instance.jobs()) {
    const Time batch_opt = SingleBatchOpt(job.dag(), 4);
    EXPECT_LE(batch_opt, cert.opt);
    worst = std::max(worst, batch_opt);
  }
  EXPECT_EQ(worst, cert.opt);
}

}  // namespace
}  // namespace otsched
