// Tests for core/most_children.h: Lemma 5.5 (MC never wastes a granted
// processor until the job is done), feasibility of its replays, and the
// head-prefix marking used by Algorithm A.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/most_children.h"
#include "dag/builders.h"
#include "gen/random_trees.h"
#include "opt/single_batch.h"
#include "sim/faults.h"

namespace otsched {
namespace {

/// Replays MC to completion under a budget stream and checks feasibility
/// of the produced order against the DAG (parents strictly earlier).
void ReplayAndCheck(const Dag& dag, const JobSchedule& lpf,
                    MostChildrenReplayer& mc,
                    const std::function<int(Time)>& budget_at) {
  std::vector<Time> done_at(static_cast<std::size_t>(dag.node_count()),
                            kNoTime);
  Time t = 0;
  while (!mc.done()) {
    ++t;
    ASSERT_LT(t, 1000000) << "MC failed to make progress";
    std::vector<NodeId> nodes;
    const int budget = budget_at(t);
    const int scheduled = mc.step(budget, &nodes);
    ASSERT_EQ(scheduled, static_cast<int>(nodes.size()));
    EXPECT_LE(scheduled, budget);
    for (NodeId v : nodes) {
      EXPECT_EQ(done_at[static_cast<std::size_t>(v)], kNoTime);
      done_at[static_cast<std::size_t>(v)] = t;
      for (NodeId parent : dag.parents(v)) {
        const Time tp = done_at[static_cast<std::size_t>(parent)];
        EXPECT_NE(tp, kNoTime) << "parent " << parent << " not yet run";
        EXPECT_LT(tp, t) << "parent " << parent << " same-step as child";
      }
    }
  }
  (void)lpf;
}

TEST(MostChildren, CompletesChainUnderUnitBudget) {
  const Dag chain = MakeChain(5);
  const JobSchedule lpf = BuildLpfSchedule(chain, 1);
  MostChildrenReplayer mc(chain, lpf);
  ReplayAndCheck(chain, lpf, mc, [](Time) { return 1; });
  EXPECT_EQ(mc.busy_violations(), 0);
  EXPECT_EQ(mc.now(), 5);
}

TEST(MostChildren, ZeroBudgetStepsIdleHarmlessly) {
  const Dag chain = MakeChain(3);
  MostChildrenReplayer mc(chain, BuildLpfSchedule(chain, 1));
  EXPECT_EQ(mc.step(0), 0);
  EXPECT_EQ(mc.remaining(), 3);
  EXPECT_EQ(mc.busy_violations(), 0);  // zero budget is not a violation
}

// ---- edge budgets from sim/faults: the fluctuating-capacity contract ----

TEST(MostChildren, MidReplayOutageStallsWithoutViolations) {
  // A BudgetTrace pins a zero-capacity outage in the middle of the
  // replay: progress stalls for exactly the outage slots, resumes
  // untouched afterwards, and the stall never counts as a busy violation
  // (Lemma 5.5 only speaks about GRANTED processors).
  Rng rng(3);
  const Dag tree = MakeTree(TreeFamily::kMixed, 24, rng);
  const int p = 3;
  const JobSchedule lpf = BuildLpfSchedule(tree, p);
  BudgetTrace trace;
  trace.set(3, 0);
  trace.set(4, 0);
  trace.set(5, 0);
  FaultSpec spec;
  spec.model = FaultModel::kTrace;
  spec.trace = &trace;
  BudgetSequencer sequencer(spec, p);

  MostChildrenReplayer mc(tree, lpf);
  Time t = 0;
  Time stalled_steps = 0;
  while (!mc.done()) {
    ++t;
    ASSERT_LT(t, 1000) << "MC failed to make progress";
    const int budget = sequencer.capacity(t, mc.remaining());
    const std::int64_t before = mc.remaining();
    const std::int64_t violations_before = mc.busy_violations();
    const int scheduled = mc.step(budget);
    if (budget == 0) {
      EXPECT_EQ(scheduled, 0);
      EXPECT_EQ(mc.remaining(), before) << "outage slot made progress";
      // A granted budget of zero can never be wasted (Lemma 5.5 only
      // speaks about granted processors).
      EXPECT_EQ(mc.busy_violations(), violations_before);
      ++stalled_steps;
    }
  }
  EXPECT_EQ(stalled_steps, 3);  // exactly the pinned outage slots
  EXPECT_EQ(mc.remaining(), 0);
}

TEST(MostChildren, CapacitySpikeBackToFullBudgetIsUsed) {
  // After a capacity-1 crawl, the budget spikes back to p: MC must
  // immediately consume the whole restored budget (or finish the job) —
  // the no-waste property does not relax after a degraded stretch.
  const int p = 4;
  const Dag star = MakeStar(13);  // root then 12 independent leaves
  const JobSchedule lpf = BuildLpfSchedule(star, p);
  BudgetTrace trace;
  trace.set(1, 1);
  trace.set(2, 1);
  FaultSpec spec;
  spec.model = FaultModel::kTrace;
  spec.trace = &trace;
  BudgetSequencer sequencer(spec, p);

  MostChildrenReplayer mc(star, lpf);
  Time t = 0;
  while (!mc.done()) {
    ++t;
    ASSERT_LT(t, 1000);
    const int budget = sequencer.capacity(t, mc.remaining());
    const std::int64_t before = mc.remaining();
    const int scheduled = mc.step(budget);
    if (t <= 2) {
      EXPECT_EQ(budget, 1);
      EXPECT_EQ(scheduled, 1);
    } else {
      // Spike back to p: full budget or job finished, never a waste.
      EXPECT_EQ(budget, p);
      EXPECT_EQ(scheduled,
                static_cast<int>(std::min<std::int64_t>(before, p)));
    }
  }
  EXPECT_EQ(mc.busy_violations(), 0);
}

TEST(MostChildren, TraceShorterThanReplayMeansTheMachineRecovers) {
  // The documented BudgetTrace semantics: slots beyond the last pinned
  // entry run at full capacity.  A trace covering only the first slots
  // must not starve the rest of the replay.
  Rng rng(7);
  const Dag tree = MakeTree(TreeFamily::kBranchy, 30, rng);
  const int p = 2;
  const JobSchedule lpf = BuildLpfSchedule(tree, p);
  BudgetTrace trace;
  trace.set(1, 1);
  trace.set(2, 0);
  FaultSpec spec;
  spec.model = FaultModel::kTrace;
  spec.trace = &trace;
  BudgetSequencer sequencer(spec, p);
  ASSERT_LT(trace.length(), static_cast<Time>(tree.node_count()) / p);

  MostChildrenReplayer mc(tree, lpf);
  Time t = 0;
  while (!mc.done()) {
    ++t;
    ASSERT_LT(t, 1000);
    const int budget = sequencer.capacity(t, mc.remaining());
    if (t > trace.length()) {
      EXPECT_EQ(budget, p) << "machine failed to recover past the trace";
    }
    mc.step(budget);
  }
  EXPECT_EQ(mc.remaining(), 0);
  // Recovery is fast: the degraded prefix (one slot at capacity 1, one
  // outage) can cost at most two extra slots over the all-healthy replay.
  EXPECT_LE(mc.now(), lpf.length() + 2);
}

TEST(MostChildren, PrefixMarkingSkipsHead) {
  const Dag chain = MakeChain(6);
  const JobSchedule lpf = BuildLpfSchedule(chain, 1);
  MostChildrenReplayer mc(chain, lpf);
  mc.mark_prefix_executed(4);
  EXPECT_EQ(mc.remaining(), 2);
  std::vector<NodeId> nodes;
  mc.step(2, &nodes);
  // Only node 4 is ready (its parent, node 3, is in the prefix); node 5
  // must wait a step even with budget available.
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 4);
  nodes.clear();
  mc.step(1, &nodes);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 5);
  EXPECT_TRUE(mc.done());
}

TEST(MostChildren, PrefersNodesWithMoreNextLevelChildren) {
  // Level 1: nodes a (2 children in level 2), b (0 children).  With
  // budget 1, MC must run a first so level 2 opens up.
  Dag::Builder builder(4);
  builder.add_edge(0, 2);
  builder.add_edge(0, 3);
  const Dag dag = std::move(builder).build();
  // Hand-build the schedule: slot 1 = {0, 1}, slot 2 = {2, 3}.
  JobSchedule s;
  s.p = 2;
  s.slots = {{0, 1}, {2, 3}};
  s.slot_of = {1, 1, 2, 2};

  MostChildrenReplayer mc(dag, s);
  std::vector<NodeId> nodes;
  mc.step(1, &nodes);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 0);  // the most-children node of level 1
}

// ---- Lemma 5.5 property sweep ----

struct BudgetPattern {
  const char* name;
  std::function<int(Time, int, Rng&)> next;  // (step, p, rng) -> budget
};

class MostChildrenBusyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MostChildrenBusyTest, Lemma55BusyProperty) {
  const auto [family_index, p, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6007 + p);
  const auto family = static_cast<TreeFamily>(family_index);
  const Dag tree = MakeTree(family, 180, rng);
  const JobSchedule lpf = BuildLpfSchedule(tree, p);
  // Lemma 5.5 requires an input schedule whose only underfull slot is the
  // last one; LPF guarantees that only AFTER the head.  Mark the head as
  // pre-executed like Algorithm A does.
  const Time head = SingleBatchOpt(tree, p * 4);

  for (int pattern = 0; pattern < 3; ++pattern) {
    MostChildrenReplayer mc(tree, lpf);
    mc.mark_prefix_executed(head);
    Rng budget_rng(static_cast<std::uint64_t>(seed) * 31 + pattern);
    Time t = 0;
    while (!mc.done()) {
      ++t;
      ASSERT_LT(t, 100000);
      int budget = 0;
      switch (pattern) {
        case 0:  // always the full allotment
          budget = p;
          break;
        case 1:  // adversarial alternation
          budget = (t % 2 == 0) ? p : 1;
          break;
        case 2:  // random in [0, p]
          budget = static_cast<int>(budget_rng.next_in_range(0, p));
          break;
      }
      const int scheduled = mc.step(budget);
      // Lemma 5.5: either the full budget is used, or the job finished
      // during this step.
      if (scheduled < budget) {
        EXPECT_TRUE(mc.done())
            << ToString(family) << " p=" << p << " seed=" << seed
            << " pattern=" << pattern << " step=" << t << " got "
            << scheduled << "/" << budget;
      }
    }
    EXPECT_EQ(mc.busy_violations(), 0)
        << ToString(family) << " p=" << p << " pattern=" << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MostChildrenBusyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),  // TreeFamily
                       ::testing::Values(1, 2, 4, 8),  // p
                       ::testing::Values(1, 2, 3, 4)));

TEST(MostChildren, FeasibleOnNonLpfInputSchedules) {
  // MC's feasibility does not depend on the input being LPF: replaying
  // an ARBITRARY valid schedule (here: reverse-height order) must stay
  // precedence-correct; only the Lemma 5.5 busy guarantee may lapse.
  Rng rng(808);
  const Dag tree = MakeTree(TreeFamily::kBranchy, 120, rng);
  const DagMetrics metrics = ComputeMetrics(tree);

  // Build a "worst practice" schedule greedily by LOWEST height.
  JobSchedule anti;
  anti.p = 4;
  anti.slot_of.assign(static_cast<std::size_t>(tree.node_count()), kNoTime);
  std::vector<NodeId> pending(static_cast<std::size_t>(tree.node_count()));
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    pending[static_cast<std::size_t>(v)] = tree.in_degree(v);
    if (pending[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  std::int64_t done = 0;
  while (done < tree.node_count()) {
    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      return metrics.height[static_cast<std::size_t>(a)] <
             metrics.height[static_cast<std::size_t>(b)];
    });
    std::vector<NodeId> slot;
    for (int k = 0; k < anti.p && !ready.empty(); ++k) {
      slot.push_back(ready.front());
      ready.erase(ready.begin());
    }
    anti.slots.push_back(slot);
    for (NodeId v : slot) {
      anti.slot_of[static_cast<std::size_t>(v)] = anti.length();
      ++done;
      for (NodeId c : tree.children(v)) {
        if (--pending[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
      }
    }
  }
  ASSERT_TRUE(CheckJobSchedule(tree, anti).empty());

  MostChildrenReplayer mc(tree, anti);
  ReplayAndCheck(tree, anti, mc, [](Time t) { return t % 2 == 0 ? 4 : 2; });
  EXPECT_TRUE(mc.done());
  // busy_violations() may be nonzero here — that is the point.
}

TEST(MostChildren, FullReplayMatchesScheduleWork) {
  Rng rng(404);
  const Dag tree = MakeTree(TreeFamily::kMixed, 100, rng);
  const JobSchedule lpf = BuildLpfSchedule(tree, 4);
  MostChildrenReplayer mc(tree, lpf);
  ReplayAndCheck(tree, lpf, mc, [](Time t) { return t % 3 == 0 ? 4 : 2; });
  EXPECT_EQ(mc.remaining(), 0);
}

}  // namespace
}  // namespace otsched
