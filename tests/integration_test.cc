// Cross-module integration tests: every scheduler on shared workloads,
// with the orderings the paper predicts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alg_a.h"
#include "core/alg_a_full.h"
#include "core/lpf.h"
#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/fifo_adversary.h"
#include "gen/recursive.h"
#include "opt/lower_bounds.h"
#include "sched/fifo.h"
#include "sched/list_greedy.h"
#include "sched/round_robin.h"
#include "sim/validator.h"

namespace otsched {
namespace {

Instance QuicksortServerLoad(std::uint64_t seed, int jobs) {
  Rng rng(seed);
  return MakePoissonArrivals(
      jobs, 0.08,
      [](std::int64_t, Rng& r) {
        QuicksortOptions q;
        q.n = 600;
        q.grain = 40;
        q.cutoff = 40;
        return MakeQuicksortTree(q, r);
      },
      rng);
}

TEST(Integration, EverySchedulerCompletesEveryWorkload) {
  std::vector<Instance> workloads;
  workloads.push_back(QuicksortServerLoad(1, 8));
  {
    Rng rng(2);
    workloads.push_back(
        MakeSpacedSaturatedInstance(8, 4, 4, rng).instance);
  }
  {
    Rng rng(3);
    workloads.push_back(MakeBurstyArrivals(
        2, 3, 8,
        [](std::int64_t, Rng& r) {
          return MakeRandomParallelForSeries(4, 10, r);
        },
        rng));
  }

  for (const Instance& instance : workloads) {
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    schedulers.push_back(std::make_unique<FifoScheduler>());
    {
      FifoScheduler::Options o;
      o.tie_break = FifoTieBreak::kRandom;
      schedulers.push_back(std::make_unique<FifoScheduler>(std::move(o)));
    }
    schedulers.push_back(std::make_unique<ListGreedyScheduler>(7));
    schedulers.push_back(std::make_unique<RoundRobinScheduler>());
    schedulers.push_back(std::make_unique<GlobalLpfScheduler>());
    {
      AlgAScheduler::Options o;
      o.beta = 16;
      schedulers.push_back(std::make_unique<AlgAScheduler>(o));
    }

    for (const auto& scheduler : schedulers) {
      const SimResult result = Simulate(instance, 8, *scheduler);
      const auto report = ValidateSchedule(result.full_schedule(), instance);
      EXPECT_TRUE(report.feasible)
          << scheduler->name() << " on " << instance.name() << ": "
          << report.violation;
      EXPECT_TRUE(result.flows.all_completed) << scheduler->name();
    }
  }
}

TEST(Integration, AlgAIsConstantCompetitiveOnTheAdversary) {
  // The paper's separation is asymptotic: FIFO's ratio grows like
  // lg m - lg lg m while Algorithm A's stays a CONSTANT in m.  At small m
  // FIFO's curve is tiny, so the checkable claim here is A's m-
  // independent bound (the trend comparison is the E9 experiment).
  double previous_ratio = 0.0;
  for (int m : {16, 32}) {
    LowerBoundSimOptions options;
    options.m = m;
    options.num_jobs = 120;
    const AdversarialInstance adv = MakeAdversarialInstance(options);

    // Semi-batched Algorithm A: releases are multiples of (m+1), so
    // known_opt = 2(m+1) makes the instance semi-batched for it.
    AlgASemiBatchedScheduler::Options a_options;
    a_options.known_opt = 2 * (m + 1);
    AlgASemiBatchedScheduler alg_a(a_options);
    const SimResult a_result = Simulate(adv.instance, m, alg_a);
    ASSERT_TRUE(ValidateSchedule(a_result.full_schedule(), adv.instance).feasible);

    const double ratio =
        static_cast<double>(a_result.flows.max_flow) /
        static_cast<double>(adv.fifo_run.certified_opt_upper);
    // Theorem 5.6 envelope (129 * known_opt = 258 * OPT-upper); measured
    // values are far smaller, and crucially do not grow with m.
    EXPECT_LE(ratio, 258.0) << "m=" << m;
    if (previous_ratio > 0.0) {
      EXPECT_LE(ratio, previous_ratio * 1.5)
          << "Algorithm A ratio should not grow with m";
    }
    previous_ratio = ratio;
    EXPECT_EQ(alg_a.mc_busy_violations(), 0);
  }
}

TEST(Integration, WorkConservingSchedulersShareTotalWorkInvariant) {
  const Instance instance = QuicksortServerLoad(5, 6);
  FifoScheduler fifo;
  ListGreedyScheduler greedy(3);
  const SimResult a = Simulate(instance, 4, fifo);
  const SimResult b = Simulate(instance, 4, greedy);
  EXPECT_EQ(a.stats.executed_subjobs, b.stats.executed_subjobs);
  EXPECT_EQ(a.stats.executed_subjobs, instance.total_work());
}

TEST(Integration, LightLoadMakesEveryoneNearOptimal) {
  // Widely spaced small jobs: all policies should be close to the lower
  // bound (no queueing).
  Rng rng(6);
  Instance instance = MakePeriodicArrivals(
      6, 100,
      [](std::int64_t, Rng& r) {
        return MakeTree(TreeFamily::kMixed, 30, r);
      },
      rng);
  for (int which = 0; which < 2; ++which) {
    std::unique_ptr<Scheduler> scheduler;
    if (which == 0) {
      scheduler = std::make_unique<FifoScheduler>();
    } else {
      scheduler = std::make_unique<ListGreedyScheduler>(1);
    }
    const SimResult result = Simulate(instance, 8, *scheduler);
    // Jobs never overlap, so each finishes like a solo greedy run:
    // within 2x its solo optimum (Graham).
    Time worst_solo = 0;
    for (const Job& job : instance.jobs()) {
      worst_solo =
          std::max(worst_solo, DepthProfileBound(job, 8));
    }
    EXPECT_LE(result.flows.max_flow, 2 * worst_solo)
        << scheduler->name();
  }
}

TEST(Integration, BatchedFifoStaysNearLogEnvelope) {
  // Section 6 sanity: on batched certified instances, FIFO's ratio is
  // comfortably below log2(max(m, OPT)) + 3 for these sizes.
  for (int m : {4, 8, 16}) {
    Rng rng(static_cast<std::uint64_t>(m) * 17);
    CertifiedInstance cert = MakeSpacedSaturatedInstance(m, 5, 6, rng);
    FifoScheduler fifo;
    const SimResult result = Simulate(cert.instance, m, fifo);
    ASSERT_TRUE(ValidateSchedule(result.full_schedule(), cert.instance).feasible);
    const double ratio = static_cast<double>(result.flows.max_flow) /
                         static_cast<double>(cert.opt);
    const double envelope =
        std::log2(std::max<double>(m, static_cast<double>(cert.opt))) + 3.0;
    EXPECT_LE(ratio, envelope) << "m=" << m;
  }
}

}  // namespace
}  // namespace otsched
