// Tests for job/job.h, job/instance.h, job/transforms.h.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "job/instance.h"
#include "job/transforms.h"

namespace otsched {
namespace {

TEST(Job, BasicAccessors) {
  Job job(MakeChain(5), 7, "chain");
  EXPECT_EQ(job.work(), 5);
  EXPECT_EQ(job.span(), 5);
  EXPECT_EQ(job.release(), 7);
  EXPECT_EQ(job.name(), "chain");
}

TEST(Job, MetricsAreCachedAndConsistent) {
  Job job(MakeStar(3), 0);
  const DagMetrics& first = job.metrics();
  const DagMetrics& second = job.metrics();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.span, 2);
}

TEST(Instance, AccountingAndOrder) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 10));
  instance.add_job(Job(MakeStar(2), 0));
  instance.add_job(Job(MakeChain(3), 10));

  EXPECT_EQ(instance.job_count(), 3);
  EXPECT_EQ(instance.total_work(), 8);
  EXPECT_EQ(instance.max_span(), 3);
  EXPECT_EQ(instance.min_release(), 0);
  EXPECT_EQ(instance.max_release(), 10);

  const auto order = instance.release_order();
  EXPECT_EQ(order, (std::vector<JobId>{1, 0, 2}));  // stable on ties
}

TEST(Instance, OutForestDetection) {
  Instance forests;
  forests.add_job(Job(MakeChain(2), 0));
  forests.add_job(Job(MakeParallelBlob(3), 0));
  EXPECT_TRUE(forests.all_out_forests());

  Instance mixed;
  mixed.add_job(Job(MakeForkJoin(2), 0));
  EXPECT_FALSE(mixed.all_out_forests());
}

TEST(Instance, BatchedPredicate) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  instance.add_job(Job(MakeChain(1), 6));
  instance.add_job(Job(MakeChain(1), 12));
  EXPECT_TRUE(instance.is_batched(6));
  EXPECT_TRUE(instance.is_batched(3));
  EXPECT_FALSE(instance.is_batched(5));
}

TEST(Transforms, RoundReleasesUp) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 0));
  instance.add_job(Job(MakeChain(1), 1));
  instance.add_job(Job(MakeChain(1), 5));
  instance.add_job(Job(MakeChain(1), 6));
  const Instance rounded = RoundReleasesUp(instance, 5);
  EXPECT_EQ(rounded.job(0).release(), 0);
  EXPECT_EQ(rounded.job(1).release(), 5);
  EXPECT_EQ(rounded.job(2).release(), 5);
  EXPECT_EQ(rounded.job(3).release(), 10);
  EXPECT_TRUE(rounded.is_batched(5));
}

TEST(Transforms, UnionPerReleaseMergesAndMaps) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0, "a"));
  instance.add_job(Job(MakeStar(1), 0, "b"));
  instance.add_job(Job(MakeChain(3), 4, "c"));

  UnionMapping mapping;
  const Instance merged = UnionPerRelease(instance, &mapping);
  ASSERT_EQ(merged.job_count(), 2);
  EXPECT_EQ(merged.job(0).release(), 0);
  EXPECT_EQ(merged.job(0).work(), 4);  // chain(2) + star(1)
  EXPECT_EQ(merged.job(1).work(), 3);

  ASSERT_EQ(mapping.original_refs.size(), 2u);
  // The first two merged nodes map back to job 0 (the chain).
  EXPECT_EQ(mapping.original_refs[0][0], (SubjobRef{0, 0}));
  EXPECT_EQ(mapping.original_refs[0][2], (SubjobRef{1, 0}));
}

TEST(Transforms, ShiftReleases) {
  Instance instance;
  instance.add_job(Job(MakeChain(1), 3));
  const Instance shifted = ShiftReleases(instance, 4);
  EXPECT_EQ(shifted.job(0).release(), 7);
}

TEST(Transforms, RoundTripPreservesWork) {
  Instance instance;
  for (Time r : {0, 1, 2, 7, 8, 9}) {
    instance.add_job(Job(MakeChain(2), r));
  }
  const Instance rounded = RoundReleasesUp(instance, 4);
  EXPECT_EQ(rounded.total_work(), instance.total_work());
  EXPECT_EQ(rounded.job_count(), instance.job_count());
}

}  // namespace
}  // namespace otsched
