// Tests for sched/remaining_work.h: the SRPT-like and largest-first
// baselines, including SRPT's characteristic starvation on max flow.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "sched/fifo.h"
#include "sched/remaining_work.h"
#include "sim/validator.h"

namespace otsched {
namespace {

TEST(RemainingWork, BothOrdersAreFeasible) {
  Instance instance;
  for (int i = 0; i < 5; ++i) {
    instance.add_job(Job(MakeStar(3 + i), 2 * i));
  }
  for (RemainingWorkOrder order : {RemainingWorkOrder::kSmallestFirst,
                                   RemainingWorkOrder::kLargestFirst}) {
    RemainingWorkScheduler scheduler(order);
    const SimResult result = Simulate(instance, 3, scheduler);
    const auto report = ValidateSchedule(result.full_schedule(), instance);
    EXPECT_TRUE(report.feasible) << report.violation;
    EXPECT_TRUE(result.flows.all_completed);
  }
}

TEST(RemainingWork, SrptStarvesTheBigJob) {
  // One big blob at t=0 plus a stream of small blobs: SRPT always
  // preempts toward the small ones, so the big job's flow balloons;
  // FIFO keeps it bounded.  This is why max-flow wants age priority.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(40), 0, "big"));
  for (int i = 0; i < 30; ++i) {
    instance.add_job(Job(MakeParallelBlob(4), i, "small"));
  }
  const int m = 4;

  RemainingWorkScheduler srpt(RemainingWorkOrder::kSmallestFirst);
  FifoScheduler fifo;
  const SimResult srpt_run = Simulate(instance, m, srpt);
  const SimResult fifo_run = Simulate(instance, m, fifo);

  EXPECT_GT(srpt_run.flows.flow[0], 2 * fifo_run.flows.flow[0])
      << "SRPT should starve the big job relative to FIFO";
}

TEST(RemainingWork, Names) {
  EXPECT_EQ(
      RemainingWorkScheduler(RemainingWorkOrder::kSmallestFirst).name(),
      "srpt-like");
  EXPECT_EQ(
      RemainingWorkScheduler(RemainingWorkOrder::kLargestFirst).name(),
      "largest-remaining-first");
}

TEST(RemainingWork, WorkConserving) {
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(10), 0));
  instance.add_job(Job(MakeChain(6), 0));
  RemainingWorkScheduler scheduler(RemainingWorkOrder::kLargestFirst);
  const SimResult result = Simulate(instance, 4, scheduler);
  // 16 units of work, span 6, m=4: any work-conserving policy finishes
  // within the Graham bound W/m + span = 10.
  EXPECT_LE(result.flows.max_flow, 10);
}

}  // namespace
}  // namespace otsched
