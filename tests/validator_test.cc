// Tests for sim/validator.h: each Section 3 axiom is enforced.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "sim/validator.h"

namespace otsched {
namespace {

Instance OneChain(Time release = 0) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), release));
  return instance;
}

TEST(Validator, AcceptsValidSchedule) {
  const Instance instance = OneChain();
  Schedule schedule(1);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 1});
  EXPECT_TRUE(ValidateSchedule(schedule, instance));
}

TEST(Validator, Axiom1Capacity) {
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(3), 0));
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(1, {0, 1});
  schedule.place(1, {0, 2});
  const auto report = ValidateSchedule(schedule, instance);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("axiom (1)"), std::string::npos);
}

TEST(Validator, Axiom2MissingSubjob) {
  const Instance instance = OneChain();
  Schedule schedule(1);
  schedule.place(1, {0, 0});
  const auto report = ValidateSchedule(schedule, instance);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("never scheduled"), std::string::npos);
}

TEST(Validator, Axiom2DuplicateSubjob) {
  const Instance instance = OneChain();
  Schedule schedule(1);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 0});
  schedule.place(3, {0, 1});
  const auto report = ValidateSchedule(schedule, instance);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("axiom (2)"), std::string::npos);
}

TEST(Validator, Axiom3PrecedenceSameSlot) {
  const Instance instance = OneChain();
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(1, {0, 1});  // child in the SAME slot as its parent
  const auto report = ValidateSchedule(schedule, instance);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("axiom (3)"), std::string::npos);
}

TEST(Validator, Axiom3PrecedenceReversed) {
  const Instance instance = OneChain();
  Schedule schedule(1);
  schedule.place(1, {0, 1});
  schedule.place(2, {0, 0});
  EXPECT_FALSE(ValidateSchedule(schedule, instance).feasible);
}

TEST(Validator, Axiom4Release) {
  const Instance instance = OneChain(/*release=*/5);
  Schedule schedule(1);
  schedule.place(5, {0, 0});  // slot 5 is NOT after release 5
  schedule.place(6, {0, 1});
  const auto report = ValidateSchedule(schedule, instance);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("axiom (4)"), std::string::npos);

  Schedule ok(1);
  ok.place(6, {0, 0});
  ok.place(7, {0, 1});
  EXPECT_TRUE(ValidateSchedule(ok, instance));
}

TEST(Validator, UnknownJobAndNode) {
  const Instance instance = OneChain();
  Schedule bad_job(1);
  bad_job.place(1, {7, 0});
  EXPECT_FALSE(ValidateSchedule(bad_job, instance).feasible);

  Schedule bad_node(1);
  bad_node.place(1, {0, 9});
  EXPECT_FALSE(ValidateSchedule(bad_node, instance).feasible);
}

TEST(Validator, PrefixModeAllowsIncomplete) {
  const Instance instance = OneChain();
  Schedule schedule(1);
  schedule.place(1, {0, 0});
  EXPECT_TRUE(ValidateSchedule(schedule, instance, /*require_complete=*/false));
}

TEST(Validator, PrefixModeStillCatchesOrphanChild) {
  const Instance instance = OneChain();
  Schedule schedule(1);
  schedule.place(1, {0, 1});  // child ran; parent never did
  const auto report =
      ValidateSchedule(schedule, instance, /*require_complete=*/false);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("axiom (3)"), std::string::npos);
}

TEST(Validator, EmptyScheduleOfEmptyInstance) {
  EXPECT_TRUE(ValidateSchedule(Schedule(1), Instance()));
}

}  // namespace
}  // namespace otsched
