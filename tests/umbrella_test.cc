// Compiles against ONLY the umbrella header and exercises one symbol per
// subsystem, locking in that otsched.h stays complete.
#include <gtest/gtest.h>

#include "otsched.h"

namespace otsched {
namespace {

TEST(Umbrella, OneSymbolPerSubsystem) {
  Rng rng(1);                                            // common
  const Dag tree = MakeTree(TreeFamily::kBushy, 20, rng);  // gen
  EXPECT_TRUE(IsOutTree(tree));                          // dag
  Instance instance;                                     // job
  instance.add_job(Job(Dag(tree), 0));
  FifoScheduler fifo;                                    // sched
  const SimResult result = Simulate(instance, 2, fifo);  // sim
  EXPECT_TRUE(ValidateSchedule(result.full_schedule(), instance).feasible);
  EXPECT_GE(MaxFlowLowerBound(instance, 2), 1);          // opt
  EXPECT_EQ(BuildLpfSchedule(tree, 2).total(), 20);      // core
  EXPECT_GE(ComputeFlowStats(result.flows).max, 1);      // analysis
  const EventTrace trace =                               // trace
      DeriveTrace(result.full_schedule(), instance);
  EXPECT_FALSE(trace.empty());
  LowerBoundSimOptions lb;                               // lbsim
  lb.m = 4;
  lb.num_jobs = 2;
  EXPECT_GT(RunLowerBoundSim(lb).max_flow, 0);
  FifoScheduler adaptive_fifo;                           // advsim
  AdaptiveAdversaryOptions adv;
  adv.m = 4;
  adv.num_jobs = 2;
  EXPECT_GT(RunAdaptiveAdversary(adaptive_fifo, adv).max_flow, 0);
}

}  // namespace
}  // namespace otsched
