// Tests for gen/tetris.h: full coverage, exact certification, and the
// zero-idle witness property.
#include <gtest/gtest.h>

#include "gen/tetris.h"
#include "opt/brute_force.h"
#include "opt/lower_bounds.h"
#include "sched/fifo.h"
#include "sim/validator.h"

namespace otsched {
namespace {

class TetrisTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TetrisTest, BoardFullyCoveredAndCertified) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7333 + m);
  TetrisOptions options;
  options.m = m;
  options.horizon = 40;
  options.mean_duration = 6;
  options.max_active = std::min(4, m);
  const CertifiedInstance cert = MakeTetrisInstance(options, rng);

  EXPECT_EQ(cert.instance.total_work(),
            static_cast<std::int64_t>(m) * options.horizon);
  EXPECT_TRUE(cert.instance.all_out_forests());
  // The certificate: max span across jobs equals opt, and the interval
  // lower bound cannot exceed it (the witness is feasible).
  EXPECT_EQ(cert.instance.max_span(), cert.opt);
  EXPECT_LE(MaxFlowLowerBound(cert.instance, m), cert.opt);
  // Durations bounded as promised.
  EXPECT_LE(cert.opt, 2 * options.mean_duration);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TetrisTest,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(Tetris, CertificateAgainstBruteForce) {
  Rng rng(5);
  TetrisOptions options;
  options.m = 2;
  options.horizon = 9;
  options.mean_duration = 3;
  options.max_active = 2;
  const CertifiedInstance cert = MakeTetrisInstance(options, rng);
  ASSERT_LE(cert.instance.total_work(), 30);
  EXPECT_EQ(BruteForceOpt(cert.instance, 2), cert.opt);
}

TEST(Tetris, FifoOnThePackedBoard) {
  // The introduction's stress: to be competitive here a scheduler must
  // keep the machine essentially fully packed.  FIFO stays within a
  // small factor; its schedule is validated.
  Rng rng(6);
  TetrisOptions options;
  options.m = 16;
  options.horizon = 120;
  options.mean_duration = 10;
  options.max_active = 4;
  const CertifiedInstance cert = MakeTetrisInstance(options, rng);

  FifoScheduler fifo;
  const SimResult result = Simulate(cert.instance, 16, fifo);
  ASSERT_TRUE(ValidateSchedule(result.full_schedule(), cert.instance).feasible);
  const double ratio = static_cast<double>(result.flows.max_flow) /
                       static_cast<double>(cert.opt);
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 6.0);
}

TEST(Tetris, SingleActivePieceDegeneratesToSlabs) {
  Rng rng(7);
  TetrisOptions options;
  options.m = 4;
  options.horizon = 12;
  options.mean_duration = 4;
  options.max_active = 1;
  const CertifiedInstance cert = MakeTetrisInstance(options, rng);
  // One piece at a time, each m wide, back to back.
  for (const Job& job : cert.instance.jobs()) {
    EXPECT_EQ(job.work(), 4 * job.span());
  }
}

}  // namespace
}  // namespace otsched
