// Wire-protocol fuzz for `otsched serve` (docs/ROBUSTNESS.md): byte-
// mutated NDJSON — truncations, bit flips into invalid UTF-8, digit
// floods that overflow int64, duplicated keys — thrown at
// ParseSubmitRequest directly and at a live daemon.  The contract is
// the CLI's exit-2 style: every malformed line gets a structured
// {"error": ...} diagnostic, nothing crashes, and the connection keeps
// working (the ASan CI lane runs this same binary for memory safety).
#include "gtest_compat.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sched/registry.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace otsched {
namespace {

const char* const kBaseLines[] = {
    "{\"release\": 3, \"parents\": [-1, 0, 1, 1]}",
    "{\"nodes\": 4, \"edges\": [[0, 1], [0, 2], [1, 3]]}",
    "{\"release\": 0, \"nodes\": 2, \"edges\": [[0, 1]]}",
    "{\"release\": 12, \"parents\": [-1]}",
    "{\"nodes\": 3}",
};

/// Uniform draw in [0, bound) — the fuzz corpus's only RNG shape.
int Below(Rng& rng, int bound) {
  return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(bound)));
}

/// One seeded mutation of a valid submission line.
std::string Mutate(const std::string& base, Rng& rng) {
  std::string line = base;
  switch (Below(rng, 6)) {
    case 0:  // truncation (a torn write)
      line = line.substr(
          0, static_cast<std::size_t>(
                 Below(rng, static_cast<int>(line.size()) + 1)));
      break;
    case 1: {  // byte flip, often into invalid UTF-8
      if (!line.empty()) {
        const auto at = static_cast<std::size_t>(
            Below(rng, static_cast<int>(line.size())));
        line[at] = static_cast<char>(Below(rng, 256));
      }
      break;
    }
    case 2: {  // digit flood: oversized ints that must not wrap quietly
      const std::size_t digit = line.find_first_of("0123456789");
      if (digit != std::string::npos) {
        line.insert(digit, "9999999999999999999");
      }
      break;
    }
    case 3: {  // duplicate a key-value span
      const std::size_t comma = line.find(',');
      if (comma != std::string::npos) {
        line.insert(comma, "," + line.substr(1, comma - 1));
      }
      break;
    }
    case 4: {  // splice two bases together mid-line
      const std::string other = kBaseLines[Below(rng, 5)];
      line = line.substr(0, line.size() / 2) +
             other.substr(other.size() / 2);
      break;
    }
    default: {  // random insertion
      const auto at = static_cast<std::size_t>(
          Below(rng, static_cast<int>(line.size()) + 1));
      line.insert(at, 1, static_cast<char>(Below(rng, 256)));
      break;
    }
  }
  return line;
}

TEST(ServeFuzz, ParseSubmitRequestNeverCrashesOnMutatedLines) {
  Rng rng(20240808);
  int accepted = 0, rejected = 0;
  for (int iteration = 0; iteration < 20000; ++iteration) {
    std::string line = kBaseLines[Below(rng, 5)];
    const int rounds = 1 + Below(rng, 3);
    for (int r = 0; r < rounds; ++r) line = Mutate(line, rng);
    std::string error;
    const std::optional<serve::SubmitRequest> request =
        serve::ParseSubmitRequest(line, &error);
    if (request.has_value()) {
      // A mutation that stays valid must still be a well-formed DAG.
      EXPECT_GE(request->dag.node_count(), 1) << line;
      EXPECT_GE(request->release, 0) << line;
      ++accepted;
    } else {
      EXPECT_FALSE(error.empty()) << line;
      ++rejected;
    }
  }
  // The corpus must exercise both outcomes to mean anything.
  EXPECT_GT(accepted, 100);
  EXPECT_GT(rejected, 1000);
}

/// Blocking TCP client (shared shape with serve_test.cc).
class FuzzClient {
 public:
  explicit FuzzClient(const std::string& address) {
    const std::size_t colon = address.rfind(':');
    const std::string host = address.substr(0, colon);
    const int port = std::atoi(address.c_str() + colon + 1);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~FuzzClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  std::vector<std::string> read_lines(std::size_t lines) {
    while (count_lines() < lines) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::vector<std::string> out;
    std::size_t start = 0;
    while (out.size() < lines) {
      const std::size_t end = buffer_.find('\n', start);
      if (end == std::string::npos) break;
      out.push_back(buffer_.substr(start, end - start));
      start = end + 1;
    }
    buffer_.erase(0, start);
    return out;
  }

 private:
  std::size_t count_lines() const {
    std::size_t count = 0;
    for (const char c : buffer_) {
      if (c == '\n') ++count;
    }
    return count;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST(ServeFuzz, LiveDaemonAnswersEveryMutatedLineAndStaysHealthy) {
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  serve::ScheduleServer server(options,
                               MakePolicy(options.policy, options.seed));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread runner([&server] { server.run(); });

  Rng rng(77);
  FuzzClient client(server.address());
  ASSERT_TRUE(client.connected());
  int sent = 0;
  std::string batch;
  for (int iteration = 0; iteration < 400; ++iteration) {
    std::string line = Mutate(kBaseLines[Below(rng, 5)], rng);
    // Keep the stream line-oriented and countable: no embedded
    // newlines (they would split into extra lines), no empty lines
    // (the daemon skips those without a reply), and no mutated line
    // that is VALID but huge (a lucky digit flood into "nodes" would
    // make this a capacity test, which it is not).
    for (char& c : line) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    if (line.empty()) line = "x";
    std::string parse_error;
    const auto parsed = serve::ParseSubmitRequest(line, &parse_error);
    if (parsed.has_value() &&
        (parsed->dag.node_count() > 64 || parsed->release > 100000 ||
         !parsed->tag.empty())) {
      continue;  // tags would dedup into reply-less lines; skip those too
    }
    batch += line + "\n";
    ++sent;
    if (batch.size() > 32768) {  // bounded batches: exercise reassembly
      client.send_all(batch);
      batch.clear();
    }
  }
  client.send_all(batch);

  // Every line — valid or not — gets exactly one reply line.
  const std::vector<std::string> replies =
      client.read_lines(static_cast<std::size_t>(sent));
  ASSERT_EQ(replies.size(), static_cast<std::size_t>(sent));
  int errors = 0, flows = 0;
  for (const std::string& reply : replies) {
    if (reply.find("\"error\"") != std::string::npos) {
      ++errors;
    } else {
      ASSERT_NE(reply.find("\"flow\""), std::string::npos) << reply;
      ++flows;
    }
  }
  EXPECT_GT(errors, 0);

  // The daemon is still healthy after the noise: a clean tagged job
  // round-trips on the same connection.
  client.send_all("{\"id\": \"after-the-storm\", \"release\": 0, "
                  "\"parents\": [-1, 0]}\n");
  const auto clean = client.read_lines(1);
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_NE(clean[0].find("\"id\": \"after-the-storm\""), std::string::npos)
      << clean[0];
  EXPECT_NE(clean[0].find("\"flow\": 2"), std::string::npos) << clean[0];

  server.request_stop();
  runner.join();
  EXPECT_EQ(server.jobs_finished(), server.jobs_submitted());
  EXPECT_EQ(server.jobs_finished(), flows + 1);
}

}  // namespace
}  // namespace otsched
