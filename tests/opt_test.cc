// Tests for src/opt: lower bounds (Lemma 5.1 and friends), Corollary 5.4,
// and the brute-force exact solver they are checked against.
#include "gtest_compat.h"

#include "dag/builders.h"
#include "gen/random_trees.h"
#include "opt/brute_force.h"
#include "opt/lower_bounds.h"
#include "opt/single_batch.h"

namespace otsched {
namespace {

Instance SingleJob(Dag dag, Time release = 0) {
  Instance instance;
  instance.add_job(Job(std::move(dag), release));
  return instance;
}

TEST(LowerBounds, ChainIsSpanBound) {
  const Instance instance = SingleJob(MakeChain(7));
  const LowerBounds bounds = ComputeLowerBounds(instance, 3);
  EXPECT_EQ(bounds.span_bound, 7);
  EXPECT_EQ(bounds.work_bound, 3);  // ceil(7/3)
  EXPECT_EQ(bounds.best(), 7);
}

TEST(LowerBounds, BlobIsWorkBound) {
  const Instance instance = SingleJob(MakeParallelBlob(10));
  const LowerBounds bounds = ComputeLowerBounds(instance, 4);
  EXPECT_EQ(bounds.span_bound, 1);
  EXPECT_EQ(bounds.work_bound, 3);
  EXPECT_EQ(bounds.best(), 3);
}

TEST(LowerBounds, DepthProfileBeatsBothOnMixedShape) {
  // Chain of 3 whose last node fans out to 6 leaves: depth-profile bound
  // at d=3 gives 3 + ceil(6/2) = 6 > span (4) and > work (ceil(9/2)=5).
  Dag::Builder builder(9);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  for (NodeId leaf = 3; leaf < 9; ++leaf) builder.add_edge(2, leaf);
  const Instance instance = SingleJob(std::move(builder).build());
  const LowerBounds bounds = ComputeLowerBounds(instance, 2);
  EXPECT_EQ(bounds.span_bound, 4);
  EXPECT_EQ(bounds.work_bound, 5);
  EXPECT_EQ(bounds.depth_profile_bound, 6);
  EXPECT_EQ(bounds.best(), 6);
}

TEST(LowerBounds, IntervalBoundSeesBursts) {
  // Two size-8 blobs released together on m=2: interval bound =
  // ceil(16/2) = 8.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(8), 5));
  instance.add_job(Job(MakeParallelBlob(8), 5));
  const LowerBounds bounds = ComputeLowerBounds(instance, 2);
  EXPECT_EQ(bounds.interval_bound, 8);
}

TEST(LowerBounds, IntervalBoundAcrossReleases) {
  // Work 6 at t=0 and work 6 at t=2 on m=2: window [0,2] holds 12 work,
  // bound = ceil(12/2) - 2 = 4.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(6), 0));
  instance.add_job(Job(MakeParallelBlob(6), 2));
  const LowerBounds bounds = ComputeLowerBounds(instance, 2);
  EXPECT_EQ(bounds.interval_bound, 4);
}

TEST(LowerBounds, DepthIntervalBeatsEveryOtherBound) {
  // Two jobs released together on m = 4, each a 4-chain whose last node
  // fans out to 6 leaves (work 10, W(4) = 6, span 5).
  //   span = 5; work = ceil(10/4) = 3; per-job Lemma 5.1 = 4+ceil(6/4) = 6;
  //   interval (d=0) = ceil(20/4) = 5;
  //   depth x interval at d=4 over both jobs: 4 + ceil(12/4) = 7.
  auto make_job = [] {
    Dag::Builder builder(10);
    builder.add_edge(0, 1);
    builder.add_edge(1, 2);
    builder.add_edge(2, 3);
    for (NodeId leaf = 4; leaf < 10; ++leaf) builder.add_edge(3, leaf);
    return std::move(builder).build();
  };
  Instance instance;
  instance.add_job(Job(make_job(), 0));
  instance.add_job(Job(make_job(), 0));

  const LowerBounds bounds = ComputeLowerBounds(instance, 4);
  EXPECT_EQ(bounds.span_bound, 5);
  EXPECT_EQ(bounds.work_bound, 3);
  EXPECT_EQ(bounds.depth_profile_bound, 6);
  EXPECT_EQ(bounds.interval_bound, 5);
  EXPECT_EQ(bounds.depth_interval_bound, 7);
  EXPECT_EQ(bounds.best(), 7);
  // Soundness: still below the exhaustive optimum.
  EXPECT_LE(bounds.best(), BruteForceOpt(instance, 4));
}

TEST(LowerBounds, DepthIntervalGeneralizesTheOthers) {
  // Single job: reduces to Lemma 5.1.  d = 0: reduces to the interval
  // bound.  Check both degenerations on random instances.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 613);
    Instance instance;
    instance.add_job(Job(MakeAttachmentTree(24, 0.6, rng), 0));
    const LowerBounds bounds = ComputeLowerBounds(instance, 3);
    EXPECT_GE(bounds.depth_interval_bound, bounds.depth_profile_bound);
    EXPECT_GE(bounds.depth_interval_bound, bounds.interval_bound);
  }
}

// ---- best() attribution: golden winners and pinned tie-breaks ----

TEST(LowerBoundsBest, GoldenWinnerPerComponent) {
  // One instance per component where that component is the simplest
  // explanation of best().  (The general components always TIE the
  // winner — the depth x interval bound dominates all others — so
  // attribution goes to the first component in priority order that
  // reaches the max, never "whichever general bound also got there".)
  EXPECT_EQ(ComputeLowerBounds(SingleJob(MakeChain(7)), 3).best_component(),
            BoundComponent::kSpan);
  EXPECT_EQ(
      ComputeLowerBounds(SingleJob(MakeParallelBlob(10)), 4).best_component(),
      BoundComponent::kWork);
  {
    // Work 6 at t=0 and work 6 at t=2 on m=2 (IntervalBoundAcrossReleases):
    // interval = 4 > span 1, work 3.
    Instance instance;
    instance.add_job(Job(MakeParallelBlob(6), 0));
    instance.add_job(Job(MakeParallelBlob(6), 2));
    EXPECT_EQ(ComputeLowerBounds(instance, 2).best_component(),
              BoundComponent::kInterval);
  }
  {
    // DepthProfileBeatsBothOnMixedShape's instance: Lemma 5.1 gives 6 >
    // span 4, work 5, interval 5 — the depth profile is the simplest
    // winner (depth x interval merely ties it).
    Dag::Builder builder(9);
    builder.add_edge(0, 1);
    builder.add_edge(1, 2);
    for (NodeId leaf = 3; leaf < 9; ++leaf) builder.add_edge(2, leaf);
    const LowerBounds bounds =
        ComputeLowerBounds(SingleJob(std::move(builder).build()), 2);
    EXPECT_EQ(bounds.depth_profile_bound, bounds.depth_interval_bound);
    EXPECT_EQ(bounds.best_component(), BoundComponent::kDepthProfile);
  }
  {
    // DepthIntervalBeatsEveryOtherBound's instance: only the combined
    // bound reaches 7, so attribution falls through to it.
    auto make_job = [] {
      Dag::Builder builder(10);
      builder.add_edge(0, 1);
      builder.add_edge(1, 2);
      builder.add_edge(2, 3);
      for (NodeId leaf = 4; leaf < 10; ++leaf) builder.add_edge(3, leaf);
      return std::move(builder).build();
    };
    Instance instance;
    instance.add_job(Job(make_job(), 0));
    instance.add_job(Job(make_job(), 0));
    EXPECT_EQ(ComputeLowerBounds(instance, 4).best_component(),
              BoundComponent::kDepthInterval);
  }
}

TEST(LowerBoundsBest, TieOnAllEqualGoesToSpan) {
  // Single unit job: every component equals 1; the documented priority
  // order (span > work > interval > depth_profile > depth_interval)
  // attributes the five-way tie to the span.
  const LowerBounds bounds = ComputeLowerBounds(SingleJob(MakeChain(1)), 1);
  EXPECT_EQ(bounds.span_bound, 1);
  EXPECT_EQ(bounds.work_bound, 1);
  EXPECT_EQ(bounds.depth_profile_bound, 1);
  EXPECT_EQ(bounds.interval_bound, 1);
  EXPECT_EQ(bounds.depth_interval_bound, 1);
  EXPECT_EQ(bounds.best_component(), BoundComponent::kSpan);
}

TEST(LowerBoundsBest, WorkBeatsIntervalOnTies) {
  // Blob on m=2: work == interval == depth profile == depth interval
  // == 5 > span 1; the tie goes to work, the simplest of the four.
  const LowerBounds bounds =
      ComputeLowerBounds(SingleJob(MakeParallelBlob(10)), 2);
  EXPECT_EQ(bounds.span_bound, 1);
  EXPECT_EQ(bounds.work_bound, 5);
  EXPECT_EQ(bounds.interval_bound, 5);
  EXPECT_EQ(bounds.best_component(), BoundComponent::kWork);
}

TEST(LowerBoundsBest, ComponentNamesAreStable) {
  EXPECT_STREQ(ToString(BoundComponent::kDepthInterval), "depth-interval");
  EXPECT_STREQ(ToString(BoundComponent::kDepthProfile), "depth-profile");
  EXPECT_STREQ(ToString(BoundComponent::kInterval), "interval");
  EXPECT_STREQ(ToString(BoundComponent::kWork), "work");
  EXPECT_STREQ(ToString(BoundComponent::kSpan), "span");
}

TEST(LowerBoundsBest, AttributionAlwaysMatchesBestValue) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 7919);
    Instance instance;
    instance.add_job(Job(MakeAttachmentTree(12, 0.5, rng), 0));
    instance.add_job(
        Job(MakeAttachmentTree(8, 0.3, rng), rng.next_in_range(0, 3)));
    for (int m : {1, 2, 4}) {
      const LowerBounds bounds = ComputeLowerBounds(instance, m);
      const Time best = bounds.best();
      // The winner reaches best() and no higher-priority (simpler)
      // component does.
      switch (bounds.best_component()) {
        case BoundComponent::kSpan:
          EXPECT_EQ(bounds.span_bound, best);
          break;
        case BoundComponent::kWork:
          EXPECT_EQ(bounds.work_bound, best);
          EXPECT_LT(bounds.span_bound, best);
          break;
        case BoundComponent::kInterval:
          EXPECT_EQ(bounds.interval_bound, best);
          EXPECT_LT(bounds.span_bound, best);
          EXPECT_LT(bounds.work_bound, best);
          break;
        case BoundComponent::kDepthProfile:
          EXPECT_EQ(bounds.depth_profile_bound, best);
          EXPECT_LT(bounds.span_bound, best);
          EXPECT_LT(bounds.work_bound, best);
          EXPECT_LT(bounds.interval_bound, best);
          break;
        case BoundComponent::kDepthInterval:
          EXPECT_EQ(bounds.depth_interval_bound, best);
          EXPECT_LT(bounds.depth_profile_bound, best);
          break;
      }
    }
  }
}

TEST(LowerBoundsDeath, DiagnosesNonPositiveMachineCount) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Instance instance = SingleJob(MakeChain(3));
  EXPECT_DEATH(ComputeLowerBounds(instance, 0),
               "lower bounds need a machine: m >= 1, got 0");
  EXPECT_DEATH(ComputeLowerBounds(instance, -2),
               "lower bounds need a machine: m >= 1, got -2");
  EXPECT_DEATH(DepthProfileBound(instance.job(0), 0),
               "lower bounds need a machine: m >= 1, got 0");
}

TEST(Corollary54, HandComputedExamples) {
  // Star(4) on m=2: max(d + ceil(W(d)/m)) = max(ceil(5/2), 1+2, 2+0) = 3.
  EXPECT_EQ(SingleBatchOpt(MakeStar(4), 2), 3);
  // Chain: OPT = n regardless of m.
  EXPECT_EQ(SingleBatchOpt(MakeChain(5), 8), 5);
  // Blob: OPT = ceil(n/m).
  EXPECT_EQ(SingleBatchOpt(MakeParallelBlob(9), 4), 3);
  // Complete binary tree, 3 levels (7 nodes), m=2:
  // d=0: 4, d=1: 1+3=4, d=2: 2+2=4, d=3: 3 -> OPT=4.
  EXPECT_EQ(SingleBatchOpt(MakeCompleteTree(2, 3), 2), 4);
}

TEST(Corollary54Death, RejectsGeneralDags) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(SingleBatchOpt(MakeForkJoin(2), 2), "out-forest");
}

TEST(BruteForce, HandExamples) {
  EXPECT_EQ(BruteForceOpt(SingleJob(MakeChain(4)), 2), 4);
  EXPECT_EQ(BruteForceOpt(SingleJob(MakeParallelBlob(6)), 2), 3);
  EXPECT_EQ(BruteForceOpt(SingleJob(MakeStar(4)), 2), 3);
  EXPECT_EQ(BruteForceOpt(Instance(), 3), 0);
}

TEST(BruteForce, RespectsReleases) {
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(4), 0));
  instance.add_job(Job(MakeParallelBlob(4), 1));
  // m=2: at best, job 1 finishes at 2 (flow 2); job 2 at 4 (flow 3)?
  // Window [0,1] holds 8 work -> bound ceil(8/2)-1 = 3.
  EXPECT_EQ(BruteForceOpt(instance, 2), 3);
}

TEST(BruteForce, FeasibleDecisionMonotone) {
  const Instance instance = SingleJob(MakeCompleteTree(2, 3));
  const Time opt = BruteForceOpt(instance, 2);
  EXPECT_FALSE(BruteForceFeasible(instance, 2, opt - 1));
  EXPECT_TRUE(BruteForceFeasible(instance, 2, opt));
  EXPECT_TRUE(BruteForceFeasible(instance, 2, opt + 3));
}

TEST(BruteForce, GeneralDagDiamond) {
  // Fork-join on 1 processor: all 5 nodes sequential = 5.
  EXPECT_EQ(BruteForceOpt(SingleJob(MakeForkJoin(3)), 1), 5);
  // On 3 processors: source, 3 parallel, sink = 3 slots.
  EXPECT_EQ(BruteForceOpt(SingleJob(MakeForkJoin(3)), 3), 3);
}

// ---- Properties: LB <= OPT <= certified constructions ----

class BoundsVsBruteForceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundsVsBruteForceTest, LowerBoundsNeverExceedTrueOpt) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + m);
  // Tiny multi-job instances with scattered releases.
  Instance instance;
  const int jobs = 1 + static_cast<int>(rng.next_below(3));
  std::int64_t budget = 14;
  for (int j = 0; j < jobs; ++j) {
    const auto size = static_cast<NodeId>(
        rng.next_in_range(1, std::min<std::int64_t>(6, budget)));
    budget -= size;
    instance.add_job(Job(MakeAttachmentTree(size, 0.5, rng),
                         rng.next_in_range(0, 4)));
    if (budget <= 0) break;
  }
  const Time opt = BruteForceOpt(instance, m);
  const Time lb = MaxFlowLowerBound(instance, m);
  EXPECT_LE(lb, opt) << "lower bound exceeded true OPT";
  EXPECT_GE(lb, 1);
}

TEST_P(BoundsVsBruteForceTest, Corollary54EqualsTrueOptOnForests) {
  const auto [m, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 40503 + m);
  const Dag forest = MakeRandomForest(11, 2, 0.4, rng);
  const Time formula = SingleBatchOpt(forest, m);
  const Time exact = BruteForceOpt(SingleJob(Dag(forest)), m);
  EXPECT_EQ(formula, exact);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundsVsBruteForceTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3, 4, 5,
                                                              6, 7, 8)));

TEST(BruteForceDeath, RefusesOversizedInstances) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(BruteForceOpt(SingleJob(MakeParallelBlob(100)), 2),
               "too large");
}

}  // namespace
}  // namespace otsched
