// Tests for sim/renderer.h.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "sched/fifo.h"
#include "sim/engine.h"
#include "sim/renderer.h"

namespace otsched {
namespace {

TEST(Renderer, JobLabelsCycle) {
  EXPECT_EQ(JobLabel(0), 'A');
  EXPECT_EQ(JobLabel(25), 'Z');
  EXPECT_EQ(JobLabel(26), 'a');
  EXPECT_EQ(JobLabel(62), 'A');  // wraps
}

TEST(Renderer, GridShowsJobsAndIdle) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeParallelBlob(2), 0));
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(1, {1, 0});
  schedule.place(2, {0, 1});
  schedule.place(2, {1, 1});

  RenderOptions options;
  options.ruler = false;
  const std::string grid = RenderSchedule(schedule, instance, options);
  // Two processor rows; both slots full.
  EXPECT_NE(grid.find("P0"), std::string::npos);
  EXPECT_NE(grid.find("P1"), std::string::npos);
  EXPECT_NE(grid.find("AA"), std::string::npos);
  EXPECT_NE(grid.find("BB"), std::string::npos);
}

TEST(Renderer, IdleCellsAreDots) {
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  Schedule schedule(2);
  schedule.place(1, {0, 0});
  schedule.place(2, {0, 1});
  RenderOptions options;
  options.ruler = false;
  const std::string grid = RenderSchedule(schedule, instance, options);
  EXPECT_NE(grid.find(".."), std::string::npos);  // P1 idle both slots
}

TEST(Renderer, EmptyScheduleMessage) {
  Instance instance;
  const std::string grid = RenderSchedule(Schedule(1), instance);
  EXPECT_NE(grid.find("empty"), std::string::npos);
}

TEST(Renderer, SlotRangeClipping) {
  Instance instance;
  instance.add_job(Job(MakeChain(5), 0));
  Schedule schedule(1);
  for (Time t = 1; t <= 5; ++t) {
    schedule.place(t, {0, static_cast<NodeId>(t - 1)});
  }
  RenderOptions options;
  options.from_slot = 2;
  options.to_slot = 3;
  options.ruler = false;
  const std::string grid = RenderSchedule(schedule, instance, options);
  // Exactly two columns rendered.
  EXPECT_NE(grid.find("AA"), std::string::npos);
  EXPECT_EQ(grid.find("AAA"), std::string::npos);
}

TEST(Renderer, JobProfileCountsPerSlot) {
  Instance instance;
  instance.add_job(Job(MakeStar(3), 0));
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 4, fifo);
  const std::string profile = RenderJobProfile(result.full_schedule(), 0);
  EXPECT_NE(profile.find("(1)"), std::string::npos);  // root slot
  EXPECT_NE(profile.find("(3)"), std::string::npos);  // leaves slot
}

TEST(Renderer, EndToEndWithEngine) {
  Instance instance;
  Rng rng(1);
  instance.add_job(Job(MakeStar(4), 0));
  instance.add_job(Job(MakeChain(3), 2));
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 3, fifo);
  const std::string grid = RenderSchedule(result.full_schedule(), instance);
  EXPECT_NE(grid.find('A'), std::string::npos);
  EXPECT_NE(grid.find('B'), std::string::npos);
  EXPECT_NE(grid.find("slot"), std::string::npos);  // ruler line
}

}  // namespace
}  // namespace otsched
