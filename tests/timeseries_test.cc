// Tests for analysis/timeseries.h.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/timeseries.h"
#include "dag/builders.h"
#include "gen/fifo_adversary.h"
#include "sched/fifo.h"
#include "sim/engine.h"

namespace otsched {
namespace {

TEST(TimeSeries, HandComputedSmallRun) {
  // Chain(2) at 0 and Blob(3) at 1 on m=2 under FIFO.
  //  slot 1: chain head runs (busy 1), queue {chain}, backlog 1+?:
  //          blob not yet released -> backlog = 1 (chain's tail).
  //  slot 2: chain tail + one blob unit (busy 2): chain done;
  //          queue {blob}, backlog 2.
  //  slot 3: two blob units (busy 2), queue {}, backlog 0.
  Instance instance;
  instance.add_job(Job(MakeChain(2), 0));
  instance.add_job(Job(MakeParallelBlob(3), 1));
  FifoScheduler fifo;
  const SimResult result = Simulate(instance, 2, fifo);
  const RunTimeSeries series =
      ComputeTimeSeries(result.full_schedule(), instance);

  ASSERT_EQ(series.horizon(), 3);
  EXPECT_EQ(series.busy, (std::vector<int>{1, 2, 2}));
  EXPECT_EQ(series.queue_length, (std::vector<std::int64_t>{1, 1, 0}));
  EXPECT_EQ(series.backlog, (std::vector<std::int64_t>{1, 2, 0}));
  EXPECT_EQ(series.peak_queue(), 1);
  EXPECT_EQ(series.peak_backlog(), 2);
  EXPECT_NEAR(series.average_utilization(2), 5.0 / 6.0, 1e-12);
  EXPECT_NE(series.to_csv().find("slot,busy,queue,backlog"),
            std::string::npos);
}

TEST(TimeSeries, QueueBuildsOnTheAdversary) {
  LowerBoundSimOptions options;
  options.m = 16;
  options.num_jobs = 120;
  const AdversarialInstance adv = MakeAdversarialInstance(options);
  FifoScheduler::Options avoid;
  avoid.tie_break = FifoTieBreak::kAvoidMarked;
  avoid.deprioritize = [&adv](JobId job, NodeId node) {
    return adv.is_key(job, node);
  };
  FifoScheduler fifo(std::move(avoid));
  const SimResult result = Simulate(adv.instance, 16, fifo);
  const RunTimeSeries series =
      ComputeTimeSeries(result.full_schedule(), adv.instance);
  // The Lemma 4.1 story: the queue saturates above 1 and matches what
  // the co-simulation observed.
  EXPECT_EQ(series.peak_queue(), adv.fifo_run.max_alive);
  // Alternation leaves the machine under-utilized overall.
  EXPECT_LT(series.average_utilization(16), 0.95);
}

TEST(TimeSeries, EmptySchedule) {
  const RunTimeSeries series = ComputeTimeSeries(Schedule(2), Instance());
  EXPECT_EQ(series.horizon(), 0);
  EXPECT_EQ(series.peak_queue(), 0);
  EXPECT_EQ(series.average_utilization(2), 0.0);
}

TEST(LogFit, RecoversExactLogCurve) {
  // y = 2 * lg x + 3.
  std::vector<double> xs = {2, 4, 8, 16, 32, 64};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 * std::log2(x) + 3.0);
  const LogFit fit = FitLogarithm(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(LogFit, FlatDataHasZeroSlope) {
  const LogFit fit = FitLogarithm({8, 16, 32, 64}, {4, 4, 4, 4});
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
}

TEST(LogFit, FifoAdversaryCurveHasUnitSlope) {
  // End-to-end: the Theorem 4.2 ratio curve should fit a * lg m + b with
  // a ~ 1 (one extra OPT of flow per doubling of m).
  std::vector<double> xs;
  std::vector<double> ys;
  for (int m : {8, 16, 32, 64, 128}) {
    LowerBoundSimOptions options;
    options.m = m;
    options.num_jobs = 12 * m;
    options.record_layer_sizes = false;
    options.record_sublayer_trace = false;
    const LowerBoundSimResult result = RunLowerBoundSim(options);
    xs.push_back(static_cast<double>(m));
    ys.push_back(static_cast<double>(result.max_flow) /
                 static_cast<double>(result.certified_opt_upper));
  }
  const LogFit fit = FitLogarithm(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0, 0.15);
  EXPECT_GT(fit.r_squared, 0.99);
}

}  // namespace
}  // namespace otsched
