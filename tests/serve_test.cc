// Integration tests for the `otsched serve` daemon (src/serve): an
// in-process ScheduleServer on a real TCP socket, a windowed client
// streaming 10k jobs, and the two contracts the daemon exists for:
//
//   * per-job flows match an offline Simulate replay of the effective
//     arrival stream (the echoed releases) bit-for-bit, and
//   * retire-on-reply keeps the driver's arena proportional to the live
//     width of the stream, not its length.
//
// Plus the protocol unit surface: parse errors with byte positions, the
// one-DAG-spelling rule, and the /metrics //healthz HTTP one-shots.
#include "gtest_compat.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dag/validate.h"
#include "sched/registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/engine.h"

namespace otsched {
namespace {

/// Blocking TCP client for a "127.0.0.1:port" address.
class TestClient {
 public:
  explicit TestClient(const std::string& address) {
    const std::size_t colon = address.rfind(':');
    const std::string host = address.substr(0, colon);
    const int port = std::atoi(address.c_str() + colon + 1);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads until `lines` newline-terminated lines have accumulated.
  std::vector<std::string> read_lines(std::size_t lines) {
    while (count_lines() < lines) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::vector<std::string> out;
    std::size_t start = 0;
    while (out.size() < lines) {
      const std::size_t end = buffer_.find('\n', start);
      if (end == std::string::npos) break;
      out.push_back(buffer_.substr(start, end - start));
      start = end + 1;
    }
    buffer_.erase(0, start);
    return out;
  }

  /// Reads until the peer closes (HTTP one-shot responses).
  std::string read_to_eof() {
    std::string out;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  std::size_t count_lines() const {
    std::size_t count = 0;
    for (const char c : buffer_) {
      if (c == '\n') ++count;
    }
    return count;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

struct Reply {
  JobId job = kInvalidJob;
  Time release = 0;
  Time finish = 0;
  Time flow = 0;
};

Reply ParseReply(const std::string& line) {
  Reply reply;
  long long job = -1, release = -1, finish = -1, flow = -1;
  const int got =
      std::sscanf(line.c_str(),
                  "{\"job_id\": %lld, \"release\": %lld, \"finish\": %lld, "
                  "\"flow\": %lld}",
                  &job, &release, &finish, &flow);
  EXPECT_EQ(got, 4) << line;
  reply.job = static_cast<JobId>(job);
  reply.release = release;
  reply.finish = finish;
  reply.flow = flow;
  return reply;
}

class RunningServer {
 public:
  explicit RunningServer(serve::ServeOptions options) {
    server_.emplace(options, MakePolicy(options.policy, options.seed));
    std::string error;
    started_ = server_->start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) {
      thread_ = std::thread([this] { server_->run(); });
    }
  }
  ~RunningServer() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
  }

  serve::ScheduleServer& server() { return *server_; }
  bool started() const { return started_; }

 private:
  std::optional<serve::ScheduleServer> server_;
  std::thread thread_;
  bool started_ = false;
};

TEST(ServeIntegration, TenThousandJobStreamMatchesOfflineReplay) {
  constexpr int kJobs = 10000;
  constexpr int kWindow = 256;  // outstanding submissions (flow control)

  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "list-greedy";
  options.seed = 0;
  options.m = 4;
  options.chunk_slots = 64;
  RunningServer running(options);
  ASSERT_TRUE(running.started());

  TestClient client(running.server().address());
  ASSERT_TRUE(client.connected());

  // Windowed submission: at most kWindow unacknowledged jobs, so the
  // daemon's live width — and with retire-on-reply, its arena — stays
  // O(window) while the stream is 10k jobs long.  Requested release 0 is
  // clamped to the daemon's current slot and echoed back.
  std::vector<Reply> replies;
  replies.reserve(kJobs);
  int sent = 0;
  while (static_cast<int>(replies.size()) < kJobs) {
    std::string batch;
    while (sent < kJobs && sent - static_cast<int>(replies.size()) < kWindow) {
      batch += "{\"release\": 0, \"parents\": [-1, 0, 1]}\n";
      ++sent;
    }
    if (!batch.empty()) client.send_all(batch);
    const std::size_t want =
        static_cast<std::size_t>(sent) - replies.size();
    for (const std::string& line : client.read_lines(std::min<std::size_t>(
             want, static_cast<std::size_t>(kWindow) / 2))) {
      replies.push_back(ParseReply(line));
    }
  }
  running.stop();

  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(running.server().jobs_submitted(), kJobs);
  EXPECT_EQ(running.server().jobs_finished(), kJobs);

  // Replies arrive in completion order; ids are dense submission order.
  std::vector<Reply> by_id(kJobs);
  for (const Reply& r : replies) {
    ASSERT_GE(r.job, 0);
    ASSERT_LT(r.job, kJobs);
    by_id[static_cast<std::size_t>(r.job)] = r;
    EXPECT_EQ(r.flow, r.finish - r.release) << r.job;
  }

  // Bounded memory: 10k jobs x 3 nodes = 30k total, but the arena (live
  // + free-listed node slots; it never shrinks, so the final value is
  // the peak) must stay proportional to the window, not the stream.
  EXPECT_LT(running.server().arena_nodes(), 10000)
      << "retire-on-reply failed to bound the arena";

  // Offline replay of the EFFECTIVE stream: same policy, same seed, jobs
  // in id order at their echoed releases.  The daemon's per-job flows
  // must reproduce bit-for-bit (the tick path IS the batch path).
  Instance replay;
  for (int i = 0; i < kJobs; ++i) {
    Dag::Builder builder(3);
    builder.add_edge(0, 1);
    builder.add_edge(1, 2);
    replay.add_job(Job(std::move(builder).build(),
                       by_id[static_cast<std::size_t>(i)].release));
  }
  std::unique_ptr<Scheduler> offline = MakePolicy(options.policy, options.seed);
  ASSERT_NE(offline, nullptr);
  const SimResult result =
      Simulate(replay, options.m, *offline, FlowOnlyOptions());
  ASSERT_TRUE(result.flows.all_completed);
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(result.flows.flow[static_cast<std::size_t>(i)],
              by_id[static_cast<std::size_t>(i)].flow)
        << "job " << i;
    EXPECT_EQ(result.flows.completion[static_cast<std::size_t>(i)],
              by_id[static_cast<std::size_t>(i)].finish)
        << "job " << i;
  }
}

TEST(ServeIntegration, HttpEndpointsAndErrorReplies) {
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  RunningServer running(options);
  ASSERT_TRUE(running.started());

  {
    TestClient submit(running.server().address());
    ASSERT_TRUE(submit.connected());
    submit.send_all("{\"id\": \"tagged\", \"release\": 0, "
                    "\"parents\": [-1]}\n");
    const auto lines = submit.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"id\": \"tagged\""), std::string::npos)
        << lines[0];
    EXPECT_NE(lines[0].find("\"flow\": 1"), std::string::npos) << lines[0];

    // Malformed lines answer with positioned diagnostics and keep the
    // connection usable.
    submit.send_all("{\"release\": -3, \"parents\": [-1]}\n");
    const auto err = submit.read_lines(1);
    ASSERT_EQ(err.size(), 1u);
    EXPECT_NE(err[0].find("\"error\""), std::string::npos) << err[0];
    EXPECT_NE(err[0].find("negative release"), std::string::npos) << err[0];

    submit.send_all("{\"release\": 0, \"parents\": [-1], \"nodes\": 2, "
                    "\"edges\": [[0, 1]]}\n");
    const auto both = submit.read_lines(1);
    ASSERT_EQ(both.size(), 1u);
    EXPECT_NE(both[0].find("exactly one DAG spelling"), std::string::npos)
        << both[0];

    submit.send_all("{\"release\": 0, \"parents\": [-1, 0]}\n");
    const auto ok = submit.read_lines(1);
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_NE(ok[0].find("\"flow\": 2"), std::string::npos) << ok[0];
  }

  {
    TestClient metrics(running.server().address());
    ASSERT_TRUE(metrics.connected());
    metrics.send_all("GET /metrics HTTP/1.0\r\n\r\n");
    const std::string response = metrics.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"schema_version\""), std::string::npos);
    EXPECT_NE(response.find("\"serve.jobs_finished\""), std::string::npos)
        << response;
  }
  {
    TestClient healthz(running.server().address());
    ASSERT_TRUE(healthz.connected());
    healthz.send_all("GET /healthz HTTP/1.0\r\n\r\n");
    const std::string response = healthz.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("ok"), std::string::npos);
  }
  {
    TestClient missing(running.server().address());
    ASSERT_TRUE(missing.connected());
    missing.send_all("GET /nope HTTP/1.0\r\n\r\n");
    const std::string response = missing.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos);
  }

  running.stop();
  EXPECT_EQ(running.server().jobs_finished(), 2);
}

TEST(ServeIntegration, NoNewlineFloodIsBoundedAndRejected) {
  serve::ServeOptions options;
  options.listen = "127.0.0.1:0";
  options.policy = "fifo/first-ready";
  options.m = 2;
  options.max_line_bytes = 4096;  // small cap so the test floods cheaply
  RunningServer running(options);
  ASSERT_TRUE(running.started());

  {
    // A client streaming bytes with no newline must get one structured
    // error reply and a closed connection, not unbounded daemon memory.
    TestClient flood(running.server().address());
    ASSERT_TRUE(flood.connected());
    const std::string junk(64 * 1024, 'x');  // 16x the cap, no newline
    flood.send_all(junk);
    const std::string response = flood.read_to_eof();  // reply, then close
    EXPECT_NE(response.find("\"error\""), std::string::npos) << response;
    EXPECT_NE(response.find("line exceeds max length"), std::string::npos)
        << response;
  }
  {
    // A single over-cap line WITH a newline is rejected the same way.
    TestClient longline(running.server().address());
    ASSERT_TRUE(longline.connected());
    std::string line = "{\"parents\": [-1";
    while (line.size() < 8192) line += ", 0";
    line += "]}\n";
    longline.send_all(line);
    const std::string response = longline.read_to_eof();
    EXPECT_NE(response.find("line exceeds max length"), std::string::npos)
        << response;
  }
  {
    // An under-cap connection is untouched by the new bound.
    TestClient ok(running.server().address());
    ASSERT_TRUE(ok.connected());
    ok.send_all("{\"release\": 0, \"parents\": [-1]}\n");
    const auto lines = ok.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"flow\": 1"), std::string::npos) << lines[0];
  }

  running.stop();
  const auto& counters = running.server().registry().counters();
  const auto rejected = counters.find("serve.rejected_lines");
  ASSERT_NE(rejected, counters.end());
  EXPECT_EQ(rejected->second.value(), 2);
}

// ---- protocol unit surface ----

TEST(ServeProtocol, ParsesBothDagSpellings) {
  std::string error;
  const auto parents = serve::ParseSubmitRequest(
      "{\"id\": \"t\", \"release\": 7, \"parents\": [-1, 0, 0, 2]}", &error);
  ASSERT_TRUE(parents.has_value()) << error;
  EXPECT_EQ(parents->tag, "t");
  EXPECT_EQ(parents->release, 7);
  EXPECT_EQ(parents->dag.node_count(), 4);
  EXPECT_TRUE(IsOutForest(parents->dag));

  const auto edges = serve::ParseSubmitRequest(
      "{\"nodes\": 4, \"edges\": [[0, 1], [0, 2], [1, 3], [2, 3]]}", &error);
  ASSERT_TRUE(edges.has_value()) << error;
  EXPECT_EQ(edges->release, 0);
  EXPECT_EQ(edges->dag.node_count(), 4);
  EXPECT_FALSE(IsOutForest(edges->dag));  // diamond: two parents at 3
}

TEST(ServeProtocol, RejectsMalformedLinesWithBytePositions) {
  const char* cases[] = {
      "",                                            // not an object
      "[1, 2]",                                      // not an object
      "{\"release\": 0}",                            // no DAG spelling
      "{\"parents\": []}",                           // empty parents
      "{\"parents\": [-1, 2]}",                      // parent id >= child
      "{\"parents\": [0]}",                          // self/forward parent
      "{\"nodes\": 0, \"edges\": []}",               // nodes < 1
      "{\"nodes\": 2, \"edges\": [[1, 0]]}",         // edge not topological
      "{\"nodes\": 2, \"edges\": [[0, 5]]}",         // edge out of range
      "{\"release\": 0, \"parents\": [-1]} junk",    // trailing bytes
      "{\"frobnicate\": 1}",                         // unknown key
      "{\"release\": \"zero\", \"parents\": [-1]}",  // non-integer release
  };
  for (const char* text : cases) {
    std::string error;
    const auto request = serve::ParseSubmitRequest(text, &error);
    EXPECT_FALSE(request.has_value()) << text;
    EXPECT_NE(error.find("at byte"), std::string::npos)
        << text << " -> " << error;
  }
  // "nodes" with no edges is a legal antichain job.
  std::string error;
  const auto antichain = serve::ParseSubmitRequest("{\"nodes\": 2}", &error);
  ASSERT_TRUE(antichain.has_value()) << error;
  EXPECT_EQ(antichain->dag.node_count(), 2);
}

TEST(ServeProtocol, ReplyAndHttpFormatting) {
  EXPECT_EQ(serve::FormatFinishedReply(3, "my-job", 7, 12, 5),
            "{\"job_id\": 3, \"id\": \"my-job\", \"release\": 7, "
            "\"finish\": 12, \"flow\": 5}\n");
  EXPECT_EQ(serve::FormatFinishedReply(0, "", 0, 2, 2),
            "{\"job_id\": 0, \"release\": 0, \"finish\": 2, \"flow\": 2}\n");
  EXPECT_EQ(serve::FormatErrorReply("boom"), "{\"error\": \"boom\"}\n");
  const std::string response =
      serve::FormatHttpResponse(200, "text/plain", "ok\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n\r\nok\n"),
            std::string::npos);
}

}  // namespace
}  // namespace otsched
