// Tests for src/common: RNG, CSV, tables, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace otsched {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(rng.next_geometric(0.9, 5), 5);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  // The split stream must not replay the parent stream.
  int equal = 0;
  Rng a2(31);
  (void)a2.next_u64();  // advance past the split draw
  for (int i = 0; i < 32; ++i) {
    if (a2.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(37);
  const auto sample = rng.sample_indices(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (std::size_t i : sample) EXPECT_LT(i, 20u);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/otsched_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    csv.row(1, 2.5, "x");
    csv.row(3, 4.0, "y,z");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,x");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4,\"y,z\"");
  std::remove(path.c_str());
}

TEST(Table, FormatsAlignedColumns) {
  TextTable table({"m", "ratio"});
  table.row(16, 1.5);
  table.row(1024, 12.25);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| m "), std::string::npos);
  EXPECT_NE(text.find("1024"), std::string::npos);
  EXPECT_NE(text.find("12.250"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for_each_index(257, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for_each_index(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_each_index(
                   50,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, StopsClaimingAfterFailure) {
  // One worker makes claiming strictly sequential: after i == 0 throws,
  // the failed flag is set before any further index is claimed, so
  // exactly one call runs.
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  EXPECT_THROW(pool.parallel_for_each_index(1000,
                                            [&](std::size_t) {
                                              ++calls;
                                              throw std::runtime_error("x");
                                            }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, PropagatesNonStdException) {
  // The capture path is catch (...): payloads that do not derive from
  // std::exception must survive the trip to the caller thread intact.
  ThreadPool pool(2);
  try {
    pool.parallel_for_each_index(8, [](std::size_t) { throw 42; });
    FAIL() << "expected the int payload to be rethrown";
  } catch (int value) {
    EXPECT_EQ(value, 42);
  }
}

TEST(ThreadPool, EveryTaskThrowingStillPropagatesExactlyOne) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_each_index(
                   64,
                   [](std::size_t i) {
                     throw std::runtime_error("boom " + std::to_string(i));
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_each_index(
                   10, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> total{0};
  pool.parallel_for_each_index(25, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 25);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for_each_index(10, [&](std::size_t) { ++total; });
  pool.parallel_for_each_index(20, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 30);
}

TEST(Timer, MeasuresNonNegativeTime) {
  WallTimer timer;
  EXPECT_GE(timer.elapsed_seconds(), 0.0);
  timer.reset();
  EXPECT_GE(timer.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace otsched
