// Certified OPT lower bounds (opt/maxflow, opt/flow_network,
// opt/dual_fitting) and the kOptLowerBound oracle.
//
// The load-bearing property, fuzzed over thousands of small instances
// (out-trees, general DAGs, scattered releases, faulted budgets):
//
//   heuristic bounds <= dual-fit certificate <= max-flow certificate
//                    <= brute-force OPT,
//
// with every certificate passing Certificate::verify() — and with
// verify() REJECTING deliberately corrupted certificates, so a passing
// sandwich can never be explained by a vacuous checker.
#include "gtest_compat.h"

#include <limits>

#include "check/oracles.h"
#include "dag/builders.h"
#include "gen/random_trees.h"
#include "gen/recursive.h"
#include "gen/series_parallel.h"
#include "job/serialize.h"
#include "opt/brute_force.h"
#include "opt/dual_fitting.h"
#include "opt/flow_network.h"
#include "opt/lower_bounds.h"
#include "opt/maxflow.h"
#include "opt/single_batch.h"

namespace otsched {
namespace {

Instance SingleJob(Dag dag, Time release = 0) {
  Instance instance;
  instance.add_job(Job(std::move(dag), release));
  return instance;
}

/// A small random DAG drawn from the same shape families the benches
/// use: out-trees and forests plus the general classes (fork-join,
/// series-parallel, map-reduce, parallel-for).  `size` is a soft target;
/// the hard budget is enforced by the caller.
Dag RandomSmallDag(Rng& rng, NodeId size) {
  switch (rng.next_below(6)) {
    case 0:
      return MakeAttachmentTree(size, 0.5, rng);
    case 1:
      return MakeRandomForest(size, size >= 2 ? 2 : 1, 0.4, rng);
    case 2:
      return MakeForkJoin(std::max<NodeId>(1, size - 2));
    case 3: {
      SeriesParallelOptions options;
      options.size = std::max<NodeId>(2, size);
      options.max_branches = 3;
      return MakeSeriesParallelDag(options, rng);
    }
    case 4:
      return MakeMapReducePipeline(1, std::max<NodeId>(1, size - 2), rng);
    default:
      return MakeRandomParallelForSeries(
          1 + static_cast<int>(rng.next_below(2)),
          std::max<NodeId>(1, size / 2), rng);
  }
}

/// 1-3 jobs, total work <= `node_budget`, releases in [0, max_release].
Instance RandomSmallInstance(Rng& rng, std::int64_t node_budget,
                             Time max_release) {
  Instance instance;
  const int jobs = 1 + static_cast<int>(rng.next_below(3));
  for (int j = 0; j < jobs && node_budget > 0; ++j) {
    const auto size = static_cast<NodeId>(
        rng.next_in_range(1, std::min<std::int64_t>(6, node_budget)));
    Dag dag = RandomSmallDag(rng, size);
    if (dag.node_count() > node_budget) dag = MakeChain(size);
    node_budget -= dag.node_count();
    instance.add_job(
        Job(std::move(dag), rng.next_in_range(0, max_release)));
  }
  return instance;
}

BudgetTrace RandomTrace(Rng& rng, int m, Time max_len) {
  BudgetTrace trace;
  const Time len = rng.next_in_range(1, max_len);
  for (Time slot = 1; slot <= len; ++slot) {
    if (rng.next_below(2) == 0) continue;  // unpinned: healthy slot
    trace.set(slot, static_cast<int>(rng.next_in_range(0, m)));
  }
  return trace;
}

// ---- the headline sandwich, >= 2000 fuzzed cases ----

TEST(CertificateFuzz, SandwichHoldsOnThousandsOfInstances) {
  int cases = 0;
  for (std::uint64_t seed = 1; seed <= 700; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
    const Time max_release = static_cast<Time>(seed % 5);  // incl. batched
    const Instance instance =
        RandomSmallInstance(rng, /*node_budget=*/12, max_release);
    for (int m : {1, 2, 3}) {
      const OracleResult verdict = CheckOptLowerBoundOracle(instance, m);
      ASSERT_TRUE(verdict.ok)
          << ToString(verdict.id) << " on m=" << m << ": " << verdict.detail
          << "\n"
          << InstanceToText(instance);
      ++cases;
    }
  }
  EXPECT_GE(cases, 2000);
}

TEST(CertificateFuzz, SandwichHoldsUnderFaultedBudgets) {
  for (std::uint64_t seed = 1; seed <= 250; ++seed) {
    Rng rng(seed * 6364136223846793005ULL + 3);
    const Instance instance =
        RandomSmallInstance(rng, /*node_budget=*/10, /*max_release=*/3);
    const int m = 1 + static_cast<int>(rng.next_below(3));
    const BudgetTrace trace = RandomTrace(rng, m, /*max_len=*/12);
    OptBoundCheckOptions options;
    options.budget = &trace;
    const OracleResult verdict =
        CheckOptLowerBoundOracle(instance, m, options);
    ASSERT_TRUE(verdict.ok)
        << ToString(verdict.id) << " on m=" << m << " under trace\n"
        << trace.to_csv() << verdict.detail << "\n"
        << InstanceToText(instance);
  }
}

// ---- hand-checked certificate values ----

TEST(MaxFlowCertificate, MatchesBruteForceOnHandInstances) {
  // Chain: the span binds; witness-free certification.
  EXPECT_EQ(MaxFlowCertificate(SingleJob(MakeChain(5)), 2).value, 5);
  // Blob: the work bound binds.
  EXPECT_EQ(MaxFlowCertificate(SingleJob(MakeParallelBlob(9)), 4).value, 3);
  // Fork-join diamond on one processor: all 5 nodes sequential.
  EXPECT_EQ(MaxFlowCertificate(SingleJob(MakeForkJoin(3)), 1).value, 5);
  EXPECT_EQ(MaxFlowCertificate(SingleJob(MakeForkJoin(3)), 3).value, 3);
  // Staggered blobs: interval bound ceil(8/2) - 1 = 3 binds (and is
  // exactly OPT, cf. BruteForce.RespectsReleases).
  Instance staggered;
  staggered.add_job(Job(MakeParallelBlob(4), 0));
  staggered.add_job(Job(MakeParallelBlob(4), 1));
  EXPECT_EQ(MaxFlowCertificate(staggered, 2).value, 3);
}

TEST(MaxFlowCertificate, EmptyInstanceIsTrivial) {
  const Certificate cert = MaxFlowCertificate(Instance(), 3);
  EXPECT_EQ(cert.value, 0);
  EXPECT_EQ(cert.method, "trivial");
  EXPECT_TRUE(cert.verify(Instance()));
}

TEST(MaxFlowCertificate, CarriesAHallWitnessWhenSpanDoesNotBind) {
  // Two size-8 blobs released together on m = 2: value = ceil(16/2) = 8,
  // certified by the slot set T = [1, 7] (demand 16 > capacity 14).
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(8), 0));
  instance.add_job(Job(MakeParallelBlob(8), 0));
  const Certificate cert = MaxFlowCertificate(instance, 2);
  EXPECT_EQ(cert.value, 8);
  EXPECT_EQ(cert.method, "max-flow");
  ASSERT_EQ(cert.witness.size(), 1u);
  EXPECT_EQ(cert.witness[0].first, 1);
  EXPECT_EQ(cert.witness[0].last, 7);
  EXPECT_EQ(cert.witness[0].weight, 1);
  EXPECT_TRUE(cert.verify(instance));
}

TEST(DualFitCertificate, DominatesEveryHeuristicComponent) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 2654435761ULL);
    const Instance instance =
        RandomSmallInstance(rng, /*node_budget=*/14, /*max_release=*/4);
    for (int m : {1, 2, 4}) {
      const Certificate dual = DualFitCertificate(instance, m);
      EXPECT_GE(dual.value, MaxFlowLowerBound(instance, m))
          << InstanceToText(instance);
      EXPECT_TRUE(dual.verify(instance));
    }
  }
}

// ---- mutation injection: verify() must reject broken certificates ----

class CorruptedCertificate : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_.add_job(Job(MakeParallelBlob(8), 0));
    instance_.add_job(Job(MakeParallelBlob(8), 0));
    cert_ = MaxFlowCertificate(instance_, 2);
    ASSERT_EQ(cert_.value, 8);
    ASSERT_TRUE(cert_.verify(instance_));
  }

  Instance instance_;
  Certificate cert_;
};

TEST_F(CorruptedCertificate, RejectsInflatedValue) {
  // Claiming 9 needs a witness against flow bound 8, which is feasible;
  // the carried witness must not certify it.
  cert_.value += 1;
  std::string why;
  EXPECT_FALSE(cert_.verify(instance_, nullptr, &why));
  EXPECT_NE(why.find("does not certify"), std::string::npos) << why;
}

TEST_F(CorruptedCertificate, RejectsDroppedWitness) {
  cert_.witness.clear();
  std::string why;
  EXPECT_FALSE(cert_.verify(instance_, nullptr, &why));
  EXPECT_NE(why.find("no witness"), std::string::npos) << why;
}

TEST_F(CorruptedCertificate, RejectsShrunkenWitnessInterval) {
  cert_.witness[0].last -= 1;  // windows no longer contained in T
  EXPECT_FALSE(cert_.verify(instance_));
}

TEST_F(CorruptedCertificate, RejectsNonPositiveWeights) {
  cert_.witness[0].weight = 0;
  std::string why;
  EXPECT_FALSE(cert_.verify(instance_, nullptr, &why));
  EXPECT_NE(why.find("weight"), std::string::npos) << why;
}

TEST_F(CorruptedCertificate, RejectsOverlappingIntervals) {
  cert_.witness.push_back({cert_.witness[0].first, cert_.witness[0].last, 2});
  std::string why;
  EXPECT_FALSE(cert_.verify(instance_, nullptr, &why));
  EXPECT_NE(why.find("unsorted or overlapping"), std::string::npos) << why;
}

TEST_F(CorruptedCertificate, RejectsWrongMachineSize) {
  // The same witness on a 3-processor machine supplies 21 >= 16 slots.
  cert_.m = 3;
  EXPECT_FALSE(cert_.verify(instance_));
}

TEST_F(CorruptedCertificate, ScalingAValidWitnessStaysValid) {
  // Dual weights are scale-free: both sides of the inequality multiply
  // by the weight, so a scaled witness still certifies the same value.
  cert_.witness[0].weight = 1000;
  EXPECT_TRUE(cert_.verify(instance_));
}

TEST_F(CorruptedCertificate, RejectsHugeWeightOverflowAttempts) {
  // An inflated claim backed by a weight near INT64_MAX: the capacity
  // side must not wrap negative and sneak past the comparison.
  cert_.value += 1;
  cert_.witness[0].weight = std::numeric_limits<std::int64_t>::max();
  EXPECT_FALSE(cert_.verify(instance_));
}

TEST(CertificateVerify, RejectsBoundAboveOptEvenWithFabricatedWitness) {
  // A hand-fabricated dual assignment claiming 4 on a blob whose OPT is
  // 3: every window [1, 3] is covered, demand 9 <= capacity 4 * 3.
  const Instance instance = SingleJob(MakeParallelBlob(9));
  Certificate fake;
  fake.value = 4;
  fake.m = 4;
  fake.method = "dual-fit";
  fake.witness = {{1, 3, 1}};
  EXPECT_FALSE(fake.verify(instance));
}

// ---- windows and the relaxation decision ----

TEST(SubjobWindows, ChainWindowsMatchDepthAndHeight) {
  const Instance instance = SingleJob(MakeChain(3), /*release=*/2);
  const auto windows = ComputeSubjobWindows(instance, /*flow_bound=*/4);
  ASSERT_EQ(windows.size(), 3u);
  // Node 0: depth 1, height 3 -> [3, 4]; node 1: [4, 5]; node 2: [5, 6].
  EXPECT_EQ(windows[0].earliest, 3);
  EXPECT_EQ(windows[0].latest, 4);
  EXPECT_EQ(windows[1].earliest, 4);
  EXPECT_EQ(windows[1].latest, 5);
  EXPECT_EQ(windows[2].earliest, 5);
  EXPECT_EQ(windows[2].latest, 6);
}

TEST(FlowRelaxation, DecisionIsMonotoneInTheFlowBound) {
  Rng rng(99);
  const Instance instance =
      RandomSmallInstance(rng, /*node_budget=*/12, /*max_release=*/3);
  const Time value = MaxFlowCertificate(instance, 2).value;
  EXPECT_FALSE(FlowRelaxationFeasible(instance, 2, value - 1));
  EXPECT_TRUE(FlowRelaxationFeasible(instance, 2, value));
  EXPECT_TRUE(FlowRelaxationFeasible(instance, 2, value + 5));
}

TEST(FlowRelaxation, WitnessDeficiencyIsRealOnHandInstance) {
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(8), 0));
  instance.add_job(Job(MakeParallelBlob(8), 0));
  std::vector<DualInterval> witness;
  ASSERT_FALSE(FlowRelaxationFeasible(instance, 2, 7, nullptr, &witness));
  ASSERT_EQ(witness.size(), 1u);
  // T = [1, 7]: all 16 unit windows [1, 7] are inside, supply is 14.
  EXPECT_EQ(witness[0].first, 1);
  EXPECT_EQ(witness[0].last, 7);
}

// ---- the Dinic core ----

TEST(MaxFlowGraph, HandNetwork) {
  // Classic 4-node diamond with a bottleneck.
  MaxFlowGraph graph(4);
  graph.add_edge(0, 1, 3);
  graph.add_edge(0, 2, 2);
  graph.add_edge(1, 2, 5);
  graph.add_edge(1, 3, 2);
  graph.add_edge(2, 3, 3);
  EXPECT_EQ(graph.max_flow(0, 3), 5);
}

TEST(MaxFlowGraph, MinCutSeparatesSourceFromSink) {
  MaxFlowGraph graph(4);
  graph.add_edge(0, 1, 10);
  graph.add_edge(1, 2, 1);  // the cut
  graph.add_edge(2, 3, 10);
  EXPECT_EQ(graph.max_flow(0, 3), 1);
  const std::vector<char> side = graph.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlowGraph, ZeroCapacityEdgesCarryNoFlow) {
  MaxFlowGraph graph(3);
  const int e = graph.add_edge(0, 1, 0);
  graph.add_edge(1, 2, 4);
  EXPECT_EQ(graph.max_flow(0, 2), 0);
  EXPECT_EQ(graph.flow_on(e), 0);
}

}  // namespace
}  // namespace otsched
