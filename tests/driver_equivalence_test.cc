// The tick/advance gate for the incremental SimDriver: stepping a driver
// one slot at a time (advance(1) ... drain()) must be BIT-IDENTICAL to
// one-shot Simulate — same Schedule, flows, stats, and byte-identical
// observer hook streams — for every registry policy, in both record
// modes, with and without observers, and under fluctuating fault
// budgets.  Simulate() itself is a thin submit_all+drain loop over the
// driver, so this suite is what licenses the claim that the batch path
// and the tick path are the same code.
//
// On top of the equivalence matrix: the streaming contract — mid-run
// submit() between advances lands jobs in the same (release, id) arrival
// order the batch path uses, take_finished() reports every completion
// exactly once with flow == finish - release, and retire_finished()
// keeps arena memory proportional to the live width of the stream
// instead of the length of the run.
#include "gtest_compat.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/certified.h"
#include "gen/random_trees.h"
#include "sched/fifo.h"
#include "sched/registry.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "sim/observers.h"
#include "sim/trace.h"

namespace otsched {
namespace {

/// Flattens every hook invocation into one comparable line (pick wall
/// times excluded — the one nondeterministic hook argument).
class HookRecorder final : public RunObserver {
 public:
  void on_run_begin(const EngineBackend& engine) override {
    std::ostringstream line;
    line << "begin m=" << engine.m() << " jobs=" << engine.job_count();
    lines_.push_back(line.str());
  }
  void on_slot_begin(Time slot, const EngineBackend& engine) override {
    std::ostringstream line;
    line << "slot " << slot << " alive=" << engine.alive().size();
    lines_.push_back(line.str());
  }
  void on_arrival(Time slot, JobId job) override {
    std::ostringstream line;
    line << "arrive " << slot << ' ' << job;
    lines_.push_back(line.str());
  }
  void on_capacity_change(Time slot, int capacity) override {
    std::ostringstream line;
    line << "cap " << slot << ' ' << capacity;
    lines_.push_back(line.str());
  }
  void on_pick(Time slot, const EngineBackend&,
               std::span<const SubjobRef> picks, double) override {
    std::ostringstream line;
    line << "pick " << slot;
    for (const SubjobRef& ref : picks) {
      line << ' ' << ref.job << ':' << ref.node;
    }
    lines_.push_back(line.str());
  }
  void on_execute(Time slot, SubjobRef ref) override {
    std::ostringstream line;
    line << "exec " << slot << ' ' << ref.job << ':' << ref.node;
    lines_.push_back(line.str());
  }
  void on_complete(Time slot, JobId job) override {
    std::ostringstream line;
    line << "done " << slot << ' ' << job;
    lines_.push_back(line.str());
  }
  void on_finish(const SimResult& result) override {
    std::ostringstream line;
    line << "finish horizon=" << result.stats.horizon
         << " max_flow=" << result.flows.max_flow;
    lines_.push_back(line.str());
  }

  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

void ExpectIdenticalResults(const SimResult& tick, const SimResult& batch,
                            const std::string& label) {
  ASSERT_EQ(tick.has_schedule(), batch.has_schedule()) << label;
  if (batch.has_schedule()) {
    const Schedule& got = tick.full_schedule();
    const Schedule& want = batch.full_schedule();
    ASSERT_EQ(got.horizon(), want.horizon()) << label;
    ASSERT_EQ(got.total_placed(), want.total_placed()) << label;
    for (Time t = 1; t <= want.horizon(); ++t) {
      const auto a = got.at(t);
      const auto b = want.at(t);
      ASSERT_EQ(a.size(), b.size()) << label << " at slot " << t;
      for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << label << " at slot " << t << " index " << i;
      }
    }
  }
  EXPECT_EQ(tick.flows.completion, batch.flows.completion) << label;
  EXPECT_EQ(tick.flows.flow, batch.flows.flow) << label;
  EXPECT_EQ(tick.flows.max_flow, batch.flows.max_flow) << label;
  EXPECT_EQ(tick.flows.max_flow_job, batch.flows.max_flow_job) << label;
  EXPECT_EQ(tick.flows.all_completed, batch.flows.all_completed) << label;
  EXPECT_EQ(tick.stats.horizon, batch.stats.horizon) << label;
  EXPECT_EQ(tick.stats.executed_subjobs, batch.stats.executed_subjobs)
      << label;
  EXPECT_EQ(tick.stats.idle_processor_slots, batch.stats.idle_processor_slots)
      << label;
  EXPECT_EQ(tick.stats.busy_slots, batch.stats.busy_slots) << label;
  EXPECT_EQ(tick.stats.faulted_slots, batch.stats.faulted_slots) << label;
  EXPECT_EQ(tick.stats.capacity_shortfall, batch.stats.capacity_shortfall)
      << label;
}

/// Runs one (instance, m, policy) case through advance(1) ticking and
/// through one-shot Simulate under identical options, with and without
/// observers, and requires bit-identical everything.
void CheckTickEqualsBatch(const Instance& instance, int m,
                          const PolicySpec& spec, Time known_opt,
                          const SimOptions& options,
                          const std::string& label) {
  const std::uint64_t seed = 12345;
  const auto make = [&] {
    return spec.needs_semi_batched ? spec.make_semi_batched(known_opt)
                                   : spec.make(seed);
  };

  // Batch baseline.
  auto batch_scheduler = make();
  const SimResult batch = Simulate(instance, m, *batch_scheduler, options);

  // Tick: advance one slot at a time until idle, then drain.
  auto tick_scheduler = make();
  SimDriver driver(m, *tick_scheduler, options);
  driver.submit_all(instance);
  Time ticks = 0;
  while (driver.advance(1) > 0) ++ticks;
  EXPECT_EQ(driver.advance(1), 0) << label;  // idle drivers report 0
  EXPECT_TRUE(driver.idle()) << label;
  const SimResult tick = driver.drain();
  ExpectIdenticalResults(tick, batch, label + " [tick]");

  // Observed legs: both paths must fire byte-identical hook streams and
  // the attached observers must not perturb the run.
  auto observed_batch_scheduler = make();
  HookRecorder batch_recorder;
  RunContext batch_context{options, &batch_recorder};
  const SimResult observed_batch =
      Simulate(instance, m, *observed_batch_scheduler, batch_context);
  ExpectIdenticalResults(observed_batch, batch, label + " [observed batch]");

  auto observed_tick_scheduler = make();
  HookRecorder tick_recorder;
  EventTrace streamed;
  StreamingTraceObserver tracer(streamed);
  ObserverList observers;
  observers.add(&tick_recorder);
  observers.add(&tracer);
  RunContext tick_context{options, &observers};
  SimDriver observed_driver(m, *observed_tick_scheduler, tick_context);
  observed_driver.submit_all(instance);
  while (observed_driver.advance(1) > 0) {
  }
  const SimResult observed_tick = observed_driver.drain();
  ExpectIdenticalResults(observed_tick, batch, label + " [observed tick]");
  EXPECT_EQ(tick_recorder.lines(), batch_recorder.lines())
      << label << " [hook stream]";
  if (batch.has_schedule()) {
    EXPECT_EQ(FirstDivergence(streamed,
                              DeriveTrace(batch.full_schedule(), instance)),
              -1)
        << label << " [streamed trace]";
  }
}

/// The full matrix on one corpus instance: every applicable policy ×
/// both record modes × ±faults (each leg internally ±observers).
void CheckMatrix(const Instance& instance, int m, bool semi_batched_certified,
                 Time known_opt, const std::string& corpus_label) {
  FaultSpec blip;
  blip.model = FaultModel::kRandomBlip;
  blip.seed = 5;
  blip.rate = 0.4;

  for (const PolicySpec& spec : AllPolicies()) {
    if (!PolicyApplies(spec, instance.all_out_forests(),
                       semi_batched_certified, m)) {
      continue;
    }
    std::ostringstream base;
    base << corpus_label << " / " << spec.name << " / m=" << m;

    SimOptions full;
    CheckTickEqualsBatch(instance, m, spec, known_opt, full,
                         base.str() + " full");
    CheckTickEqualsBatch(instance, m, spec, known_opt, FlowOnlyOptions(),
                         base.str() + " flow-only");

    // Fault legs for capacity-aware policies (window planners opt out of
    // fluctuating capacity and the engines CHECK that).
    if (!spec.needs_semi_batched &&
        spec.make(1)->supports_fluctuating_capacity()) {
      SimOptions faulted;
      faulted.faults = blip;
      CheckTickEqualsBatch(instance, m, spec, known_opt, faulted,
                           base.str() + " faulted");
      SimOptions faulted_flow;
      faulted_flow.faults = blip;
      faulted_flow.record = RecordMode::kFlowOnly;
      CheckTickEqualsBatch(instance, m, spec, known_opt, faulted_flow,
                           base.str() + " faulted flow-only");
    }
  }
}

TEST(DriverEquivalence, PoissonTreeMixAllPolicies) {
  Rng rng(7);
  Instance instance = MakePoissonArrivals(
      6, 0.2,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4),
                        static_cast<NodeId>(5 + r.next_below(20)), r);
      },
      rng);
  for (int m : {1, 3}) {
    CheckMatrix(instance, m, /*semi_batched_certified=*/false,
                /*known_opt=*/0, "tick-poisson");
  }
}

TEST(DriverEquivalence, CertifiedPipelinedSemiBatched) {
  Rng rng(42);
  CertifiedInstance cert = MakePipelinedSemiBatchedInstance(4, 2, 3, rng);
  CheckMatrix(cert.instance, 4, /*semi_batched_certified=*/true, cert.opt,
              "tick-pipelined");
}

TEST(DriverEquivalence, SaturatedCertifiedBatches) {
  Rng rng(42);
  CertifiedInstance cert = MakeSpacedSaturatedInstance(4, 3, 3, rng);
  CheckMatrix(cert.instance, 4, /*semi_batched_certified=*/false, cert.opt,
              "tick-saturated");
}

// ---- streaming: submit() between advances ----

TEST(DriverStreaming, MidRunSubmitMatchesBatchArrivalOrder) {
  // Jobs released at 0, 2, 5; the batch path sees them all up front, the
  // streaming path submits each one mid-run just before its release
  // becomes current.  Identical schedules prove the (release, id) merge.
  Instance instance;
  instance.add_job(Job(MakeChain(4), 0));
  instance.add_job(Job(MakeStar(3), 2));
  instance.add_job(Job(MakeChain(3), 5));

  FifoScheduler batch_fifo;
  const SimResult batch = Simulate(instance, 2, batch_fifo);

  FifoScheduler tick_fifo;
  SimDriver driver(2, tick_fifo);
  driver.submit(Job(MakeChain(4), 0));
  // Advance past slot 1, then submit the release-2 job (2 >= now()).
  ASSERT_GT(driver.advance(1), 0);
  ASSERT_EQ(driver.now(), 1);
  EXPECT_EQ(driver.submit(Job(MakeStar(3), 2)), 1);
  ASSERT_GT(driver.advance(2), 0);
  EXPECT_EQ(driver.submit(Job(MakeChain(3), 5)), 2);
  while (driver.advance(1) > 0) {
  }
  const SimResult tick = driver.drain();
  ExpectIdenticalResults(tick, batch, "mid-run submit");
}

TEST(DriverStreaming, TakeFinishedReportsEveryJobOnceWithExactFlows) {
  Instance instance;
  instance.add_job(Job(MakeChain(3), 0));
  instance.add_job(Job(MakeStar(4), 1));
  instance.add_job(Job(MakeChain(2), 4));

  FifoScheduler fifo;
  SimDriver driver(2, fifo);
  for (JobId id = 0; id < instance.job_count(); ++id) {
    driver.submit(Job(instance.job(id)));
  }
  std::vector<SimDriver::FinishedJob> finished;
  while (driver.advance(1) > 0) {
    for (const SimDriver::FinishedJob& f : driver.take_finished()) {
      finished.push_back(f);
    }
  }
  const SimResult result = driver.drain();
  ASSERT_EQ(finished.size(), 3u);
  // Every job exactly once, flow == finish - release, and the reported
  // flows agree with the run's FlowSummary.
  std::vector<bool> seen(3, false);
  for (const SimDriver::FinishedJob& f : finished) {
    ASSERT_GE(f.job, 0);
    ASSERT_LT(f.job, 3);
    EXPECT_FALSE(seen[static_cast<std::size_t>(f.job)]) << f.job;
    seen[static_cast<std::size_t>(f.job)] = true;
    EXPECT_EQ(f.flow, f.finish - f.release) << f.job;
    EXPECT_EQ(f.release, instance.job(f.job).release()) << f.job;
    EXPECT_EQ(f.finish,
              result.flows.completion[static_cast<std::size_t>(f.job)])
        << f.job;
    EXPECT_EQ(f.flow, result.flows.flow[static_cast<std::size_t>(f.job)])
        << f.job;
  }
  // Nothing left in the backlog.
  EXPECT_TRUE(driver.take_finished().empty());
}

TEST(DriverStreaming, RetireFinishedBoundsArenaToLiveWidth) {
  // A long sequential stream: 200 chain jobs, each released after the
  // previous one finishes (release = 3 * i on m=1 so at most two jobs are
  // ever live).  With retire-on-finish the arena must stay O(width), not
  // O(stream length).
  constexpr int kJobs = 200;
  constexpr NodeId kChain = 3;
  FifoScheduler fifo;
  SimDriver driver(1, fifo);
  std::int64_t peak_nodes = 0;
  JobId next = 0;
  std::size_t retired = 0;
  while (next < kJobs || !driver.idle()) {
    while (next < kJobs &&
           static_cast<Time>(kChain) * next <= driver.now() + 1) {
      driver.submit(Job(MakeChain(kChain), static_cast<Time>(kChain) * next));
      ++next;
    }
    if (driver.advance(1) == 0 && next < kJobs) {
      // Idle gap before the next release: submit unblocks the stream.
      continue;
    }
    retired += driver.retire_finished();
    peak_nodes = std::max(peak_nodes, driver.arena_nodes());
  }
  const SimResult result = driver.drain();
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_EQ(retired, static_cast<std::size_t>(kJobs));
  // 200 jobs x 3 nodes = 600 total; the live width is ~2 jobs, so the
  // recycled arena stays tiny.  The bound leaves generous slack — the
  // point is the asymptotics, not the constant.
  EXPECT_LE(peak_nodes, 64) << "arena grew with stream length";
}

TEST(DriverStreaming, RetiredJobsStillAnswerFlowQueries) {
  FifoScheduler fifo;
  SimDriver driver(2, fifo);
  driver.submit(Job(MakeChain(2), 0));
  driver.submit(Job(MakeChain(6), 0));
  while (driver.advance(1) > 0) {
    driver.retire_finished();
  }
  // Job 0 finished and was retired mid-run; the driver still reports its
  // cold facts (release / finished / done_work) and drain() still
  // produces a complete FlowSummary for both jobs.
  EXPECT_TRUE(driver.finished(0));
  EXPECT_EQ(driver.release(0), 0);
  EXPECT_EQ(driver.done_work(0), 2);
  const SimResult result = driver.drain();
  EXPECT_TRUE(result.flows.all_completed);
  ASSERT_EQ(result.flows.flow.size(), 2u);
  EXPECT_EQ(result.flows.flow[0], 2);
}

}  // namespace
}  // namespace otsched
