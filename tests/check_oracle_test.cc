// Mutation-injection tests for src/check: starting from a battery of
// known-good artifacts (a simulated schedule, LPF schedules, a
// Most-Children replay log, flow numbers), each test corrupts exactly ONE
// artifact and asserts that exactly the INTENDED oracle flags it while
// every other oracle still passes.  This is what certifies the oracle
// layer itself — a detector that fires on the wrong corruption (or not at
// all) is as dangerous as the bug it is meant to catch.
#include "gtest_compat.h"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "check/diffrun.h"
#include "check/oracles.h"
#include "sched/registry.h"
#include "common/rng.h"
#include "dag/validate.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "job/serialize.h"
#include "opt/single_batch.h"
#include "sched/fifo.h"
#include "sim/engine.h"

namespace otsched {
namespace {

constexpr int kAlpha = 4;

/// Every artifact the five oracles consume, derived from one out-tree.
struct Artifacts {
  Dag dag;
  Instance instance;  // the single job, release 0
  int m = 0;
  Schedule schedule{1};
  Time max_flow = 0;
  Time opt = 0;  // exact: single job at release 0 => SingleBatchOpt
  JobSchedule lpf;      // LPF[m]
  JobSchedule reduced;  // LPF[ceil(m/alpha)]
  McReplayLog log;      // MC replay of `reduced`'s packed tail
};

Artifacts MakeArtifacts(std::uint64_t seed, int m, NodeId nodes = 26) {
  Rng rng(seed);
  Artifacts a;
  a.dag = MakeTree(TreeFamily::kMixed, nodes, rng);
  a.instance.add_job(Job(Dag(a.dag), 0));
  a.m = m;
  FifoScheduler fifo;
  const SimResult run = Simulate(a.instance, m, fifo);
  a.schedule = run.full_schedule();
  a.max_flow = run.flows.max_flow;
  a.opt = SingleBatchOpt(a.dag, m);
  a.lpf = BuildLpfSchedule(a.dag, m);
  const int p = (m + kAlpha - 1) / kAlpha;
  a.reduced = BuildLpfSchedule(a.dag, p);
  // Lemma 5.5's busy guarantee needs every replayed slot except the last
  // to be full; by Lemma 5.2 that holds for the tail past OPT[m], so the
  // head is pre-executed — exactly Algorithm A's usage.
  const Time prefix = std::min<Time>(a.opt, a.reduced.length());
  const std::array<int, 3> budgets = {p, 1, std::max(1, p - 1)};
  a.log = RunMostChildrenLog(a.dag, a.reduced, budgets, prefix);
  return a;
}

/// Artifacts whose reduced schedule has a real packed tail (some deep
/// trees finish within the head; grow the tree until a tail exists so the
/// MC/tail mutation tests always have something to corrupt).
Artifacts MakeTailArtifacts(std::uint64_t seed, int m) {
  for (NodeId nodes : {26, 40, 56, 72, 96}) {
    Artifacts a = MakeArtifacts(seed, m, nodes);
    if (a.log.steps.size() >= 3) return a;
  }
  ADD_FAILURE() << "no tree with a packed tail for seed " << seed;
  return MakeArtifacts(seed, m);
}

/// Runs all five oracles on the artifact set, in OracleId order.
std::vector<OracleResult> RunAllOracles(const Artifacts& a) {
  return {
      CheckFeasibilityOracle(a.schedule, a.instance),
      CheckLpfValueOracle(a.dag, a.m, a.lpf, /*cross_check_brute_force=*/
                          a.dag.node_count() <= 16),
      CheckHeadTailOracle(a.dag, a.m, kAlpha, a.reduced),
      CheckMcBusyOracle(a.dag, a.reduced, a.log),
      CheckRatioCeilingOracle(a.instance, a.m, a.max_flow,
                              kTheorem57Ceiling, a.opt),
  };
}

/// Asserts that exactly `intended` failed and the other four passed.
void ExpectOnly(const std::vector<OracleResult>& results, OracleId intended,
                const std::string& context) {
  for (const OracleResult& r : results) {
    if (r.id == intended) {
      EXPECT_FALSE(r.ok) << context << ": intended oracle " << ToString(r.id)
                         << " did not fire";
    } else {
      EXPECT_TRUE(r.ok) << context << ": unintended oracle "
                        << ToString(r.id) << " fired: " << r.detail;
    }
  }
}

JobSchedule CopyWithNodeMoved(const JobSchedule& source, Time from,
                              NodeId node, Time to) {
  JobSchedule copy = source;
  auto& src = copy.slots[static_cast<std::size_t>(from - 1)];
  src.erase(std::find(src.begin(), src.end(), node));
  if (to > copy.length()) copy.slots.resize(static_cast<std::size_t>(to));
  copy.slots[static_cast<std::size_t>(to - 1)].push_back(node);
  copy.slot_of[static_cast<std::size_t>(node)] = to;
  return copy;
}

/// A leaf scheduled in the given slot (moving a leaf later never breaks
/// precedence), or -1.
NodeId LeafIn(const Dag& dag, const JobSchedule& schedule, Time slot) {
  for (NodeId v : schedule.at(slot)) {
    if (dag.children(v).empty()) return v;
  }
  return -1;
}

class OracleMutationTest : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(GetParam()) * 1013;
  }
};

TEST_P(OracleMutationTest, BaselineAllPass) {
  for (int m : {1, 2, 3, 4, 8}) {
    const Artifacts good = MakeArtifacts(seed(), m);
    for (const OracleResult& r : RunAllOracles(good)) {
      EXPECT_TRUE(r.ok) << "m=" << m << " " << ToString(r.id) << ": "
                        << r.detail;
    }
  }
}

TEST_P(OracleMutationTest, DroppedSubjobFiresFeasibilityOnly) {
  Artifacts a = MakeArtifacts(seed(), 3);
  // Rebuild the simulated schedule without its last placed subjob.
  Schedule corrupted(a.m);
  SubjobRef victim{-1, -1};
  for (Time t = a.schedule.horizon(); t >= 1 && victim.job < 0; --t) {
    const auto slot = a.schedule.at(t);
    if (!slot.empty()) victim = slot.back();
  }
  ASSERT_GE(victim.job, 0);
  bool dropped = false;
  for (Time t = 1; t <= a.schedule.horizon(); ++t) {
    for (const SubjobRef& ref : a.schedule.at(t)) {
      if (!dropped && ref == victim) {
        dropped = true;
        continue;
      }
      corrupted.place(t, ref);
    }
  }
  a.schedule = std::move(corrupted);
  ExpectOnly(RunAllOracles(a), OracleId::kFeasibility, "dropped subjob");
}

TEST_P(OracleMutationTest, DuplicatedSubjobFiresFeasibilityOnly) {
  Artifacts a = MakeArtifacts(seed(), 3);
  SubjobRef victim = a.schedule.at(1).front();
  a.schedule.place(a.schedule.horizon() + 1, victim);
  ExpectOnly(RunAllOracles(a), OracleId::kFeasibility, "duplicated subjob");
}

TEST_P(OracleMutationTest, StretchedLpfFiresLpfValueOnly) {
  Artifacts a = MakeArtifacts(seed(), 3);
  // Move a leaf from the final slot into a fresh extra slot: still a
  // feasible single-job schedule, but one slot longer than Corollary 5.4.
  const NodeId leaf = LeafIn(a.dag, a.lpf, a.lpf.length());
  ASSERT_GE(leaf, 0);
  a.lpf = CopyWithNodeMoved(a.lpf, a.lpf.length(), leaf, a.lpf.length() + 1);
  ExpectOnly(RunAllOracles(a), OracleId::kLpfValue, "stretched LPF[m]");
}

TEST_P(OracleMutationTest, IncompleteLpfFiresLpfValueOnly) {
  Artifacts a = MakeArtifacts(seed(), 4);
  // Erase a leaf from its slot entirely: total() < node_count.
  const NodeId leaf = LeafIn(a.dag, a.lpf, a.lpf.length());
  ASSERT_GE(leaf, 0);
  auto& slot = a.lpf.slots.back();
  slot.erase(std::find(slot.begin(), slot.end(), leaf));
  a.lpf.slot_of[static_cast<std::size_t>(leaf)] = kNoTime;
  ExpectOnly(RunAllOracles(a), OracleId::kLpfValue, "incomplete LPF[m]");
}

TEST_P(OracleMutationTest, DentedTailFiresHeadTailOnly) {
  // Use m = 8 so p = 2 and the packed tail is non-trivial; carving a leaf
  // out of a full tail slot dents the Figure 2 rectangle.
  Artifacts a = MakeTailArtifacts(seed(), 8);
  const int p = a.reduced.p;
  Time full_tail_slot = kNoTime;
  NodeId leaf = -1;
  for (Time t = a.reduced.length() - 1; t > a.opt; --t) {
    if (a.reduced.load(t) == p) {
      const NodeId candidate = LeafIn(a.dag, a.reduced, t);
      if (candidate >= 0) {
        full_tail_slot = t;
        leaf = candidate;
        break;
      }
    }
  }
  if (full_tail_slot == kNoTime) {
    GTEST_SKIP() << "no full tail slot with a movable leaf for this seed";
  }
  a.reduced = CopyWithNodeMoved(a.reduced, full_tail_slot, leaf,
                                a.reduced.length() + 1);
  // The MC oracle only reads the head slots (all < full_tail_slot) out of
  // the schedule, so the pre-recorded log stays valid: exactly one
  // artifact is corrupted.
  ExpectOnly(RunAllOracles(a), OracleId::kHeadTail, "dented tail");
}

TEST_P(OracleMutationTest, WrongBudgetFiresHeadTailOnly) {
  Artifacts a = MakeArtifacts(seed(), 8);
  a.reduced.p += 1;  // claims ceil(m/alpha)+1 processors
  ExpectOnly(RunAllOracles(a), OracleId::kHeadTail, "wrong reduced budget");
}

TEST_P(OracleMutationTest, WastedProcessorFiresMcBusyOnly) {
  Artifacts a = MakeTailArtifacts(seed(), 8);
  // Find a step that used its whole budget with work left after it, and
  // raise the claimed budget: the step now "wasted" a processor.
  bool injected = false;
  for (std::size_t i = 0; i + 1 < a.log.steps.size(); ++i) {
    if (static_cast<int>(a.log.steps[i].scheduled.size()) ==
        a.log.steps[i].budget) {
      a.log.steps[i].budget += 1;
      injected = true;
      break;
    }
  }
  ASSERT_TRUE(injected) << "replay had no full step before the last";
  ExpectOnly(RunAllOracles(a), OracleId::kMcBusy, "wasted processor");
}

TEST_P(OracleMutationTest, ReExecutionFiresMcBusyOnly) {
  Artifacts a = MakeTailArtifacts(seed(), 8);
  ASSERT_GE(a.log.steps.size(), 2u);
  ASSERT_FALSE(a.log.steps[0].scheduled.empty());
  // Replace the last step's first node with a node already run in step 1:
  // same budgets and counts, but one node runs twice and one never runs.
  auto& last = a.log.steps.back().scheduled;
  ASSERT_FALSE(last.empty());
  last[0] = a.log.steps[0].scheduled[0];
  ExpectOnly(RunAllOracles(a), OracleId::kMcBusy, "re-executed node");
}

TEST_P(OracleMutationTest, InflatedFlowFiresRatioCeilingOnly) {
  Artifacts a = MakeArtifacts(seed(), 4);
  a.max_flow =
      static_cast<Time>(kTheorem57Ceiling * static_cast<double>(a.opt)) + 1;
  ExpectOnly(RunAllOracles(a), OracleId::kRatioCeiling, "inflated flow");
}

TEST_P(OracleMutationTest, UnfinishedRunFiresRatioCeilingOnly) {
  Artifacts a = MakeArtifacts(seed(), 4);
  a.max_flow = kInfiniteTime;  // a job that never completes
  ExpectOnly(RunAllOracles(a), OracleId::kRatioCeiling, "unfinished run");
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleMutationTest, ::testing::Range(1, 7));

// ---- flow-floor direction (diffrun's differential check) ----

TEST(RatioCeilingOracle, LowerBoundDenominatorIsConservative) {
  // With no certified OPT the oracle must fall back to the lower-bound
  // certificate; a flow within ceiling * bound passes, far above fails.
  Rng rng(99);
  const Dag tree = MakeTree(TreeFamily::kSpiny, 20, rng);
  Instance instance;
  instance.add_job(Job(Dag(tree), 0));
  const int m = 2;
  FifoScheduler fifo;
  const SimResult run = Simulate(instance, m, fifo);
  EXPECT_TRUE(CheckRatioCeilingOracle(instance, m, run.flows.max_flow,
                                      kTheorem56Ceiling));
  EXPECT_FALSE(CheckRatioCeilingOracle(instance, m,
                                       run.flows.max_flow * 100000,
                                       kTheorem56Ceiling));
}

// ---- shrinking ----

TEST(ShrinkInstance, ConvergesToSinglePredicateCarrier) {
  // Predicate: "some job has >= 12 subjobs".  The shrunk instance must
  // still satisfy it but consist of exactly the one carrier job.
  Rng rng(7);
  Instance fat = MakePoissonArrivals(
      6, 0.2,
      [](std::int64_t i, Rng& r) {
        const NodeId size = (i == 3) ? 14 : static_cast<NodeId>(
                                                4 + r.next_below(4));
        return MakeTree(TreeFamily::kMixed, size, r);
      },
      rng);
  const FailurePredicate predicate = [](const Instance& candidate) {
    for (JobId i = 0; i < candidate.job_count(); ++i) {
      if (candidate.job(i).dag().node_count() >= 12) return true;
    }
    return false;
  };
  ASSERT_TRUE(predicate(fat));
  std::int64_t evals = 0;
  const Instance lean = ShrinkInstance(fat, predicate, 400, &evals);
  EXPECT_TRUE(predicate(lean));
  EXPECT_EQ(lean.job_count(), 1);
  EXPECT_GT(evals, 0);
  // Subtree dropping also trims the carrier itself down to the threshold.
  EXPECT_LT(lean.total_work(), fat.total_work());
}

TEST(ShrinkInstance, RespectsEvalBudget) {
  Rng rng(8);
  Instance fat = MakePoissonArrivals(
      8, 0.3,
      [](std::int64_t, Rng& r) {
        return MakeTree(TreeFamily::kMixed,
                        static_cast<NodeId>(6 + r.next_below(6)), r);
      },
      rng);
  std::int64_t evals = 0;
  const Instance out = ShrinkInstance(
      fat, [](const Instance&) { return true; }, 5, &evals);
  EXPECT_LE(evals, 5);
  EXPECT_TRUE(out.job_count() >= 1);
}

TEST(RemoveSubtree, DropsDescendantsAndStaysForest) {
  Rng rng(9);
  const Dag tree = MakeTree(TreeFamily::kMixed, 30, rng);
  // Remove a non-root, non-leaf node so descendants actually exist.
  NodeId victim = -1;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (!tree.parents(v).empty() && !tree.children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  const Dag pruned = RemoveSubtree(tree, victim);
  EXPECT_LT(pruned.node_count(), tree.node_count());
  EXPECT_GE(pruned.node_count(), 1);
  EXPECT_TRUE(IsOutForest(pruned));
  // Non-descendant structure survives: same number of roots.
  int roots_before = 0, roots_after = 0;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    roots_before += tree.parents(v).empty() ? 1 : 0;
  }
  for (NodeId v = 0; v < pruned.node_count(); ++v) {
    roots_after += pruned.parents(v).empty() ? 1 : 0;
  }
  EXPECT_EQ(roots_after, roots_before);
}

// ---- harness end-to-end on a tiny grid ----

TEST(DifferentialFuzz, TinyGridIsClean) {
  FuzzOptions options;
  options.seeds = 3;
  options.max_jobs = 5;
  options.max_job_nodes = 18;
  options.machine_sizes = {1, 2, 4};
  options.workers = 2;
  const FuzzReport report = RunDifferentialFuzz(options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.simulations, 0);
  EXPECT_GT(report.oracle_checks, report.simulations);
}

TEST(DifferentialFuzz, ReplayRoundTripsThroughSerializedRepro) {
  // A repro file is instance text plus `# policy/m/seed` headers; replay
  // must re-run the exact case deterministically.
  Rng rng(11);
  Instance instance = MakePoissonArrivals(
      3, 0.2,
      [](std::int64_t, Rng& r) {
        return MakeTree(TreeFamily::kMixed, 8, r);
      },
      rng);
  instance.set_name("replay-roundtrip");
  const std::string repro = "# policy: fifo/first-ready\n# m: 2\n"
                            "# seed: 11\n" +
                            InstanceToText(instance);
  FuzzOptions options;
  const FuzzReport report = ReplayRepro(repro, options);
  EXPECT_TRUE(report.ok()) << report.summary();
  // The extra legs (record-mode rerun, faulted engine-equivalence pair)
  // are pure functions of the case identity, so replay re-runs exactly
  // what the original fuzz case ran: here the primary simulation plus
  // the two faulted-equivalence runs.
  EXPECT_EQ(report.simulations, 3);
  EXPECT_GT(report.oracle_checks, 0);
  // Replay is deterministic: a second pass reproduces the same counts.
  const FuzzReport again = ReplayRepro(repro, options);
  EXPECT_EQ(again.simulations, report.simulations);
  EXPECT_EQ(again.oracle_checks, report.oracle_checks);
}

TEST(DifferentialFuzz, ReplaysOptCertificateRepro) {
  // The certificate leg runs under the "<opt-certificate>" pseudo-policy:
  // a pure function of (instance, m, seed) — the budget trace re-derives
  // from the headers — so replay needs no simulation and no extra state.
  Rng rng(13);
  Instance instance = MakePoissonArrivals(
      2, 0.3,
      [](std::int64_t, Rng& r) {
        return MakeTree(TreeFamily::kSpiny, 6, r);
      },
      rng);
  instance.set_name("opt-certificate-replay");
  const std::string repro = "# policy: <opt-certificate>\n# m: 2\n"
                            "# seed: 5\n" +
                            InstanceToText(instance);
  FuzzOptions options;
  const FuzzReport report = ReplayRepro(repro, options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.simulations, 0);
  EXPECT_EQ(report.oracle_checks, 1);
  const FuzzReport again = ReplayRepro(repro, options);
  EXPECT_EQ(again.oracle_checks, report.oracle_checks);
}

TEST(DifferentialFuzz, OptCertificateLegTogglesOracleChecks) {
  FuzzOptions options;
  options.seeds = 2;
  options.max_jobs = 4;
  options.max_job_nodes = 12;
  options.machine_sizes = {1, 2};
  options.workers = 1;
  const FuzzReport with_certificates = RunDifferentialFuzz(options);
  options.opt_certificates = false;
  const FuzzReport without_certificates = RunDifferentialFuzz(options);
  EXPECT_TRUE(with_certificates.ok()) << with_certificates.summary();
  EXPECT_TRUE(without_certificates.ok()) << without_certificates.summary();
  // One certificate check per (seed, m) cell on the general instance.
  EXPECT_EQ(with_certificates.oracle_checks - 4,
            without_certificates.oracle_checks);
}

TEST(PolicyRegistry, CoversEverySchedAndCoreFamily) {
  // The differential harness is only as strong as its policy pool: pin
  // the registry to the full src/sched + src/core surface.
  std::vector<std::string> names;
  for (const PolicySpec& spec : AllPolicies()) {
    names.push_back(spec.name);
  }
  for (const char* required :
       {"fifo/first-ready", "fifo/most-children", "list-greedy",
        "round-robin-equi", "work-stealing", "remaining-work/smallest",
        "global-lpf", "alg-a/general", "alg-a/semi-batched"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "policy registry lost " << required;
  }
}

}  // namespace
}  // namespace otsched
