// Tests for sched/work_stealing.h: feasibility, the discovery-only
// information model, determinism, and qualitative behaviour (deque
// locality, steal failures under serial work).
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "gen/arrivals.h"
#include "gen/random_trees.h"
#include "sched/work_stealing.h"
#include "sim/validator.h"

namespace otsched {
namespace {

Instance MixedInstance(std::uint64_t seed, int jobs) {
  Rng rng(seed);
  return MakePoissonArrivals(
      jobs, 0.1,
      [](std::int64_t i, Rng& r) {
        return MakeTree(static_cast<TreeFamily>(i % 4), 40, r);
      },
      rng);
}

TEST(WorkStealing, FeasibleOnMixedLoad) {
  const Instance instance = MixedInstance(1, 10);
  WorkStealingScheduler scheduler;
  const SimResult result = Simulate(instance, 4, scheduler);
  const auto report = ValidateSchedule(result.full_schedule(), instance);
  EXPECT_TRUE(report.feasible) << report.violation;
  EXPECT_TRUE(result.flows.all_completed);
}

TEST(WorkStealing, SeedDeterminism) {
  const Instance instance = MixedInstance(2, 8);
  WorkStealingScheduler::Options options;
  options.seed = 99;
  WorkStealingScheduler a(options);
  WorkStealingScheduler b(options);
  EXPECT_EQ(Simulate(instance, 4, a).flows.max_flow,
            Simulate(instance, 4, b).flows.max_flow);
}

TEST(WorkStealing, ChainRunsSeriallyWithManySteals) {
  // A single chain has parallelism 1: one worker works every slot, the
  // other m-1 fail their steals.
  Instance instance;
  instance.add_job(Job(MakeChain(20), 0));
  WorkStealingScheduler scheduler;
  const SimResult result = Simulate(instance, 4, scheduler);
  EXPECT_EQ(result.flows.max_flow, 20);  // no policy can beat the span
  EXPECT_GE(scheduler.failed_steals(), 3 * 19);
}

TEST(WorkStealing, TreeShapedWorkSaturatesTheMachine) {
  // Stolen tree nodes spawn children into the thief's deque, so a
  // complete binary tree reaches full utilization fast: flow stays within
  // W/m + O(span) (the Blumofe–Leiserson bound shape).
  Instance instance;
  instance.add_job(Job(MakeCompleteTree(2, 10), 0));  // 1023 nodes, span 10
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    WorkStealingScheduler::Options options;
    options.seed = seed;
    WorkStealingScheduler scheduler(options);
    const SimResult result = Simulate(instance, 8, scheduler);
    EXPECT_TRUE(result.flows.all_completed);
    EXPECT_LE(result.flows.max_flow, 1023 / 8 + 4 * 10 + 8) << seed;
  }
}

TEST(WorkStealing, FlatBlobIsStealLimited) {
  // The counterpoint: a structureless blob lives on ONE deque, steals
  // remove single leaves that spawn nothing, so throughput is limited by
  // the steal success rate (~1 extra per slot at m=8), not by m.  This
  // pins the simulated model's semantics.
  Instance instance;
  instance.add_job(Job(MakeParallelBlob(400), 0));
  WorkStealingScheduler scheduler;
  const SimResult result = Simulate(instance, 8, scheduler);
  EXPECT_TRUE(result.flows.all_completed);
  EXPECT_GE(result.flows.max_flow, 2 * (400 / 8));  // far from W/m
  EXPECT_LE(result.flows.max_flow, 400);            // but better than serial
}

TEST(WorkStealing, MakespanWithinGrahamStyleBound) {
  // Classic work-stealing guarantee shape: T <= c1*W/m + c2*span for a
  // single job (here checked loosely with a generous constant; steals
  // are random so we add slack per steal round).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Dag tree = MakeTree(TreeFamily::kMixed, 500, rng);
    const auto metrics = ComputeMetrics(tree);
    Instance instance;
    instance.add_job(Job(Dag(tree), 0));
    WorkStealingScheduler::Options options;
    options.seed = seed;
    WorkStealingScheduler scheduler(options);
    const SimResult result = Simulate(instance, 8, scheduler);
    const Time bound = 4 * (metrics.work / 8 + 4 * metrics.span) + 32;
    EXPECT_LE(result.flows.max_flow, bound) << "seed " << seed;
  }
}

TEST(WorkStealing, MultipleStealAttemptsHelp) {
  // More steal attempts per slot can only reduce idle worker-slots.
  const Instance instance = MixedInstance(3, 8);
  WorkStealingScheduler::Options one;
  one.steal_attempts = 1;
  WorkStealingScheduler::Options four;
  four.steal_attempts = 4;
  WorkStealingScheduler a(one);
  WorkStealingScheduler b(four);
  const SimResult ra = Simulate(instance, 8, a);
  const SimResult rb = Simulate(instance, 8, b);
  EXPECT_TRUE(ra.flows.all_completed);
  EXPECT_TRUE(rb.flows.all_completed);
  // Not strictly monotone per-seed, but grossly so.
  EXPECT_LE(rb.stats.idle_processor_slots,
            2 * ra.stats.idle_processor_slots + 64);
}

TEST(WorkStealing, ArrivalsLandOnOneDeque) {
  // First slot after a lone arrival: exactly one subjob runs (only the
  // home worker has the root; nothing to steal elsewhere... the root is
  // singular anyway).  Checks the submission model.
  Instance instance;
  instance.add_job(Job(MakeCompleteTree(2, 5), 0));
  WorkStealingScheduler scheduler;
  const SimResult result = Simulate(instance, 4, scheduler);
  EXPECT_EQ(result.full_schedule().load(1), 1);
  EXPECT_LE(result.full_schedule().load(2), 2);
}

}  // namespace
}  // namespace otsched
