// Tests for sim/batch_runner.h: deterministic index-ordered results under
// any worker count, support for non-default-constructible results, and
// the simulation fan-out convenience.
#include "gtest_compat.h"

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "dag/builders.h"
#include "sched/registry.h"
#include "sim/batch_runner.h"

namespace otsched {
namespace {

TEST(BatchRunner, MapReturnsIndexOrderForAnyWorkerCount) {
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    const BatchRunner runner(workers);
    const std::vector<int> out =
        runner.Map<int>(100, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
  }
}

TEST(BatchRunner, MapSupportsNonDefaultConstructibleResults) {
  // Schedule has no default constructor — the exact shape SimResult cells
  // produce.
  const BatchRunner runner(3);
  const std::vector<Schedule> out = runner.Map<Schedule>(5, [](std::size_t i) {
    Schedule schedule(static_cast<int>(i) + 1);
    schedule.place(1, SubjobRef{0, 0});
    return schedule;
  });
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].m(), static_cast<int>(i) + 1);
    EXPECT_EQ(out[i].total_placed(), 1);
  }
}

TEST(BatchRunner, MapEmptyIsEmpty) {
  const BatchRunner runner;
  EXPECT_TRUE(runner.Map<int>(0, [](std::size_t) { return 0; }).empty());
}

TEST(BatchRunner, MapWithFailuresRecordsThrowingCellsAndKeepsTheRest) {
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    const BatchRunner runner(workers);
    const BatchOutcome<int> outcome =
        runner.MapWithFailures<int>(20, [](std::size_t i) {
          if (i % 7 == 3) throw std::runtime_error("cell " + std::to_string(i));
          return static_cast<int>(i) * 2;
        });
    ASSERT_EQ(outcome.results.size(), 20u);
    ASSERT_EQ(outcome.failures.size(), 3u) << "workers " << workers;
    // Deterministic report: ascending index order, structured fields.
    EXPECT_EQ(outcome.failures[0].index, 3u);
    EXPECT_EQ(outcome.failures[1].index, 10u);
    EXPECT_EQ(outcome.failures[2].index, 17u);
    EXPECT_EQ(outcome.failures[0].what, "cell 3");
    EXPECT_EQ(outcome.failures[0].attempts, 1);
    EXPECT_FALSE(outcome.failures[0].timed_out);
    for (std::size_t i = 0; i < 20; ++i) {
      if (i % 7 == 3) {
        EXPECT_FALSE(outcome.results[i].has_value()) << i;
      } else {
        ASSERT_TRUE(outcome.results[i].has_value()) << i;
        EXPECT_EQ(*outcome.results[i], static_cast<int>(i) * 2);
      }
    }
  }
}

TEST(BatchRunner, MapWithFailuresBoundedRetrySucceedsOnLaterAttempt) {
  // Cells that fail once then succeed: with max_attempts = 3 every cell
  // recovers and the failure report is empty.
  std::array<std::atomic<int>, 8> tries{};
  BatchRunPolicy policy;
  policy.max_attempts = 3;
  const BatchRunner runner(2);
  const BatchOutcome<int> outcome = runner.MapWithFailures<int>(
      8,
      [&](std::size_t i) {
        if (tries[i].fetch_add(1) == 0) throw std::runtime_error("flaky");
        return static_cast<int>(i);
      },
      policy);
  EXPECT_TRUE(outcome.all_ok());
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(outcome.results[i].has_value());
    EXPECT_EQ(*outcome.results[i], static_cast<int>(i));
    EXPECT_EQ(tries[i].load(), 2) << "cell should succeed on attempt 2";
  }
}

TEST(BatchRunner, MapWithFailuresExhaustedRetriesReportAttemptCount) {
  BatchRunPolicy policy;
  policy.max_attempts = 4;
  const BatchRunner runner(1);
  std::atomic<int> calls{0};
  const BatchOutcome<int> outcome = runner.MapWithFailures<int>(
      1,
      [&](std::size_t) -> int {
        ++calls;
        throw std::runtime_error("always");
      },
      policy);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].attempts, 4);
  EXPECT_EQ(calls.load(), 4);
  EXPECT_FALSE(outcome.results[0].has_value());
}

TEST(BatchRunner, MapWithFailuresNonStdExceptionIsStructured) {
  const BatchRunner runner(1);
  const BatchOutcome<int> outcome =
      runner.MapWithFailures<int>(2, [](std::size_t i) -> int {
        if (i == 1) throw 7;  // not a std::exception
        return 0;
      });
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].what, "<unknown exception>");
}

TEST(BatchRunner, MapWithFailuresSoftTimeoutKeepsResultAndFlagsCell) {
  // The deadline is post-hoc: the slow cell's RESULT survives (values
  // stay machine-independent) but the cell is flagged timed_out.
  BatchRunPolicy policy;
  policy.cell_timeout_seconds = 1e-9;  // everything is too slow
  const BatchRunner runner(2);
  const BatchOutcome<int> outcome = runner.MapWithFailures<int>(
      3, [](std::size_t i) { return static_cast<int>(i); }, policy);
  ASSERT_EQ(outcome.failures.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(outcome.results[i].has_value()) << i;
    EXPECT_EQ(*outcome.results[i], static_cast<int>(i));
    EXPECT_TRUE(outcome.failures[i].timed_out);
    EXPECT_TRUE(outcome.failures[i].what.empty());
  }
}

TEST(BatchRunner, RunSimulationsMatchesSerialRuns) {
  Instance chains;
  chains.add_job(Job(MakeChain(6), 0));
  chains.add_job(Job(MakeChain(4), 2));
  Instance star;
  star.add_job(Job(MakeStar(5), 0));

  const std::vector<std::pair<const Instance*, int>> cells = {
      {&chains, 1}, {&chains, 2}, {&star, 2}, {&star, 4}};
  auto make = [](std::size_t) { return MakePolicy("fifo/first-ready"); };

  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    const BatchRunner runner(workers);
    const std::vector<SimResult> parallel_results =
        runner.RunSimulations(std::span(cells), make);
    ASSERT_EQ(parallel_results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      auto scheduler = make(i);
      const SimResult serial =
          Simulate(*cells[i].first, cells[i].second, *scheduler);
      EXPECT_EQ(parallel_results[i].flows.max_flow, serial.flows.max_flow)
          << "cell " << i << " workers " << workers;
      EXPECT_EQ(parallel_results[i].stats.horizon, serial.stats.horizon)
          << "cell " << i << " workers " << workers;
    }
  }
}

}  // namespace
}  // namespace otsched
