// Tests for sim/batch_runner.h: deterministic index-ordered results under
// any worker count, support for non-default-constructible results, and
// the simulation fan-out convenience.
#include "gtest_compat.h"

#include <numeric>

#include "dag/builders.h"
#include "sched/registry.h"
#include "sim/batch_runner.h"

namespace otsched {
namespace {

TEST(BatchRunner, MapReturnsIndexOrderForAnyWorkerCount) {
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    const BatchRunner runner(workers);
    const std::vector<int> out =
        runner.Map<int>(100, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
  }
}

TEST(BatchRunner, MapSupportsNonDefaultConstructibleResults) {
  // Schedule has no default constructor — the exact shape SimResult cells
  // produce.
  const BatchRunner runner(3);
  const std::vector<Schedule> out = runner.Map<Schedule>(5, [](std::size_t i) {
    Schedule schedule(static_cast<int>(i) + 1);
    schedule.place(1, SubjobRef{0, 0});
    return schedule;
  });
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].m(), static_cast<int>(i) + 1);
    EXPECT_EQ(out[i].total_placed(), 1);
  }
}

TEST(BatchRunner, MapEmptyIsEmpty) {
  const BatchRunner runner;
  EXPECT_TRUE(runner.Map<int>(0, [](std::size_t) { return 0; }).empty());
}

TEST(BatchRunner, RunSimulationsMatchesSerialRuns) {
  Instance chains;
  chains.add_job(Job(MakeChain(6), 0));
  chains.add_job(Job(MakeChain(4), 2));
  Instance star;
  star.add_job(Job(MakeStar(5), 0));

  const std::vector<std::pair<const Instance*, int>> cells = {
      {&chains, 1}, {&chains, 2}, {&star, 2}, {&star, 4}};
  auto make = [](std::size_t) { return MakePolicy("fifo/first-ready"); };

  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    const BatchRunner runner(workers);
    const std::vector<SimResult> parallel_results =
        runner.RunSimulations(std::span(cells), make);
    ASSERT_EQ(parallel_results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      auto scheduler = make(i);
      const SimResult serial =
          Simulate(*cells[i].first, cells[i].second, *scheduler);
      EXPECT_EQ(parallel_results[i].flows.max_flow, serial.flows.max_flow)
          << "cell " << i << " workers " << workers;
      EXPECT_EQ(parallel_results[i].stats.horizon, serial.stats.horizon)
          << "cell " << i << " workers " << workers;
    }
  }
}

}  // namespace
}  // namespace otsched
